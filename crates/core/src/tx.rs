//! The transactional interface workloads are written against.

use sim_mem::{Addr, Heap};

use crate::algorithms::common::{DirectCtx, FastCtx};
use crate::algorithms::norec::{EagerCtx, LazyCtx};
use crate::algorithms::rh_norec::RhCtx;
use crate::algorithms::tl2::Tl2Ctx;
use crate::error::{TxFault, TxResult, RESTART};
use crate::trace;
use crate::TxKind;

/// Engine-side operations backing a [`Tx`].
///
/// Each algorithm path (hardware fast path, software slow path, mixed slow
/// path, serial section) implements this trait; workload code only ever
/// sees [`Tx`]. The trait is crate-private, and since the dispatch enum
/// below names every implementor, calls through it are resolved
/// statically — no vtable is ever built.
pub(crate) trait TxOps {
    fn read(&mut self, addr: Addr) -> TxResult<u64>;
    fn write(&mut self, addr: Addr, value: u64) -> TxResult<()>;
    fn alloc(&mut self, words: u64) -> TxResult<Addr>;
    fn free(&mut self, addr: Addr) -> TxResult<()>;
}

/// The closed set of engine execution contexts, one variant per path.
///
/// This enum is the dispatch mechanism of the hot path: [`Tx`] owns it by
/// value and every operation matches on it, so each arm is a direct
/// (inlinable) call into the engine. Within one attempt the variant never
/// changes, making the match branch perfectly predictable — unlike the
/// opaque indirect call of the former `&mut dyn TxOps` handle, which also
/// blocked inlining of the per-access engine code. See DESIGN.md
/// ("Dispatch architecture") for why an enum was chosen over a generic
/// `Tx<O: TxOps>`.
pub(crate) enum TxCtx<'a> {
    /// Hardware transaction (fast path of the hybrid algorithms).
    Fast(FastCtx<'a>),
    /// Serialized direct execution (Lock Elision's lock fallback).
    Direct(DirectCtx<'a>),
    /// Eager NOrec STM (standalone, and Hybrid NOrec's slow path).
    Eager(EagerCtx<'a>),
    /// Lazy NOrec STM (standalone, and the lazy hybrid's slow path).
    Lazy(LazyCtx<'a>),
    /// TL2 STM.
    Tl2(Tl2Ctx<'a>),
    /// RH NOrec's mixed slow path (prefix/software/postfix).
    Rh(RhCtx<'a>),
}

/// Statically dispatches `$body` over the context variants.
macro_rules! dispatch {
    ($tx:expr, $ctx:ident => $body:expr) => {
        match &mut $tx.ctx {
            TxCtx::Fast($ctx) => $body,
            TxCtx::Direct($ctx) => $body,
            TxCtx::Eager($ctx) => $body,
            TxCtx::Lazy($ctx) => $body,
            TxCtx::Tl2($ctx) => $body,
            TxCtx::Rh($ctx) => $body,
        }
    };
}

/// A live transaction, passed to the transaction body.
///
/// All shared-memory access inside a transaction goes through this handle;
/// the engine behind it provides atomicity, opacity and privatization per
/// the configured algorithm. Operations return [`TxResult`] — bodies
/// propagate failures with `?`, and the engine restarts them transparently.
///
/// # Examples
///
/// Transaction bodies look like this (see [`TmThread::execute`] for the
/// full setup):
///
/// ```rust,ignore
/// thread.execute(TxKind::ReadWrite, |tx| {
///     let v = tx.read(counter)?;
///     tx.write(counter, v + 1)?;
///     Ok(v)
/// });
/// ```
///
/// [`TmThread::execute`]: crate::TmThread::execute
pub struct Tx<'a> {
    ctx: TxCtx<'a>,
    kind: TxKind,
    fault: Option<TxFault>,
}

impl<'a> Tx<'a> {
    pub(crate) fn new(ctx: TxCtx<'a>, kind: TxKind) -> Self {
        Tx { ctx, kind, fault: None }
    }

    /// Dismantles the handle after the body returned, giving the engine
    /// its context back plus any fault the body tripped.
    pub(crate) fn into_parts(self) -> (TxCtx<'a>, Option<TxFault>) {
        (self.ctx, self.fault)
    }

    /// Transactionally reads the word at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`TxRestart`](crate::TxRestart) when the attempt must
    /// restart; propagate it with `?`.
    #[inline]
    pub fn read(&mut self, addr: Addr) -> TxResult<u64> {
        sim_htm::sched::yield_point();
        if self.fault.is_some() {
            return Err(RESTART);
        }
        let value = dispatch!(self, ctx => ctx.read(addr))?;
        trace::read(addr, value);
        Ok(value)
    }

    /// Transactionally writes `value` to `addr`.
    ///
    /// # Contract
    ///
    /// Writing is only legal in a transaction declared
    /// [`TxKind::ReadWrite`](crate::TxKind::ReadWrite). Inside a
    /// [`TxKind::ReadOnly`](crate::TxKind::ReadOnly) transaction the write
    /// is refused before it reaches any engine: this call returns
    /// [`TxRestart`](crate::TxRestart) (propagate it with `?` as usual),
    /// the attempt is torn down cleanly, and the enclosing
    /// [`try_execute`](crate::TmThread::try_execute) returns
    /// [`TxFault::WriteInReadOnly`] instead of retrying
    /// ([`execute`](crate::TmThread::execute) panics). The read-only hint
    /// models compiler static analysis, so a write under it is a
    /// programming error, never a transient condition.
    ///
    /// # Errors
    ///
    /// Returns [`TxRestart`](crate::TxRestart) when the attempt must
    /// restart, or — inside a read-only transaction — to carry the
    /// [`TxFault`] out of the body.
    #[inline]
    pub fn write(&mut self, addr: Addr, value: u64) -> TxResult<()> {
        sim_htm::sched::yield_point();
        if self.fault.is_some() {
            return Err(RESTART);
        }
        if self.kind != TxKind::ReadWrite {
            self.fault = Some(TxFault::WriteInReadOnly);
            return Err(RESTART);
        }
        dispatch!(self, ctx => ctx.write(addr, value))?;
        trace::write(addr, value);
        Ok(())
    }

    /// Allocates a zeroed block of `words` words, visible to this
    /// transaction immediately and rolled back if it aborts.
    ///
    /// # Errors
    ///
    /// Returns [`TxRestart`](crate::TxRestart) when the attempt must
    /// restart.
    ///
    /// # Panics
    ///
    /// Panics if the heap is exhausted (the workloads treat simulated OOM
    /// as fatal, as STAMP does).
    #[inline]
    pub fn alloc(&mut self, words: u64) -> TxResult<Addr> {
        sim_htm::sched::yield_point();
        if self.fault.is_some() {
            return Err(RESTART);
        }
        dispatch!(self, ctx => ctx.alloc(words))
    }

    /// Frees `addr`'s block. The free takes effect only if the transaction
    /// commits (deferred reclamation keeps concurrent optimistic readers
    /// safe).
    ///
    /// # Errors
    ///
    /// Returns [`TxRestart`](crate::TxRestart) when the attempt must
    /// restart.
    #[inline]
    pub fn free(&mut self, addr: Addr) -> TxResult<()> {
        sim_htm::sched::yield_point();
        if self.fault.is_some() {
            return Err(RESTART);
        }
        dispatch!(self, ctx => ctx.free(addr))
    }

    /// Reads a word and decodes it as a pointer.
    #[inline]
    pub fn read_addr(&mut self, addr: Addr) -> TxResult<Addr> {
        Ok(Addr::from_word(self.read(addr)?))
    }

    /// Writes a pointer value.
    #[inline]
    pub fn write_addr(&mut self, addr: Addr, value: Addr) -> TxResult<()> {
        self.write(addr, value.to_word())
    }

    /// Reads a word and reinterprets it as a signed integer.
    #[inline]
    pub fn read_i64(&mut self, addr: Addr) -> TxResult<i64> {
        Ok(self.read(addr)? as i64)
    }

    /// Writes a signed integer.
    #[inline]
    pub fn write_i64(&mut self, addr: Addr, value: i64) -> TxResult<()> {
        self.write(addr, value as u64)
    }

    /// Reads a word and reinterprets its bits as a float.
    #[inline]
    pub fn read_f64(&mut self, addr: Addr) -> TxResult<f64> {
        Ok(f64::from_bits(self.read(addr)?))
    }

    /// Writes a float's bit pattern.
    #[inline]
    pub fn write_f64(&mut self, addr: Addr, value: f64) -> TxResult<()> {
        self.write(addr, value.to_bits())
    }
}

impl std::fmt::Debug for Tx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let path = match self.ctx {
            TxCtx::Fast(_) => "fast",
            TxCtx::Direct(_) => "direct",
            TxCtx::Eager(_) => "norec-eager",
            TxCtx::Lazy(_) => "norec-lazy",
            TxCtx::Tl2(_) => "tl2",
            TxCtx::Rh(_) => "rh-mixed",
        };
        f.debug_struct("Tx")
            .field("path", &path)
            .field("kind", &self.kind)
            .field("fault", &self.fault)
            .finish()
    }
}

/// Transaction-scoped memory management: immediate allocation with
/// abort-time undo, and commit-deferred frees.
///
/// Allocations become usable the moment they are made (the paper's
/// workloads initialize freshly allocated nodes inside the transaction);
/// if the attempt aborts they are returned to the pool. Frees are logged
/// and only executed after a successful commit, so a concurrent optimistic
/// reader can never have its memory recycled under it mid-attempt.
#[derive(Debug, Default)]
pub(crate) struct TxMem {
    allocs: Vec<Addr>,
    frees: Vec<Addr>,
}

impl TxMem {
    pub(crate) fn alloc(&mut self, heap: &Heap, tid: usize, words: u64) -> Addr {
        let addr = heap
            .allocator()
            .alloc(tid, words)
            .expect("simulated heap exhausted");
        self.allocs.push(addr);
        addr
    }

    pub(crate) fn free(&mut self, addr: Addr) {
        self.frees.push(addr);
    }

    /// Commit: execute deferred frees, keep allocations.
    pub(crate) fn commit(&mut self, heap: &Heap, tid: usize) {
        for addr in self.frees.drain(..) {
            heap.allocator().free(tid, addr);
        }
        self.allocs.clear();
    }

    /// Abort: undo allocations, forget deferred frees.
    pub(crate) fn rollback(&mut self, heap: &Heap, tid: usize) {
        for addr in self.allocs.drain(..) {
            heap.allocator().free(tid, addr);
        }
        self.frees.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mem::HeapConfig;

    #[test]
    fn rollback_returns_allocations() {
        let heap = Heap::new(HeapConfig { words: 1 << 12 });
        let mut mem = TxMem::default();
        let a = mem.alloc(&heap, 0, 4);
        mem.rollback(&heap, 0);
        // The block is back in the pool: the next same-class alloc reuses it.
        let b = mem.alloc(&heap, 0, 4);
        assert_eq!(a, b);
        mem.commit(&heap, 0);
    }

    #[test]
    fn frees_are_deferred_to_commit() {
        let heap = Heap::new(HeapConfig { words: 1 << 12 });
        let mut mem = TxMem::default();
        let a = mem.alloc(&heap, 0, 4);
        mem.commit(&heap, 0);

        mem.free(a);
        // Before commit the block is still live: a fresh alloc must differ.
        let b = mem.alloc(&heap, 0, 4);
        assert_ne!(a, b);
        mem.commit(&heap, 0);
        // After commit the freed block is reusable.
        let c = mem.alloc(&heap, 0, 4);
        assert_eq!(c, a);
    }

    #[test]
    fn rollback_cancels_frees() {
        let heap = Heap::new(HeapConfig { words: 1 << 12 });
        let mut mem = TxMem::default();
        let a = mem.alloc(&heap, 0, 4);
        mem.commit(&heap, 0);

        mem.free(a);
        mem.rollback(&heap, 0);
        // The free never happened; `a` is still live.
        let b = mem.alloc(&heap, 0, 4);
        assert_ne!(a, b);
    }
}
