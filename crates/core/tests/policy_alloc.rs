//! Warm-path allocation guard for the adaptive policy layer.
//!
//! Counter recording runs after *every* commit, so it must stay off the
//! allocator entirely: the per-thread slots are preallocated padded
//! blocks, the controller state lives behind a fixed mutex, and an
//! epoch tick only mutates atomics. This test pins that with every
//! controller enabled and an epoch offered per commit, thousands of
//! warm transactions perform zero heap allocations — a stricter bound
//! than the arena `grow_events` guard, which only watches the tx logs.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rh_norec::{Algorithm, PolicyConfig, TmConfig, TmRuntime, TxKind};
use sim_htm::{Htm, HtmConfig};
use sim_mem::{Heap, HeapConfig};

/// Counts every allocation so tests can assert a warm region is
/// allocation-free. Integration tests are separate binaries, so the
/// global allocator swap is scoped to this file.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn warm_commits_with_policy_enabled_never_allocate() {
    for alg in Algorithm::ALL {
        let heap = Arc::new(Heap::new(HeapConfig { words: 1 << 16 }));
        let htm = Htm::new(Arc::clone(&heap), HtmConfig::disabled());
        let cfg = TmConfig::builder(alg)
            .clock_shards(4)
            .policy(PolicyConfig {
                enabled: true,
                epoch_commits: 1,
                adapt_backoff: true,
                adapt_lanes: true,
                adapt_prefix: true,
            })
            .build()
            .expect("valid adaptive config");
        let rt = TmRuntime::new(Arc::clone(&heap), htm, cfg).expect("runtime");
        let slots: Vec<_> = {
            let alloc = heap.allocator();
            (0..8).map(|_| alloc.alloc(0, 1).expect("test heap too small")).collect()
        };

        let mut w = rt.register(0).expect("fresh thread id");
        let body = |tx: &mut rh_norec::Tx<'_>| {
            let mut acc = 0u64;
            for &slot in &slots {
                acc = acc.wrapping_add(tx.read(slot)?);
                tx.write(slot, acc)?;
            }
            Ok(acc)
        };
        // Warm the arenas and the controller (several epochs tick here).
        for _ in 0..64 {
            w.execute(TxKind::ReadWrite, body);
        }

        let grows = w.log_grow_events();
        let allocs = ALLOCATIONS.load(Ordering::Relaxed);
        for _ in 0..2_048 {
            w.execute(TxKind::ReadWrite, body);
        }
        assert_eq!(
            ALLOCATIONS.load(Ordering::Relaxed),
            allocs,
            "{alg:?}: a warm commit with the adaptive policy enabled hit the \
             heap allocator (counter recording or an epoch tick allocates)"
        );
        assert_eq!(
            w.log_grow_events(),
            grows,
            "{alg:?}: a warm transaction grew a log arena under the policy layer"
        );
    }
}
