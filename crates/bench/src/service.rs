//! `rh-bench service`: the KV service-tier tail-latency benchmark.
//!
//! Replays one seeded open-loop request trace (zipfian keys, mixed
//! get/put/delete/transfer/range operations, bursty Poisson arrivals —
//! see [`rh_kv::gen`]) against the sharded transactional store on every
//! paper engine, and reports per-request-class sojourn-time percentiles
//! (p50/p95/p99/max). The trace is identical across engines by
//! construction, and latencies are *modeled* from the engines' cycle
//! accounting (see [`rh_kv::service`]), so the resulting ledger is a
//! property of the algorithms, not of CI host load.
//!
//! Results go to stdout and to `BENCH_7.json` in the ledger dialect
//! `rh-bench diff` understands: one row per (engine, class, statistic)
//! with the nanosecond value in `ns_per_tx`, so tail regressions gate
//! exactly like throughput regressions.

use rh_kv::gen::{Mix, TraceConfig};
use rh_kv::service::{run_service, ServiceConfig, ServiceReport};
use rh_norec::Algorithm;

use crate::ledger::{self, Value};

/// CLI-shaped options of one `service` invocation.
#[derive(Clone, Copy, Debug)]
pub struct ServiceArgs {
    /// Run only this engine (`None` = the paper's five).
    pub engine: Option<Algorithm>,
    /// Worker threads per cell.
    pub threads: usize,
    /// Requests in the trace.
    pub requests: usize,
    /// Trace seed.
    pub seed: u64,
    /// Smoke scale: a small deterministic conservation-checked cell
    /// (gets and transfers only) for CI.
    pub smoke: bool,
    /// Machine-readable output.
    pub csv: bool,
    /// Run the engines with the adaptive policy layer on
    /// (`clock_shards = 4`, every controller enabled) instead of the
    /// static defaults; row scenarios are suffixed `@adaptive` and the
    /// BENCH_7 ledger is left untouched.
    pub policy: bool,
}

impl Default for ServiceArgs {
    fn default() -> Self {
        ServiceArgs {
            engine: None,
            threads: 8,
            requests: 20_000,
            seed: 0x5eed_cafe,
            smoke: false,
            csv: false,
            policy: false,
        }
    }
}

/// The `--policy` TM override: the sharded clock with every adaptive
/// controller on (the same configuration the policy grid's `adaptive`
/// column runs).
fn adaptive_overrides(b: rh_norec::TmConfigBuilder) -> rh_norec::TmConfigBuilder {
    b.clock_shards(4).policy(rh_norec::PolicyConfig::adaptive())
}

/// Parses an engine name as the CLI accepts it (`rh-norec`,
/// `lock-elision`, `tl2`, ... — case- and punctuation-insensitive
/// against [`Algorithm::label`]).
pub fn parse_engine(name: &str) -> Option<Algorithm> {
    let norm = |s: &str| {
        s.chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .collect::<String>()
            .to_ascii_lowercase()
    };
    let wanted = norm(name);
    Algorithm::PAPER_SET.into_iter().find(|a| norm(a.label()) == wanted)
}

/// The trace a given invocation replays. Smoke runs are small, use the
/// conservation-checkable transfer mix, and a fixed keyspace; full runs
/// use the read-heavy mix over 1024 keys.
fn trace_for(args: &ServiceArgs) -> TraceConfig {
    if args.smoke {
        TraceConfig {
            requests: args.requests.min(4_000),
            keyspace: 128,
            mix: Mix::transfer_heavy(),
            seed: args.seed,
            ..TraceConfig::default()
        }
    } else {
        TraceConfig {
            requests: args.requests,
            keyspace: 1024,
            mix: Mix::read_heavy(),
            seed: args.seed,
            // Below saturation for every engine: range scans on the
            // lock-fallback engines are the slowest requests, and an
            // offered load above their service rate would measure queue
            // explosion instead of engine behavior. Bursts still push
            // the instantaneous rate 8x past this.
            mean_interarrival_ns: 25_000,
            ..TraceConfig::default()
        }
    }
}

/// One ledger row: `(algorithm, scenario, latency_ns)`.
type Row = (String, String, f64);

/// Flattens a report into `<class>_<stat>` ledger rows.
fn rows_of(report: &ServiceReport) -> Vec<Row> {
    let mut rows = Vec::new();
    let alg = report.algorithm.label().to_string();
    let mut push = |scenario: String, ns: f64| rows.push((alg.clone(), scenario, ns));
    for class in &report.classes {
        let label = class.class.label();
        push(format!("{label}_p50"), class.latency.p50_ns as f64);
        push(format!("{label}_p95"), class.latency.p95_ns as f64);
        push(format!("{label}_p99"), class.latency.p99_ns as f64);
        push(format!("{label}_max"), class.latency.max_ns as f64);
    }
    push("overall_p50".into(), report.overall.p50_ns as f64);
    push("overall_p95".into(), report.overall.p95_ns as f64);
    push("overall_p99".into(), report.overall.p99_ns as f64);
    push("overall_max".into(), report.overall.max_ns as f64);
    rows
}

/// Serializes the percentile ledger as the `BENCH_7.json` document.
pub fn to_json(args: &ServiceArgs, trace: &TraceConfig, rows: &[Row]) -> String {
    let ledger_rows: Vec<Vec<(&str, Value)>> = rows
        .iter()
        .map(|(alg, scenario, ns)| {
            vec![
                ("algorithm", Value::Str(alg.clone())),
                ("scenario", Value::Str(scenario.clone())),
                ("ns_per_tx", Value::Num(*ns, 2)),
            ]
        })
        .collect();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"service\",\n");
    out.push_str(
        "  \"description\": \"KV service tier tail latency: modeled request sojourn time \
         (queueing + service) per request class, identical seeded open-loop trace across \
         engines; ns_per_tx carries the latency in nanoseconds\",\n",
    );
    out.push_str(&format!(
        "  \"instrumentation_compiled\": {},\n",
        rh_norec::INSTRUMENTED
    ));
    out.push_str("  \"config\": {\n");
    out.push_str(&format!("    \"threads\": {},\n", args.threads));
    out.push_str(&format!("    \"requests\": {},\n", trace.requests));
    out.push_str(&format!("    \"keyspace\": {},\n", trace.keyspace));
    out.push_str(&format!("    \"seed\": {},\n", trace.seed));
    out.push_str(&format!("    \"smoke\": {}\n", args.smoke));
    out.push_str("  },\n");
    out.push_str("  \"current\": {\n");
    out.push_str("    \"engine\": \"kv service tier over the session API\",\n");
    out.push_str("    \"rows\": ");
    out.push_str(&ledger::rows_array(&ledger_rows, "      ", "    "));
    out.push_str("\n  }\n");
    out.push_str("}\n");
    out
}

/// Runs the service cells (silently) and returns their ledger rows;
/// with `args.policy`, the engines run under [`adaptive_overrides`] and
/// scenarios carry the `@adaptive` suffix. The BENCH_8 assembly uses
/// this to join the static and adaptive row sets into one document.
pub fn collect(args: &ServiceArgs) -> Vec<Row> {
    let trace = trace_for(args);
    let engines: Vec<Algorithm> = match args.engine {
        Some(a) => vec![a],
        None => Algorithm::PAPER_SET.to_vec(),
    };
    let mut all_rows: Vec<Row> = Vec::new();
    for algorithm in engines {
        let mut config = ServiceConfig::new(algorithm, args.threads, trace);
        if args.policy {
            config.tm_overrides = Some(adaptive_overrides);
        }
        let report = run_service(&config);
        let mut rows = rows_of(&report);
        if args.policy {
            for (_, scenario, _) in &mut rows {
                scenario.push_str("@adaptive");
            }
        }
        all_rows.extend(rows);
    }
    all_rows
}

/// Runs the service cells, prints the percentile table, and writes
/// `BENCH_7.json` into the current directory (`--policy` runs print
/// only: the adaptive cell belongs to BENCH_8, not the BENCH_7 ledger).
pub fn run(args: &ServiceArgs) {
    let trace = trace_for(args);
    let engines: Vec<Algorithm> = match args.engine {
        Some(a) => vec![a],
        None => Algorithm::PAPER_SET.to_vec(),
    };

    if args.csv {
        println!("algorithm,scenario,latency_ns");
    } else {
        println!(
            "service: {} requests over {} keys, {} workers/cell, seed {:#x}{}{}",
            trace.requests,
            trace.keyspace,
            args.threads,
            trace.seed,
            if args.smoke { " (smoke: transfer mix, conservation-checked)" } else { "" },
            if args.policy { " (adaptive policy on)" } else { "" }
        );
        println!(
            "{:<14} {:<10} {:>8} {:>12} {:>12} {:>12} {:>12}",
            "algorithm", "class", "count", "p50 ns", "p95 ns", "p99 ns", "max ns"
        );
    }

    let mut all_rows: Vec<Row> = Vec::new();
    for algorithm in engines {
        let mut config = ServiceConfig::new(algorithm, args.threads, trace);
        if args.policy {
            config.tm_overrides = Some(adaptive_overrides);
        }
        let report = run_service(&config);
        if args.smoke {
            assert_eq!(
                report.conserved,
                Some(true),
                "{algorithm:?}: smoke mix must check conservation"
            );
            assert_eq!(report.requests as usize, trace.requests);
        }
        if args.csv {
            for (alg, scenario, ns) in rows_of(&report) {
                println!("{alg},{scenario},{ns:.2}");
            }
        } else {
            for class in &report.classes {
                println!(
                    "{:<14} {:<10} {:>8} {:>12} {:>12} {:>12} {:>12}",
                    report.algorithm.label(),
                    class.class.label(),
                    class.latency.count,
                    class.latency.p50_ns,
                    class.latency.p95_ns,
                    class.latency.p99_ns,
                    class.latency.max_ns
                );
            }
            println!(
                "{:<14} {:<10} {:>8} {:>12} {:>12} {:>12} {:>12}   ({} commits, {} aborts)",
                report.algorithm.label(),
                "overall",
                report.overall.count,
                report.overall.p50_ns,
                report.overall.p95_ns,
                report.overall.p99_ns,
                report.overall.max_ns,
                report.commits,
                report.aborts
            );
        }
        all_rows.extend(rows_of(&report));
    }

    if args.policy {
        return;
    }
    let json = to_json(args, &trace, &all_rows);
    let path = "BENCH_7.json";
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_names_parse_case_and_punctuation_insensitively() {
        assert_eq!(parse_engine("rh-norec"), Some(Algorithm::RhNorec));
        assert_eq!(parse_engine("RH NOrec"), Some(Algorithm::RhNorec));
        assert_eq!(parse_engine("lock-elision"), Some(Algorithm::LockElision));
        assert_eq!(parse_engine("tl2"), Some(Algorithm::Tl2));
        assert_eq!(parse_engine("hy-norec"), Some(Algorithm::HybridNorec));
        assert_eq!(parse_engine("norec"), Some(Algorithm::Norec));
        assert_eq!(parse_engine("no-such-engine"), None);
    }

    #[test]
    fn ledger_rows_round_trip_through_the_shared_parser() {
        let args = ServiceArgs { smoke: true, requests: 1_000, threads: 2, ..Default::default() };
        let trace = trace_for(&args);
        let config = ServiceConfig::new(Algorithm::RhNorec, args.threads, trace);
        let report = run_service(&config);
        let rows = rows_of(&report);
        let doc = to_json(&args, &trace, &rows);
        let parsed = ledger::current_rows(&doc).expect("service ledger must parse");
        assert_eq!(parsed.len(), rows.len());
        assert!(parsed.iter().any(|(_, s, _)| s == "transfer_p99"));
        assert!(parsed.iter().any(|(_, s, _)| s == "overall_p50"));
    }
}
