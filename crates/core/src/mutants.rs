//! The mutation corpus: a manifest of deliberately planted protocol bugs
//! for the `tm-check` mutation-score gate.
//!
//! Each [`Mutant`] is a feature-gated hook at exactly the spot the HyTM
//! lower-bound literature says hybrid designs go wrong — instrumentation
//! elision (skipped validation, missing subscriptions) and fast/slow-path
//! synchronization (missing lock raises, reordered release/undo). The
//! hooks compile in only under the `mutants` cargo feature and stay
//! **disarmed** until [`TmRuntime::set_mutant`] arms one per runtime, so
//! a mutated and a clean engine can run side by side in one process.
//!
//! [`MANIFEST`] registers every mutant together with the seed/schedule
//! family expected to kill it — the workload shape, HTM profile, clock
//! sharding, abort-injection rate, and bounded seed budget that
//! `tm-check mutate` sweeps. A mutant that survives its budget, or a real
//! engine that fails the same budget clean, fails CI.
//!
//! To add a mutant when landing a new engine: add a variant here, plant
//! the hook behind `#[cfg(feature = "mutants")]` + a
//! [`TmRuntime::mutant_armed`] check at the protocol step being broken,
//! append a [`MutantSpec`] describing the schedule family that exposes
//! it, and let `tm-check mutate` prove the kill.
//!
//! [`TmRuntime::set_mutant`]: crate::TmRuntime::set_mutant
//! [`TmRuntime::mutant_armed`]: crate::TmRuntime

use crate::Algorithm;

/// One planted protocol bug. See [`MANIFEST`] for where each hook lives
/// and how it is expected to be killed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mutant {
    /// RH NOrec first write re-reads the clock and locks whatever it
    /// holds now instead of entering the write phase from the validated
    /// snapshot (the corpus's original mutation, once a dedicated
    /// `mutant-postfix-clock` cargo feature).
    PostfixClock,
    /// Sharded-clock validation never revalidates the last sequence
    /// lane, so commits homed there go unseen by in-flight snapshots
    /// (once a dedicated `mutant-stale-lane` cargo feature).
    StaleLane,
    /// Eager NOrec reads skip per-read clock validation entirely — the
    /// "skipped post-validation re-read" bug.
    EagerSkipValidation,
    /// Lazy NOrec revalidation refreshes the clock snapshot but skips the
    /// value-based re-read of the read log — a stale snapshot survives
    /// backoff/retry into the commit write-back.
    StaleSnapshotReuse,
    /// Hybrid/RH NOrec writer fast paths skip `htm_commit_bump` when the
    /// committer homes on sequence lane 0, so software snapshots never
    /// see those commits.
    MissingLaneBump,
    /// The lazy write-set's bloom filter tests the wrong bit, producing
    /// false negatives: read-after-write falls through to the heap.
    BloomFalseNegative,
    /// TL2 commit skips read-set validation when the clock moved, so a
    /// stale read survives into a committed writer.
    Tl2CommitNoValidate,
    /// TL2 abort releases stripe locks *before* undoing its eager writes
    /// (lock-release-before-write-back), exposing dirty values at
    /// unlocked, valid-looking stripes.
    Tl2EarlyRelease,
    /// Lock-elision hardware paths skip the global-lock subscription, so
    /// a serial-fallback writer's in-place stores can be half-observed.
    ElisionNoSubscription,
    /// RH NOrec's software-writer fallback (postfix refused) skips
    /// raising `global_htm_lock`, letting fast paths — which subscribe
    /// only to that lock — commit mid-write-phase.
    RhWriterNoHtmLock,
    /// The KV service tier's `transfer` computes the credit from a
    /// destination balance probed in a *separate, earlier* read-only
    /// transaction instead of reading it inside the transfer — a stale
    /// base that silently drops concurrent credits to the same key. The
    /// hook lives out-of-crate in `rh_kv::KvStore::transfer` and
    /// consults this runtime's arming mask through
    /// [`TmRuntime::mutant_armed`](crate::TmRuntime::mutant_armed).
    KvStaleTransferCredit,
    /// The adaptive policy controller publishes a lane-count change with a
    /// raw store instead of the write-phase epoch fence
    /// (`clock_shard::publish_active_lanes` with `fenced == false`), so a
    /// writer holding a pre-change snapshot can home its commit on a lane
    /// the shrunken active prefix no longer validates.
    PolicyStaleEpoch,
    /// Batch-mode validation treats a read that now resolves to an
    /// ESTIMATE tombstone as still valid whenever the tombstone belongs
    /// to the rank it originally read (incarnation unchecked), instead of
    /// failing and re-executing. A stale read of an aborted writer then
    /// survives the writer's re-execution: the classic Block-STM
    /// lost-update. The hook lives in the batch engine's validation loop
    /// and is armed per executor through
    /// [`ParallelExecutor::set_mutant`](crate::batch::ParallelExecutor::set_mutant).
    BatchStaleEstimate,
    /// The service tier's work-stealing queue publishes a consumer's
    /// claim on the head slot with a plain store instead of the CAS
    /// arbitration, so the claim can race a rival consumer (the owner's
    /// own front take, or another thief) and both parties walk away
    /// holding the same request — it is served twice. The hook lives
    /// out-of-crate in
    /// `rh_kv::steal::StealDeque::steal_top` and consults this runtime's
    /// arming mask through
    /// [`TmRuntime::mutant_armed`](crate::TmRuntime::mutant_armed) at
    /// pool construction.
    StealBottomRace,
}

impl Mutant {
    /// Every corpus mutant, in [`MANIFEST`] order.
    pub const ALL: [Mutant; 14] = [
        Mutant::PostfixClock,
        Mutant::StaleLane,
        Mutant::EagerSkipValidation,
        Mutant::StaleSnapshotReuse,
        Mutant::MissingLaneBump,
        Mutant::BloomFalseNegative,
        Mutant::Tl2CommitNoValidate,
        Mutant::Tl2EarlyRelease,
        Mutant::ElisionNoSubscription,
        Mutant::RhWriterNoHtmLock,
        Mutant::KvStaleTransferCredit,
        Mutant::PolicyStaleEpoch,
        Mutant::BatchStaleEstimate,
        Mutant::StealBottomRace,
    ];

    /// The mutant's bit in the runtime's arming mask.
    #[inline]
    pub(crate) fn bit(self) -> u32 {
        1 << (self as u32)
    }

    /// Stable CLI name (`tm-check mutate --mutant NAME`).
    pub fn name(self) -> &'static str {
        self.spec().name
    }

    /// Parses a CLI name back into the mutant.
    pub fn from_name(name: &str) -> Option<Mutant> {
        MANIFEST.iter().find(|s| s.name == name).map(|s| s.mutant)
    }

    /// The manifest entry for this mutant.
    pub fn spec(self) -> &'static MutantSpec {
        &MANIFEST[self as usize]
    }
}

/// Simulated-machine profile a kill recipe runs on (`tm-check` maps these
/// to concrete `HtmConfig`s; naming them here keeps the manifest free of
/// a `sim-htm` type dependency in its public shape).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HtmProfile {
    /// The paper's Haswell-like default machine.
    Haswell,
    /// HTM begin always refuses: every transaction runs in software.
    Disabled,
    /// Pathologically small HTM capacity: constant fallback pressure.
    Tiny,
}

/// Workload family a kill recipe drives. `tm-check` maps these to its
/// harness workloads; naming them here keeps the manifest authoritative
/// about *how* each bug is expected to die without the core crate
/// depending on the workload code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadShape {
    /// The seeded per-thread read/incr/blind-write slot scripts.
    Scripted,
    /// The sharded transactional KV store's seeded get/transfer request
    /// traces (`rh-kv`), checked for strict serializability plus
    /// conservation of the total transferred balance.
    KvTransfer,
    /// A pre-formed KV transfer batch driven through the batch engine
    /// (`rh_norec::batch::ParallelExecutor`): `threads` is the worker
    /// count, `slots` the key-space size, and the batch holds
    /// `threads * txs_per_thread` transfers; the committed history is
    /// checked for serializability in rank order plus conservation of
    /// the total balance.
    Batch,
    /// The KV service tier's work-stealing runner
    /// (`rh_kv::service::run_service_controlled` with
    /// `SchedPolicy::Steal { enabled: true }`): `threads` workers drain
    /// a seeded transfer-heavy trace of `threads * txs_per_thread`
    /// requests over `slots` keys through per-worker deques under the
    /// controlled scheduler. Checked for strict serializability of the
    /// recorded histories, conservation of the balance sum, and the
    /// runner's exactly-once service invariant.
    StealService,
}

/// One manifest entry: the mutant, where its hook lives, and the
/// seed/schedule family `tm-check mutate` sweeps to kill it.
#[derive(Debug, Clone, Copy)]
pub struct MutantSpec {
    /// The mutant this entry registers.
    pub mutant: Mutant,
    /// Stable CLI name.
    pub name: &'static str,
    /// One-line description of the planted bug and its hook site.
    pub summary: &'static str,
    /// How the kill is expected to manifest.
    pub kills_via: &'static str,
    /// Algorithm whose protocol the hook breaks.
    pub algorithm: Algorithm,
    /// Machine profile of the kill recipe.
    pub htm: HtmProfile,
    /// Commit-clock lanes of the kill recipe.
    pub clock_shards: u32,
    /// Virtual threads of the kill recipe.
    pub threads: usize,
    /// Shared heap slots of the kill recipe.
    pub slots: usize,
    /// Transactions per thread.
    pub txs_per_thread: usize,
    /// Operations per transaction.
    pub ops_per_tx: usize,
    /// Injected hardware-abort probability per HTM access (drives hybrid
    /// fallback paths where the hook lives).
    pub abort_injection: f64,
    /// Seeds `tm-check mutate` sweeps before declaring the mutant a
    /// survivor; the paired clean engine must pass the same seeds.
    pub seed_budget: u64,
    /// Workload family the kill recipe drives. For
    /// [`WorkloadShape::KvTransfer`], `slots` is the key-space size and
    /// `txs_per_thread` the requests per thread; `ops_per_tx` is unused.
    pub workload: WorkloadShape,
    /// Whether the kill recipe runs with the adaptive policy layer on
    /// (every controller enabled, an epoch tick per commit). Required by
    /// hooks planted in the policy/controller code path, which is never
    /// exercised otherwise.
    pub policy: bool,
}

/// The corpus, in [`Mutant::ALL`] order (indexed by `Mutant as usize`).
pub const MANIFEST: &[MutantSpec] = &[
    MutantSpec {
        mutant: Mutant::PostfixClock,
        name: "postfix_clock",
        summary: "RH NOrec first write locks the clock at its current value \
                  instead of the validated snapshot (rh_norec::lock_clock)",
        kills_via: "lost update: stale reads survive into the write phase",
        algorithm: Algorithm::RhNorec,
        htm: HtmProfile::Disabled,
        clock_shards: 1,
        threads: 3,
        slots: 2,
        txs_per_thread: 4,
        ops_per_tx: 3,
        abort_injection: 0.0,
        seed_budget: 40,
        workload: WorkloadShape::Scripted,
        policy: false,
    },
    MutantSpec {
        mutant: Mutant::StaleLane,
        name: "stale_lane",
        summary: "sharded-clock validation skips the last sequence lane \
                  (clock_shard::lanes_match)",
        kills_via: "zombie reads: commits homed on the skipped lane go unseen",
        algorithm: Algorithm::RhNorec,
        htm: HtmProfile::Disabled,
        clock_shards: 2,
        threads: 3,
        slots: 2,
        txs_per_thread: 4,
        ops_per_tx: 3,
        abort_injection: 0.0,
        seed_budget: 40,
        workload: WorkloadShape::Scripted,
        policy: false,
    },
    MutantSpec {
        mutant: Mutant::EagerSkipValidation,
        name: "eager_skip_validation",
        summary: "eager NOrec reads never validate against the clock \
                  (norec::EagerCtx::read)",
        kills_via: "inconsistent snapshots in committed read-only and aborted attempts",
        algorithm: Algorithm::Norec,
        htm: HtmProfile::Haswell,
        clock_shards: 1,
        threads: 3,
        slots: 2,
        txs_per_thread: 4,
        ops_per_tx: 3,
        abort_injection: 0.0,
        seed_budget: 40,
        workload: WorkloadShape::Scripted,
        policy: false,
    },
    MutantSpec {
        mutant: Mutant::StaleSnapshotReuse,
        name: "stale_snapshot_reuse",
        summary: "lazy NOrec revalidation refreshes the snapshot but skips \
                  the value-based read-log re-read (norec::LazyCtx::revalidate)",
        kills_via: "lost update: a stale read log passes commit revalidation",
        algorithm: Algorithm::NorecLazy,
        htm: HtmProfile::Haswell,
        clock_shards: 1,
        threads: 3,
        slots: 2,
        txs_per_thread: 4,
        ops_per_tx: 3,
        abort_injection: 0.0,
        seed_budget: 40,
        workload: WorkloadShape::Scripted,
        policy: false,
    },
    MutantSpec {
        mutant: Mutant::MissingLaneBump,
        name: "missing_lane_bump",
        summary: "writer fast paths homed on lane 0 skip htm_commit_bump \
                  (hybrid_norec::fast_commit_clock_update)",
        kills_via: "software snapshots never see lane-0 hardware commits",
        algorithm: Algorithm::HybridNorec,
        htm: HtmProfile::Haswell,
        clock_shards: 4,
        threads: 3,
        slots: 2,
        txs_per_thread: 4,
        ops_per_tx: 3,
        abort_injection: 0.1,
        seed_budget: 80,
        workload: WorkloadShape::Scripted,
        policy: false,
    },
    MutantSpec {
        mutant: Mutant::BloomFalseNegative,
        name: "bloom_false_negative",
        summary: "the write-set bloom filter tests a rotated bit, so present \
                  keys miss (txlog::LogMap::get)",
        kills_via: "read-your-own-writes broken on the lazy slow path",
        algorithm: Algorithm::NorecLazy,
        htm: HtmProfile::Haswell,
        clock_shards: 1,
        threads: 3,
        slots: 2,
        txs_per_thread: 4,
        ops_per_tx: 3,
        abort_injection: 0.0,
        seed_budget: 40,
        workload: WorkloadShape::Scripted,
        policy: false,
    },
    MutantSpec {
        mutant: Mutant::Tl2CommitNoValidate,
        name: "tl2_commit_no_validate",
        summary: "TL2 commit skips read-set validation when the clock moved \
                  (tl2::Tl2Ctx::commit)",
        kills_via: "committed writer serializes after a commit it never re-read",
        algorithm: Algorithm::Tl2,
        htm: HtmProfile::Haswell,
        clock_shards: 1,
        threads: 3,
        slots: 2,
        txs_per_thread: 4,
        ops_per_tx: 3,
        abort_injection: 0.0,
        seed_budget: 40,
        workload: WorkloadShape::Scripted,
        policy: false,
    },
    MutantSpec {
        mutant: Mutant::Tl2EarlyRelease,
        name: "tl2_early_release",
        summary: "TL2 abort releases stripe locks before undoing eager \
                  writes (tl2::Tl2Ctx::rollback_writes)",
        kills_via: "readers observe dirty aborted values at unlocked stripes",
        algorithm: Algorithm::Tl2,
        htm: HtmProfile::Haswell,
        clock_shards: 1,
        threads: 3,
        slots: 2,
        txs_per_thread: 4,
        ops_per_tx: 3,
        abort_injection: 0.0,
        seed_budget: 60,
        workload: WorkloadShape::Scripted,
        policy: false,
    },
    MutantSpec {
        mutant: Mutant::ElisionNoSubscription,
        name: "elision_no_subscription",
        summary: "lock-elision fast paths skip the global-lock subscription \
                  (lock_elision::try_fast)",
        kills_via: "hardware commits interleave with a serial writer's stores",
        algorithm: Algorithm::LockElision,
        htm: HtmProfile::Haswell,
        clock_shards: 1,
        threads: 3,
        slots: 2,
        txs_per_thread: 4,
        ops_per_tx: 3,
        abort_injection: 0.3,
        seed_budget: 80,
        workload: WorkloadShape::Scripted,
        policy: false,
    },
    MutantSpec {
        mutant: Mutant::RhWriterNoHtmLock,
        name: "rh_writer_no_htm_lock",
        summary: "RH NOrec's software-writer fallback skips raising \
                  global_htm_lock (rh_norec::handle_first_write)",
        kills_via: "read-only fast paths commit mixed snapshots mid-write-phase",
        algorithm: Algorithm::RhNorec,
        htm: HtmProfile::Haswell,
        clock_shards: 1,
        threads: 3,
        slots: 2,
        txs_per_thread: 4,
        ops_per_tx: 3,
        abort_injection: 0.3,
        seed_budget: 80,
        workload: WorkloadShape::Scripted,
        policy: false,
    },
    MutantSpec {
        mutant: Mutant::KvStaleTransferCredit,
        name: "kv_stale_transfer_credit",
        summary: "KV transfer credits the destination from a balance probed \
                  in an earlier separate transaction (rh_kv::KvStore::transfer)",
        kills_via: "lost credit: conservation of the transferred balance breaks \
                    when a concurrent transfer lands between probe and commit",
        algorithm: Algorithm::RhNorec,
        htm: HtmProfile::Haswell,
        clock_shards: 1,
        threads: 3,
        slots: 4,
        txs_per_thread: 6,
        ops_per_tx: 1,
        abort_injection: 0.0,
        seed_budget: 60,
        workload: WorkloadShape::KvTransfer,
        policy: false,
    },
    MutantSpec {
        mutant: Mutant::PolicyStaleEpoch,
        name: "policy_stale_epoch",
        summary: "the lane controller publishes a lane-count change with a \
                  raw store instead of the write-phase epoch fence \
                  (clock_shard::publish_active_lanes)",
        kills_via: "zombie reads: across an unfenced lane-count shrink, a \
                    committer homes on a lane outside another side's active \
                    prefix, so its commit goes unseen by in-flight snapshots. \
                    Pure-software NOrec (HTM disabled) keeps every reader \
                    validating per read, and shards=8 gives the controller \
                    three shrink windows (8->4->2->1) early in the run",
        algorithm: Algorithm::Norec,
        htm: HtmProfile::Disabled,
        clock_shards: 8,
        threads: 8,
        slots: 2,
        txs_per_thread: 4,
        ops_per_tx: 3,
        abort_injection: 0.0,
        seed_budget: 60,
        workload: WorkloadShape::Scripted,
        policy: true,
    },
    MutantSpec {
        mutant: Mutant::BatchStaleEstimate,
        name: "batch_stale_estimate",
        summary: "batch validation accepts a read resolving to an ESTIMATE \
                  tombstone as long as the tombstone's rank matches the rank \
                  originally read, incarnation unchecked \
                  (rh_norec::batch validation loop)",
        kills_via: "lost update: with three ranks chained on one hot key, a \
                    low rank's late first execution aborts the middle rank; \
                    the top rank's read of the dead middle incarnation hits \
                    the ESTIMATE during its one-off revalidation, the mutant \
                    calls it valid, and the middle rank's same-address \
                    republish (which revalidates only itself) never reruns \
                    the top rank — its commit carries the pre-abort balance, \
                    breaking conservation and rank-order serializability",
        algorithm: Algorithm::RhNorec,
        htm: HtmProfile::Disabled,
        clock_shards: 1,
        threads: 3,
        slots: 4,
        txs_per_thread: 8,
        ops_per_tx: 1,
        abort_injection: 0.0,
        seed_budget: 40,
        workload: WorkloadShape::Batch,
        policy: false,
    },
    MutantSpec {
        mutant: Mutant::StealBottomRace,
        name: "steal_bottom_race",
        summary: "the work-stealing queue claims its head slot with a plain \
                  store instead of the CAS arbitration \
                  (rh_kv::steal::StealDeque::steal_top)",
        kills_via: "double service: when two consumers (the owner's front \
                    take and a thief, or two thieves) race for the same head \
                    slot, the unarbitrated claim lets both return the same \
                    request, so the runner's exactly-once invariant trips \
                    (trace length vs served count) — and a doubled transfer \
                    corrupts the serialized history. The controlled scheduler \
                    drives the consumer interleaving through the yield point \
                    between the slot read and the claim; a 3-worker pool over \
                    a short bursty transfer trace makes contended head races \
                    the common case",
        algorithm: Algorithm::RhNorec,
        htm: HtmProfile::Disabled,
        clock_shards: 1,
        threads: 3,
        slots: 4,
        txs_per_thread: 8,
        ops_per_tx: 1,
        abort_injection: 0.0,
        seed_budget: 60,
        workload: WorkloadShape::StealService,
        policy: false,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_is_indexed_by_discriminant() {
        assert_eq!(MANIFEST.len(), Mutant::ALL.len());
        for (i, m) in Mutant::ALL.into_iter().enumerate() {
            assert_eq!(m as usize, i);
            assert_eq!(MANIFEST[i].mutant, m, "MANIFEST order diverged from ALL");
            assert_eq!(m.spec().mutant, m);
        }
    }

    #[test]
    fn names_are_unique_and_round_trip() {
        for m in Mutant::ALL {
            assert_eq!(Mutant::from_name(m.name()), Some(m));
            assert_eq!(
                MANIFEST.iter().filter(|s| s.name == m.name()).count(),
                1,
                "duplicate manifest name {}",
                m.name()
            );
        }
        assert_eq!(Mutant::from_name("no_such_mutant"), None);
    }

    #[test]
    fn arming_bits_do_not_collide() {
        let mut seen = 0u32;
        for m in Mutant::ALL {
            assert_eq!(seen & m.bit(), 0, "bit collision for {m:?}");
            seen |= m.bit();
        }
    }
}
