//! Error types for the memory subsystem.

use std::error::Error;
use std::fmt;

/// Errors reported by the simulated memory subsystem.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum MemError {
    /// The heap's allocation region is exhausted.
    OutOfMemory {
        /// Payload size of the failed request, in words.
        requested_words: u64,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfMemory { requested_words } => {
                write!(f, "simulated heap exhausted while allocating {requested_words} words")
            }
        }
    }
}

impl Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_request_size() {
        let msg = MemError::OutOfMemory { requested_words: 33 }.to_string();
        assert!(msg.contains("33"));
    }
}
