//! STAMP-style applications (paper §3.6).
//!
//! These reimplement the transactional structure of the STAMP suite's
//! applications — transaction lengths, read/write mixes, contention
//! levels, and data-structure footprints — on the simulated heap. The
//! paper evaluates Vacation (low and high contention), Intruder, Genome,
//! SSCA2 and Yada, and reports that Kmeans and Labyrinth behave like
//! SSCA2; all are included here.
//!
//! Unlike the original suite (fixed work, measured time-to-completion),
//! these workloads are *self-sustaining*: each operation draws from
//! regenerating work so a duration-driven harness can measure steady-state
//! throughput, which is what the paper's figures plot.

mod genome;
mod intruder;
mod kmeans;
mod labyrinth;
mod ssca2;
mod vacation;
mod yada;

pub use genome::{Genome, GenomeConfig};
pub use intruder::{Intruder, IntruderConfig};
pub use kmeans::{Kmeans, KmeansConfig};
pub use labyrinth::{Labyrinth, LabyrinthConfig};
pub use ssca2::{Ssca2, Ssca2Config};
pub use vacation::{Vacation, VacationConfig};
pub use yada::{Yada, YadaConfig};
