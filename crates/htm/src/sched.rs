//! Cooperative deterministic scheduling of virtual threads.
//!
//! HyTM bugs live in rare fast-path/slow-path interleavings that OS
//! scheduling almost never produces, and never reproduces. This module
//! makes the interleaving a *function of a `u64` seed*: test threads run
//! as real OS threads, but exactly one is runnable at a time, and every
//! context switch happens at an instrumented *yield point* (each
//! transactional op in [`HtmThread`](crate::HtmThread), every slow-path
//! global access in the TM algorithms). At each yield point the scheduler
//! picks the next runnable thread from a seeded RNG — so a failing seed
//! replays the exact interleaving — or from an explicit choice list, which
//! lets an explorer enumerate all interleavings up to a bounded depth.
//!
//! The scheduler also supports *seeded abort injection*: at each
//! transactional access it can force a capacity / conflict / spurious
//! abort, again as a pure function of the seed, so fallback-path
//! interleavings get explored too.
//!
//! Code under test does not take a scheduler handle; instrumented points
//! call the free functions [`yield_point`] and [`injected_abort`], which
//! consult a thread-local set only for threads spawned through
//! `run_threads`. Outside a controlled run both are no-ops, so
//! instrumented paths pay one thread-local read.
//!
//! The whole machinery is gated behind the `deterministic` cargo feature
//! (enabled by `tm-check` and the workspace test builds). Without the
//! feature only the hook functions remain, as empty `#[inline(always)]`
//! bodies the optimizer erases — release benchmark builds pay nothing,
//! not even the thread-local read.

/// An abort kind forced by the scheduler at a transactional access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InjectedAbort {
    /// A transient event (interrupt, TLB miss) killed the transaction.
    Spurious,
    /// The speculative footprint overflowed.
    Capacity,
    /// A (phantom) coherence conflict killed the transaction.
    Conflict,
}

#[cfg(feature = "deterministic")]
mod controlled {
    use super::InjectedAbort;

    use std::collections::VecDeque;
    use std::panic::AssertUnwindSafe;
    use std::sync::{Arc, Condvar, Mutex, MutexGuard};

    use crate::rng::XorShift64;

    /// A scheduling decision: which runnable thread was chosen, out of how
    /// many options. Only points with more than one option are recorded, so
    /// the log is exactly the information an explorer needs to enumerate
    /// alternative interleavings.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Decision {
        /// Index into the sorted list of runnable virtual threads.
        pub chosen: usize,
        /// How many virtual threads were runnable at this point.
        pub options: usize,
    }

    /// Configuration of one controlled run.
    #[derive(Clone, Debug)]
    pub struct SchedConfig {
        /// Seed determining the interleaving (and the injection stream).
        pub seed: u64,
        /// When set, scheduling choices come from this list instead of the
        /// seeded RNG: entry `i` is the choice at the `i`-th decision point
        /// (clamped to the number of options); past the end of the list,
        /// choices fall back to the seeded RNG — a fixed choice there could
        /// starve a descheduled lock holder behind a spinning thread. This is
        /// the replay/exploration mode.
        pub guided: Option<Vec<usize>>,
        /// Probability (per transactional access) of injecting an abort.
        pub abort_injection: f64,
        /// Hard bound on scheduling steps; exceeding it is a bug (livelock)
        /// and panics with the seed.
        pub step_cap: u64,
    }

    impl SchedConfig {
        /// A seeded random-schedule run with no abort injection.
        pub fn from_seed(seed: u64) -> Self {
            SchedConfig { seed, guided: None, abort_injection: 0.0, step_cap: 5_000_000 }
        }
    }

    /// What a controlled run observed.
    #[derive(Clone, Debug)]
    pub struct RunResult {
        /// Every decision point that had more than one option.
        pub decisions: Vec<Decision>,
        /// Total yield points passed (including single-option ones).
        pub steps: u64,
    }

    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    enum Status {
        NotAttached,
        Runnable,
        Finished,
    }

    enum Source {
        Random(XorShift64),
        Guided { choices: Vec<usize>, pos: usize, tail: XorShift64 },
    }

    struct State {
        status: Vec<Status>,
        attached: usize,
        /// The one virtual thread allowed to run, once all are attached.
        current: Option<usize>,
        source: Source,
        decisions: Vec<Decision>,
        steps: u64,
        step_cap: u64,
        seed: u64,
        inject_rng: XorShift64,
        abort_injection: f64,
        /// Set when a virtual thread panicked: all others unwind at their
        /// next yield point so the run terminates and reports the panic.
        poisoned: bool,
    }

    struct Inner {
        state: Mutex<State>,
        cv: Condvar,
    }

    /// Message carried by the unwind of threads killed by [`poison`]; the run
    /// harness recognizes it and reports the original panic instead.
    const POISON_MSG: &str = "deterministic scheduler poisoned by another thread's panic";

    impl Inner {
        fn lock(&self) -> MutexGuard<'_, State> {
            // Std mutex poisoning is not an error signal here: our own
            // `poisoned` flag handles panicked virtual threads.
            self.state.lock().unwrap_or_else(|e| e.into_inner())
        }

        fn attach(&self, vtid: usize) {
            let mut st = self.lock();
            assert_eq!(st.status[vtid], Status::NotAttached);
            st.status[vtid] = Status::Runnable;
            st.attached += 1;
            if st.attached == st.status.len() {
                let first = Self::pick(&mut st);
                st.current = first;
                self.cv.notify_all();
            }
            self.wait_for_turn(st, vtid);
        }

        /// Blocks until `vtid` is the current thread (or unwinds on poison).
        fn wait_for_turn(&self, mut st: MutexGuard<'_, State>, vtid: usize) {
            while st.current != Some(vtid) && !st.poisoned {
                st = self
                    .cv
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
            if st.poisoned && st.current != Some(vtid) {
                drop(st);
                std::panic::panic_any(POISON_MSG);
            }
        }

        /// Chooses the next runnable thread (None when all finished),
        /// recording the decision when there was a real choice.
        fn pick(st: &mut State) -> Option<usize> {
            let runnable: Vec<usize> = (0..st.status.len())
                .filter(|&i| st.status[i] == Status::Runnable)
                .collect();
            match runnable.len() {
                0 => None,
                1 => Some(runnable[0]),
                n => {
                    let chosen = match &mut st.source {
                        Source::Random(rng) => (rng.next_u64() % n as u64) as usize,
                        Source::Guided { choices, pos, tail } => {
                            let c = match choices.get(*pos) {
                                Some(&c) => c.min(n - 1),
                                None => (tail.next_u64() % n as u64) as usize,
                            };
                            *pos += 1;
                            c
                        }
                    };
                    st.decisions.push(Decision { chosen, options: n });
                    Some(runnable[chosen])
                }
            }
        }

        fn yield_now(&self, vtid: usize) {
            let mut st = self.lock();
            if st.poisoned {
                drop(st);
                std::panic::panic_any(POISON_MSG);
            }
            st.steps += 1;
            if st.steps > st.step_cap {
                let seed = st.seed;
                let cap = st.step_cap;
                st.poisoned = true;
                self.cv.notify_all();
                drop(st);
                panic!(
                    "deterministic schedule exceeded {cap} steps (livelock?); replay with seed {seed:#x}"
                );
            }
            let next = Self::pick(&mut st);
            if next != Some(vtid) {
                st.current = next;
                self.cv.notify_all();
                self.wait_for_turn(st, vtid);
            }
        }

        fn injected_abort(&self, _vtid: usize) -> Option<InjectedAbort> {
            let mut st = self.lock();
            let p = st.abort_injection;
            if p <= 0.0 || !st.inject_rng.bernoulli(p) {
                return None;
            }
            Some(match st.inject_rng.next_u64() % 3 {
                0 => InjectedAbort::Spurious,
                1 => InjectedAbort::Capacity,
                _ => InjectedAbort::Conflict,
            })
        }

        fn finish(&self, vtid: usize) {
            let mut st = self.lock();
            st.status[vtid] = Status::Finished;
            if st.current == Some(vtid) {
                st.current = Self::pick(&mut st);
            }
            self.cv.notify_all();
        }

        fn poison(&self, vtid: usize) {
            let mut st = self.lock();
            st.status[vtid] = Status::Finished;
            st.poisoned = true;
            st.current = None;
            self.cv.notify_all();
        }
    }

    thread_local! {
        static CURRENT: std::cell::RefCell<Option<(Arc<Inner>, usize)>> =
            const { std::cell::RefCell::new(None) };
    }

    /// A context switch may happen here. No-op outside a controlled run.
    ///
    /// Instrumented in every [`HtmThread`](crate::HtmThread) operation and at
    /// every slow-path global access in the TM algorithms; anything that
    /// spins must pass a yield point each iteration or a controlled run
    /// deadlocks (the step cap then reports the seed).
    #[inline]
    pub fn yield_point() {
        let ctx = CURRENT.with(|c| c.borrow().clone());
        if let Some((inner, vtid)) = ctx {
            inner.yield_now(vtid);
        }
    }

    /// Consults the run's seeded injection stream; `Some` directs the caller
    /// (the simulated HTM) to abort the current transaction with the given
    /// kind. Always `None` outside a controlled run.
    #[inline]
    pub fn injected_abort() -> Option<InjectedAbort> {
        let ctx = CURRENT.with(|c| c.borrow().clone());
        ctx.and_then(|(inner, vtid)| inner.injected_abort(vtid))
    }

    /// Whether the calling thread is running under a controlled schedule.
    #[inline]
    pub fn is_controlled() -> bool {
        CURRENT.with(|c| c.borrow().is_some())
    }

    /// Runs `bodies` as virtual threads under a fully deterministic schedule.
    ///
    /// Each closure runs on its own OS thread, but the scheduler gates them
    /// so exactly one makes progress at a time, context-switching only at
    /// yield points; virtual thread ids follow `bodies` order. The whole
    /// interleaving is a function of `config` — same config, same
    /// interleaving, instruction for instruction.
    ///
    /// Panics in a body propagate out of this call (other threads are
    /// unwound at their next yield point first).
    pub fn run_threads<F>(config: &SchedConfig, bodies: Vec<F>) -> RunResult
    where
        F: FnOnce() + Send,
    {
        let n = bodies.len();
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                status: vec![Status::NotAttached; n],
                attached: 0,
                current: None,
                source: match &config.guided {
                    Some(choices) => Source::Guided {
                        choices: choices.clone(),
                        pos: 0,
                        tail: XorShift64::new(config.seed),
                    },
                    None => Source::Random(XorShift64::new(config.seed)),
                },
                decisions: Vec::new(),
                steps: 0,
                step_cap: config.step_cap,
                seed: config.seed,
                inject_rng: XorShift64::new(config.seed ^ 0x000a_b047_1e57),
                abort_injection: config.abort_injection,
                poisoned: false,
            }),
            cv: Condvar::new(),
        });

        // (vtid, was_poison_unwind, payload) for every panicked body.
        type PanicRecord = (usize, bool, Box<dyn std::any::Any + Send>);
        let panics: Mutex<VecDeque<PanicRecord>> = Mutex::new(VecDeque::new());

        std::thread::scope(|s| {
            for (vtid, body) in bodies.into_iter().enumerate() {
                let inner = Arc::clone(&inner);
                let panics = &panics;
                s.spawn(move || {
                    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&inner), vtid)));
                    inner.attach(vtid);
                    let result = std::panic::catch_unwind(AssertUnwindSafe(body));
                    CURRENT.with(|c| *c.borrow_mut() = None);
                    match result {
                        Ok(()) => inner.finish(vtid),
                        Err(payload) => {
                            let is_poison = payload
                                .downcast_ref::<&str>()
                                .is_some_and(|m| *m == POISON_MSG);
                            panics
                                .lock()
                                .unwrap_or_else(|e| e.into_inner())
                                .push_back((vtid, is_poison, payload));
                            inner.poison(vtid);
                        }
                    }
                });
            }
        });

        let mut panics = panics.into_inner().unwrap_or_else(|e| e.into_inner());
        if let Some(at) = panics.iter().position(|&(_, poison, _)| !poison) {
            let (vtid, _, payload) = panics.remove(at).unwrap();
            eprintln!(
                "virtual thread {vtid} panicked under deterministic schedule; replay with seed {:#x}",
                config.seed
            );
            std::panic::resume_unwind(payload);
        }

        let st = inner.lock();
        RunResult { decisions: st.decisions.clone(), steps: st.steps }
    }

    /// [`run_threads`] with the default configuration for `seed` (random
    /// schedule, no abort injection).
    pub fn run_threads_seeded<F>(seed: u64, bodies: Vec<F>) -> RunResult
    where
        F: FnOnce() + Send,
    {
        run_threads(&SchedConfig::from_seed(seed), bodies)
    }

    impl std::fmt::Debug for Inner {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("sched::Inner").finish_non_exhaustive()
        }
    }
}

#[cfg(feature = "deterministic")]
pub use controlled::{
    injected_abort, is_controlled, run_threads, run_threads_seeded, yield_point, Decision,
    RunResult, SchedConfig,
};

/// A context switch may happen here. Compiled to nothing without the
/// `deterministic` feature.
#[cfg(not(feature = "deterministic"))]
#[inline(always)]
pub fn yield_point() {}

/// Consults the run's seeded abort-injection stream. Always `None`
/// without the `deterministic` feature.
#[cfg(not(feature = "deterministic"))]
#[inline(always)]
pub fn injected_abort() -> Option<InjectedAbort> {
    None
}

/// Whether the calling thread is running under a controlled schedule.
/// Always `false` without the `deterministic` feature.
#[cfg(not(feature = "deterministic"))]
#[inline(always)]
pub fn is_controlled() -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};

    /// Threads interleave at yield points; the order is a pure function
    /// of the seed.
    #[test]
    fn same_seed_same_interleaving() {
        let trace_for = |seed: u64| {
            let log = Arc::new(Mutex::new(Vec::new()));
            let bodies: Vec<_> = (0..3u64)
                .map(|tid| {
                    let log = Arc::clone(&log);
                    move || {
                        for step in 0..5u64 {
                            yield_point();
                            log.lock().unwrap().push((tid, step));
                        }
                    }
                })
                .collect();
            run_threads_seeded(seed, bodies);
            Arc::try_unwrap(log).unwrap().into_inner().unwrap()
        };
        let a = trace_for(42);
        let b = trace_for(42);
        assert_eq!(a, b, "same seed must give the identical interleaving");
        let c = trace_for(43);
        assert_ne!(a, c, "different seeds should (here) give different interleavings");
    }

    /// The decision log replayed through guided mode reproduces the run.
    #[test]
    fn guided_replay_matches_random_run() {
        let run = |config: &SchedConfig| {
            let log = Arc::new(Mutex::new(Vec::new()));
            let bodies: Vec<_> = (0..3u64)
                .map(|tid| {
                    let log = Arc::clone(&log);
                    move || {
                        for step in 0..4u64 {
                            yield_point();
                            log.lock().unwrap().push((tid, step));
                        }
                    }
                })
                .collect();
            let result = run_threads(config, bodies);
            (result, Arc::try_unwrap(log).unwrap().into_inner().unwrap())
        };
        let (random_result, random_log) = run(&SchedConfig::from_seed(7));
        let choices = random_result.decisions.iter().map(|d| d.chosen).collect();
        let (guided_result, guided_log) =
            run(&SchedConfig { guided: Some(choices), ..SchedConfig::from_seed(7) });
        assert_eq!(random_log, guided_log);
        assert_eq!(random_result.decisions, guided_result.decisions);
    }

    /// Unsynchronized read-modify-write under the scheduler: some seed
    /// loses an update (proving interleavings actually vary), and any
    /// losing seed loses identically on replay.
    #[test]
    fn scheduler_exposes_lost_updates_deterministically() {
        let run = |seed: u64| {
            let counter = Arc::new(AtomicU64::new(0));
            let bodies: Vec<_> = (0..2)
                .map(|_| {
                    let counter = Arc::clone(&counter);
                    move || {
                        for _ in 0..4 {
                            yield_point();
                            let v = counter.load(Ordering::Relaxed);
                            yield_point();
                            counter.store(v + 1, Ordering::Relaxed);
                        }
                    }
                })
                .collect();
            run_threads_seeded(seed, bodies);
            counter.load(Ordering::Relaxed)
        };
        let results: Vec<u64> = (0..64).map(run).collect();
        assert!(results.iter().any(|&r| r < 8), "no seed lost an update: {results:?}");
        assert!(results.contains(&8), "no seed was loss-free: {results:?}");
        for (seed, &r) in results.iter().enumerate() {
            assert_eq!(run(seed as u64), r, "seed {seed} not deterministic");
        }
    }

    /// A panicking virtual thread propagates its panic out of the run
    /// and unwinds the others.
    #[test]
    fn body_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            run_threads_seeded(
                1,
                vec![
                    Box::new(|| {
                        yield_point();
                        panic!("boom from body");
                    }) as Box<dyn FnOnce() + Send>,
                    Box::new(|| loop {
                        yield_point();
                    }),
                ],
            );
        });
        let payload = result.unwrap_err();
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "boom from body");
    }

    /// The step cap converts livelock into a seeded panic.
    #[test]
    fn step_cap_panics_with_seed() {
        let result = std::panic::catch_unwind(|| {
            run_threads(
                &SchedConfig { step_cap: 100, ..SchedConfig::from_seed(0xdead) },
                vec![
                    || loop {
                        yield_point();
                    },
                    || loop {
                        yield_point();
                    },
                ],
            );
        });
        let payload = result.unwrap_err();
        let msg = payload.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("0xdead"), "step-cap panic must name the seed: {msg}");
    }

    /// Injection draws come from the seed: same seed, same stream.
    #[test]
    fn abort_injection_is_deterministic() {
        let draws_for = |seed: u64| {
            let log = Arc::new(Mutex::new(Vec::new()));
            let bodies: Vec<_> = (0..2)
                .map(|_| {
                    let log = Arc::clone(&log);
                    move || {
                        for _ in 0..20 {
                            yield_point();
                            log.lock().unwrap().push(injected_abort());
                        }
                    }
                })
                .collect();
            run_threads(
                &SchedConfig { abort_injection: 0.3, ..SchedConfig::from_seed(seed) },
                bodies,
            );
            Arc::try_unwrap(log).unwrap().into_inner().unwrap()
        };
        let a = draws_for(5);
        assert_eq!(a, draws_for(5));
        assert!(a.iter().any(Option::is_some), "0.3 injection rate drew nothing in 40 tries");
        assert!(a.iter().any(Option::is_none));
    }

    /// Outside a controlled run the hooks are inert.
    #[test]
    fn hooks_are_noops_outside_runs() {
        assert!(!is_controlled());
        yield_point();
        assert_eq!(injected_abort(), None);
    }
}
