//! `rh-bench ablate --policy`: the adaptive-vs-static policy grid.
//!
//! BENCH_4 showed that no single static clock setting wins everywhere:
//! `clock_shards = 4` removes the commit-clock metadata conflicts that
//! dominate the disjoint contended cells (~66% on `contended_disjoint`)
//! but taxes every software validation with extra lane reads. The
//! adaptive policy layer (`rh_norec::PolicyConfig`) is supposed to
//! resolve that tension at runtime — this grid measures whether it does.
//!
//! Four sentinel cells, all on RH NOrec (the paper's engine), all
//! reporting *modeled* ns/tx (summed cycle budget over
//! [`rh_norec::cost::MODEL_HZ`]) so the grid is a property of the
//! protocol, not of CI host load:
//!
//! * `contended` — 4 threads incrementing one shared word, HTM
//!   disabled: the software slow path under real data contention, where
//!   extra clock lanes are pure tax and the backoff window matters,
//! * `contended_disjoint` — 4 threads on private line-padded words with
//!   the fallback counter pinned (HTM on): no data is shared, so every
//!   conflict is commit-clock metadata — the cell sharding exists for,
//! * `contended_sharded` — the same disjoint workload at 8 threads:
//!   more lanes wanted, stronger version of the same signal,
//! * `write_heavy` — one thread, 16 writes over 4 addresses, HTM
//!   disabled: the uncontended software baseline; any adaptive overhead
//!   shows up here undiluted.
//!
//! Three configurations per cell: `static1` (`clock_shards = 1`, policy
//! off), `static4` (`clock_shards = 4`, policy off), and `adaptive`
//! (`clock_shards = 4` with every controller on). `static1` wins
//! `contended`, `static4` wins `contended_disjoint` — the acceptance
//! question is whether `adaptive` tracks the winner on both.

use std::sync::Arc;

use rh_norec::{Algorithm, PolicyConfig, TmConfig, TmRuntime, TxKind};
use sim_htm::{Htm, HtmConfig};
use sim_mem::{Addr, Heap, HeapConfig, WORDS_PER_LINE};

use crate::figures::Scale;
use crate::ledger;
use crate::service::{self, ServiceArgs};

/// Which side(s) of the grid `ablate --policy` runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PolicyChoice {
    /// Only the two static configurations.
    Static,
    /// Only the adaptive configuration.
    Adaptive,
    /// The full grid plus the BENCH_8 ledger write.
    All,
}

impl PolicyChoice {
    /// Parses the `--policy` flag value.
    pub fn parse(s: &str) -> Option<PolicyChoice> {
        match s {
            "static" => Some(PolicyChoice::Static),
            "adaptive" => Some(PolicyChoice::Adaptive),
            "all" => Some(PolicyChoice::All),
            _ => None,
        }
    }
}

/// Transaction body shape of one sentinel cell.
#[derive(Clone, Copy, Debug)]
enum Body {
    /// Read-modify-write increment of one word.
    Incr,
    /// 16 blind writes cycling over 4 addresses.
    WriteHeavy,
}

/// One sentinel cell of the grid.
struct GridCell {
    name: &'static str,
    threads: usize,
    htm: bool,
    /// Private line-padded word per thread instead of one shared word.
    disjoint: bool,
    /// Pin `num_of_fallbacks` so hardware commits run their clock bump.
    pin_fallback: bool,
    body: Body,
}

const CELLS: &[GridCell] = &[
    GridCell {
        name: "contended",
        threads: 4,
        htm: false,
        disjoint: false,
        pin_fallback: false,
        body: Body::Incr,
    },
    GridCell {
        name: "contended_disjoint",
        threads: 4,
        htm: true,
        disjoint: true,
        pin_fallback: true,
        body: Body::Incr,
    },
    GridCell {
        name: "contended_sharded",
        threads: 8,
        htm: true,
        disjoint: true,
        pin_fallback: true,
        body: Body::Incr,
    },
    GridCell {
        name: "write_heavy",
        threads: 1,
        htm: false,
        disjoint: false,
        pin_fallback: false,
        body: Body::WriteHeavy,
    },
];

/// One engine configuration of the grid.
#[derive(Clone, Copy, Debug)]
pub struct GridConfig {
    /// Configuration label (`static1` / `static4` / `adaptive`).
    pub name: &'static str,
    /// `TmConfig::clock_shards`.
    pub shards: u32,
    /// Arms [`PolicyConfig::adaptive`].
    pub adaptive: bool,
}

/// The three configurations the grid compares.
pub const CONFIGS: &[GridConfig] = &[
    GridConfig { name: "static1", shards: 1, adaptive: false },
    GridConfig { name: "static4", shards: 4, adaptive: false },
    GridConfig { name: "adaptive", shards: 4, adaptive: true },
];

/// One measured grid cell.
#[derive(Clone, Debug)]
pub struct GridRow {
    /// Sentinel cell name.
    pub cell: &'static str,
    /// Configuration label.
    pub config: &'static str,
    /// Transactions measured.
    pub txs: u64,
    /// Modeled nanoseconds per transaction.
    pub ns_per_tx: f64,
}

fn txs_per_thread(scale: Scale) -> u64 {
    match scale {
        Scale::Quick => 4_000,
        Scale::Paper => 25_000,
    }
}

fn run_grid_cell(cell: &GridCell, config: &GridConfig, scale: Scale) -> GridRow {
    let heap = Arc::new(Heap::new(HeapConfig { words: 1 << 16 }));
    let htm_cfg = if cell.htm { HtmConfig::default() } else { HtmConfig::disabled() };
    let htm = Htm::new(Arc::clone(&heap), htm_cfg);
    let mut builder = TmConfig::builder(Algorithm::RhNorec)
        .clock_shards(config.shards)
        .interleave_accesses(u32::from(cell.threads > 1));
    if config.adaptive {
        builder = builder.policy(PolicyConfig::adaptive());
    }
    let tm_cfg = builder.build().expect("policy grid TM configuration rejected");
    let rt = TmRuntime::new(Arc::clone(&heap), htm, tm_cfg)
        .expect("policy grid runtime construction cannot fail");

    let alloc = heap.allocator();
    // Line-padded cells: the simulated HTM conflicts at line granularity,
    // and data false sharing would mask the clock-metadata effect.
    let cells: Vec<Addr> = if cell.disjoint {
        (0..cell.threads)
            .map(|_| alloc.alloc(0, WORDS_PER_LINE).expect("policy grid heap too small"))
            .collect()
    } else {
        vec![alloc.alloc(0, WORDS_PER_LINE).expect("policy grid heap too small")]
    };
    if cell.pin_fallback {
        // With the counter at 0 hardware commits skip the clock bump
        // entirely and the cell would measure nothing (see BENCH_4).
        heap.store(rt.globals().num_of_fallbacks, 1);
    }

    let per_thread = txs_per_thread(scale);
    let body = cell.body;
    let reports: Vec<rh_norec::ThreadReport> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..cell.threads)
            .map(|tid| {
                let rt = Arc::clone(&rt);
                let target = cells[tid % cells.len()];
                s.spawn(move || {
                    let mut worker = rt.open_session().expect("free worker slot");
                    for _ in 0..per_thread {
                        match body {
                            Body::Incr => {
                                worker.execute(TxKind::ReadWrite, |tx| {
                                    let v = tx.read(target)?;
                                    tx.write(target, v.wrapping_add(1))
                                });
                            }
                            Body::WriteHeavy => {
                                worker.execute(TxKind::ReadWrite, |tx| {
                                    for i in 0..16u64 {
                                        tx.write(target.offset(i & 3), i)?;
                                    }
                                    Ok(())
                                });
                            }
                        }
                    }
                    worker.report()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("policy grid worker panicked"))
            .collect()
    });

    let txs = per_thread * cell.threads as u64;
    if matches!(cell.body, Body::Incr) {
        for target in &cells {
            let expected = if cell.disjoint { per_thread } else { txs };
            assert_eq!(
                heap.load(*target),
                expected,
                "{}/{}: lost updates",
                cell.name,
                config.name
            );
        }
    }
    // Modeled cost: every attempt's body, abort penalty, retry, backoff
    // spin, and lane validation at the simulator's published costs.
    let cycles: u64 = reports.iter().map(|r| r.tm.cycles).sum();
    let ns_per_tx = cycles as f64 / txs as f64 / rh_norec::cost::MODEL_HZ * 1e9;
    GridRow { cell: cell.name, config: config.name, txs, ns_per_tx }
}

/// Runs the grid (filtered by `choice`) and returns its rows in
/// cell-major order.
pub fn run_grid(scale: Scale, choice: PolicyChoice) -> Vec<GridRow> {
    let configs: Vec<&GridConfig> = CONFIGS
        .iter()
        .filter(|c| match choice {
            PolicyChoice::Static => !c.adaptive,
            PolicyChoice::Adaptive => c.adaptive,
            PolicyChoice::All => true,
        })
        .collect();
    let mut rows = Vec::new();
    for cell in CELLS {
        for config in &configs {
            rows.push(run_grid_cell(cell, config, scale));
        }
    }
    rows
}

/// Prints the grid and, when both sides ran, the adaptive-vs-static
/// verdict per cell.
pub fn print_grid(rows: &[GridRow], csv: bool) {
    if csv {
        println!("cell,config,txs,ns_per_tx");
        for r in rows {
            println!("{},{},{},{:.2}", r.cell, r.config, r.txs, r.ns_per_tx);
        }
        return;
    }
    println!("policy grid: RH NOrec, modeled ns/tx (cycle budget at MODEL_HZ)");
    println!("{:<20} {:<10} {:>10} {:>12}", "cell", "config", "txs", "ns/tx");
    for r in rows {
        println!("{:<20} {:<10} {:>10} {:>12.2}", r.cell, r.config, r.txs, r.ns_per_tx);
    }
    // The verdict only makes sense when the full grid ran.
    for cell in CELLS {
        let find = |config: &str| {
            rows.iter()
                .find(|r| r.cell == cell.name && r.config == config)
                .map(|r| r.ns_per_tx)
        };
        let (Some(s1), Some(s4), Some(ad)) =
            (find("static1"), find("static4"), find("adaptive"))
        else {
            continue;
        };
        let best = s1.min(s4);
        println!(
            "{:<20} adaptive vs best-static {:+.1}%  vs static1 {:+.1}%  vs static4 {:+.1}%",
            cell.name,
            (ad - best) / best * 100.0,
            (ad - s1) / s1 * 100.0,
            (ad - s4) / s4 * 100.0,
        );
    }
}

/// Grid rows in the shared ledger's emission shape: `algorithm` is the
/// engine label, `scenario` is `cell@config` so the policy rows never
/// collide with the overhead matrix's plain cell names.
pub fn ledger_rows(rows: &[GridRow]) -> Vec<(String, String, f64, Option<u64>)> {
    rows.iter()
        .map(|r| {
            (
                Algorithm::RhNorec.label().to_string(),
                format!("{}@{}", r.cell, r.config),
                r.ns_per_tx,
                Some(r.txs),
            )
        })
        .collect()
}

/// CLI entry for `ablate --policy`: runs the grid (filtered by
/// `choice`) and prints it; with [`PolicyChoice::All`], additionally
/// re-measures the overhead matrix and the service tier (static and
/// adaptive) and writes the assembled `BENCH_8.json`.
pub fn run(scale: Scale, choice: PolicyChoice, csv: bool, service_args: &ServiceArgs) {
    let grid = run_grid(scale, choice);
    print_grid(&grid, csv);
    if choice != PolicyChoice::All {
        return;
    }

    eprintln!("bench8: re-measuring the overhead matrix (BENCH_4 keys)...");
    let overhead_rows = crate::overhead::run_matrix_best_of(scale, 1);
    eprintln!("bench8: re-measuring the service tier (BENCH_7 keys)...");
    let static_service = service::collect(&ServiceArgs { policy: false, ..*service_args });
    eprintln!("bench8: measuring the adaptive service cell...");
    let adaptive_service = service::collect(&ServiceArgs {
        policy: true,
        engine: Some(Algorithm::RhNorec),
        ..*service_args
    });

    let mut rows: Vec<(String, String, f64, Option<u64>)> = Vec::new();
    for r in &overhead_rows {
        rows.push((r.algorithm.to_string(), r.scenario.to_string(), r.ns_per_tx, Some(r.txs)));
    }
    for (alg, scenario, ns) in static_service.iter().chain(&adaptive_service) {
        rows.push((alg.clone(), scenario.clone(), *ns, None));
    }
    rows.extend(ledger_rows(&grid));

    let json = bench8_json(&rows);
    let path = "BENCH_8.json";
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// Serializes the complete BENCH_8 document: the policy grid, a fresh
/// overhead matrix (same `(algorithm, scenario)` keys as BENCH_4's
/// `current` rows, so `rh-bench diff BENCH_4.json BENCH_8.json` joins
/// every overhead cell), and the service-tier rows (same keys as
/// BENCH_7, plus the `@adaptive` cell).
pub fn bench8_json(rows: &[(String, String, f64, Option<u64>)]) -> String {
    let ledger_rows: Vec<Vec<(&str, ledger::Value)>> = rows
        .iter()
        .map(|(alg, scenario, ns, txs)| {
            let mut row = vec![
                ("algorithm", ledger::Value::Str(alg.clone())),
                ("scenario", ledger::Value::Str(scenario.clone())),
                ("ns_per_tx", ledger::Value::Num(*ns, 2)),
            ];
            if let Some(txs) = txs {
                row.push(("txs", ledger::Value::Int(*txs)));
            }
            row
        })
        .collect();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"policy\",\n");
    out.push_str(
        "  \"description\": \"adaptive policy layer ledger: the overhead matrix rows \
         (keys shared with BENCH_4) and the service-tier percentile rows (keys shared \
         with BENCH_7) re-measured on the policy-capable engine with the policy off, \
         plus the RH NOrec policy grid (scenario cell@config, modeled ns/tx, configs \
         static1 / static4 / adaptive) and the service @adaptive cell\",\n",
    );
    out.push_str(&format!(
        "  \"instrumentation_compiled\": {},\n",
        rh_norec::INSTRUMENTED
    ));
    out.push_str("  \"current\": {\n");
    out.push_str(
        "    \"engine\": \"sharded commit clock + adaptive policy layer (default off; \
         policy rows label their configuration)\",\n",
    );
    out.push_str("    \"rows\": ");
    out.push_str(&ledger::rows_array(&ledger_rows, "      ", "    "));
    out.push_str("\n  }\n");
    out.push_str("}\n");
    out
}
