//! The all-software NOrec STM of Dalessandro, Spear and Scott, in the two
//! variants the paper evaluates (§3.1):
//!
//! * **eager** (the paper's default): no read- or write-set logging. A
//!   transaction reads the global clock at start; every read re-checks the
//!   clock and restarts if it moved; the first write locks the clock and
//!   subsequent writes go straight to memory. "For the low concurrency in
//!   our benchmarks, the eager NOrec design delivers better performance."
//! * **lazy** (the classic NOrec, kept as an ablation): value-based
//!   read-set revalidation instead of restarts, and a write set that is
//!   published at commit under the clock lock.
//!
//! Both are also the software halves of the hybrid algorithms; the hybrid
//! modules add their own coordination on top rather than reusing these
//! entry points, keeping each algorithm readable on its own.

use sim_mem::{Addr, Heap};

use crate::algorithms::common::Meter;
use crate::cost;
use crate::error::{TxFault, TxResult, RESTART};
use crate::globals::{clock, Globals};
use crate::runtime::TmThread;
use crate::trace;
use crate::tx::{Tx, TxCtx, TxMem, TxOps};
use crate::txlog::{Backoff, LogVec, WriteSet};
use crate::TxKind;

pub(crate) fn run_eager<T>(
    t: &mut TmThread,
    kind: TxKind,
    body: &mut dyn FnMut(&mut Tx<'_>) -> TxResult<T>,
) -> Result<T, TxFault> {
    let rt = t.rt.clone();
    let heap: &Heap = rt.heap();
    let globals = *rt.globals();
    let interleave = rt.config().interleave_accesses;
    t.stats.slow_path_entries += 1;
    loop {
        trace::begin(trace::Path::Stm);
        let mut spin = cost::STM_START;
        let tx_version = read_clock_unlocked(heap, &globals, &mut spin, &mut t.backoff);
        let mut ctx = EagerCtx {
            heap,
            globals,
            mem: &mut t.mem,
            tid: t.tid,
            tx_version,
            wrote: false,
            dead: false,
            set_htm_lock: false,
            htm_lock_set: false,
            meter: Meter::new(interleave),
        };
        ctx.meter.charge(spin);
        let mut tx = Tx::new(TxCtx::Eager(ctx), kind);
        let outcome = body(&mut tx);
        let (ctx, fault) = tx.into_parts();
        let TxCtx::Eager(mut ctx) = ctx else { unreachable!() };
        if let Some(fault) = fault {
            // The fault precedes the first write, so the clock is not
            // locked and no store has landed: nothing to undo but TxMem.
            debug_assert!(!ctx.wrote);
            trace::abort();
            t.stats.cycles += ctx.meter.cycles;
            t.mem.rollback(heap, t.tid);
            return Err(fault);
        }
        match outcome {
            Ok(value) => {
                ctx.commit();
                trace::commit(trace::Path::Stm);
                t.stats.cycles += ctx.meter.cycles;
                t.mem.commit(heap, t.tid);
                t.stats.slow_path_commits += 1;
                return Ok(value);
            }
            Err(_) => {
                debug_assert!(ctx.dead, "body restarted without a validation failure");
                trace::abort();
                t.stats.cycles += ctx.meter.cycles;
                t.mem.rollback(heap, t.tid);
                t.stats.slow_path_restarts += 1;
            }
        }
    }
}

/// Spins until the global clock is unlocked and returns its value,
/// charging the waiter's cycles. Contended waits back off between probes
/// so the clock holder's release is not met by a thundering herd.
///
/// The uncontended probe is the first instruction of every NOrec-family
/// transaction, so it stays inline; the contended spin is kept out of
/// line to keep the hot path small.
#[inline]
pub(crate) fn read_clock_unlocked(
    heap: &Heap,
    globals: &Globals,
    cycles: &mut u64,
    backoff: &mut Backoff,
) -> u64 {
    // Yield before each probe (not only when locked): the lock holder
    // may be descheduled, and under the deterministic scheduler it can
    // only run again if the spinner passes a yield point.
    sim_htm::sched::yield_point();
    let v = heap.load(globals.global_clock);
    if !clock::is_locked(v) {
        return v;
    }
    read_clock_contended(heap, globals, cycles, backoff)
}

#[cold]
fn read_clock_contended(
    heap: &Heap,
    globals: &Globals,
    cycles: &mut u64,
    backoff: &mut Backoff,
) -> u64 {
    let mut attempt = 0;
    loop {
        *cycles += cost::SPIN_ITER;
        backoff.pause(attempt, cycles);
        attempt += 1;
        sim_htm::sched::yield_point();
        let v = heap.load(globals.global_clock);
        if !clock::is_locked(v) {
            return v;
        }
    }
}

/// The eager NOrec transaction context. Shared with the hybrid slow paths
/// via the `set_htm_lock` flag (Hybrid NOrec raises the global HTM lock at
/// the first write; standalone NOrec has no hardware to notify).
pub(crate) struct EagerCtx<'a> {
    pub(crate) heap: &'a Heap,
    pub(crate) globals: Globals,
    pub(crate) mem: &'a mut TxMem,
    pub(crate) tid: usize,
    pub(crate) tx_version: u64,
    pub(crate) wrote: bool,
    pub(crate) dead: bool,
    /// Raise `global_htm_lock` around the write phase (hybrid slow paths).
    pub(crate) set_htm_lock: bool,
    pub(crate) htm_lock_set: bool,
    pub(crate) meter: Meter,
}

impl EagerCtx<'_> {
    /// First-write protocol: lock the global clock (CAS from our start
    /// version), optionally raise the global HTM lock.
    pub(crate) fn handle_first_write(&mut self) -> TxResult<()> {
        debug_assert!(!self.wrote);
        self.meter.charge(cost::GLOBAL_RMW);
        if self
            .heap
            .compare_exchange(
                self.globals.global_clock,
                self.tx_version,
                clock::set_lock_bit(self.tx_version),
            )
            .is_err()
        {
            self.dead = true;
            return Err(RESTART);
        }
        self.tx_version = clock::set_lock_bit(self.tx_version);
        self.wrote = true;
        if self.set_htm_lock {
            self.meter.charge(cost::GLOBAL_STORE);
            self.heap.store(self.globals.global_htm_lock, 1);
            self.htm_lock_set = true;
        }
        Ok(())
    }

    /// Commit: writers release the HTM lock (if raised) and publish a new
    /// clock version; read-only transactions have nothing to do (every
    /// read was individually validated against an unmoved clock).
    pub(crate) fn commit(&mut self) {
        if self.wrote {
            if self.htm_lock_set {
                self.meter.charge(cost::GLOBAL_STORE);
                self.heap.store(self.globals.global_htm_lock, 0);
                self.htm_lock_set = false;
            }
            self.meter.charge(cost::GLOBAL_STORE);
            self.heap
                .store(self.globals.global_clock, clock::next_version(self.tx_version));
        }
    }
}

impl TxOps for EagerCtx<'_> {
    fn read(&mut self, addr: Addr) -> TxResult<u64> {
        if self.dead {
            return Err(RESTART);
        }
        self.meter.tick(cost::NOREC_READ);
        let value = self.heap.load(addr);
        // After the first write we hold the clock lock, so the check is
        // trivially true and skipped.
        if !self.wrote && self.heap.load(self.globals.global_clock) != self.tx_version {
            self.dead = true;
            return Err(RESTART);
        }
        Ok(value)
    }

    fn write(&mut self, addr: Addr, value: u64) -> TxResult<()> {
        if self.dead {
            return Err(RESTART);
        }
        if !self.wrote {
            self.handle_first_write()?;
        }
        self.meter.tick(cost::NOREC_WRITE);
        self.heap.store(addr, value);
        Ok(())
    }

    fn alloc(&mut self, words: u64) -> TxResult<Addr> {
        if self.dead {
            return Err(RESTART);
        }
        self.meter.charge(cost::ALLOC);
        Ok(self.mem.alloc(self.heap, self.tid, words))
    }

    fn free(&mut self, addr: Addr) -> TxResult<()> {
        if self.dead {
            return Err(RESTART);
        }
        self.meter.charge(cost::FREE);
        self.mem.free(addr);
        Ok(())
    }
}

pub(crate) fn run_lazy<T>(
    t: &mut TmThread,
    kind: TxKind,
    body: &mut dyn FnMut(&mut Tx<'_>) -> TxResult<T>,
) -> Result<T, TxFault> {
    let rt = t.rt.clone();
    let heap: &Heap = rt.heap();
    let globals = *rt.globals();
    let interleave = rt.config().interleave_accesses;
    t.stats.slow_path_entries += 1;
    loop {
        trace::begin(trace::Path::Stm);
        let mut spin = cost::STM_START;
        let tx_version = read_clock_unlocked(heap, &globals, &mut spin, &mut t.backoff);
        // Recycled arenas: clearing keeps their allocations warm, so a
        // retry (or the next transaction) logs into already-sized buffers.
        t.logs.read_log.clear();
        t.logs.write_set.clear();
        let mut ctx = LazyCtx {
            heap,
            globals,
            mem: &mut t.mem,
            tid: t.tid,
            tx_version,
            read_log: &mut t.logs.read_log,
            write_set: &mut t.logs.write_set,
            backoff: &mut t.backoff,
            dead: false,
            set_htm_lock: false,
            meter: Meter::new(interleave),
        };
        ctx.meter.charge(spin);
        let mut tx = Tx::new(TxCtx::Lazy(ctx), kind);
        let outcome = body(&mut tx);
        let (ctx, fault) = tx.into_parts();
        let TxCtx::Lazy(mut ctx) = ctx else { unreachable!() };
        if let Some(fault) = fault {
            // Writes are buffered and the refused one was never logged;
            // discarding the context is the whole teardown.
            debug_assert!(ctx.write_set.is_empty());
            trace::abort();
            t.stats.cycles += ctx.meter.cycles;
            t.mem.rollback(heap, t.tid);
            return Err(fault);
        }
        match outcome {
            Ok(value) => {
                if ctx.commit().is_ok() {
                    trace::commit(trace::Path::Stm);
                    t.stats.cycles += ctx.meter.cycles;
                    t.mem.commit(heap, t.tid);
                    t.stats.slow_path_commits += 1;
                    return Ok(value);
                }
                trace::abort();
                t.stats.cycles += ctx.meter.cycles;
                t.mem.rollback(heap, t.tid);
                t.stats.slow_path_restarts += 1;
            }
            Err(_) => {
                trace::abort();
                t.stats.cycles += ctx.meter.cycles;
                t.mem.rollback(heap, t.tid);
                t.stats.slow_path_restarts += 1;
            }
        }
    }
}

/// The classic lazy NOrec context: value-logged reads, buffered writes.
///
/// Both logs are borrowed from the thread's recycled arenas (cleared by
/// the caller before each attempt), so a retry allocates nothing. The
/// write-set coalesces repeated writes to one address and answers
/// read-after-write in O(1); commit writes back one store per distinct
/// address.
pub(crate) struct LazyCtx<'a> {
    pub(crate) heap: &'a Heap,
    pub(crate) globals: Globals,
    pub(crate) mem: &'a mut TxMem,
    pub(crate) tid: usize,
    pub(crate) tx_version: u64,
    pub(crate) read_log: &'a mut LogVec<(Addr, u64)>,
    pub(crate) write_set: &'a mut WriteSet,
    pub(crate) backoff: &'a mut Backoff,
    pub(crate) dead: bool,
    /// Raise `global_htm_lock` around the commit write-back (hybrid lazy
    /// slow path): hardware fast paths must never see a partial write-back.
    pub(crate) set_htm_lock: bool,
    pub(crate) meter: Meter,
}

impl LazyCtx<'_> {
    /// NOrec's value-based revalidation: loop until the clock is stable
    /// around a full re-read of the read log.
    fn revalidate(&mut self) -> TxResult<()> {
        loop {
            let mut spin = 0;
            let version = read_clock_unlocked(self.heap, &self.globals, &mut spin, self.backoff);
            self.meter
                .charge(spin + self.read_log.len() as u64 * cost::NOREC_REVALIDATE_ENTRY);
            for &(addr, seen) in self.read_log.as_slice() {
                if self.heap.load(addr) != seen {
                    self.dead = true;
                    return Err(RESTART);
                }
            }
            if self.heap.load(self.globals.global_clock) == version {
                self.tx_version = version;
                return Ok(());
            }
        }
    }

    pub(crate) fn commit(&mut self) -> TxResult<()> {
        if self.write_set.is_empty() {
            return Ok(());
        }
        // Lock the clock at our validated version, revalidating as needed.
        let mut attempt = 0;
        loop {
            self.meter.charge(cost::GLOBAL_RMW);
            if self
                .heap
                .compare_exchange(
                    self.globals.global_clock,
                    self.tx_version,
                    clock::set_lock_bit(self.tx_version),
                )
                .is_ok()
            {
                break;
            }
            self.revalidate()?;
            // The CAS lost to a competing committer: pause before retrying
            // so its release is not immediately re-contended.
            let mut spin = 0;
            self.backoff.pause(attempt, &mut spin);
            self.meter.charge(spin);
            attempt += 1;
        }
        self.meter.charge(
            self.write_set.len() as u64 * cost::NOREC_WRITEBACK_ENTRY + cost::GLOBAL_STORE,
        );
        if self.set_htm_lock {
            self.meter.charge(cost::GLOBAL_STORE);
            self.heap.store(self.globals.global_htm_lock, 1);
        }
        for (addr, value) in self.write_set.iter() {
            self.heap.store(addr, value);
        }
        if self.set_htm_lock {
            self.meter.charge(cost::GLOBAL_STORE);
            self.heap.store(self.globals.global_htm_lock, 0);
        }
        self.heap.store(
            self.globals.global_clock,
            clock::next_version(self.tx_version),
        );
        Ok(())
    }
}

impl TxOps for LazyCtx<'_> {
    fn read(&mut self, addr: Addr) -> TxResult<u64> {
        if self.dead {
            return Err(RESTART);
        }
        self.meter.tick(cost::NOREC_LAZY_READ);
        if let Some(v) = self.write_set.lookup(addr) {
            return Ok(v);
        }
        let mut value = self.heap.load(addr);
        // Re-validate until the clock is quiescent around the read.
        while self.heap.load(self.globals.global_clock) != self.tx_version {
            self.revalidate()?;
            value = self.heap.load(addr);
        }
        self.read_log.push((addr, value));
        Ok(value)
    }

    fn write(&mut self, addr: Addr, value: u64) -> TxResult<()> {
        if self.dead {
            return Err(RESTART);
        }
        self.meter.tick(cost::NOREC_LAZY_WRITE);
        self.write_set.insert(addr, value);
        Ok(())
    }

    fn alloc(&mut self, words: u64) -> TxResult<Addr> {
        if self.dead {
            return Err(RESTART);
        }
        self.meter.charge(cost::ALLOC);
        Ok(self.mem.alloc(self.heap, self.tid, words))
    }

    fn free(&mut self, addr: Addr) -> TxResult<()> {
        if self.dead {
            return Err(RESTART);
        }
        self.meter.charge(cost::FREE);
        self.mem.free(addr);
        Ok(())
    }
}
