//! The combined oracle: one judgement over both safety properties, with a
//! minimal-offending-prefix diagnosis on failure.
//!
//! [`judge`] runs the opacity and strict-serializability checkers over one
//! recorded history. A passing history yields a [`Judgement`] with both
//! summaries; a failing one yields a [`Verdict`] naming **which properties
//! failed** (opacity alone ⇒ zombie reads only; both ⇒ committed results
//! are wrong) and the length of the shortest failing event prefix, found
//! by bisection — the offending interaction usually sits hundreds of
//! events before the end of a sweep history, and the prefix length points
//! straight at it.

use std::collections::HashMap;
use std::fmt;

use rh_norec::trace::Event;

use crate::history::check_history;
pub use crate::history::{Property, Summary, Violation};

/// Both oracles' statistics for a passing history.
#[derive(Debug, Clone, Copy)]
pub struct Judgement {
    /// What the opacity oracle verified.
    pub opacity: Summary,
    /// What the strict-serializability oracle verified.
    pub serializability: Summary,
}

/// The diagnosis of a failing history: which properties broke and where.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// One violation per failed property; opacity (the stronger rung)
    /// first when both failed. Never empty.
    pub failures: Vec<Violation>,
    /// Length of the shortest failing prefix of the checked history,
    /// found by bisection and verified: `history[..minimal_prefix]` fails
    /// at least one of the failed properties.
    pub minimal_prefix: usize,
    /// Total events in the checked history.
    pub history_len: usize,
}

impl Verdict {
    /// The strongest failed property's diagnosis.
    pub fn primary(&self) -> &Violation {
        &self.failures[0]
    }

    /// Whether `property` is among the failed properties.
    pub fn failed(&self, property: Property) -> bool {
        self.failures.iter().any(|v| v.property == property)
    }

    /// `+`-joined names of the failed properties (e.g.
    /// `opacity+serializability`), for kill tables and sweep reports.
    pub fn failed_properties(&self) -> String {
        self.failures
            .iter()
            .map(|v| v.property.name())
            .collect::<Vec<_>>()
            .join("+")
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} violated (minimal failing prefix: {} of {} events): {}",
            self.failed_properties(),
            self.minimal_prefix,
            self.history_len,
            self.primary()
        )
    }
}

impl std::error::Error for Verdict {}

/// Runs both oracles over `history` (see [`crate::opacity::check`] for the
/// `initial` convention).
///
/// # Errors
///
/// Returns a [`Verdict`] if either property fails.
pub fn judge(initial: &HashMap<u64, u64>, history: &[Event]) -> Result<Judgement, Verdict> {
    let opacity = check_history(initial, history, Property::Opacity);
    let serializability = check_history(initial, history, Property::Serializability);
    match (opacity, serializability) {
        (Ok(opacity), Ok(serializability)) => Ok(Judgement {
            opacity,
            serializability,
        }),
        (opacity, serializability) => {
            let mut failures = Vec::new();
            if let Err(v) = opacity {
                failures.push(v);
            }
            if let Err(v) = serializability {
                failures.push(v);
            }
            let minimal_prefix = minimal_failing_prefix(initial, history, &failures);
            Err(Verdict {
                failures,
                minimal_prefix,
                history_len: history.len(),
            })
        }
    }
}

/// Bisects for the shortest event prefix that still fails one of the
/// already-failed properties. Checking a prefix is sound because the
/// collector treats attempts cut off by the truncation as aborted-to-end —
/// the same rule applied to panicking threads in full histories.
///
/// The invariant `fails(hi)` holds throughout (the full history fails by
/// construction), so the result is always a *verified* failing prefix even
/// if failure is not monotone in the prefix length.
fn minimal_failing_prefix(
    initial: &HashMap<u64, u64>,
    history: &[Event],
    failures: &[Violation],
) -> usize {
    let fails = |n: usize| {
        failures
            .iter()
            .any(|v| check_history(initial, &history[..n], v.property).is_err())
    };
    let (mut lo, mut hi) = (0usize, history.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if fails(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::*;
    use rh_norec::trace::{EventKind, Path};

    fn ev(vtid: usize, kind: EventKind) -> Event {
        Event { vtid, kind }
    }
    fn begin(vtid: usize) -> Event {
        ev(vtid, EventKind::Begin { path: Path::Stm })
    }
    fn read(vtid: usize, addr: u64, value: u64) -> Event {
        ev(vtid, EventKind::Read { addr, value })
    }
    fn write(vtid: usize, addr: u64, value: u64) -> Event {
        ev(vtid, EventKind::Write { addr, value })
    }
    fn commit(vtid: usize) -> Event {
        ev(vtid, EventKind::Commit { path: Path::Stm })
    }
    fn abort(vtid: usize) -> Event {
        ev(vtid, EventKind::Abort)
    }

    #[test]
    fn clean_history_passes_both_oracles() {
        let h = vec![begin(0), read(0, 8, 0), write(0, 8, 1), commit(0)];
        let j = judge(&HashMap::new(), &h).unwrap();
        assert_eq!(j.opacity.writer_commits, 1);
        assert_eq!(j.serializability.writer_commits, 1);
    }

    #[test]
    fn zombie_read_fails_opacity_only() {
        let h = vec![
            begin(0),
            read(0, 8, 0),
            begin(1),
            write(1, 8, 7),
            write(1, 16, 7),
            commit(1),
            read(0, 16, 7),
            abort(0),
        ];
        let v = judge(&HashMap::new(), &h).unwrap_err();
        assert!(v.failed(Property::Opacity));
        assert!(!v.failed(Property::Serializability));
        assert_eq!(v.failed_properties(), "opacity");
        assert_eq!(v.primary().property, Property::Opacity);
    }

    #[test]
    fn committed_lost_update_fails_both_with_opacity_first() {
        let h = vec![
            begin(0),
            read(0, 8, 0),
            begin(1),
            read(1, 8, 0),
            write(0, 8, 1),
            commit(0),
            write(1, 8, 1),
            commit(1),
        ];
        let v = judge(&HashMap::new(), &h).unwrap_err();
        assert!(v.failed(Property::Opacity));
        assert!(v.failed(Property::Serializability));
        assert_eq!(v.failed_properties(), "opacity+serializability");
        assert_eq!(v.primary().property, Property::Opacity);
    }

    #[test]
    fn minimal_prefix_is_verified_failing_and_cuts_the_tail() {
        // The violation completes at event 7 (vthread 1's commit); the
        // trailing unrelated transaction is bisected away.
        let mut h = vec![
            begin(0),
            read(0, 8, 0),
            begin(1),
            read(1, 8, 0),
            write(0, 8, 1),
            commit(0),
            write(1, 8, 1),
            commit(1),
        ];
        h.extend([begin(2), read(2, 8, 1), commit(2)]);
        let v = judge(&HashMap::new(), &h).unwrap_err();
        assert_eq!(v.history_len, h.len());
        assert!(v.minimal_prefix < h.len(), "the clean tail must be cut");
        // Verified failing, as documented.
        assert!(judge(&HashMap::new(), &h[..v.minimal_prefix]).is_err());
        // And the step before the prefix boundary does not fail.
        assert!(judge(&HashMap::new(), &h[..v.minimal_prefix - 1]).is_ok());
    }
}
