//! A transactional red-black tree.
//!
//! The paper's microbenchmark tree "is derived from the java.util.TreeMap
//! implementation found in the Java 6.0 JDK" (§3.5); this is a port of
//! that implementation (parent pointers, null as nil, CLRS-style fixups)
//! onto the transactional heap. Every access goes through [`Tx`], so the
//! same code runs on hardware fast paths, mixed slow paths, and STMs.
//!
//! Node layout (6 words): `[key, value, left, right, parent, color]`.

use rh_norec::prelude::{Tx, TxResult};
use sim_mem::{Addr, Heap};

const KEY: u64 = 0;
const VALUE: u64 = 1;
const LEFT: u64 = 2;
const RIGHT: u64 = 3;
const PARENT: u64 = 4;
const COLOR: u64 = 5;
const NODE_WORDS: u64 = 6;

const RED: u64 = 0;
const BLACK: u64 = 1;

/// A red-black tree rooted at a heap word.
///
/// The struct itself is a plain handle (the root-pointer address); clone it
/// freely across threads. All mutation happens through transactions.
///
/// # Examples
///
/// ```rust
/// # use std::sync::Arc;
/// # use sim_mem::{Heap, HeapConfig};
/// # use sim_htm::{Htm, HtmConfig};
/// # use rh_norec::prelude::{Algorithm, TmConfig, TmRuntime, TxKind};
/// use tm_workloads::structures::RbTree;
///
/// # let heap = Arc::new(Heap::new(HeapConfig::default()));
/// # let htm = Htm::new(Arc::clone(&heap), HtmConfig::default());
/// # let rt = TmRuntime::new(Arc::clone(&heap), htm, TmConfig::new(Algorithm::RhNorec)).expect("runtime construction cannot fail");
/// let tree = RbTree::create(&heap);
/// let mut worker = rt.open_session().expect("free worker slot");
/// worker.execute(TxKind::ReadWrite, |tx| tree.put(tx, 7, 700));
/// let got = worker.execute(TxKind::ReadOnly, |tx| tree.get(tx, 7));
/// assert_eq!(got, Some(700));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct RbTree {
    root: Addr,
}

impl RbTree {
    /// Allocates an empty tree (non-transactionally; do this at setup).
    ///
    /// # Panics
    ///
    /// Panics if the heap is exhausted.
    pub fn create(heap: &Heap) -> RbTree {
        let root = heap
            .allocator()
            .alloc(0, 1)
            .expect("heap exhausted allocating tree root");
        RbTree { root }
    }

    /// Rebuilds a handle from [`RbTree::root_addr`].
    pub fn from_root_addr(root: Addr) -> RbTree {
        RbTree { root }
    }

    /// The heap word holding the root pointer.
    pub fn root_addr(&self) -> Addr {
        self.root
    }

    /// Looks up `key`, returning its value if present.
    ///
    /// # Errors
    ///
    /// Propagates transaction restarts.
    pub fn get(&self, tx: &mut Tx<'_>, key: u64) -> TxResult<Option<u64>> {
        let mut p = tx.read_addr(self.root)?;
        while !p.is_null() {
            let k = tx.read(p.offset(KEY))?;
            if key == k {
                return Ok(Some(tx.read(p.offset(VALUE))?));
            }
            p = if key < k {
                tx.read_addr(p.offset(LEFT))?
            } else {
                tx.read_addr(p.offset(RIGHT))?
            };
        }
        Ok(None)
    }

    /// Whether `key` is present.
    ///
    /// # Errors
    ///
    /// Propagates transaction restarts.
    pub fn contains(&self, tx: &mut Tx<'_>, key: u64) -> TxResult<bool> {
        Ok(self.get(tx, key)?.is_some())
    }

    /// Inserts or updates `key`, returning the previous value if any.
    ///
    /// # Errors
    ///
    /// Propagates transaction restarts.
    pub fn put(&self, tx: &mut Tx<'_>, key: u64, value: u64) -> TxResult<Option<u64>> {
        let mut t = tx.read_addr(self.root)?;
        if t.is_null() {
            let n = new_node(tx, key, value, Addr::NULL)?;
            set_color(tx, n, BLACK)?;
            tx.write_addr(self.root, n)?;
            return Ok(None);
        }
        loop {
            let k = tx.read(t.offset(KEY))?;
            if key == k {
                let old = tx.read(t.offset(VALUE))?;
                tx.write(t.offset(VALUE), value)?;
                return Ok(Some(old));
            }
            let side = if key < k { LEFT } else { RIGHT };
            let child = tx.read_addr(t.offset(side))?;
            if child.is_null() {
                let n = new_node(tx, key, value, t)?;
                tx.write_addr(t.offset(side), n)?;
                self.fix_after_insertion(tx, n)?;
                return Ok(None);
            }
            t = child;
        }
    }

    /// Smallest entry with key ≥ `key` (a ceiling query), if any.
    ///
    /// # Errors
    ///
    /// Propagates transaction restarts.
    pub fn ceiling(&self, tx: &mut Tx<'_>, key: u64) -> TxResult<Option<(u64, u64)>> {
        let mut p = tx.read_addr(self.root)?;
        let mut best = None;
        while !p.is_null() {
            let k = tx.read(p.offset(KEY))?;
            if k == key {
                return Ok(Some((k, tx.read(p.offset(VALUE))?)));
            }
            if k > key {
                best = Some((k, tx.read(p.offset(VALUE))?));
                p = tx.read_addr(p.offset(LEFT))?;
            } else {
                p = tx.read_addr(p.offset(RIGHT))?;
            }
        }
        Ok(best)
    }

    /// Removes `key`, returning its value if it was present.
    ///
    /// # Errors
    ///
    /// Propagates transaction restarts.
    pub fn remove(&self, tx: &mut Tx<'_>, key: u64) -> TxResult<Option<u64>> {
        let mut p = tx.read_addr(self.root)?;
        while !p.is_null() {
            let k = tx.read(p.offset(KEY))?;
            if key == k {
                let old = tx.read(p.offset(VALUE))?;
                self.delete_entry(tx, p)?;
                return Ok(Some(old));
            }
            p = if key < k {
                tx.read_addr(p.offset(LEFT))?
            } else {
                tx.read_addr(p.offset(RIGHT))?
            };
        }
        Ok(None)
    }

    fn rotate_left(&self, tx: &mut Tx<'_>, p: Addr) -> TxResult<()> {
        if p.is_null() {
            return Ok(());
        }
        let r = tx.read_addr(p.offset(RIGHT))?;
        let rl = tx.read_addr(r.offset(LEFT))?;
        tx.write_addr(p.offset(RIGHT), rl)?;
        if !rl.is_null() {
            tx.write_addr(rl.offset(PARENT), p)?;
        }
        let pp = tx.read_addr(p.offset(PARENT))?;
        tx.write_addr(r.offset(PARENT), pp)?;
        if pp.is_null() {
            tx.write_addr(self.root, r)?;
        } else if tx.read_addr(pp.offset(LEFT))? == p {
            tx.write_addr(pp.offset(LEFT), r)?;
        } else {
            tx.write_addr(pp.offset(RIGHT), r)?;
        }
        tx.write_addr(r.offset(LEFT), p)?;
        tx.write_addr(p.offset(PARENT), r)?;
        Ok(())
    }

    fn rotate_right(&self, tx: &mut Tx<'_>, p: Addr) -> TxResult<()> {
        if p.is_null() {
            return Ok(());
        }
        let l = tx.read_addr(p.offset(LEFT))?;
        let lr = tx.read_addr(l.offset(RIGHT))?;
        tx.write_addr(p.offset(LEFT), lr)?;
        if !lr.is_null() {
            tx.write_addr(lr.offset(PARENT), p)?;
        }
        let pp = tx.read_addr(p.offset(PARENT))?;
        tx.write_addr(l.offset(PARENT), pp)?;
        if pp.is_null() {
            tx.write_addr(self.root, l)?;
        } else if tx.read_addr(pp.offset(RIGHT))? == p {
            tx.write_addr(pp.offset(RIGHT), l)?;
        } else {
            tx.write_addr(pp.offset(LEFT), l)?;
        }
        tx.write_addr(l.offset(RIGHT), p)?;
        tx.write_addr(p.offset(PARENT), l)?;
        Ok(())
    }

    fn fix_after_insertion(&self, tx: &mut Tx<'_>, mut x: Addr) -> TxResult<()> {
        set_color(tx, x, RED)?;
        while !x.is_null() {
            let xp = parent_of(tx, x)?;
            if xp.is_null() || color_of(tx, xp)? != RED {
                break;
            }
            let xpp = parent_of(tx, xp)?;
            let xpp_left = left_of(tx, xpp)?;
            if xp == xpp_left {
                let y = right_of(tx, xpp)?;
                if color_of(tx, y)? == RED {
                    set_color(tx, xp, BLACK)?;
                    set_color(tx, y, BLACK)?;
                    set_color(tx, xpp, RED)?;
                    x = xpp;
                } else {
                    if x == right_of(tx, xp)? {
                        x = xp;
                        self.rotate_left(tx, x)?;
                    }
                    let xp2 = parent_of(tx, x)?;
                    set_color(tx, xp2, BLACK)?;
                    let xpp2 = parent_of(tx, xp2)?;
                    set_color(tx, xpp2, RED)?;
                    self.rotate_right(tx, xpp2)?;
                }
            } else {
                let y = xpp_left;
                if color_of(tx, y)? == RED {
                    set_color(tx, xp, BLACK)?;
                    set_color(tx, y, BLACK)?;
                    set_color(tx, xpp, RED)?;
                    x = xpp;
                } else {
                    if x == left_of(tx, xp)? {
                        x = xp;
                        self.rotate_right(tx, x)?;
                    }
                    let xp2 = parent_of(tx, x)?;
                    set_color(tx, xp2, BLACK)?;
                    let xpp2 = parent_of(tx, xp2)?;
                    set_color(tx, xpp2, RED)?;
                    self.rotate_left(tx, xpp2)?;
                }
            }
        }
        let root = tx.read_addr(self.root)?;
        set_color(tx, root, BLACK)?;
        Ok(())
    }

    fn delete_entry(&self, tx: &mut Tx<'_>, mut p: Addr) -> TxResult<()> {
        // Internal node: copy the successor's payload into p, delete the
        // successor instead.
        let pl = left_of(tx, p)?;
        let pr = right_of(tx, p)?;
        if !pl.is_null() && !pr.is_null() {
            let s = successor(tx, p)?;
            let sk = tx.read(s.offset(KEY))?;
            let sv = tx.read(s.offset(VALUE))?;
            tx.write(p.offset(KEY), sk)?;
            tx.write(p.offset(VALUE), sv)?;
            p = s;
        }
        let pl = left_of(tx, p)?;
        let replacement = if !pl.is_null() { pl } else { right_of(tx, p)? };
        let pp = parent_of(tx, p)?;
        if !replacement.is_null() {
            tx.write_addr(replacement.offset(PARENT), pp)?;
            if pp.is_null() {
                tx.write_addr(self.root, replacement)?;
            } else if left_of(tx, pp)? == p {
                tx.write_addr(pp.offset(LEFT), replacement)?;
            } else {
                tx.write_addr(pp.offset(RIGHT), replacement)?;
            }
            if color_of(tx, p)? == BLACK {
                self.fix_after_deletion(tx, replacement)?;
            }
        } else if pp.is_null() {
            tx.write_addr(self.root, Addr::NULL)?;
        } else {
            if color_of(tx, p)? == BLACK {
                self.fix_after_deletion(tx, p)?;
            }
            let pp = parent_of(tx, p)?;
            if !pp.is_null() {
                if left_of(tx, pp)? == p {
                    tx.write_addr(pp.offset(LEFT), Addr::NULL)?;
                } else if right_of(tx, pp)? == p {
                    tx.write_addr(pp.offset(RIGHT), Addr::NULL)?;
                }
            }
        }
        tx.free(p)?;
        Ok(())
    }

    fn fix_after_deletion(&self, tx: &mut Tx<'_>, mut x: Addr) -> TxResult<()> {
        loop {
            let root = tx.read_addr(self.root)?;
            if x == root || color_of(tx, x)? != BLACK {
                break;
            }
            let xp = parent_of(tx, x)?;
            if x == left_of(tx, xp)? {
                let mut sib = right_of(tx, xp)?;
                if color_of(tx, sib)? == RED {
                    set_color(tx, sib, BLACK)?;
                    set_color(tx, xp, RED)?;
                    self.rotate_left(tx, xp)?;
                    let xp2 = parent_of(tx, x)?;
                    sib = right_of(tx, xp2)?;
                }
                let sl = left_of(tx, sib)?;
                let sr = right_of(tx, sib)?;
                if color_of(tx, sl)? == BLACK && color_of(tx, sr)? == BLACK {
                    set_color(tx, sib, RED)?;
                    x = parent_of(tx, x)?;
                } else {
                    if color_of(tx, sr)? == BLACK {
                        set_color(tx, sl, BLACK)?;
                        set_color(tx, sib, RED)?;
                        self.rotate_right(tx, sib)?;
                        let xp2 = parent_of(tx, x)?;
                        sib = right_of(tx, xp2)?;
                    }
                    let xp = parent_of(tx, x)?;
                    let xpc = color_of(tx, xp)?;
                    set_color(tx, sib, xpc)?;
                    set_color(tx, xp, BLACK)?;
                    let sr2 = right_of(tx, sib)?;
                    set_color(tx, sr2, BLACK)?;
                    self.rotate_left(tx, xp)?;
                    x = tx.read_addr(self.root)?;
                }
            } else {
                let mut sib = left_of(tx, xp)?;
                if color_of(tx, sib)? == RED {
                    set_color(tx, sib, BLACK)?;
                    set_color(tx, xp, RED)?;
                    self.rotate_right(tx, xp)?;
                    let xp2 = parent_of(tx, x)?;
                    sib = left_of(tx, xp2)?;
                }
                let sr = right_of(tx, sib)?;
                let sl = left_of(tx, sib)?;
                if color_of(tx, sr)? == BLACK && color_of(tx, sl)? == BLACK {
                    set_color(tx, sib, RED)?;
                    x = parent_of(tx, x)?;
                } else {
                    if color_of(tx, sl)? == BLACK {
                        set_color(tx, sr, BLACK)?;
                        set_color(tx, sib, RED)?;
                        self.rotate_left(tx, sib)?;
                        let xp2 = parent_of(tx, x)?;
                        sib = left_of(tx, xp2)?;
                    }
                    let xp = parent_of(tx, x)?;
                    let xpc = color_of(tx, xp)?;
                    set_color(tx, sib, xpc)?;
                    set_color(tx, xp, BLACK)?;
                    let sl2 = left_of(tx, sib)?;
                    set_color(tx, sl2, BLACK)?;
                    self.rotate_right(tx, xp)?;
                    x = tx.read_addr(self.root)?;
                }
            }
        }
        set_color(tx, x, BLACK)?;
        Ok(())
    }

    // ---- Non-transactional inspection (setup/verification only) ----

    /// Collects the tree in key order (quiescent heap only).
    pub fn collect(&self, heap: &Heap) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        collect_rec(heap, Addr::from_word(heap.load(self.root)), &mut out);
        out
    }

    /// Checks the red-black invariants on a quiescent heap.
    ///
    /// # Errors
    ///
    /// Describes the first violated invariant.
    pub fn check_invariants(&self, heap: &Heap) -> Result<(), String> {
        let root = Addr::from_word(heap.load(self.root));
        if root.is_null() {
            return Ok(());
        }
        if heap.load(root.offset(COLOR)) != BLACK {
            return Err("root is not black".into());
        }
        check_rec(heap, root, None, None).map(|_| ())
    }
}

fn new_node(tx: &mut Tx<'_>, key: u64, value: u64, parent: Addr) -> TxResult<Addr> {
    let n = tx.alloc(NODE_WORDS)?;
    tx.write(n.offset(KEY), key)?;
    tx.write(n.offset(VALUE), value)?;
    tx.write_addr(n.offset(LEFT), Addr::NULL)?;
    tx.write_addr(n.offset(RIGHT), Addr::NULL)?;
    tx.write_addr(n.offset(PARENT), parent)?;
    tx.write(n.offset(COLOR), RED)?;
    Ok(n)
}

fn color_of(tx: &mut Tx<'_>, n: Addr) -> TxResult<u64> {
    if n.is_null() {
        Ok(BLACK)
    } else {
        tx.read(n.offset(COLOR))
    }
}

fn set_color(tx: &mut Tx<'_>, n: Addr, color: u64) -> TxResult<()> {
    if n.is_null() {
        return Ok(());
    }
    // Avoid turning read-mostly lookups into writers.
    if tx.read(n.offset(COLOR))? != color {
        tx.write(n.offset(COLOR), color)?;
    }
    Ok(())
}

fn parent_of(tx: &mut Tx<'_>, n: Addr) -> TxResult<Addr> {
    if n.is_null() {
        Ok(Addr::NULL)
    } else {
        tx.read_addr(n.offset(PARENT))
    }
}

fn left_of(tx: &mut Tx<'_>, n: Addr) -> TxResult<Addr> {
    if n.is_null() {
        Ok(Addr::NULL)
    } else {
        tx.read_addr(n.offset(LEFT))
    }
}

fn right_of(tx: &mut Tx<'_>, n: Addr) -> TxResult<Addr> {
    if n.is_null() {
        Ok(Addr::NULL)
    } else {
        tx.read_addr(n.offset(RIGHT))
    }
}

/// In-order successor (assumes `p` has a right child in the delete path).
fn successor(tx: &mut Tx<'_>, p: Addr) -> TxResult<Addr> {
    let r = right_of(tx, p)?;
    if !r.is_null() {
        let mut s = r;
        loop {
            let l = left_of(tx, s)?;
            if l.is_null() {
                return Ok(s);
            }
            s = l;
        }
    }
    let mut ch = p;
    let mut par = parent_of(tx, p)?;
    while !par.is_null() && right_of(tx, par)? == ch {
        ch = par;
        par = parent_of(tx, par)?;
    }
    Ok(par)
}

fn collect_rec(heap: &Heap, n: Addr, out: &mut Vec<(u64, u64)>) {
    if n.is_null() {
        return;
    }
    collect_rec(heap, Addr::from_word(heap.load(n.offset(LEFT))), out);
    out.push((heap.load(n.offset(KEY)), heap.load(n.offset(VALUE))));
    collect_rec(heap, Addr::from_word(heap.load(n.offset(RIGHT))), out);
}

/// Returns the black height; checks BST order, red-red, and parent links.
fn check_rec(
    heap: &Heap,
    n: Addr,
    lo: Option<u64>,
    hi: Option<u64>,
) -> Result<u64, String> {
    if n.is_null() {
        return Ok(1);
    }
    let key = heap.load(n.offset(KEY));
    if let Some(lo) = lo {
        if key <= lo {
            return Err(format!("BST order violated at key {key}"));
        }
    }
    if let Some(hi) = hi {
        if key >= hi {
            return Err(format!("BST order violated at key {key}"));
        }
    }
    let color = heap.load(n.offset(COLOR));
    let left = Addr::from_word(heap.load(n.offset(LEFT)));
    let right = Addr::from_word(heap.load(n.offset(RIGHT)));
    for child in [left, right] {
        if !child.is_null() {
            if Addr::from_word(heap.load(child.offset(PARENT))) != n {
                return Err(format!("broken parent link under key {key}"));
            }
            if color == RED && heap.load(child.offset(COLOR)) == RED {
                return Err(format!("red-red violation at key {key}"));
            }
        }
    }
    let lh = check_rec(heap, left, lo, Some(key))?;
    let rh = check_rec(heap, right, Some(key), hi)?;
    if lh != rh {
        return Err(format!("black-height mismatch at key {key}: {lh} vs {rh}"));
    }
    Ok(lh + if color == BLACK { 1 } else { 0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::single_runtime;
    use rh_norec::prelude::{Algorithm, TxKind};

    #[test]
    fn put_get_remove_round_trip() {
        let (heap, rt) = single_runtime(Algorithm::Norec);
        let tree = RbTree::create(&heap);
        let mut w = rt.open_session().expect("free worker slot");
        assert_eq!(w.execute(TxKind::ReadWrite, |tx| tree.put(tx, 5, 50)), None);
        assert_eq!(w.execute(TxKind::ReadWrite, |tx| tree.put(tx, 5, 55)), Some(50));
        assert_eq!(w.execute(TxKind::ReadOnly, |tx| tree.get(tx, 5)), Some(55));
        assert_eq!(w.execute(TxKind::ReadOnly, |tx| tree.get(tx, 6)), None);
        assert_eq!(w.execute(TxKind::ReadWrite, |tx| tree.remove(tx, 5)), Some(55));
        assert_eq!(w.execute(TxKind::ReadOnly, |tx| tree.get(tx, 5)), None);
        tree.check_invariants(&heap).unwrap();
    }

    #[test]
    fn sequential_matches_btreemap() {
        let (heap, rt) = single_runtime(Algorithm::Norec);
        let tree = RbTree::create(&heap);
        let mut w = rt.open_session().expect("free worker slot");
        let mut model = std::collections::BTreeMap::new();
        let mut rng = 0xdecafbadu64;
        for _ in 0..3000 {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let key = rng % 200;
            match (rng >> 32) % 3 {
                0 => {
                    let mine = w.execute(TxKind::ReadWrite, |tx| tree.put(tx, key, rng));
                    assert_eq!(mine, model.insert(key, rng));
                }
                1 => {
                    let mine = w.execute(TxKind::ReadWrite, |tx| tree.remove(tx, key));
                    assert_eq!(mine, model.remove(&key));
                }
                _ => {
                    let mine = w.execute(TxKind::ReadOnly, |tx| tree.get(tx, key));
                    assert_eq!(mine, model.get(&key).copied());
                }
            }
        }
        tree.check_invariants(&heap).unwrap();
        let collected = tree.collect(&heap);
        let expected: Vec<(u64, u64)> = model.into_iter().collect();
        assert_eq!(collected, expected);
    }

    #[test]
    fn ascending_and_descending_bulk_loads_stay_balanced() {
        let (heap, rt) = single_runtime(Algorithm::Norec);
        let tree = RbTree::create(&heap);
        let mut w = rt.open_session().expect("free worker slot");
        for k in 0..512u64 {
            w.execute(TxKind::ReadWrite, |tx| tree.put(tx, k, k));
        }
        for k in (512..1024u64).rev() {
            w.execute(TxKind::ReadWrite, |tx| tree.put(tx, k, k));
        }
        tree.check_invariants(&heap).unwrap();
        assert_eq!(tree.collect(&heap).len(), 1024);
        for k in 0..1024u64 {
            w.execute(TxKind::ReadWrite, |tx| tree.remove(tx, k));
            if k % 97 == 0 {
                tree.check_invariants(&heap).unwrap();
            }
        }
        assert!(tree.collect(&heap).is_empty());
    }

    #[test]
    fn ceiling_finds_the_next_key() {
        let (heap, rt) = single_runtime(Algorithm::Norec);
        let tree = RbTree::create(&heap);
        let mut w = rt.open_session().expect("free worker slot");
        for k in [10u64, 20, 30] {
            w.execute(TxKind::ReadWrite, |tx| tree.put(tx, k, k * 2));
        }
        assert_eq!(w.execute(TxKind::ReadOnly, |tx| tree.ceiling(tx, 0)), Some((10, 20)));
        assert_eq!(w.execute(TxKind::ReadOnly, |tx| tree.ceiling(tx, 10)), Some((10, 20)));
        assert_eq!(w.execute(TxKind::ReadOnly, |tx| tree.ceiling(tx, 11)), Some((20, 40)));
        assert_eq!(w.execute(TxKind::ReadOnly, |tx| tree.ceiling(tx, 30)), Some((30, 60)));
        assert_eq!(w.execute(TxKind::ReadOnly, |tx| tree.ceiling(tx, 31)), None);
        let _ = heap;
    }

    #[test]
    fn removing_absent_keys_is_a_noop() {
        let (heap, rt) = single_runtime(Algorithm::Norec);
        let tree = RbTree::create(&heap);
        let mut w = rt.open_session().expect("free worker slot");
        assert_eq!(w.execute(TxKind::ReadWrite, |tx| tree.remove(tx, 1)), None);
        w.execute(TxKind::ReadWrite, |tx| tree.put(tx, 2, 2));
        assert_eq!(w.execute(TxKind::ReadWrite, |tx| tree.remove(tx, 1)), None);
        tree.check_invariants(&heap).unwrap();
    }
}
