//! Property tests for the TM engines: arbitrary transaction scripts give
//! model-identical results on every algorithm, and concurrent random
//! increments are never lost.
//!
//! The generators run on the in-tree seeded RNG (no registry access
//! needed). Each case is derived entirely from one `u64` seed; on failure
//! the harness prints that seed, and seeds recorded in
//! `proptest-regressions/proptest_tm.txt` are replayed before the sweep.
//! The concurrent-increment property additionally runs under the
//! deterministic scheduler (`tm-check`), so a failing seed replays the
//! exact thread interleaving, not just the same per-thread op streams.

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rh_norec::{Algorithm, TmConfig, TmRuntime, TxKind};
use sim_htm::{Htm, HtmConfig};
use sim_mem::{Heap, HeapConfig};

/// Replays committed regression seeds, then sweeps `cases` fresh seeds.
/// Prints the failing seed so the case can be replayed in isolation.
fn sweep(name: &str, regressions: &str, cases: u64, case: impl Fn(u64) + std::panic::RefUnwindSafe) {
    let fresh = (0..cases).map(|i| 0x9e3779b97f4a7c15u64.wrapping_mul(i + 1));
    for seed in regression_seeds(regressions).into_iter().chain(fresh) {
        if let Err(payload) = std::panic::catch_unwind(|| case(seed)) {
            eprintln!("property '{name}' failed; replay with seed {seed:#x}");
            std::panic::resume_unwind(payload);
        }
    }
}

/// Parses `seed = 0x...` lines (comments and blanks ignored).
fn regression_seeds(file: &str) -> Vec<u64> {
    file.lines()
        .filter_map(|l| l.trim().strip_prefix("seed = "))
        .map(|s| {
            let s = s.trim();
            u64::from_str_radix(s.trim_start_matches("0x"), 16).expect("bad regression seed")
        })
        .collect()
}

const REGRESSIONS: &str = include_str!("../../../proptest-regressions/proptest_tm.txt");

const SLOTS: u64 = 24;

#[derive(Clone, Debug)]
enum TxOp {
    Read(u64),
    Write(u64, u64),
    AllocFreePair(u64),
}

fn gen_scripts(rng: &mut SmallRng) -> Vec<Vec<TxOp>> {
    (0..rng.gen_range(0..25))
        .map(|_| {
            (0..rng.gen_range(0..10))
                .map(|_| match rng.gen_range(0u32..3) {
                    0 => TxOp::Read(rng.gen_range(0..SLOTS)),
                    1 => TxOp::Write(rng.gen_range(0..SLOTS), rng.gen()),
                    _ => TxOp::AllocFreePair(rng.gen_range(1u64..16)),
                })
                .collect()
        })
        .collect()
}

/// Single-threaded scripts: every algorithm computes the same final
/// memory state and the same read results as a sequential model.
#[test]
fn all_algorithms_match_the_sequential_model() {
    sweep("all_algorithms_match_the_sequential_model", REGRESSIONS, 24, |seed| {
        let mut rng = SmallRng::seed_from_u64(seed);
        let script = gen_scripts(&mut rng);
        for alg in Algorithm::ALL {
            let heap = Arc::new(Heap::new(HeapConfig { words: 1 << 14 }));
            let htm = Htm::new(Arc::clone(&heap), HtmConfig::default());
            let rt = TmRuntime::new(Arc::clone(&heap), htm, TmConfig::new(alg)).expect("runtime construction cannot fail");
            let base = heap.allocator().alloc(0, SLOTS).unwrap();
            let mut worker = rt.register(0).expect("fresh thread id");
            let mut model: HashMap<u64, u64> = HashMap::new();

            for tx_ops in &script {
                let reads = worker.execute(TxKind::ReadWrite, |tx| {
                    let mut reads = Vec::new();
                    for op in tx_ops {
                        match *op {
                            TxOp::Read(a) => reads.push(tx.read(base.offset(a))?),
                            TxOp::Write(a, v) => tx.write(base.offset(a), v)?,
                            TxOp::AllocFreePair(words) => {
                                let block = tx.alloc(words)?;
                                tx.write(block, 1)?;
                                tx.free(block)?;
                            }
                        }
                    }
                    Ok(reads)
                });
                // Check reads against the model, then apply writes.
                let mut staged = model.clone();
                let mut read_iter = reads.into_iter();
                for op in tx_ops {
                    match *op {
                        TxOp::Read(a) => {
                            let got = read_iter.next().unwrap();
                            assert_eq!(
                                got,
                                staged.get(&a).copied().unwrap_or(0),
                                "{} read mismatch",
                                alg.label()
                            );
                        }
                        TxOp::Write(a, v) => {
                            staged.insert(a, v);
                        }
                        TxOp::AllocFreePair(_) => {}
                    }
                }
                model = staged;
            }
            for a in 0..SLOTS {
                assert_eq!(
                    heap.load(base.offset(a)),
                    model.get(&a).copied().unwrap_or(0),
                    "{} final state mismatch",
                    alg.label()
                );
            }
        }
    });
}

/// Concurrent increments over random slot subsets are never lost, on a
/// randomly chosen algorithm and HTM configuration — driven by the
/// deterministic scheduler, so the seed fixes the interleaving too.
#[test]
fn concurrent_random_increments_conserve_totals() {
    sweep("concurrent_random_increments_conserve_totals", REGRESSIONS, 24, |seed| {
        let mut rng = SmallRng::seed_from_u64(seed);
        let alg = Algorithm::ALL[rng.gen_range(0..Algorithm::ALL.len())];
        let htm_config = if rng.gen_bool(0.5) { HtmConfig::disabled() } else { HtmConfig::default() };
        let threads = 3usize;
        let per = 40u64;

        let heap = Arc::new(Heap::new(HeapConfig { words: 1 << 14 }));
        let htm = Htm::new(Arc::clone(&heap), htm_config);
        let rt = TmRuntime::new(Arc::clone(&heap), htm, TmConfig::new(alg)).expect("runtime construction cannot fail");
        let base = heap.allocator().alloc(0, SLOTS).unwrap();

        let bodies: Vec<_> = (0..threads)
            .map(|tid| {
                let rt = Arc::clone(&rt);
                move || {
                    let mut worker = rt.register(tid).expect("fresh thread id");
                    let mut rng = SmallRng::seed_from_u64(seed ^ (tid as u64 + 1));
                    for _ in 0..per {
                        let a = base.offset(rng.gen_range(0..SLOTS));
                        let b = base.offset(rng.gen_range(0..SLOTS));
                        worker.execute(TxKind::ReadWrite, |tx| {
                            if a == b {
                                let va = tx.read(a)?;
                                tx.write(a, va + 2)
                            } else {
                                let va = tx.read(a)?;
                                tx.write(a, va + 1)?;
                                let vb = tx.read(b)?;
                                tx.write(b, vb + 1)
                            }
                        });
                    }
                }
            })
            .collect();
        tm_check::sched::run_threads_seeded(seed, bodies);

        let total: u64 = (0..SLOTS).map(|a| heap.load(base.offset(a))).sum();
        assert_eq!(total, threads as u64 * per * 2, "{} lost increments", alg.label());
    });
}
