//! Regression test: contention backoff must not perturb deterministic
//! replay.
//!
//! The backoff primitive draws jitter from a seeded per-thread PRNG and
//! performs no host pacing under the controlled scheduler, so a seeded
//! schedule must produce the *identical* event history whatever the
//! backoff configuration — enabled, disabled, re-seeded, or with a wild
//! spin cap. If a code change ever routes backoff through wall-clock
//! time, OS randomness, or an extra yield point, these histories diverge
//! and this test names the schedule seed that shows it.

use rh_norec::{Algorithm, BackoffConfig};
use sim_htm::sched::SchedConfig;
use sim_htm::HtmConfig;
use tm_check::harness::{run_case, CaseConfig};

/// Algorithms with distinct spin sites: NOrec's clock spin, lazy NOrec's
/// commit CAS loop, TL2's bounded stripe wait, the hybrids' fast-path
/// retry and serial word lock.
const ALGORITHMS: [Algorithm; 6] = [
    Algorithm::LockElision,
    Algorithm::Norec,
    Algorithm::NorecLazy,
    Algorithm::Tl2,
    Algorithm::HybridNorecLazy,
    Algorithm::RhNorec,
];

/// The backoff configurations that must all be observationally identical
/// under the deterministic scheduler.
fn backoff_variants() -> [Option<BackoffConfig>; 4] {
    [
        None,
        Some(BackoffConfig { seed: 0xDEAD_BEEF_0BAD_F00D, ..BackoffConfig::default() }),
        Some(BackoffConfig { enabled: false, ..BackoffConfig::default() }),
        Some(BackoffConfig { min_spins: 1, max_spins: 1 << 20, ..BackoffConfig::default() }),
    ]
}

#[test]
fn seeded_schedules_replay_identically_across_backoff_configs() {
    for alg in ALGORITHMS {
        for htm in [HtmConfig::default(), HtmConfig::disabled()] {
            for shards in [1u32, 4] {
                for seed in 0..4u64 {
                    let sched = SchedConfig::from_seed(seed);
                    let mut reference = None;
                    for backoff in backoff_variants() {
                        let mut case = CaseConfig::contended(alg, htm);
                        case.clock_shards = shards;
                        case.backoff = backoff;
                        let report = run_case(&case, &sched).unwrap_or_else(|f| {
                            panic!("{alg:?} shards={shards} seed {seed}: {f}")
                        });
                        match &reference {
                            None => reference = Some(report.history),
                            Some(expected) => assert_eq!(
                                &report.history, expected,
                                "{alg:?} shards={shards} seed {seed}: backoff config \
                                 {backoff:?} changed the deterministic history"
                            ),
                        }
                    }
                }
            }
        }
    }
}
