//! Offline stand-in for the `rand` crate.
//!
//! This workspace must build with no registry access, so the external
//! `rand` dependency is replaced by this in-tree crate exposing exactly
//! the API surface the workloads and benches use: [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] methods `gen`,
//! `gen_range` (integer and `f64` ranges, half-open and inclusive) and
//! `gen_bool`.
//!
//! The generator is xorshift64* seeded through splitmix64 — statistically
//! plenty for driving benchmark workloads, and fully deterministic for a
//! given seed (which the test suites rely on).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next value of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a `u64` seed. Equal seeds give equal
    /// streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw stream
/// (the shim's stand-in for rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types with uniform range sampling (stand-in for `SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)`; `inclusive` widens to `[low, high]`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool)
        -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = if inclusive {
                    (high as u128).wrapping_sub(low as u128).wrapping_add(1)
                } else {
                    (high as u128).wrapping_sub(low as u128)
                };
                assert!(span != 0, "cannot sample from an empty range");
                // Modulo bias is < 2^-64 per draw for the spans used here.
                low.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        _inclusive: bool,
    ) -> Self {
        assert!(low < high, "cannot sample from an empty f64 range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        low + unit * (high - low)
    }
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_range(rng, low, high, true)
    }
}

/// The user-facing generator methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its full uniform distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small fast generator (xorshift64* over a splitmix64-expanded
    /// seed), mirroring `rand::rngs::SmallRng`'s role.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 scrambles low-entropy seeds (0, 1, 2, ...) into
            // well-mixed nonzero states.
            let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            SmallRng { state: z | 1 }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn distinct_seeds_distinct_streams() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.gen_range(0..=3);
            assert!(w <= 3);
            let f: f64 = rng.gen_range(0.05..0.95);
            assert!((0.05..0.95).contains(&f));
            let b: u8 = rng.gen_range(0..26);
            assert!(b < 26);
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_rate_is_roughly_right() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = SmallRng::seed_from_u64(13);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
