//! Tier-1 sweep: deterministic schedules × algorithms × machines, every
//! history checked under both oracles (opacity + strict serializability).
//!
//! A failure here prints the schedule seed (and, for explored schedules,
//! the guided choice list); `sweep --replay SEED` or a `SchedConfig` with
//! that seed reproduces the exact run.

use rh_norec::mutants::Mutant;
use rh_norec::Algorithm;
use sim_htm::sched::SchedConfig;
use sim_htm::HtmConfig;
use tm_check::explore::explore_case;
use tm_check::harness::{
    privatization_case, run_case, run_case_minimized, CaseConfig, CaseFailure, CaseWorkload,
};

/// The paper's five algorithms (Figure 5's competitors).
const ALGORITHMS: [Algorithm; 5] = [
    Algorithm::LockElision,
    Algorithm::Norec,
    Algorithm::Tl2,
    Algorithm::HybridNorec,
    Algorithm::RhNorec,
];

/// Machines to exercise: the paper's Haswell, no HTM at all (pure
/// software slow paths), and pathological capacity (constant fallback).
fn machines() -> [(&'static str, HtmConfig); 3] {
    [
        ("haswell", HtmConfig::default()),
        ("disabled", HtmConfig::disabled()),
        ("tiny", HtmConfig::tiny_capacity()),
    ]
}

#[test]
fn seed_sweep_finds_no_opacity_violation() {
    for alg in ALGORITHMS {
        for (name, htm) in machines() {
            for shards in [1u32, 4] {
                let mut case = CaseConfig::contended(alg, htm);
                case.clock_shards = shards;
                for seed in 0..6u64 {
                    let report = run_case(&case, &SchedConfig::from_seed(seed))
                        .unwrap_or_else(|f| panic!("{alg:?}/{name}/shards={shards}: {f}"));
                    // Both oracles ran over the same attempts.
                    assert_eq!(
                        report.summary.attempts, report.serializability.attempts,
                        "{alg:?}/{name}/shards={shards}: oracle attempt counts diverged"
                    );
                }
            }
        }
    }
}

/// Injected hardware aborts (spurious / capacity / conflict, from the
/// seed's second stream) push hybrids onto their fallback paths; those
/// interleavings must be opaque too.
#[test]
fn seed_sweep_with_injected_aborts() {
    for alg in [Algorithm::LockElision, Algorithm::HybridNorec, Algorithm::RhNorec] {
        for shards in [1u32, 4] {
            let mut case = CaseConfig::contended(alg, HtmConfig::default());
            case.clock_shards = shards;
            for seed in 0..6u64 {
                let mut cfg = SchedConfig::from_seed(seed);
                cfg.abort_injection = 0.05;
                if let Err(failure) = run_case(&case, &cfg) {
                    panic!("{alg:?}/haswell+injection/shards={shards}: {failure}");
                }
            }
        }
    }
}

/// The acceptance bar for determinism: running the same seed twice gives
/// the same event history, byte for byte, and the same decision log.
#[test]
fn same_seed_replays_byte_for_byte() {
    for alg in ALGORITHMS {
        for shards in [1u32, 4] {
            let mut case = CaseConfig::contended(alg, HtmConfig::default());
            case.clock_shards = shards;
            let cfg = SchedConfig::from_seed(0xdead_beef);
            let a = run_case(&case, &cfg)
                .unwrap_or_else(|f| panic!("{alg:?}/shards={shards}: {f}"));
            let b = run_case(&case, &cfg)
                .unwrap_or_else(|f| panic!("{alg:?}/shards={shards}: {f}"));
            assert_eq!(
                format!("{:?}", a.history),
                format!("{:?}", b.history),
                "{alg:?}/shards={shards}: same seed, different history"
            );
            assert_eq!(
                a.run.decisions, b.run.decisions,
                "{alg:?}/shards={shards}: same seed, different schedule"
            );
            assert!(!a.history.is_empty(), "{alg:?}/shards={shards}: nothing was recorded");
        }
    }
}

/// Feeding a run's own decision log back as a guided schedule reproduces
/// the identical run — the explorer's replay mechanism.
#[test]
fn guided_replay_of_decision_log_reproduces_history() {
    let case = CaseConfig::contended(Algorithm::RhNorec, HtmConfig::tiny_capacity());
    let cfg = SchedConfig::from_seed(17);
    let free = run_case(&case, &cfg).unwrap_or_else(|f| panic!("{f}"));
    let guided_cfg = SchedConfig {
        guided: Some(free.run.decisions.iter().map(|d| d.chosen).collect()),
        ..cfg
    };
    let guided = run_case(&case, &guided_cfg).unwrap_or_else(|f| panic!("{f}"));
    assert_eq!(
        format!("{:?}", free.history),
        format!("{:?}", guided.history),
        "guided replay diverged from the free-running schedule"
    );
}

/// The mutation test: the deliberately broken RH NOrec first-write
/// protocol (reads the clock at write-phase start instead of validating
/// the deferred snapshot — feature `mutant-postfix-clock`) must be caught
/// as an opacity violation within the default bounded sweep, while the
/// unmutated algorithm passes the identical sweep.
#[test]
fn postfix_clock_mutant_is_caught_and_clean_rh_norec_is_not() {
    // HTM disabled forces every transaction through the mixed slow path,
    // where the first software write runs the mutated protocol.
    let mut mutant = CaseConfig::contended(Algorithm::RhNorec, HtmConfig::disabled());
    mutant.mutant = Some(Mutant::PostfixClock);
    let clean = CaseConfig::contended(Algorithm::RhNorec, HtmConfig::disabled());

    let mut caught = None;
    for seed in 0..40u64 {
        let cfg = SchedConfig::from_seed(seed);
        run_case(&clean, &cfg)
            .unwrap_or_else(|f| panic!("unmutated RH NOrec failed the mutant sweep: {f}"));
        if caught.is_none() {
            if let Err(failure) = run_case(&mutant, &cfg) {
                assert!(
                    matches!(failure, CaseFailure::Violation { .. }),
                    "mutant failed, but not as an oracle violation: {failure}"
                );
                let text = failure.to_string();
                assert!(
                    text.contains(&format!("replay with seed {seed:#x}")),
                    "failure does not print its replay seed: {text}"
                );
                caught = Some(seed);
            }
        }
    }
    let seed = caught.expect("mutant survived 40 seeds — the checker is blind to it");

    // The failing seed is stable: replaying it reproduces the violation.
    assert!(run_case(&mutant, &SchedConfig::from_seed(seed)).is_err());
}

/// The sharded-clock mutation test: the deliberately broken lane-vector
/// validation (feature `mutant-stale-lane` — readers skip revalidating
/// the last sequence lane, so a commit homed there is invisible to
/// in-flight snapshots) must surface as an opacity violation within the
/// bounded sweep, while the unmutated sharded configuration passes the
/// identical sweep. Three threads at `clock_shards = 2` guarantee both
/// lanes have a resident: tids 0 and 2 home on lane 0, tid 1 homes on
/// lane 1 — the lane the mutant stops watching.
#[test]
fn stale_lane_mutant_is_caught_and_clean_sharded_clock_is_not() {
    // HTM disabled forces every transaction through the software path,
    // where reads validate against the (mutilated) lane snapshot.
    let mut mutant = CaseConfig::contended(Algorithm::RhNorec, HtmConfig::disabled());
    mutant.clock_shards = 2;
    mutant.mutant = Some(Mutant::StaleLane);
    let mut clean = CaseConfig::contended(Algorithm::RhNorec, HtmConfig::disabled());
    clean.clock_shards = 2;

    let mut caught = None;
    for seed in 0..40u64 {
        let cfg = SchedConfig::from_seed(seed);
        run_case(&clean, &cfg)
            .unwrap_or_else(|f| panic!("unmutated sharded clock failed the mutant sweep: {f}"));
        if caught.is_none() {
            if let Err(failure) = run_case(&mutant, &cfg) {
                assert!(
                    matches!(failure, CaseFailure::Violation { .. }),
                    "mutant failed, but not as an oracle violation: {failure}"
                );
                let text = failure.to_string();
                assert!(
                    text.contains(&format!("replay with seed {seed:#x}")),
                    "failure does not print its replay seed: {text}"
                );
                caught = Some(seed);
            }
        }
    }
    let seed = caught.expect("stale-lane mutant survived 40 seeds — the checker is blind to it");

    // The failing seed is stable: replaying it reproduces the violation.
    assert!(run_case(&mutant, &SchedConfig::from_seed(seed)).is_err());
}

/// Bounded exhaustive exploration: enumerate every schedule of a tiny
/// contended case that differs in its first decisions. All must be
/// opaque, and there must be real branching to enumerate.
#[test]
fn bounded_exhaustive_exploration_is_opaque() {
    let case = CaseConfig {
        algorithm: Algorithm::RhNorec,
        htm: HtmConfig::disabled(),
        threads: 2,
        slots: 1,
        txs_per_thread: 1,
        ops_per_tx: 2,
        clock_shards: 1,
        mutant: None,
        backoff: None,
        workload: CaseWorkload::Scripted,
        policy: None,
    };
    let base = SchedConfig::from_seed(0);
    let stats = explore_case(&case, &base, 6, 400).unwrap_or_else(|f| panic!("{f}"));
    assert!(
        stats.schedules > 1,
        "exploration found no branching: {stats:?}"
    );
    assert!(!stats.truncated, "depth-6 tree did not fit in 400 schedules: {stats:?}");
}

/// The explorer also catches the mutant — an interleaving argument, not
/// a lucky seed: some schedule in the bounded tree loses an update.
#[test]
fn exploration_catches_the_mutant() {
    let case = CaseConfig {
        algorithm: Algorithm::RhNorec,
        htm: HtmConfig::disabled(),
        threads: 2,
        slots: 1,
        txs_per_thread: 2,
        ops_per_tx: 2,
        clock_shards: 1,
        mutant: Some(Mutant::PostfixClock),
        backoff: None,
        workload: CaseWorkload::Scripted,
        policy: None,
    };
    let err = match explore_case(&case, &SchedConfig::from_seed(0), 12, 800) {
        Err(failure) => failure,
        Ok(stats) => panic!("mutant survived exhaustive exploration: {stats:?}"),
    };
    assert!(matches!(err, CaseFailure::Violation { guided: Some(_), .. }));
}

/// Builds the kill-recipe case a manifest entry declares (the same
/// mapping `tm-check mutate` uses).
fn case_from_spec(spec: &rh_norec::mutants::MutantSpec) -> CaseConfig {
    use rh_norec::mutants::HtmProfile;
    CaseConfig {
        algorithm: spec.algorithm,
        htm: match spec.htm {
            HtmProfile::Haswell => HtmConfig::default(),
            HtmProfile::Disabled => HtmConfig::disabled(),
            HtmProfile::Tiny => HtmConfig::tiny_capacity(),
        },
        threads: spec.threads,
        slots: spec.slots,
        txs_per_thread: spec.txs_per_thread,
        ops_per_tx: spec.ops_per_tx,
        clock_shards: spec.clock_shards,
        mutant: Some(spec.mutant),
        backoff: None,
        workload: match spec.workload {
            rh_norec::mutants::WorkloadShape::Scripted => CaseWorkload::Scripted,
            rh_norec::mutants::WorkloadShape::KvTransfer => {
                CaseWorkload::KvTransfer { kv_shards: 1 }
            }
            rh_norec::mutants::WorkloadShape::Batch => CaseWorkload::Batch { kv_shards: 1 },
            rh_norec::mutants::WorkloadShape::StealService => {
                CaseWorkload::StealService { kv_shards: 1 }
            }
        },
        policy: spec.policy.then(tm_check::harness::adaptive_policy),
    }
}

/// Every corpus mutant dies within its manifest-declared seed budget.
/// (The release-mode `tm-check mutate` gate additionally proves the
/// paired clean engines pass the same budgets; here we keep debug test
/// time bounded by stopping at the first kill.)
#[test]
fn every_corpus_mutant_is_killed_within_its_budget() {
    for mutant in Mutant::ALL {
        let spec = mutant.spec();
        let case = case_from_spec(spec);
        let killed = (0..spec.seed_budget).any(|seed| {
            let mut cfg = SchedConfig::from_seed(seed);
            cfg.abort_injection = spec.abort_injection;
            run_case(&case, &cfg).is_err()
        });
        assert!(
            killed,
            "mutant {} survived its declared budget of {} seeds",
            spec.name, spec.seed_budget
        );
    }
}

/// The failure path minimizes: a killing schedule shrinks to a guided
/// decision prefix that is itself verified to reproduce a failure.
#[test]
fn failing_schedules_shrink_to_a_reproducing_prefix() {
    let mut case = CaseConfig::contended(Algorithm::RhNorec, HtmConfig::disabled());
    case.mutant = Some(Mutant::PostfixClock);

    let seed = (0..40u64)
        .find(|&s| run_case(&case, &SchedConfig::from_seed(s)).is_err())
        .expect("postfix_clock mutant survived 40 seeds");
    let cfg = SchedConfig::from_seed(seed);
    let failure = run_case_minimized(&case, &cfg).expect_err("failure must reproduce");
    let CaseFailure::Violation { decisions, shrunk, .. } = failure else {
        panic!("expected an oracle violation, got: {failure}");
    };
    let shrunk = shrunk.expect("a deterministic violation must shrink");
    assert!(
        shrunk.guided.len() <= decisions.len(),
        "shrink grew the schedule: {} > {}",
        shrunk.guided.len(),
        decisions.len()
    );
    // The minimized prefix is a real reproduction, not a guess.
    let replay = SchedConfig { guided: Some(shrunk.guided.clone()), ..cfg };
    let replayed = run_case(&case, &replay).expect_err("shrunk prefix must still fail");
    assert!(replayed.to_string().contains("violation"), "unexpected shrink failure: {replayed}");
}

/// The privatization idiom from `conformance.rs`, under controlled
/// schedules: after the unlink commits, no straggler transaction may
/// touch the private node.
#[test]
fn privatization_is_safe_under_controlled_schedules() {
    for alg in ALGORITHMS {
        for (name, htm) in [("haswell", HtmConfig::default()), ("disabled", HtmConfig::disabled())]
        {
            for shards in [1u32, 4] {
                for seed in 0..3u64 {
                    privatization_case(alg, htm, shards, seed)
                        .unwrap_or_else(|f| panic!("{alg:?}/{name}/shards={shards}: {f}"));
                }
            }
        }
    }
}
