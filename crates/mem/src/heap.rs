//! The simulated shared heap.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::alloc::AllocState;
use crate::line::{LineId, LineMeta, LineSnapshot, WORDS_PER_LINE};
use crate::{Addr, Allocator};

/// Configuration for a [`Heap`].
///
/// # Examples
///
/// ```rust
/// use sim_mem::{Heap, HeapConfig};
///
/// let heap = Heap::new(HeapConfig { words: 1 << 16 });
/// assert!(heap.capacity_words() >= 1 << 16);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HeapConfig {
    /// Total number of 64-bit words of simulated memory.
    pub words: u64,
}

impl Default for HeapConfig {
    /// 32 MiB of simulated memory (`2^22` words) — enough for every
    /// workload in the paper's evaluation at the default scales.
    fn default() -> Self {
        HeapConfig { words: 1 << 22 }
    }
}

/// A word-addressable shared heap with a cache-line coherence model.
///
/// All transactional data in this repository lives in a `Heap`. Words are
/// 64-bit; 8 consecutive words form a 64-byte cache line with one
/// [`LineMeta`] version/lock word. See the crate docs for the coherence
/// contract.
///
/// The heap is `Sync`: share it between threads with `&Heap` or `Arc<Heap>`.
pub struct Heap {
    words: Box<[AtomicU64]>,
    meta: Box<[LineMeta]>,
    /// Internal coherence clock: bumped once per simulated-HTM commit and
    /// once per coherent (non-transactional) store burst. Simulated hardware
    /// transactions snoop it to decide when to revalidate their read sets —
    /// the stand-in for eager cache-coherence conflict detection.
    commit_clock: AtomicU64,
    alloc: AllocState,
}

impl Heap {
    /// Creates a heap with the given configuration.
    ///
    /// Word 0 — in fact all of line 0 — is reserved so that [`Addr::NULL`]
    /// never aliases live data.
    ///
    /// # Panics
    ///
    /// Panics if `config.words` is smaller than two cache lines.
    pub fn new(config: HeapConfig) -> Self {
        assert!(
            config.words >= 2 * WORDS_PER_LINE,
            "heap must hold at least two cache lines, got {} words",
            config.words
        );
        let lines = config.words.div_ceil(WORDS_PER_LINE);
        let words = (0..lines * WORDS_PER_LINE)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let meta = (0..lines)
            .map(|_| LineMeta::new())
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Heap {
            words,
            meta,
            commit_clock: AtomicU64::new(0),
            // Line 0 is reserved; allocation begins at the second line.
            alloc: AllocState::new(WORDS_PER_LINE, lines * WORDS_PER_LINE),
        }
    }

    /// Total capacity in words (rounded up to whole cache lines).
    #[inline]
    pub fn capacity_words(&self) -> u64 {
        self.words.len() as u64
    }

    /// The allocator handle for this heap.
    #[inline]
    pub fn allocator(&self) -> Allocator<'_> {
        Allocator::new(self)
    }

    #[inline]
    fn check(&self, addr: Addr) {
        assert!(
            !addr.is_null() && addr.index() < self.words.len() as u64,
            "address {addr:?} outside heap of {} words",
            self.words.len()
        );
    }

    #[inline]
    fn word(&self, addr: Addr) -> &AtomicU64 {
        self.check(addr);
        &self.words[addr.index() as usize]
    }

    #[inline]
    pub(crate) fn line_meta(&self, line: LineId) -> &LineMeta {
        &self.meta[line.index() as usize]
    }

    /// Coherent load: returns a value that is never torn out of the middle
    /// of an in-flight simulated-HTM commit.
    ///
    /// Spins (seqlock-style) while the containing line is write-locked.
    /// This models what real hardware gives free of charge: a plain load
    /// observes either the entire pre-commit or the entire post-commit
    /// memory state of a hardware transaction, with all cores agreeing on a
    /// single commit order.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is null or outside the heap.
    pub fn load(&self, addr: Addr) -> u64 {
        let word = self.word(addr);
        let meta = self.line_meta(LineId::containing(addr));
        let mut tries = 0u32;
        loop {
            let before = meta.snapshot();
            if before.is_locked() {
                tries += 1;
                if tries < 16 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
                continue;
            }
            let value = word.load(Ordering::Acquire);
            if meta.validate(before) {
                return value;
            }
        }
    }

    /// Coherent store, visible as one indivisible event.
    ///
    /// Locks the line, writes, unlocks with a version bump, and advances the
    /// coherence clock — so every simulated hardware transaction that has
    /// the line in its tracking set observes a conflict, exactly as a
    /// non-transactional store aborts conflicting transactions on real HTM
    /// (strong isolation).
    ///
    /// # Panics
    ///
    /// Panics if `addr` is null or outside the heap.
    pub fn store(&self, addr: Addr, value: u64) {
        let word = self.word(addr);
        let meta = self.line_meta(LineId::containing(addr));
        meta.lock();
        word.store(value, Ordering::Release);
        meta.unlock_bump();
        self.commit_clock.fetch_add(1, Ordering::AcqRel);
    }

    /// Coherent read-modify-write: stores `f(current)` and returns the
    /// previous value, atomically with respect to all coherent accesses and
    /// simulated-HTM commits.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is null or outside the heap.
    pub fn fetch_update(&self, addr: Addr, f: impl FnOnce(u64) -> u64) -> u64 {
        let word = self.word(addr);
        let meta = self.line_meta(LineId::containing(addr));
        meta.lock();
        let prev = word.load(Ordering::Acquire);
        word.store(f(prev), Ordering::Release);
        meta.unlock_bump();
        self.commit_clock.fetch_add(1, Ordering::AcqRel);
        prev
    }

    /// Coherent compare-and-swap on one word.
    ///
    /// Returns `Ok(expected)` when the swap happened, `Err(actual)` when the
    /// current value differed. On failure nothing is written and the line
    /// version does not move.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is null or outside the heap.
    pub fn compare_exchange(&self, addr: Addr, expected: u64, new: u64) -> Result<u64, u64> {
        let word = self.word(addr);
        let meta = self.line_meta(LineId::containing(addr));
        meta.lock();
        let cur = word.load(Ordering::Acquire);
        if cur == expected {
            word.store(new, Ordering::Release);
            meta.unlock_bump();
            self.commit_clock.fetch_add(1, Ordering::AcqRel);
            Ok(expected)
        } else {
            meta.unlock_unchanged();
            Err(cur)
        }
    }

    /// Fills `[addr, addr + count)` with `value` as one coherent burst: each
    /// touched line is locked/bumped once and the coherence clock advances
    /// once for the whole burst.
    ///
    /// Used by the allocator to scrub recycled blocks without paying one
    /// clock bump per word.
    ///
    /// # Panics
    ///
    /// Panics if any word of the range is null or outside the heap.
    pub fn fill(&self, addr: Addr, count: u64, value: u64) {
        if count == 0 {
            return;
        }
        self.check(addr);
        self.check(addr.offset(count - 1));
        let mut w = addr.index();
        let end = addr.index() + count;
        while w < end {
            let line = LineId::containing(Addr::new(w));
            let line_end = (line.index() + 1) * WORDS_PER_LINE;
            let burst_end = end.min(line_end);
            let meta = self.line_meta(line);
            meta.lock();
            for i in w..burst_end {
                self.words[i as usize].store(value, Ordering::Release);
            }
            meta.unlock_bump();
            w = burst_end;
        }
        self.commit_clock.fetch_add(1, Ordering::AcqRel);
    }

    /// Uninstrumented accessors for TM-runtime implementors.
    #[inline]
    pub fn raw(&self) -> RawHeap<'_> {
        RawHeap { heap: self }
    }

    pub(crate) fn alloc_state(&self) -> &AllocState {
        &self.alloc
    }
}

impl fmt::Debug for Heap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Heap")
            .field("capacity_words", &self.words.len())
            .field("lines", &self.meta.len())
            .field("commit_clock", &self.commit_clock.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

/// Uninstrumented access to a [`Heap`], for implementing TM runtimes.
///
/// `RawHeap` is how the `sim-htm` crate implements speculative execution:
/// it reads line metadata to build read sets, locks lines to publish write
/// sets, and snoops/bumps the coherence clock.
///
/// # Protocol
///
/// These methods do no locking of their own. Callers must uphold:
///
/// * [`RawHeap::store_raw`] only while holding the containing line's lock
///   (via [`RawHeap::meta`] and [`LineMeta::try_lock`]).
/// * After publishing stores and unlocking, bump the coherence clock with
///   [`RawHeap::bump_commit_clock`] exactly once per atomic commit event.
/// * [`RawHeap::load_raw`] is safe any time but may observe mid-commit
///   state; pair it with snapshot validation ([`RawHeap::read_validated`])
///   to obtain a coherent value.
///
/// No method here is `unsafe` in the Rust sense — violating the protocol
/// cannot corrupt process memory, only the simulated machine's coherence.
#[derive(Clone, Copy)]
pub struct RawHeap<'h> {
    heap: &'h Heap,
}

impl<'h> RawHeap<'h> {
    /// Plain load with acquire ordering. May observe mid-commit state.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is null or outside the heap.
    #[inline]
    pub fn load_raw(&self, addr: Addr) -> u64 {
        self.heap.word(addr).load(Ordering::Acquire)
    }

    /// Plain store with release ordering. Caller must hold the line lock.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is null or outside the heap.
    #[inline]
    pub fn store_raw(&self, addr: Addr, value: u64) {
        self.heap.word(addr).store(value, Ordering::Release);
    }

    /// The metadata word of `line`.
    ///
    /// # Panics
    ///
    /// Panics if `line` is outside the heap.
    #[inline]
    pub fn meta(&self, line: LineId) -> &'h LineMeta {
        assert!(
            line.index() < self.heap.meta.len() as u64,
            "{line:?} outside heap of {} lines",
            self.heap.meta.len()
        );
        self.heap.line_meta(line)
    }

    /// Loads a word together with a validated, unlocked snapshot of its
    /// line: retries until the line is observed unlocked and unchanged
    /// around the load.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is null or outside the heap.
    pub fn read_validated(&self, addr: Addr) -> (u64, LineSnapshot) {
        let word = self.heap.word(addr);
        let meta = self.heap.line_meta(LineId::containing(addr));
        let mut tries = 0u32;
        loop {
            let before = meta.snapshot();
            if before.is_locked() {
                tries += 1;
                if tries < 16 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
                continue;
            }
            let value = word.load(Ordering::Acquire);
            if meta.validate(before) {
                return (value, before);
            }
        }
    }

    /// Current value of the coherence clock.
    #[inline]
    pub fn commit_clock(&self) -> u64 {
        self.heap.commit_clock.load(Ordering::Acquire)
    }

    /// Advances the coherence clock by one commit event; returns the new
    /// value.
    #[inline]
    pub fn bump_commit_clock(&self) -> u64 {
        self.heap.commit_clock.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// The underlying heap (for bounds queries).
    #[inline]
    pub fn heap(&self) -> &'h Heap {
        self.heap
    }
}

impl fmt::Debug for RawHeap<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RawHeap").field("heap", self.heap).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_heap() -> Heap {
        Heap::new(HeapConfig { words: 1 << 12 })
    }

    #[test]
    fn load_store_round_trip() {
        let h = small_heap();
        let a = Addr::new(WORDS_PER_LINE); // first non-reserved word
        assert_eq!(h.load(a), 0);
        h.store(a, 0xfeed);
        assert_eq!(h.load(a), 0xfeed);
    }

    #[test]
    #[should_panic(expected = "outside heap")]
    fn load_out_of_bounds_panics() {
        let h = small_heap();
        h.load(Addr::new(1 << 12));
    }

    #[test]
    #[should_panic(expected = "outside heap")]
    fn null_load_panics() {
        let h = small_heap();
        h.load(Addr::NULL);
    }

    #[test]
    fn store_bumps_line_version_and_clock() {
        let h = small_heap();
        let a = Addr::new(WORDS_PER_LINE);
        let line = LineId::containing(a);
        let v0 = h.raw().meta(line).snapshot().version();
        let c0 = h.raw().commit_clock();
        h.store(a, 1);
        assert_eq!(h.raw().meta(line).snapshot().version(), v0 + 1);
        assert_eq!(h.raw().commit_clock(), c0 + 1);
    }

    #[test]
    fn fetch_update_returns_previous() {
        let h = small_heap();
        let a = Addr::new(WORDS_PER_LINE);
        h.store(a, 7);
        assert_eq!(h.fetch_update(a, |v| v + 1), 7);
        assert_eq!(h.load(a), 8);
    }

    #[test]
    fn compare_exchange_success_and_failure() {
        let h = small_heap();
        let a = Addr::new(WORDS_PER_LINE);
        h.store(a, 5);
        assert_eq!(h.compare_exchange(a, 5, 6), Ok(5));
        assert_eq!(h.load(a), 6);
        assert_eq!(h.compare_exchange(a, 5, 7), Err(6));
        assert_eq!(h.load(a), 6);
    }

    #[test]
    fn failed_compare_exchange_leaves_version_unchanged() {
        let h = small_heap();
        let a = Addr::new(WORDS_PER_LINE);
        let line = LineId::containing(a);
        h.store(a, 1);
        let v = h.raw().meta(line).snapshot().version();
        let _ = h.compare_exchange(a, 99, 100);
        assert_eq!(h.raw().meta(line).snapshot().version(), v);
    }

    #[test]
    fn fill_spans_lines_with_single_clock_bump() {
        let h = small_heap();
        let a = Addr::new(WORDS_PER_LINE + 3); // unaligned start
        let c0 = h.raw().commit_clock();
        h.fill(a, 20, 9);
        for i in 0..20 {
            assert_eq!(h.load(a.offset(i)), 9);
        }
        assert_eq!(h.raw().commit_clock(), c0 + 1);
    }

    #[test]
    fn read_validated_returns_matching_snapshot() {
        let h = small_heap();
        let a = Addr::new(WORDS_PER_LINE);
        h.store(a, 3);
        let raw = h.raw();
        let (v, snap) = raw.read_validated(a);
        assert_eq!(v, 3);
        assert!(raw.meta(LineId::containing(a)).validate(snap));
        h.store(a, 4);
        assert!(!raw.meta(LineId::containing(a)).validate(snap));
    }

    #[test]
    fn capacity_rounds_up_to_lines() {
        let h = Heap::new(HeapConfig { words: 17 });
        assert_eq!(h.capacity_words() % WORDS_PER_LINE, 0);
        assert!(h.capacity_words() >= 17);
    }

    #[test]
    fn concurrent_coherent_stores_are_not_lost() {
        let h = std::sync::Arc::new(small_heap());
        let a = Addr::new(WORDS_PER_LINE);
        let threads = 8;
        let per = 1000;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let h = h.clone();
                s.spawn(move || {
                    for _ in 0..per {
                        h.fetch_update(a, |v| v + 1);
                    }
                });
            }
        });
        assert_eq!(h.load(a), threads * per);
    }
}
