//! Word addresses into the simulated heap.

use core::fmt;

/// A word address in the simulated shared heap.
///
/// Addresses index 64-bit words, not bytes; address `0` is reserved as the
/// null address so heap-resident data structures can store "no pointer" the
/// way C code stores `NULL`.
///
/// `Addr` is a plain value: copying it copies the pointer, not the pointee.
///
/// # Examples
///
/// ```rust
/// use sim_mem::Addr;
///
/// let a = Addr::new(16);
/// assert_eq!(a.offset(3).index(), 19);
/// assert!(Addr::NULL.is_null());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// The null address. Never a valid target of a load or store.
    pub const NULL: Addr = Addr(0);

    /// Creates an address from a raw word index.
    #[inline]
    pub const fn new(index: u64) -> Self {
        Addr(index)
    }

    /// The raw word index of this address.
    #[inline]
    pub const fn index(self) -> u64 {
        self.0
    }

    /// Whether this is the null address.
    #[inline]
    pub const fn is_null(self) -> bool {
        self.0 == 0
    }

    /// The address `words` words past `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the offset overflows `u64`.
    #[inline]
    pub const fn offset(self, words: u64) -> Self {
        Addr(self.0 + words)
    }

    /// Encodes this address as a heap word, so pointers can be stored in
    /// heap-resident records.
    #[inline]
    pub const fn to_word(self) -> u64 {
        self.0
    }

    /// Decodes an address previously stored with [`Addr::to_word`].
    #[inline]
    pub const fn from_word(word: u64) -> Self {
        Addr(word)
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "Addr(NULL)")
        } else {
            write!(f, "Addr({:#x})", self.0)
        }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<Addr> for u64 {
    fn from(a: Addr) -> u64 {
        a.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_zero_and_default() {
        assert_eq!(Addr::NULL.index(), 0);
        assert!(Addr::NULL.is_null());
        assert_eq!(Addr::default(), Addr::NULL);
    }

    #[test]
    fn offset_advances_word_index() {
        let a = Addr::new(100);
        assert_eq!(a.offset(0), a);
        assert_eq!(a.offset(8).index(), 108);
    }

    #[test]
    fn word_round_trip() {
        let a = Addr::new(0xdead_beef);
        assert_eq!(Addr::from_word(a.to_word()), a);
    }

    #[test]
    fn debug_marks_null() {
        assert_eq!(format!("{:?}", Addr::NULL), "Addr(NULL)");
        assert_eq!(format!("{:?}", Addr::new(16)), "Addr(0x10)");
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(format!("{}", Addr::new(255)), "0xff");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(Addr::new(1) < Addr::new(2));
    }
}
