//! Labyrinth: transactional maze routing with Lee's algorithm (STAMP).
//!
//! The real STAMP application routes wires through a 3-D grid: each router
//! transaction snapshots the grid region it needs, runs a breadth-first
//! *expansion* from source to destination, *backtracks* the cheapest path,
//! and claims every cell of that path — all atomically, so two routes can
//! never share a cell. The transactions are large (the whole path is a
//! write set), which is what makes Labyrinth the capacity-abort workload.
//!
//! This reproduction implements the full expand/backtrack structure on a
//! 2-layer grid (STAMP's default uses z = 2 for over/under routing), with
//! rip-up transactions recycling old routes so a duration-driven harness
//! can run indefinitely.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use rand::Rng;
use rh_norec::prelude::{Session, Tx, TxKind, TxResult};
use sim_mem::{Addr, Heap};

use crate::structures::Queue;
use crate::{Workload, WorkloadRng};

/// Route record: `[len, cell_0, cell_1, ...]`.
const ROUTE_LEN: u64 = 0;
const ROUTE_CELLS: u64 = 1;

/// Configuration of the Labyrinth workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LabyrinthConfig {
    /// Grid width (x).
    pub width: u64,
    /// Grid height (y).
    pub height: u64,
    /// Grid layers (z); STAMP routes over/under with 2.
    pub layers: u64,
}

impl Default for LabyrinthConfig {
    fn default() -> Self {
        LabyrinthConfig { width: 32, height: 32, layers: 2 }
    }
}

/// The Labyrinth maze-routing workload.
#[derive(Debug)]
pub struct Labyrinth {
    config: LabyrinthConfig,
    /// The grid: one word per cell, 0 = free, else the owning route id.
    grid: Addr,
    /// Committed routes awaiting rip-up (FIFO of route-record addresses).
    routes: Queue,
    next_route: AtomicU64,
    routed: AtomicU64,
    blocked: AtomicU64,
}

impl Labyrinth {
    /// Allocates the grid.
    pub fn new(heap: &Heap, config: LabyrinthConfig) -> Labyrinth {
        assert!(config.width >= 4 && config.height >= 4 && config.layers >= 1);
        let cells = config.width * config.height * config.layers;
        let grid = heap
            .allocator()
            .alloc(0, cells)
            .expect("heap exhausted allocating labyrinth grid");
        Labyrinth {
            config,
            grid,
            routes: Queue::create(heap),
            next_route: AtomicU64::new(1),
            routed: AtomicU64::new(0),
            blocked: AtomicU64::new(0),
        }
    }

    fn cells(&self) -> u64 {
        self.config.width * self.config.height * self.config.layers
    }

    fn cell(&self, index: u64) -> Addr {
        self.grid.offset(index)
    }

    fn index(&self, x: u64, y: u64, z: u64) -> u64 {
        (z * self.config.height + y) * self.config.width + x
    }

    fn neighbors(&self, index: u64) -> impl Iterator<Item = u64> {
        let w = self.config.width;
        let h = self.config.height;
        let l = self.config.layers;
        let z = index / (w * h);
        let y = (index / w) % h;
        let x = index % w;
        let mut out = Vec::with_capacity(6);
        if x > 0 {
            out.push(self.index(x - 1, y, z));
        }
        if x + 1 < w {
            out.push(self.index(x + 1, y, z));
        }
        if y > 0 {
            out.push(self.index(x, y - 1, z));
        }
        if y + 1 < h {
            out.push(self.index(x, y + 1, z));
        }
        if z > 0 {
            out.push(self.index(x, y, z - 1));
        }
        if z + 1 < l {
            out.push(self.index(x, y, z + 1));
        }
        out.into_iter()
    }

    /// One routing transaction: Lee's algorithm.
    ///
    /// *Expansion*: BFS from `src`, transactionally reading each frontier
    /// cell's occupancy, recording BFS distances in a transaction-private
    /// map. *Backtrack*: walk from `dst` to `src` along decreasing
    /// distance, then claim every path cell and commit the route record.
    ///
    /// Returns `false` when no free path exists.
    fn route(&self, tx: &mut Tx<'_>, src: u64, dst: u64, id: u64) -> TxResult<bool> {
        if tx.read(self.cell(src))? != 0 || tx.read(self.cell(dst))? != 0 {
            return Ok(false);
        }
        // Expansion (the distances live in private memory, as in STAMP's
        // per-thread local grid; the *reads* of occupancy are what the
        // transaction tracks).
        let mut distance: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
        let mut frontier = VecDeque::new();
        distance.insert(src, 0);
        frontier.push_back(src);
        let mut found = false;
        'expand: while let Some(cur) = frontier.pop_front() {
            let d = distance[&cur];
            for next in self.neighbors(cur) {
                if distance.contains_key(&next) {
                    continue;
                }
                if next == dst {
                    distance.insert(next, d + 1);
                    found = true;
                    break 'expand;
                }
                if tx.read(self.cell(next))? == 0 {
                    distance.insert(next, d + 1);
                    frontier.push_back(next);
                }
            }
        }
        if !found {
            return Ok(false);
        }
        // Backtrack: strictly decreasing distance from dst to src.
        let mut path = vec![dst];
        let mut cur = dst;
        while cur != src {
            let d = distance[&cur];
            let prev = self
                .neighbors(cur)
                .find(|n| distance.get(n) == Some(&(d - 1)))
                .expect("BFS parent must exist");
            path.push(prev);
            cur = prev;
        }
        // Claim the path and record the route.
        let record = tx.alloc(ROUTE_CELLS + path.len() as u64)?;
        tx.write(record.offset(ROUTE_LEN), path.len() as u64)?;
        for (i, &c) in path.iter().enumerate() {
            tx.write(self.cell(c), id)?;
            tx.write(record.offset(ROUTE_CELLS + i as u64), c)?;
        }
        self.routes.push(tx, record.to_word())?;
        Ok(true)
    }

    /// One rip-up transaction: release the oldest route's cells.
    fn rip_up(&self, tx: &mut Tx<'_>) -> TxResult<bool> {
        let Some(record_word) = self.routes.pop(tx)? else {
            return Ok(false);
        };
        let record = Addr::from_word(record_word);
        let len = tx.read(record.offset(ROUTE_LEN))?;
        for i in 0..len {
            let c = tx.read(record.offset(ROUTE_CELLS + i))?;
            tx.write(self.cell(c), 0)?;
        }
        tx.free(record)?;
        Ok(true)
    }

    /// Successfully routed paths so far.
    pub fn routed(&self) -> u64 {
        self.routed.load(Ordering::Relaxed)
    }

    /// Blocked routing attempts so far.
    pub fn blocked(&self) -> u64 {
        self.blocked.load(Ordering::Relaxed)
    }
}

impl Workload for Labyrinth {
    fn name(&self) -> String {
        format!(
            "Labyrinth ({}x{}x{})",
            self.config.width, self.config.height, self.config.layers
        )
    }

    fn setup(&self, _worker: &mut Session, _rng: &mut WorkloadRng) {}

    fn run_op(&self, worker: &mut Session, rng: &mut WorkloadRng) {
        if rng.gen_bool(0.4) {
            worker.execute(TxKind::ReadWrite, |tx| self.rip_up(tx).map(|_| ()));
            return;
        }
        let src = rng.gen_range(0..self.cells());
        let dst = rng.gen_range(0..self.cells());
        if src == dst {
            return;
        }
        let id = self.next_route.fetch_add(1, Ordering::Relaxed);
        let ok = worker.execute(TxKind::ReadWrite, |tx| self.route(tx, src, dst, id));
        if ok {
            self.routed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.blocked.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn verify(&self, heap: &Heap) -> Result<(), String> {
        // Committed routes own exactly their claimed cells; every other
        // cell is free; no two routes share a cell; every route is a
        // connected path of adjacent cells.
        let mut owned = std::collections::HashMap::new();
        for record_word in self.routes.collect(heap) {
            let record = Addr::from_word(record_word);
            let len = heap.load(record.offset(ROUTE_LEN));
            let mut prev: Option<u64> = None;
            for i in 0..len {
                let c = heap.load(record.offset(ROUTE_CELLS + i));
                let id = heap.load(self.cell(c));
                if id == 0 {
                    return Err(format!("route cell {c} not claimed on grid"));
                }
                if let Some(other) = owned.insert(c, id) {
                    return Err(format!("cell {c} claimed twice ({other} and {id})"));
                }
                if let Some(p) = prev {
                    if !self.neighbors(p).any(|n| n == c) {
                        return Err(format!("route hops from {p} to non-adjacent {c}"));
                    }
                }
                prev = Some(c);
            }
        }
        for c in 0..self.cells() {
            let id = heap.load(self.cell(c));
            if id != 0 && !owned.contains_key(&c) {
                return Err(format!("cell {c} claimed by {id} but in no route record"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::single_runtime;
    use rand::SeedableRng;
    use rh_norec::Algorithm;
    use std::sync::Arc;

    fn small() -> LabyrinthConfig {
        LabyrinthConfig { width: 8, height: 8, layers: 2 }
    }

    #[test]
    fn neighbors_stay_in_bounds_and_are_symmetric() {
        let (heap, _rt) = single_runtime(Algorithm::Norec);
        let lab = Labyrinth::new(&heap, small());
        for c in 0..lab.cells() {
            for n in lab.neighbors(c) {
                assert!(n < lab.cells(), "neighbor out of bounds");
                assert!(lab.neighbors(n).any(|m| m == c), "asymmetric adjacency");
            }
        }
    }

    #[test]
    fn routes_connect_endpoints_on_an_empty_grid() {
        let (heap, rt) = single_runtime(Algorithm::Norec);
        let lab = Labyrinth::new(&heap, small());
        let mut w = rt.open_session().expect("free worker slot");
        let src = lab.index(0, 0, 0);
        let dst = lab.index(7, 7, 1);
        let ok = w.execute(TxKind::ReadWrite, |tx| lab.route(tx, src, dst, 1));
        assert!(ok, "empty grid must be routable");
        lab.verify(&heap).unwrap();
        assert_eq!(heap.load(lab.cell(src)), 1);
        assert_eq!(heap.load(lab.cell(dst)), 1);
    }

    #[test]
    fn blocked_routes_leave_no_trace() {
        let (heap, rt) = single_runtime(Algorithm::Norec);
        let lab = Labyrinth::new(&heap, LabyrinthConfig { width: 4, height: 4, layers: 1 });
        let mut w = rt.open_session().expect("free worker slot");
        // Wall off the middle columns on the single layer.
        for y in 0..4 {
            heap.store(lab.cell(lab.index(1, y, 0)), 99);
            heap.store(lab.cell(lab.index(2, y, 0)), 99);
        }
        let free_before: Vec<u64> = (0..lab.cells()).map(|c| heap.load(lab.cell(c))).collect();
        let ok = w.execute(TxKind::ReadWrite, |tx| {
            lab.route(tx, lab.index(0, 0, 0), lab.index(3, 3, 0), 1)
        });
        assert!(!ok, "walled grid must block");
        let after: Vec<u64> = (0..lab.cells()).map(|c| heap.load(lab.cell(c))).collect();
        assert_eq!(free_before, after, "blocked route mutated the grid");
    }

    #[test]
    fn routing_and_ripup_keep_grid_consistent() {
        let (heap, rt) = single_runtime(Algorithm::Norec);
        let lab = Labyrinth::new(&heap, small());
        let mut w = rt.open_session().expect("free worker slot");
        let mut rng = WorkloadRng::seed_from_u64(13);
        for _ in 0..300 {
            lab.run_op(&mut w, &mut rng);
        }
        lab.verify(&heap).unwrap();
        assert!(lab.routed() > 0, "nothing ever routed");
    }

    #[test]
    fn concurrent_routing_never_overlaps() {
        let (heap, rt) = single_runtime(Algorithm::RhNorec);
        let lab = Arc::new(Labyrinth::new(&heap, LabyrinthConfig { width: 16, height: 16, layers: 2 }));
        std::thread::scope(|s| {
            for tid in 0..3usize {
                let rt = Arc::clone(&rt);
                let lab = Arc::clone(&lab);
                s.spawn(move || {
                    let mut w = rt.open_session().expect("free worker slot");
                    let mut rng = WorkloadRng::seed_from_u64(tid as u64);
                    for _ in 0..150 {
                        lab.run_op(&mut w, &mut rng);
                    }
                });
            }
        });
        lab.verify(&heap).unwrap();
    }
}
