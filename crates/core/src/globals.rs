//! The hybrid protocols' global coordination variables.
//!
//! The paper's protocols coordinate through three shared variables (§2.3)
//! plus the retry policy's serial lock (§3.3). All of them live in the
//! simulated heap — one per cache line so that subscribing to one never
//! tracks another — because the hardware fast paths must be able to read
//! and write them transactionally. The commit clock itself is a
//! [`ClockScheme`]: the classic single word by default, or per-core
//! sequence lanes plus a write-phase epoch when `clock_shards > 1`
//! (DESIGN.md §11).

use sim_mem::{Addr, Heap, LineId, WORDS_PER_LINE};

use crate::clock_shard::{ClockScheme, MAX_CLOCK_SHARDS};

/// Version-clock encoding helpers (lock bit in bit 0, version above it) —
/// the paper's `is_locked` / `set_lock_bit` / `clear_lock_bit`.
pub mod clock {
    /// Whether the clock value carries the writer lock bit.
    #[inline]
    pub const fn is_locked(value: u64) -> bool {
        value & 1 == 1
    }

    /// The clock value with the lock bit set.
    #[inline]
    pub const fn set_lock_bit(value: u64) -> u64 {
        value | 1
    }

    /// The clock value with the lock bit cleared.
    #[inline]
    pub const fn clear_lock_bit(value: u64) -> u64 {
        value & !1
    }

    /// The unlocked clock value one version later.
    #[inline]
    pub const fn next_version(value: u64) -> u64 {
        clear_lock_bit(value) + 2
    }
}

/// Diagnostic labels of the clock lanes, indexed by lane.
const LANE_NAMES: [&str; MAX_CLOCK_SHARDS] = [
    "clock_lane_0",
    "clock_lane_1",
    "clock_lane_2",
    "clock_lane_3",
    "clock_lane_4",
    "clock_lane_5",
    "clock_lane_6",
    "clock_lane_7",
];

/// Heap addresses of the protocol's global variables.
#[derive(Clone, Copy, Debug)]
pub struct Globals {
    /// The NOrec commit clock (single word or sharded sequence lanes).
    pub clock: ClockScheme,
    /// Set to abort all hardware fast paths when a mixed slow path must run
    /// its writes in software.
    pub global_htm_lock: Addr,
    /// Number of transactions currently on a software/mixed slow path.
    pub num_of_fallbacks: Addr,
    /// The starvation-avoidance serial lock (§3.3).
    pub serial_lock: Addr,
}

impl Globals {
    /// Allocates the globals, one slot per cache line, zero-initialized.
    /// `clock_shards == 1` lays out exactly the classic four slots (clock
    /// word first); `clock_shards > 1` allocates the lane vector first and
    /// the write-phase epoch last, each on its own line.
    ///
    /// # Panics
    ///
    /// Panics if `clock_shards` is outside `1..=MAX_CLOCK_SHARDS`, or if
    /// the heap cannot satisfy the line-sized allocations.
    pub fn allocate(heap: &Heap, clock_shards: u32) -> Globals {
        Globals::allocate_adaptive(heap, clock_shards, false)
    }

    /// [`Globals::allocate`] with the policy lane controller's
    /// `clock_lane_ctl` word (its own cache line, initialized to
    /// `clock_shards` so adaptation starts from the full sharding).
    /// `lane_adaptation` is ignored for the single clock, which has
    /// nothing to adapt.
    pub fn allocate_adaptive(heap: &Heap, clock_shards: u32, lane_adaptation: bool) -> Globals {
        assert!(
            clock_shards >= 1 && clock_shards as usize <= MAX_CLOCK_SHARDS,
            "clock_shards must be in 1..={MAX_CLOCK_SHARDS}"
        );
        let alloc = heap.allocator();
        let slot = || {
            alloc
                .alloc(0, WORDS_PER_LINE)
                .expect("heap too small for TM globals")
        };
        let mut lanes = [Addr::NULL; MAX_CLOCK_SHARDS];
        for lane in lanes.iter_mut().take(clock_shards as usize) {
            *lane = slot();
        }
        let global_htm_lock = slot();
        let num_of_fallbacks = slot();
        let serial_lock = slot();
        let epoch = if clock_shards == 1 { Addr::NULL } else { slot() };
        let lane_ctl = if lane_adaptation && clock_shards > 1 {
            let ctl = slot();
            heap.store(ctl, u64::from(clock_shards));
            ctl
        } else {
            Addr::NULL
        };
        let globals = Globals {
            clock: ClockScheme::new(lanes, clock_shards, epoch, lane_ctl),
            global_htm_lock,
            num_of_fallbacks,
            serial_lock,
        };
        debug_assert!(
            globals.false_sharing().is_empty(),
            "TM globals share a cache line: {:?}",
            globals.false_sharing()
        );
        globals
    }

    /// Every live protocol slot with a diagnostic label, in allocation
    /// order.
    pub fn slots(&self) -> Vec<(&'static str, Addr)> {
        let mut slots = Vec::with_capacity(self.clock.shards() as usize + 4);
        for (i, name) in LANE_NAMES.iter().enumerate().take(self.clock.shards() as usize) {
            slots.push((*name, self.clock.lane(i)));
        }
        slots.push(("global_htm_lock", self.global_htm_lock));
        slots.push(("num_of_fallbacks", self.num_of_fallbacks));
        slots.push(("serial_lock", self.serial_lock));
        if let Some(epoch) = self.clock.epoch_addr() {
            slots.push(("clock_epoch", epoch));
        }
        if let Some(ctl) = self.clock.lane_ctl_addr() {
            slots.push(("clock_lane_ctl", ctl));
        }
        slots
    }

    /// The false-sharing audit: every pair of protocol slots that lands on
    /// the same simulated cache line. A well-formed allocation returns an
    /// empty list — [`Globals::allocate`] asserts it, and the layout test
    /// checks it for every shard count.
    pub fn false_sharing(&self) -> Vec<(&'static str, &'static str)> {
        let slots = self.slots();
        let mut shared = Vec::new();
        for i in 0..slots.len() {
            for j in i + 1..slots.len() {
                if LineId::containing(slots[i].1) == LineId::containing(slots[j].1) {
                    shared.push((slots[i].0, slots[j].0));
                }
            }
        }
        shared
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mem::HeapConfig;

    #[test]
    fn clock_encoding_round_trips() {
        let v = 42 << 1;
        assert!(!clock::is_locked(v));
        let locked = clock::set_lock_bit(v);
        assert!(clock::is_locked(locked));
        assert_eq!(clock::clear_lock_bit(locked), v);
        assert_eq!(clock::next_version(locked), v + 2);
        assert_eq!(clock::next_version(v), v + 2);
    }

    #[test]
    fn no_false_sharing_at_any_shard_count() {
        for lane_adaptation in [false, true] {
            for shards in 1..=MAX_CLOCK_SHARDS as u32 {
                let heap = Heap::new(HeapConfig { words: 1 << 12 });
                let g = Globals::allocate_adaptive(&heap, shards, lane_adaptation);
                assert_eq!(
                    g.false_sharing(),
                    Vec::<(&str, &str)>::new(),
                    "globals share a cache line at clock_shards={shards}"
                );
                let ctl_slots = usize::from(lane_adaptation && shards > 1);
                let expected_slots = shards as usize + if shards == 1 { 3 } else { 4 } + ctl_slots;
                assert_eq!(g.slots().len(), expected_slots);
            }
        }
    }

    #[test]
    fn lane_ctl_is_allocated_only_for_adaptive_sharded_clocks() {
        let heap = Heap::new(HeapConfig { words: 1 << 12 });
        assert!(Globals::allocate(&heap, 4).clock.lane_ctl_addr().is_none());
        assert!(Globals::allocate_adaptive(&heap, 1, true).clock.lane_ctl_addr().is_none());
        let g = Globals::allocate_adaptive(&heap, 4, true);
        let ctl = g.clock.lane_ctl_addr().expect("adaptive sharded clock allocates lane_ctl");
        assert_eq!(heap.load(ctl), 4, "starts at the full sharding");
        assert_eq!(g.clock.active_lanes(&heap), 4);
    }

    #[test]
    fn single_clock_layout_has_no_epoch() {
        let heap = Heap::new(HeapConfig { words: 1 << 12 });
        let g = Globals::allocate(&heap, 1);
        assert_eq!(g.clock.shards(), 1);
        assert!(g.clock.epoch_addr().is_none());
    }

    #[test]
    #[should_panic(expected = "clock_shards must be in 1..=")]
    fn zero_shards_is_rejected() {
        let heap = Heap::new(HeapConfig { words: 1 << 12 });
        let _ = Globals::allocate(&heap, 0);
    }

    #[test]
    fn clock_lock_bit_round_trips_at_extremes() {
        for v in [0u64, 1, 2, u64::MAX - 1, u64::MAX] {
            let locked = clock::set_lock_bit(v);
            assert!(clock::is_locked(locked));
            assert_eq!(clock::set_lock_bit(locked), locked, "set is idempotent");
            let unlocked = clock::clear_lock_bit(v);
            assert!(!clock::is_locked(unlocked));
            assert_eq!(clock::clear_lock_bit(unlocked), unlocked, "clear is idempotent");
            assert_eq!(clock::clear_lock_bit(locked), clock::clear_lock_bit(v));
            assert_eq!(locked | unlocked, v | 1);
        }
        assert!(clock::is_locked(u64::MAX));
        assert!(!clock::is_locked(u64::MAX - 1));
    }

    #[test]
    fn next_version_near_u64_max() {
        // u64::MAX - 1 is the largest unlocked (even) clock value; the
        // largest value `next_version` accepts without overflowing is
        // therefore u64::MAX - 3 (and its locked form u64::MAX - 2).
        assert_eq!(clock::next_version(u64::MAX - 3), u64::MAX - 1);
        assert_eq!(clock::next_version(u64::MAX - 2), u64::MAX - 1);
        assert_eq!(clock::next_version(0), 2);
        assert_eq!(clock::next_version(1), 2);
    }

    #[test]
    fn freshly_allocated_globals_read_as_unlocked() {
        let heap = Heap::new(HeapConfig { words: 1 << 12 });
        let g = Globals::allocate(&heap, 1);
        let word = g.clock.lane(0);
        assert!(!clock::is_locked(heap.load(word)));
        // A locked clock round-trips through the heap unharmed.
        heap.store(word, clock::set_lock_bit(heap.load(word)));
        assert!(clock::is_locked(heap.load(word)));
        heap.store(word, clock::clear_lock_bit(heap.load(word)));
        assert!(!clock::is_locked(heap.load(word)));
    }

    #[test]
    fn globals_start_zeroed() {
        for shards in [1u32, 4] {
            let heap = Heap::new(HeapConfig { words: 1 << 12 });
            let g = Globals::allocate(&heap, shards);
            for (name, addr) in g.slots() {
                assert_eq!(heap.load(addr), 0, "{name} not zeroed at clock_shards={shards}");
            }
        }
    }
}
