//! A transactional chained hash table (the STAMP `hashtable`/`map`
//! substrate used by intruder, genome and vacation).
//!
//! Fixed bucket count, separate chaining. Bucket array is allocated at
//! setup; chain node layout: `[next, key, value]`.

use rh_norec::prelude::{Tx, TxResult};
use sim_mem::{Addr, Heap};

const NEXT: u64 = 0;
const KEY: u64 = 1;
const VALUE: u64 = 2;
const NODE_WORDS: u64 = 3;

/// A fixed-size chained hash table keyed by `u64`.
#[derive(Clone, Copy, Debug)]
pub struct HashTable {
    buckets: Addr,
    bucket_count: u64,
}

impl HashTable {
    /// Allocates a table with `bucket_count` buckets (rounded up to a power
    /// of two), non-transactionally.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_count` is 0 or the heap is exhausted.
    pub fn create(heap: &Heap, bucket_count: u64) -> HashTable {
        assert!(bucket_count > 0, "hash table needs at least one bucket");
        let bucket_count = bucket_count.next_power_of_two();
        let buckets = heap
            .allocator()
            .alloc(0, bucket_count)
            .expect("heap exhausted allocating hash buckets");
        HashTable { buckets, bucket_count }
    }

    #[inline]
    fn bucket(&self, key: u64) -> Addr {
        // Fibonacci hashing spreads adjacent keys across buckets.
        let h = key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32;
        self.buckets.offset(h & (self.bucket_count - 1))
    }

    /// Looks up `key`.
    ///
    /// # Errors
    ///
    /// Propagates transaction restarts.
    pub fn get(&self, tx: &mut Tx<'_>, key: u64) -> TxResult<Option<u64>> {
        let mut node = tx.read_addr(self.bucket(key))?;
        while !node.is_null() {
            if tx.read(node.offset(KEY))? == key {
                return Ok(Some(tx.read(node.offset(VALUE))?));
            }
            node = tx.read_addr(node.offset(NEXT))?;
        }
        Ok(None)
    }

    /// Inserts `key` if absent. Returns `true` if inserted, `false` if the
    /// key already existed (STAMP's `TMhashtable_insert` semantics).
    ///
    /// # Errors
    ///
    /// Propagates transaction restarts.
    pub fn insert(&self, tx: &mut Tx<'_>, key: u64, value: u64) -> TxResult<bool> {
        let bucket = self.bucket(key);
        let head = tx.read_addr(bucket)?;
        let mut node = head;
        while !node.is_null() {
            if tx.read(node.offset(KEY))? == key {
                return Ok(false);
            }
            node = tx.read_addr(node.offset(NEXT))?;
        }
        let new = tx.alloc(NODE_WORDS)?;
        tx.write_addr(new.offset(NEXT), head)?;
        tx.write(new.offset(KEY), key)?;
        tx.write(new.offset(VALUE), value)?;
        tx.write_addr(bucket, new)?;
        Ok(true)
    }

    /// Inserts or updates `key`, returning the previous value if any.
    ///
    /// # Errors
    ///
    /// Propagates transaction restarts.
    pub fn put(&self, tx: &mut Tx<'_>, key: u64, value: u64) -> TxResult<Option<u64>> {
        let bucket = self.bucket(key);
        let head = tx.read_addr(bucket)?;
        let mut node = head;
        while !node.is_null() {
            if tx.read(node.offset(KEY))? == key {
                let old = tx.read(node.offset(VALUE))?;
                tx.write(node.offset(VALUE), value)?;
                return Ok(Some(old));
            }
            node = tx.read_addr(node.offset(NEXT))?;
        }
        let new = tx.alloc(NODE_WORDS)?;
        tx.write_addr(new.offset(NEXT), head)?;
        tx.write(new.offset(KEY), key)?;
        tx.write(new.offset(VALUE), value)?;
        tx.write_addr(bucket, new)?;
        Ok(None)
    }

    /// Removes `key`, returning its value if present. Frees the node.
    ///
    /// # Errors
    ///
    /// Propagates transaction restarts.
    pub fn remove(&self, tx: &mut Tx<'_>, key: u64) -> TxResult<Option<u64>> {
        let bucket = self.bucket(key);
        let mut prev = Addr::NULL;
        let mut node = tx.read_addr(bucket)?;
        while !node.is_null() {
            let next = tx.read_addr(node.offset(NEXT))?;
            if tx.read(node.offset(KEY))? == key {
                let value = tx.read(node.offset(VALUE))?;
                if prev.is_null() {
                    tx.write_addr(bucket, next)?;
                } else {
                    tx.write_addr(prev.offset(NEXT), next)?;
                }
                tx.free(node)?;
                return Ok(Some(value));
            }
            prev = node;
            node = next;
        }
        Ok(None)
    }

    /// Counts all entries (quiescent heap only).
    pub fn len(&self, heap: &Heap) -> u64 {
        let mut count = 0;
        for b in 0..self.bucket_count {
            let mut node = Addr::from_word(heap.load(self.buckets.offset(b)));
            while !node.is_null() {
                count += 1;
                node = Addr::from_word(heap.load(node.offset(NEXT)));
            }
        }
        count
    }

    /// Whether the table is empty (quiescent heap only).
    pub fn is_empty(&self, heap: &Heap) -> bool {
        self.len(heap) == 0
    }

    /// Collects all `(key, value)` pairs in unspecified order (quiescent
    /// heap only).
    pub fn collect(&self, heap: &Heap) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for b in 0..self.bucket_count {
            let mut node = Addr::from_word(heap.load(self.buckets.offset(b)));
            while !node.is_null() {
                out.push((heap.load(node.offset(KEY)), heap.load(node.offset(VALUE))));
                node = Addr::from_word(heap.load(node.offset(NEXT)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::single_runtime;
    use rh_norec::prelude::{Algorithm, TxKind};

    #[test]
    fn insert_get_remove() {
        let (heap, rt) = single_runtime(Algorithm::Norec);
        let table = HashTable::create(&heap, 16);
        let mut w = rt.open_session().expect("free worker slot");
        assert!(w.execute(TxKind::ReadWrite, |tx| table.insert(tx, 1, 10)));
        assert!(!w.execute(TxKind::ReadWrite, |tx| table.insert(tx, 1, 11)));
        assert_eq!(w.execute(TxKind::ReadOnly, |tx| table.get(tx, 1)), Some(10));
        assert_eq!(w.execute(TxKind::ReadWrite, |tx| table.remove(tx, 1)), Some(10));
        assert!(table.is_empty(&heap));
    }

    #[test]
    fn put_overwrites() {
        let (heap, rt) = single_runtime(Algorithm::Norec);
        let table = HashTable::create(&heap, 4);
        let mut w = rt.open_session().expect("free worker slot");
        assert_eq!(w.execute(TxKind::ReadWrite, |tx| table.put(tx, 9, 1)), None);
        assert_eq!(w.execute(TxKind::ReadWrite, |tx| table.put(tx, 9, 2)), Some(1));
        assert_eq!(w.execute(TxKind::ReadOnly, |tx| table.get(tx, 9)), Some(2));
    }

    #[test]
    fn collisions_chain_correctly() {
        let (heap, rt) = single_runtime(Algorithm::Norec);
        let table = HashTable::create(&heap, 1); // everything collides
        let mut w = rt.open_session().expect("free worker slot");
        for k in 0..50u64 {
            assert!(w.execute(TxKind::ReadWrite, |tx| table.insert(tx, k, k * 2)));
        }
        assert_eq!(table.len(&heap), 50);
        for k in 0..50u64 {
            assert_eq!(w.execute(TxKind::ReadOnly, |tx| table.get(tx, k)), Some(k * 2));
        }
        // Remove from middle, head, and tail of the chain.
        for k in [25u64, 49, 0] {
            assert_eq!(w.execute(TxKind::ReadWrite, |tx| table.remove(tx, k)), Some(k * 2));
        }
        assert_eq!(table.len(&heap), 47);
    }

    #[test]
    fn matches_model_under_random_ops() {
        let (heap, rt) = single_runtime(Algorithm::Norec);
        let table = HashTable::create(&heap, 8);
        let mut w = rt.open_session().expect("free worker slot");
        let mut model = std::collections::HashMap::new();
        let mut rng = 7u64;
        for _ in 0..2000 {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let key = rng % 64;
            match (rng >> 20) % 3 {
                0 => {
                    let mine = w.execute(TxKind::ReadWrite, |tx| table.put(tx, key, rng));
                    assert_eq!(mine, model.insert(key, rng));
                }
                1 => {
                    let mine = w.execute(TxKind::ReadWrite, |tx| table.remove(tx, key));
                    assert_eq!(mine, model.remove(&key));
                }
                _ => {
                    let mine = w.execute(TxKind::ReadOnly, |tx| table.get(tx, key));
                    assert_eq!(mine, model.get(&key).copied());
                }
            }
        }
        let mut got = table.collect(&heap);
        got.sort_unstable();
        let mut want: Vec<(u64, u64)> = model.into_iter().collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}
