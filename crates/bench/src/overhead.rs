//! `rh-bench overhead`: per-operation cost of the TM API.
//!
//! The RH NOrec fast path is supposed to be *uninstrumented* — the HyTM
//! lower-bound results (Alistarh et al.; Brown & Ravi) show per-access
//! instrumentation is exactly what kills hybrid scaling. This benchmark
//! measures what one transactional access actually costs through the
//! public `Tx` handle, per algorithm. Any cycles left here are pure API,
//! dispatch, and log-engine tax.
//!
//! Five scenarios per algorithm:
//!
//! * `read` — a `TxKind::ReadOnly` transaction of 16 uncontended reads
//!   (HTM on: hybrids run their fast path),
//! * `read_write` — a `TxKind::ReadWrite` transaction of 8 read/write
//!   pairs (HTM on),
//! * `write_heavy` — 16 writes cycling over 4 distinct addresses, **HTM
//!   disabled** so the hybrids run their software slow paths: exercises
//!   write-set coalescing (4 live entries, not 16) and write-back,
//! * `read_after_write` — 16 writes to distinct addresses, then 8 reads
//!   of written addresses (read-after-write hits) and 8 reads of
//!   unwritten ones (misses), HTM disabled: exercises the write-set
//!   lookup path on both sides of the bloom filter,
//! * `contended` — 4 threads incrementing one shared cell (HTM on):
//!   exercises the fast-path retry and spin-site backoff under real
//!   contention. Wall-clock noise makes this cell informative rather
//!   than gated.
//!
//! Results go to stdout (table or `--csv`) and to `BENCH_3.json`, which
//! also embeds the pre-txlog baseline (per-attempt `Vec` allocation,
//! reverse-scan read-after-write lookup, SipHash TL2 owned map, no
//! backoff) captured before the log-engine rework, so the before/after
//! comparison survives in machine-readable form.

use std::sync::Arc;
use std::time::{Duration, Instant};

use rh_norec::{Algorithm, TmConfig, TmRuntime, TxKind};
use sim_htm::{Htm, HtmConfig};
use sim_mem::{Addr, Heap, HeapConfig};

use crate::figures::Scale;

/// Transactional accesses per transaction in the `read` / `read_write` /
/// `write_heavy` scenarios (kept from BENCH_2 for comparability).
pub const ACCESSES_PER_TX: u64 = 16;

/// One benchmark scenario: body shape plus machine configuration.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioSpec {
    /// Scenario name (stable across BENCH files).
    pub name: &'static str,
    /// Transactional accesses per transaction.
    pub accesses: u64,
    /// Whether the simulated HTM is available. Off forces the hybrid
    /// algorithms onto their software slow paths.
    pub htm: bool,
    /// Worker threads (1 = uncontended single-thread cell).
    pub threads: usize,
}

/// The full scenario matrix.
pub const SCENARIOS: &[ScenarioSpec] = &[
    ScenarioSpec { name: "read", accesses: 16, htm: true, threads: 1 },
    ScenarioSpec { name: "read_write", accesses: 16, htm: true, threads: 1 },
    ScenarioSpec { name: "write_heavy", accesses: 16, htm: false, threads: 1 },
    ScenarioSpec { name: "read_after_write", accesses: 32, htm: false, threads: 1 },
    ScenarioSpec { name: "contended", accesses: 2, htm: true, threads: 4 },
];

/// Per-op numbers captured **before** the txlog rework: slow paths
/// allocated fresh `Vec`s per attempt, read-after-write was a reverse
/// linear scan of the write set, duplicate writes appended (and wrote
/// back) once per write, TL2 keyed its owned-stripe map with std's
/// SipHash `HashMap`, and every spin site busy-yielded with no backoff.
/// Units are nanoseconds, measured on the CI container by this same
/// harness (quick scale) built against the pre-rework engine; each cell
/// is the minimum over four interleaved runs alternated with the
/// post-rework binary, so both sides of the comparison saw the same host
/// load. Kept as data so `BENCH_3.json` always reports the
/// before/after pair.
const BASELINE_PRE_TXLOG: &[(&str, &str, f64, f64)] = &[
    ("Lock Elision", "read", 828.27, 51.767),
    ("Lock Elision", "read_write", 1254.82, 78.427),
    ("Lock Elision", "write_heavy", 483.18, 30.199),
    ("Lock Elision", "read_after_write", 549.17, 17.161),
    ("Lock Elision", "contended", 301.68, 150.840),
    ("NOrec", "read", 179.40, 11.213),
    ("NOrec", "read_write", 320.12, 20.008),
    ("NOrec", "write_heavy", 485.42, 30.339),
    ("NOrec", "read_after_write", 575.96, 17.999),
    ("NOrec", "contended", 129.64, 64.820),
    ("NOrec-Lazy", "read", 272.12, 17.007),
    ("NOrec-Lazy", "read_write", 479.08, 29.943),
    ("NOrec-Lazy", "write_heavy", 555.68, 34.730),
    ("NOrec-Lazy", "read_after_write", 864.91, 27.029),
    ("NOrec-Lazy", "contended", 167.59, 83.796),
    ("TL2", "read", 232.27, 14.517),
    ("TL2", "read_write", 838.62, 52.414),
    ("TL2", "write_heavy", 783.93, 48.996),
    ("TL2", "read_after_write", 1582.87, 49.465),
    ("TL2", "contended", 164.33, 82.167),
    ("HY-NOrec", "read", 848.69, 53.043),
    ("HY-NOrec", "read_write", 1402.97, 87.685),
    ("HY-NOrec", "write_heavy", 595.74, 37.234),
    ("HY-NOrec", "read_after_write", 674.19, 21.068),
    ("HY-NOrec", "contended", 417.56, 208.782),
    ("HY-NOrec-Lazy", "read", 895.54, 55.971),
    ("HY-NOrec-Lazy", "read_write", 1384.77, 86.548),
    ("HY-NOrec-Lazy", "write_heavy", 661.51, 41.345),
    ("HY-NOrec-Lazy", "read_after_write", 992.40, 31.013),
    ("HY-NOrec-Lazy", "contended", 424.02, 212.008),
    ("RH-NOrec", "read", 845.98, 52.874),
    ("RH-NOrec", "read_write", 1356.85, 84.803),
    ("RH-NOrec", "write_heavy", 651.44, 40.715),
    ("RH-NOrec", "read_after_write", 736.70, 23.022),
    ("RH-NOrec", "contended", 362.72, 181.359),
    ("RH-NOrec-Postfix", "read", 841.25, 52.578),
    ("RH-NOrec-Postfix", "read_write", 1314.00, 82.125),
    ("RH-NOrec-Postfix", "write_heavy", 630.56, 39.410),
    ("RH-NOrec-Postfix", "read_after_write", 716.40, 22.387),
    ("RH-NOrec-Postfix", "contended", 357.98, 178.989),
];

/// Engine description of the baseline rows above.
const BASELINE_ENGINE: &str = "per-attempt Vec logs, reverse-scan RAW lookup, SipHash TL2 owned map, no backoff";

/// Engine description of the current rows.
const CURRENT_ENGINE: &str =
    "recycled txlog arenas, coalescing indexed write-set + bloom, seeded backoff";

/// One measured cell.
#[derive(Clone, Debug)]
pub struct OverheadRow {
    /// Algorithm label (matches figure legends).
    pub algorithm: &'static str,
    /// Scenario name.
    pub scenario: &'static str,
    /// Transactions measured (after warmup).
    pub txs: u64,
    /// Wall-clock nanoseconds per transaction.
    pub ns_per_tx: f64,
    /// Wall-clock nanoseconds per transactional access.
    pub ns_per_access: f64,
}

fn measure_budget(scale: Scale) -> Duration {
    match scale {
        Scale::Quick => Duration::from_millis(96),
        Scale::Paper => Duration::from_millis(400),
    }
}

/// Measurement passes per cell. Each cell's budget is split into
/// `PASSES` slices interleaved with every other cell's, so a
/// multi-second load burst on a shared host degrades *some batches of
/// every cell* instead of *every batch of one cell* — the per-cell
/// minimum then recovers the uncontended cost for all of them.
const PASSES: u32 = 4;

fn make_runtime(algorithm: Algorithm, htm_on: bool) -> (Arc<Heap>, Arc<TmRuntime>) {
    let heap = Arc::new(Heap::new(HeapConfig { words: 1 << 16 }));
    // Default HTM config: ample capacity, no spurious aborts; disabled
    // models a machine without RTM so the software slow paths run alone.
    let htm_cfg = if htm_on { HtmConfig::default() } else { HtmConfig::disabled() };
    let htm = Htm::new(Arc::clone(&heap), htm_cfg);
    let rt = TmRuntime::new(Arc::clone(&heap), htm, TmConfig::new(algorithm))
        .expect("overhead runtime construction cannot fail");
    (heap, rt)
}

fn alloc_slots(heap: &Heap) -> Vec<Addr> {
    let alloc = heap.allocator();
    (0..64)
        .map(|i| {
            let a = alloc.alloc(0, 8).expect("overhead heap too small");
            heap.store(a, i);
            a
        })
        .collect()
}

fn run_body(scenario: &'static str, worker: &mut rh_norec::TmThread, slots: &[Addr]) {
    match scenario {
        "read" => {
            let sum = worker.execute(TxKind::ReadOnly, |tx| {
                let mut acc = 0u64;
                for slot in &slots[..16] {
                    acc = acc.wrapping_add(tx.read(*slot)?);
                }
                Ok(acc)
            });
            std::hint::black_box(sum);
        }
        "read_write" => {
            worker.execute(TxKind::ReadWrite, |tx| {
                for i in 0..8 {
                    let v = tx.read(slots[i])?;
                    tx.write(slots[32 + i], v.wrapping_add(1))?;
                }
                Ok(())
            });
        }
        "write_heavy" => {
            // 16 writes over 4 addresses: a coalescing write-set keeps 4
            // live entries and writes back 4 words; an append-only one
            // keeps 16 and writes back 16.
            worker.execute(TxKind::ReadWrite, |tx| {
                for i in 0..16u64 {
                    tx.write(slots[(i & 3) as usize], i)?;
                }
                Ok(())
            });
        }
        "read_after_write" => {
            // 16 distinct writes, then 8 read-after-write hits and 8
            // misses: hits exercise the write-set lookup, misses the
            // bloom-filter negative path.
            let sum = worker.execute(TxKind::ReadWrite, |tx| {
                for i in 0..16u64 {
                    tx.write(slots[i as usize], i)?;
                }
                let mut acc = 0u64;
                for slot in &slots[..8] {
                    acc = acc.wrapping_add(tx.read(*slot)?);
                }
                for slot in &slots[32..40] {
                    acc = acc.wrapping_add(tx.read(*slot)?);
                }
                Ok(acc)
            });
            std::hint::black_box(sum);
        }
        other => unreachable!("unknown overhead scenario {other}"),
    }
}

/// A warmed-up single-threaded cell with its accumulated measurement
/// state, kept alive across interleaved passes.
struct LiveCell {
    algorithm: Algorithm,
    spec: &'static ScenarioSpec,
    worker: rh_norec::TmThread,
    slots: Vec<Addr>,
    best_batch: Duration,
    txs: u64,
}

impl LiveCell {
    fn new(algorithm: Algorithm, spec: &'static ScenarioSpec) -> Self {
        let (heap, rt) = make_runtime(algorithm, spec.htm);
        let mut worker = rt.register(0).expect("fresh thread id");
        let slots = alloc_slots(&heap);
        // Warmup: fault in the working set, settle adaptive state, and
        // let the recycled log arenas reach their steady-state capacity.
        for _ in 0..2_000 {
            run_body(spec.name, &mut worker, &slots);
        }
        LiveCell {
            algorithm,
            spec,
            worker,
            slots,
            best_batch: Duration::MAX,
            txs: 0,
        }
    }

    /// One timed slice: batches of 1024 transactions until the slice
    /// budget elapses, keeping the fastest batch. We report the minimum,
    /// not the mean: on a shared CI machine the mean folds in scheduler
    /// preemptions and co-tenant load, while the minimum converges on
    /// the true uncontended cost.
    fn pass(&mut self, slice: Duration) {
        let started = Instant::now();
        loop {
            let batch_started = Instant::now();
            for _ in 0..1_024 {
                run_body(self.spec.name, &mut self.worker, &self.slots);
            }
            self.best_batch = self.best_batch.min(batch_started.elapsed());
            self.txs += 1_024;
            if started.elapsed() >= slice {
                break;
            }
        }
    }

    fn into_row(self) -> OverheadRow {
        let ns_per_tx = self.best_batch.as_nanos() as f64 / 1_024.0;
        OverheadRow {
            algorithm: self.algorithm.label(),
            scenario: self.spec.name,
            txs: self.txs,
            ns_per_tx,
            ns_per_access: ns_per_tx / self.spec.accesses as f64,
        }
    }
}

/// Runs the multi-threaded contended-cell scenario: `threads` workers
/// each increment one shared word `txs_per_thread` times.
fn run_contended(algorithm: Algorithm, spec: &ScenarioSpec, scale: Scale) -> OverheadRow {
    let (heap, rt) = make_runtime(algorithm, spec.htm);
    let alloc = heap.allocator();
    let cell = alloc.alloc(0, 8).expect("overhead heap too small");

    let txs_per_thread: u64 = match scale {
        Scale::Quick => 4_000,
        Scale::Paper => 25_000,
    };
    let started = Instant::now();
    std::thread::scope(|s| {
        for tid in 0..spec.threads {
            let rt = Arc::clone(&rt);
            s.spawn(move || {
                let mut worker = rt.register(tid).expect("fresh thread id");
                for _ in 0..txs_per_thread {
                    worker.execute(TxKind::ReadWrite, |tx| {
                        let v = tx.read(cell)?;
                        tx.write(cell, v.wrapping_add(1))
                    });
                }
            });
        }
    });
    let elapsed = started.elapsed();

    let txs = txs_per_thread * spec.threads as u64;
    assert_eq!(
        heap.load(cell),
        txs,
        "{algorithm:?} lost updates on the contended cell"
    );
    let ns_per_tx = elapsed.as_nanos() as f64 / txs as f64;
    OverheadRow {
        algorithm: algorithm.label(),
        scenario: spec.name,
        txs,
        ns_per_tx,
        ns_per_access: ns_per_tx / spec.accesses as f64,
    }
}

/// Runs the full overhead matrix: every algorithm × every scenario.
pub fn run_matrix(scale: Scale) -> Vec<OverheadRow> {
    let budget = measure_budget(scale);

    // Warm up every single-threaded cell, then interleave their
    // measurement passes (see [`PASSES`]).
    let mut singles: Vec<LiveCell> = Algorithm::ALL
        .iter()
        .flat_map(|&algorithm| {
            SCENARIOS
                .iter()
                .filter(|spec| spec.threads == 1)
                .map(move |spec| LiveCell::new(algorithm, spec))
        })
        .collect();
    let slice = budget / PASSES;
    for _ in 0..PASSES {
        for cell in &mut singles {
            cell.pass(slice);
        }
    }

    // The multi-threaded cells run once each, after the gated cells, so
    // their thread churn does not perturb the single-thread minima.
    let mut single_rows = singles.into_iter().map(LiveCell::into_row);
    let mut rows = Vec::new();
    for &algorithm in &Algorithm::ALL {
        for spec in SCENARIOS {
            if spec.threads == 1 {
                rows.push(single_rows.next().expect("one row per single cell"));
            } else {
                rows.push(run_contended(algorithm, spec, scale));
            }
        }
    }
    rows
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn rows_json(out: &mut String, rows: &[(&str, &str, f64, f64, Option<u64>)]) {
    out.push_str("[\n");
    for (i, (alg, scenario, ns_tx, ns_access, txs)) in rows.iter().enumerate() {
        out.push_str("      {");
        out.push_str(&format!(
            "\"algorithm\": \"{}\", \"scenario\": \"{}\", \"ns_per_tx\": {:.2}, \"ns_per_access\": {:.3}",
            json_escape(alg),
            json_escape(scenario),
            ns_tx,
            ns_access
        ));
        if let Some(txs) = txs {
            out.push_str(&format!(", \"txs\": {txs}"));
        }
        out.push('}');
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("    ]");
}

/// Serializes the result (plus the embedded pre-txlog baseline) as the
/// `BENCH_3.json` document.
pub fn to_json(rows: &[OverheadRow]) -> String {
    let current: Vec<(&str, &str, f64, f64, Option<u64>)> = rows
        .iter()
        .map(|r| (r.algorithm, r.scenario, r.ns_per_tx, r.ns_per_access, Some(r.txs)))
        .collect();
    let baseline: Vec<(&str, &str, f64, f64, Option<u64>)> = BASELINE_PRE_TXLOG
        .iter()
        .map(|&(alg, scenario, ns_tx, ns_access)| (alg, scenario, ns_tx, ns_access, None))
        .collect();

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"overhead\",\n");
    out.push_str(
        "  \"description\": \"per-op cost through the public Tx handle; write_heavy and read_after_write run with HTM disabled (software slow paths), contended runs 4 threads on one cell\",\n",
    );
    out.push_str(&format!(
        "  \"instrumentation_compiled\": {},\n",
        rh_norec::INSTRUMENTED
    ));
    out.push_str("  \"baseline_pre_txlog\": {\n");
    out.push_str(&format!("    \"engine\": \"{}\",\n", json_escape(BASELINE_ENGINE)));
    out.push_str("    \"rows\": ");
    rows_json(&mut out, &baseline);
    out.push_str("\n  },\n");
    out.push_str("  \"current\": {\n");
    out.push_str(&format!("    \"engine\": \"{}\",\n", json_escape(CURRENT_ENGINE)));
    out.push_str("    \"rows\": ");
    rows_json(&mut out, &current);
    out.push_str("\n  }\n");
    out.push_str("}\n");
    out
}

/// Runs the matrix, prints it (`--csv` for machine-readable rows), and
/// writes `BENCH_3.json` into the current directory.
pub fn run(scale: Scale, csv: bool) {
    let rows = run_matrix(scale);

    if csv {
        println!("algorithm,scenario,txs,ns_per_tx,ns_per_access");
        for r in &rows {
            println!(
                "{},{},{},{:.2},{:.3}",
                r.algorithm, r.scenario, r.txs, r.ns_per_tx, r.ns_per_access
            );
        }
    } else {
        println!(
            "overhead: cost per transactional access (instrumentation compiled: {})",
            rh_norec::INSTRUMENTED
        );
        println!(
            "{:<18} {:<17} {:>10} {:>12} {:>14}",
            "algorithm", "scenario", "txs", "ns/tx", "ns/access"
        );
        for r in &rows {
            println!(
                "{:<18} {:<17} {:>10} {:>12.2} {:>14.3}",
                r.algorithm, r.scenario, r.txs, r.ns_per_tx, r.ns_per_access
            );
        }
        if !BASELINE_PRE_TXLOG.is_empty() {
            println!();
            println!("pre-txlog baseline ({BASELINE_ENGINE}):");
            for &(alg, scenario, ns_tx, ns_access) in BASELINE_PRE_TXLOG {
                println!("{alg:<18} {scenario:<17} {:>10} {ns_tx:>12.2} {ns_access:>14.3}", "-");
            }
        }
    }

    let json = to_json(&rows);
    let path = "BENCH_3.json";
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
