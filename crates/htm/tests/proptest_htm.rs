//! Property tests for the simulated HTM: single-thread transactions agree
//! with a sequential model, aborts leave no trace, and capacity accounting
//! is exact.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;
use sim_htm::{AbortCode, Htm, HtmConfig};
use sim_mem::{Addr, Heap, HeapConfig, WORDS_PER_LINE};

#[derive(Clone, Debug)]
enum TxOp {
    Read(u64),
    Write(u64, u64),
}

#[derive(Clone, Debug)]
enum Step {
    /// A transaction made of the contained ops, then commit.
    Tx(Vec<TxOp>),
    /// A transaction that runs its ops and then explicitly aborts.
    AbortedTx(Vec<TxOp>),
    /// A coherent (non-transactional) store.
    Store(u64, u64),
}

const SLOTS: u64 = 24;

fn ops() -> impl Strategy<Value = Vec<TxOp>> {
    prop::collection::vec(
        prop_oneof![
            (0..SLOTS).prop_map(TxOp::Read),
            (0..SLOTS, any::<u64>()).prop_map(|(a, v)| TxOp::Write(a, v)),
        ],
        0..12,
    )
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        prop_oneof![
            ops().prop_map(Step::Tx),
            ops().prop_map(Step::AbortedTx),
            (0..SLOTS, any::<u64>()).prop_map(|(a, v)| Step::Store(a, v)),
        ],
        0..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Sequential execution of transactions, explicit aborts, and coherent
    /// stores matches a plain map model: committed writes land, aborted
    /// writes vanish, reads see the model.
    #[test]
    fn single_thread_matches_model(script in steps()) {
        let heap = Arc::new(Heap::new(HeapConfig { words: 1 << 12 }));
        let htm = Htm::new(Arc::clone(&heap), HtmConfig::default());
        let base = heap.allocator().alloc(0, SLOTS).unwrap();
        let slot = |i: u64| base.offset(i);
        let mut thread = htm.register(0);
        let mut model: HashMap<u64, u64> = HashMap::new();

        for step in script {
            match step {
                Step::Tx(ops) => {
                    thread.begin().unwrap();
                    let mut staged = model.clone();
                    for op in &ops {
                        match *op {
                            TxOp::Read(a) => {
                                let got = thread.read(slot(a)).unwrap();
                                prop_assert_eq!(got, staged.get(&a).copied().unwrap_or(0));
                            }
                            TxOp::Write(a, v) => {
                                thread.write(slot(a), v).unwrap();
                                staged.insert(a, v);
                            }
                        }
                    }
                    thread.commit().unwrap();
                    model = staged;
                }
                Step::AbortedTx(ops) => {
                    thread.begin().unwrap();
                    for op in &ops {
                        match *op {
                            TxOp::Read(a) => { thread.read(slot(a)).unwrap(); }
                            TxOp::Write(a, v) => { thread.write(slot(a), v).unwrap(); }
                        }
                    }
                    let abort = thread.abort(9);
                    prop_assert_eq!(abort.code, AbortCode::Explicit { user_code: 9 });
                }
                Step::Store(a, v) => {
                    heap.store(slot(a), v);
                    model.insert(a, v);
                }
            }
        }
        for a in 0..SLOTS {
            prop_assert_eq!(heap.load(slot(a)), model.get(&a).copied().unwrap_or(0));
        }
    }

    /// Write-set capacity counts distinct lines exactly: a transaction
    /// writing `k` distinct lines commits iff `k <= max_write_lines`.
    #[test]
    fn write_capacity_is_exact(lines in 1usize..12) {
        let config = HtmConfig {
            max_write_lines: 6,
            topology: sim_htm::Topology::no_smt(8),
            ..HtmConfig::default()
        };
        let heap = Arc::new(Heap::new(HeapConfig { words: 1 << 12 }));
        let htm = Htm::new(Arc::clone(&heap), config);
        let base = heap.allocator().alloc(0, 16 * WORDS_PER_LINE).unwrap();
        let mut thread = htm.register(0);
        thread.begin().unwrap();
        let mut failed = None;
        for i in 0..lines {
            // One word per line: distinct lines by construction.
            if let Err(e) = thread.write(base.offset(i as u64 * WORDS_PER_LINE), 1) {
                failed = Some(e);
                break;
            }
        }
        if lines <= 6 {
            prop_assert!(failed.is_none());
            thread.commit().unwrap();
        } else {
            let e = failed.expect("overflow must abort");
            prop_assert_eq!(e.code, AbortCode::Capacity { write_set: true });
        }
    }

    /// Two words written in one transaction are always observed together
    /// by coherent loads, no matter where a reader samples.
    #[test]
    fn commits_publish_atomically(value in 1u64..1000) {
        let heap = Arc::new(Heap::new(HeapConfig { words: 1 << 12 }));
        let htm = Htm::new(Arc::clone(&heap), HtmConfig::default());
        let a = heap.allocator().alloc(0, WORDS_PER_LINE).unwrap();
        let b = heap.allocator().alloc(0, WORDS_PER_LINE).unwrap();
        let mut thread = htm.register(0);
        thread.begin().unwrap();
        thread.write(a, value).unwrap();
        thread.write(b, value).unwrap();
        thread.commit().unwrap();
        prop_assert_eq!(heap.load(a), heap.load(b));
    }
}
