//! Genome: DNA sequence reconstruction by string matching (STAMP).
//!
//! "Genome employs string matching to reconstruct a genome sequence from a
//! set of DNA segments … mostly moderate transactions with a low to
//! moderate contention level, but the instrumentation costs … are very
//! high" (§3.6).
//!
//! A reference genome is sampled into fixed-length segments. Threads
//! deduplicate segments into a shared hash set and link overlapping
//! segments (suffix of one = prefix of another) into reconstruction
//! chains — both hash-probe heavy, which is exactly where instrumentation
//! cost shows.

use std::sync::atomic::{AtomicU64, Ordering};

use rand::Rng;
use rh_norec::prelude::{Session, TxKind};
use sim_mem::Heap;

use crate::structures::HashTable;
use crate::{Workload, WorkloadRng};

/// Configuration of the Genome workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GenomeConfig {
    /// Reference genome length in bases (STAMP `-g`).
    pub genome_bases: u64,
    /// Segment length in bases, ≤ 16 so a segment packs into a word
    /// (STAMP `-s`).
    pub segment_bases: u32,
    /// Number of segments sampled from the genome (STAMP `-n`).
    pub segments: u64,
    /// Segments deduplicated per transaction (STAMP's threads process
    /// their partition in chunks, giving moderate transaction sizes).
    pub batch: u32,
}

impl Default for GenomeConfig {
    fn default() -> Self {
        GenomeConfig {
            genome_bases: 4096,
            segment_bases: 12,
            segments: 16_384,
            batch: 4,
        }
    }
}

/// The Genome workload.
#[derive(Debug)]
pub struct Genome {
    config: GenomeConfig,
    /// The reference genome, 2 bits per base (host-side, read-only input).
    genome: Vec<u8>,
    /// Sampled segment start positions (read-only input).
    samples: Vec<u64>,
    /// Dedup set: packed segment → first position seen.
    unique: HashTable,
    /// Overlap index: packed (segment_bases - 1)-base prefix → position.
    by_prefix: HashTable,
    /// Chain links: position → successor position (+1 to distinguish 0).
    links: HashTable,
    /// Next sample to process (host-side work distribution).
    cursor: AtomicU64,
}

impl Genome {
    /// Builds the reference genome and sampling plan.
    pub fn new(heap: &Heap, config: GenomeConfig, seed: u64) -> Genome {
        assert!(config.segment_bases >= 2 && config.segment_bases <= 16);
        assert!(config.genome_bases > config.segment_bases as u64);
        let mut rng = {
            use rand::SeedableRng;
            WorkloadRng::seed_from_u64(seed)
        };
        let genome: Vec<u8> = (0..config.genome_bases).map(|_| rng.gen_range(0..4)).collect();
        let samples: Vec<u64> = (0..config.segments)
            .map(|_| rng.gen_range(0..config.genome_bases - config.segment_bases as u64))
            .collect();
        Genome {
            config,
            genome,
            samples,
            unique: HashTable::create(heap, 4096),
            by_prefix: HashTable::create(heap, 4096),
            links: HashTable::create(heap, 4096),
            cursor: AtomicU64::new(0),
        }
    }

    /// Packs `bases` bases starting at `pos` into a word (2 bits each),
    /// with a leading 1 so distinct lengths never collide.
    fn pack(&self, pos: u64, bases: u32) -> u64 {
        let mut word = 1u64;
        for i in 0..bases as u64 {
            word = (word << 2) | self.genome[(pos + i) as usize] as u64;
        }
        word
    }

    /// Processes a batch of sampled segments in one transaction: dedup,
    /// then overlap-link (the shape of STAMP's chunked phase loops).
    fn process_batch(&self, worker: &mut Session, positions: &[u64]) {
        worker.execute(TxKind::ReadWrite, |tx| {
            for &pos in positions {
                let seg = self.pack(pos, self.config.segment_bases);
                let prefix = self.pack(pos, self.config.segment_bases - 1);
                let suffix = self.pack(pos + 1, self.config.segment_bases - 1);
                // Phase-1 style dedup: only the first occurrence registers.
                if !self.unique.insert(tx, seg, pos)? {
                    continue;
                }
                self.by_prefix.insert(tx, prefix, pos)?;
                // Phase-2 style matching: my suffix is someone's prefix →
                // I precede them.
                if let Some(next_pos) = self.by_prefix.get(tx, suffix)? {
                    if next_pos != pos {
                        self.links.insert(tx, pos, next_pos + 1)?;
                    }
                }
            }
            Ok(())
        });
    }
}

impl Workload for Genome {
    fn name(&self) -> String {
        format!(
            "Genome (g={}, s={}, n={})",
            self.config.genome_bases, self.config.segment_bases, self.config.segments
        )
    }

    fn setup(&self, _worker: &mut Session, _rng: &mut WorkloadRng) {
        // Inputs are host-side; shared tables start empty.
    }

    fn run_op(&self, worker: &mut Session, _rng: &mut WorkloadRng) {
        let batch = self.config.batch.max(1) as u64;
        let start = self.cursor.fetch_add(batch, Ordering::Relaxed);
        let positions: Vec<u64> = (0..batch)
            .map(|k| self.samples[((start + k) % self.samples.len() as u64) as usize])
            .collect();
        self.process_batch(worker, &positions);
    }

    fn verify(&self, heap: &Heap) -> Result<(), String> {
        // Every registered segment must read back from the genome, and
        // every link must be a genuine (len-1)-base overlap.
        for (seg, pos) in self.unique.collect(heap) {
            if self.pack(pos, self.config.segment_bases) != seg {
                return Err(format!("segment at {pos} does not match its key"));
            }
        }
        for (pos, next_plus_one) in self.links.collect(heap) {
            let next = next_plus_one - 1;
            let suffix = self.pack(pos + 1, self.config.segment_bases - 1);
            let prefix = self.pack(next, self.config.segment_bases - 1);
            if suffix != prefix {
                return Err(format!("bogus overlap link {pos} -> {next}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::single_runtime;
    use rand::SeedableRng;
    use rh_norec::Algorithm;
    use std::sync::Arc;

    fn small() -> GenomeConfig {
        GenomeConfig {
            genome_bases: 256,
            segment_bases: 8,
            segments: 512,
            batch: 4,
        }
    }

    #[test]
    fn packing_is_injective_per_length() {
        let (heap, _rt) = single_runtime(Algorithm::Norec);
        let g = Genome::new(&heap, small(), 1);
        // Same position, different lengths must differ.
        assert_ne!(g.pack(0, 8), g.pack(0, 7));
        // Equal windows pack equally.
        let a = g.pack(3, 8);
        let b = g.pack(3, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn sequential_processing_builds_valid_links() {
        let (heap, rt) = single_runtime(Algorithm::Norec);
        let g = Genome::new(&heap, small(), 2);
        let mut w = rt.open_session().expect("free worker slot");
        let mut rng = WorkloadRng::seed_from_u64(0);
        for _ in 0..1000 {
            g.run_op(&mut w, &mut rng);
        }
        g.verify(&heap).unwrap();
        assert!(g.unique.len(&heap) > 0, "dedup set stayed empty");
    }

    #[test]
    fn concurrent_processing_stays_consistent() {
        for alg in [Algorithm::RhNorec, Algorithm::HybridNorec] {
            let (heap, rt) = single_runtime(alg);
            let g = Arc::new(Genome::new(&heap, small(), 3));
            std::thread::scope(|s| {
                for tid in 0..3usize {
                    let rt = Arc::clone(&rt);
                    let g = Arc::clone(&g);
                    s.spawn(move || {
                        let mut w = rt.open_session().expect("free worker slot");
                        let mut rng = WorkloadRng::seed_from_u64(tid as u64);
                        for _ in 0..400 {
                            g.run_op(&mut w, &mut rng);
                        }
                    });
                }
            });
            g.verify(&heap).unwrap_or_else(|e| panic!("{alg:?}: {e}"));
            // Dedup really deduplicates: unique segments ≤ distinct samples.
            let distinct: std::collections::HashSet<u64> =
                g.samples.iter().copied().collect();
            assert!(g.unique.len(&heap) <= distinct.len() as u64);
        }
    }
}
