//! Intruder: a network packet analyzer (STAMP).
//!
//! "Intruder uses transactions to replace coarse-grained synchronization in
//! a simulated network packet analyzer. This workload generates a large
//! amount of short to moderate transactions with high contention" (§3.6).
//!
//! The three STAMP phases, faithfully: *capture* pops a fragment from the
//! shared packet queue; the *decoder* reassembles flows in a shared
//! fragment map (fragments arrive out of order, and attack signatures may
//! straddle fragment boundaries — reassembly is not optional); the
//! *detector* scans the reassembled byte stream for known signatures.
//! Flow generation is folded into the op loop so the workload is
//! self-sustaining.

use std::sync::atomic::{AtomicU64, Ordering};

use rand::Rng;
use rh_norec::prelude::{Session, Tx, TxKind, TxResult};
use sim_mem::{Addr, Heap};

use crate::structures::{HashTable, Queue, SortedList};
use crate::{Workload, WorkloadRng};

/// Fragment block layout:
/// `[flow, index, n_frags, byte_len, payload_0..payload_3]` — up to 32
/// payload bytes per fragment, packed little-endian into 4 words.
const F_FLOW: u64 = 0;
const F_INDEX: u64 = 1;
const F_NFRAGS: u64 = 2;
const F_LEN: u64 = 3;
const F_PAYLOAD: u64 = 4;
const PAYLOAD_WORDS: u64 = 4;
const FRAG_WORDS: u64 = F_PAYLOAD + PAYLOAD_WORDS;
const FRAG_BYTES: usize = (PAYLOAD_WORDS * 8) as usize;

/// The attack signatures the detector scans for (STAMP uses a dictionary
/// of known exploit strings).
const SIGNATURES: [&[u8]; 3] = [b"0wn3d-you", b"GET /../../etc", b"\xde\xad\xbe\xef!!"];

/// Configuration of the Intruder workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IntruderConfig {
    /// Maximum flow length in bytes.
    pub max_flow_bytes: u32,
    /// Percentage of flows carrying an attack signature (STAMP: 10).
    pub attack_pct: u32,
    /// Fragment-map buckets.
    pub map_buckets: u64,
}

impl Default for IntruderConfig {
    fn default() -> Self {
        IntruderConfig {
            max_flow_bytes: 160,
            attack_pct: 10,
            map_buckets: 256,
        }
    }
}

/// The Intruder workload.
#[derive(Debug)]
pub struct Intruder {
    config: IntruderConfig,
    packets: Queue,
    /// flow id → fragment list head (fragment index → fragment block).
    fragments: HashTable,
    /// Heap counters: flows completed / attacks detected.
    completed: Addr,
    detected: Addr,
    /// Host-side generation bookkeeping (not part of the simulated state).
    next_flow: AtomicU64,
    generated_flows: AtomicU64,
    generated_attacks: AtomicU64,
}

impl Intruder {
    /// Creates the analyzer's shared structures.
    pub fn new(heap: &Heap, config: IntruderConfig) -> Intruder {
        assert!(config.max_flow_bytes >= 32 && config.attack_pct <= 100);
        let alloc = heap.allocator();
        Intruder {
            config,
            packets: Queue::create(heap),
            fragments: HashTable::create(heap, config.map_buckets),
            completed: alloc.alloc(0, 8).expect("heap exhausted"),
            detected: alloc.alloc(0, 8).expect("heap exhausted"),
            next_flow: AtomicU64::new(1),
            generated_flows: AtomicU64::new(0),
            generated_attacks: AtomicU64::new(0),
        }
    }

    /// Builds one flow's byte stream; roughly 1-in-`attack_pct` carries a
    /// signature at a random offset (often straddling fragments).
    fn make_flow_bytes(&self, rng: &mut WorkloadRng) -> (Vec<u8>, bool) {
        let len = rng.gen_range(32..=self.config.max_flow_bytes) as usize;
        // Benign traffic avoids signature bytes entirely (lowercase
        // alphanumerics), so false positives are impossible.
        let mut bytes: Vec<u8> = (0..len).map(|_| b'a' + rng.gen_range(0..26)).collect();
        let attack = rng.gen_range(0..100) < self.config.attack_pct;
        if attack {
            let sig = SIGNATURES[rng.gen_range(0..SIGNATURES.len())];
            let at = rng.gen_range(0..=len - sig.len());
            bytes[at..at + sig.len()].copy_from_slice(sig);
        }
        (bytes, attack)
    }

    /// Generates one flow and enqueues its fragments in shuffled order.
    fn generate_flow(&self, worker: &mut Session, rng: &mut WorkloadRng) {
        let flow = self.next_flow.fetch_add(1, Ordering::Relaxed);
        let (bytes, attack) = self.make_flow_bytes(rng);
        if attack {
            self.generated_attacks.fetch_add(1, Ordering::Relaxed);
        }
        self.generated_flows.fetch_add(1, Ordering::Relaxed);
        let chunks: Vec<&[u8]> = bytes.chunks(FRAG_BYTES).collect();
        let n = chunks.len() as u64;
        let mut order: Vec<u64> = (0..n).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        for &idx in &order {
            let chunk = chunks[idx as usize];
            let mut words = [0u64; PAYLOAD_WORDS as usize];
            for (i, byte) in chunk.iter().enumerate() {
                words[i / 8] |= (*byte as u64) << ((i % 8) * 8);
            }
            worker.execute(TxKind::ReadWrite, |tx| {
                let frag = tx.alloc(FRAG_WORDS)?;
                tx.write(frag.offset(F_FLOW), flow)?;
                tx.write(frag.offset(F_INDEX), idx)?;
                tx.write(frag.offset(F_NFRAGS), n)?;
                tx.write(frag.offset(F_LEN), chunk.len() as u64)?;
                for (w, word) in words.iter().enumerate() {
                    tx.write(frag.offset(F_PAYLOAD + w as u64), *word)?;
                }
                self.packets.push(tx, frag.to_word())
            });
        }
    }

    /// Reads a fragment's payload bytes inside the transaction.
    fn read_fragment_bytes(tx: &mut Tx<'_>, frag: Addr) -> TxResult<Vec<u8>> {
        let len = tx.read(frag.offset(F_LEN))? as usize;
        let mut bytes = Vec::with_capacity(len);
        for i in 0..len {
            let word = tx.read(frag.offset(F_PAYLOAD + (i / 8) as u64))?;
            bytes.push(((word >> ((i % 8) * 8)) & 0xff) as u8);
        }
        Ok(bytes)
    }

    /// Capture + decode: pop a packet, file its fragment, and reassemble
    /// the flow if this completed it (one transaction, as in STAMP).
    fn process_packet(&self, worker: &mut Session) -> Option<Vec<u8>> {
        worker.execute(TxKind::ReadWrite, |tx| {
            let Some(frag_word) = self.packets.pop(tx)? else {
                return Ok(None);
            };
            let frag = Addr::from_word(frag_word);
            let flow = tx.read(frag.offset(F_FLOW))?;
            let index = tx.read(frag.offset(F_INDEX))?;
            let n_frags = tx.read(frag.offset(F_NFRAGS))?;

            let list = match self.fragments.get(tx, flow)? {
                Some(head) => SortedList::from_head_addr(Addr::from_word(head)),
                None => {
                    let list = SortedList::create_tx(tx)?;
                    self.fragments.insert(tx, flow, list.head_addr().to_word())?;
                    list
                }
            };
            list.insert(tx, index, frag.to_word())?;
            if list.len_tx(tx)? < n_frags {
                return Ok(None);
            }
            // Reassemble in fragment order and retire the flow.
            let mut assembled = Vec::new();
            while let Some((_, frag_word)) = list.pop_min(tx)? {
                let frag = Addr::from_word(frag_word);
                assembled.extend(Self::read_fragment_bytes(tx, frag)?);
                tx.free(frag)?;
            }
            self.fragments.remove(tx, flow)?;
            tx.free(list.head_addr())?;
            let done = tx.read(self.completed)?;
            tx.write(self.completed, done + 1)?;
            Ok(Some(assembled))
        })
    }

    /// The detector: scans a reassembled flow for any known signature.
    fn detect(&self, worker: &mut Session, flow: &[u8]) {
        let hit = SIGNATURES
            .iter()
            .any(|sig| flow.windows(sig.len()).any(|w| w == *sig));
        if hit {
            worker.execute(TxKind::ReadWrite, |tx| {
                let d = tx.read(self.detected)?;
                tx.write(self.detected, d + 1)
            });
        }
    }

    /// Processes packets until the queue is empty (test helper).
    pub fn drain(&self, worker: &mut Session) {
        loop {
            let empty = worker.execute(TxKind::ReadOnly, |tx| self.packets.is_empty_tx(tx));
            if empty {
                break;
            }
            if let Some(flow) = self.process_packet(worker) {
                self.detect(worker, &flow);
            }
        }
    }

    /// Attacks detected so far (quiescent heap).
    pub fn attacks_detected(&self, heap: &Heap) -> u64 {
        heap.load(self.detected)
    }

    /// Flows completed so far (quiescent heap).
    pub fn flows_completed(&self, heap: &Heap) -> u64 {
        heap.load(self.completed)
    }

    /// Attacks generated so far.
    pub fn attacks_generated(&self) -> u64 {
        self.generated_attacks.load(Ordering::Relaxed)
    }

    /// Flows generated so far.
    pub fn flows_generated(&self) -> u64 {
        self.generated_flows.load(Ordering::Relaxed)
    }
}

impl Workload for Intruder {
    fn name(&self) -> String {
        "Intruder".into()
    }

    fn setup(&self, worker: &mut Session, rng: &mut WorkloadRng) {
        for _ in 0..64 {
            self.generate_flow(worker, rng);
        }
    }

    fn run_op(&self, worker: &mut Session, rng: &mut WorkloadRng) {
        // Mostly consume; produce occasionally to keep the stream alive.
        if rng.gen_range(0..100) < 15 {
            self.generate_flow(worker, rng);
        }
        if let Some(flow) = self.process_packet(worker) {
            self.detect(worker, &flow);
        }
    }

    fn verify(&self, heap: &Heap) -> Result<(), String> {
        let completed = self.flows_completed(heap);
        let detected = self.attacks_detected(heap);
        let generated = self.flows_generated();
        let attacks = self.attacks_generated();
        if completed > generated {
            return Err(format!("completed {completed} > generated {generated}"));
        }
        if detected > attacks {
            return Err(format!("detected {detected} > generated attacks {attacks}"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::single_runtime;
    use rand::SeedableRng;
    use rh_norec::Algorithm;
    use std::sync::Arc;

    #[test]
    fn benign_bytes_never_contain_signatures() {
        let (heap, _rt) = single_runtime(Algorithm::Norec);
        let app = Intruder::new(&heap, IntruderConfig { attack_pct: 0, ..Default::default() });
        let mut rng = WorkloadRng::seed_from_u64(1);
        for _ in 0..200 {
            let (bytes, attack) = app.make_flow_bytes(&mut rng);
            assert!(!attack);
            for sig in SIGNATURES {
                assert!(
                    !bytes.windows(sig.len()).any(|w| w == sig),
                    "benign flow contains a signature"
                );
            }
        }
    }

    #[test]
    fn signatures_survive_fragmentation_and_reordering() {
        let (heap, rt) = single_runtime(Algorithm::Norec);
        let app = Intruder::new(&heap, IntruderConfig { attack_pct: 100, ..Default::default() });
        let mut w = rt.open_session().expect("free worker slot");
        let mut rng = WorkloadRng::seed_from_u64(2);
        for _ in 0..50 {
            app.generate_flow(&mut w, &mut rng);
        }
        app.drain(&mut w);
        assert_eq!(app.flows_completed(&heap), 50);
        assert_eq!(
            app.attacks_detected(&heap),
            50,
            "a signature was lost across fragment boundaries"
        );
    }

    #[test]
    fn draining_detects_every_attack_exactly_once() {
        let (heap, rt) = single_runtime(Algorithm::Norec);
        let app = Intruder::new(&heap, IntruderConfig::default());
        let mut w = rt.open_session().expect("free worker slot");
        let mut rng = WorkloadRng::seed_from_u64(9);
        for _ in 0..100 {
            app.generate_flow(&mut w, &mut rng);
        }
        app.drain(&mut w);
        assert_eq!(app.flows_completed(&heap), app.flows_generated());
        assert_eq!(app.attacks_detected(&heap), app.attacks_generated());
        assert!(app.fragments.is_empty(&heap), "decoder map not drained");
    }

    #[test]
    fn concurrent_analyzers_account_for_every_flow() {
        let (heap, rt) = single_runtime(Algorithm::RhNorec);
        let app = Arc::new(Intruder::new(&heap, IntruderConfig::default()));
        {
            let mut w = rt.open_session().expect("free worker slot");
            let mut rng = WorkloadRng::seed_from_u64(10);
            app.setup(&mut w, &mut rng);
        }
        std::thread::scope(|s| {
            for tid in 0..3usize {
                let rt = Arc::clone(&rt);
                let app = Arc::clone(&app);
                s.spawn(move || {
                    let mut w = rt.open_session().expect("free worker slot");
                    let mut rng = WorkloadRng::seed_from_u64(20 + tid as u64);
                    for _ in 0..300 {
                        app.run_op(&mut w, &mut rng);
                    }
                });
            }
        });
        app.verify(&heap).unwrap();
        // Drain the remainder single-threaded: totals must reconcile.
        let mut w = rt.open_session().expect("free worker slot");
        app.drain(&mut w);
        assert_eq!(app.flows_completed(&heap), app.flows_generated());
        assert_eq!(app.attacks_detected(&heap), app.attacks_generated());
    }
}
