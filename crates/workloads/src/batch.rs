//! The shared transfer-batch workload: the bank example's account-table
//! transfer loop, lifted out so the batch engine and the interactive
//! session engines race on **identical** pre-formed work.
//!
//! The table is the bank's `[open_flag, balance]` pair layout; transfers
//! are drawn by the KV service tier's zipfian generator
//! ([`rh_kv::gen`]), so batch benchmarks see the same hot-key skew the
//! service-tier benchmarks do. One [`TransferBatch`] yields both forms
//! of the work:
//!
//! * [`TransferBatch::batch`] — rank-ordered [`BatchTxn`]s for
//!   [`rh_norec::batch::ParallelExecutor`];
//! * [`TransferBatch::run_interactive`] — the same rank as one session
//!   transaction, for the five interactive engines.
//!
//! Both forms read the open flags, clamp the amount to the source
//! balance, and move it — so the sum of all balances is invariant and
//! [`BatchWorkload::verify`] can assert conservation regardless of the
//! execution mode.

use rh_kv::gen::{self, Mix, TraceConfig};
use rh_norec::batch::{BatchTxn, Blocked, TxView};
use rh_norec::prelude::Session;
use sim_mem::{Addr, Heap};

/// The bank's account table: `accounts` pairs of `[open_flag, balance]`
/// words, allocated contiguously.
#[derive(Clone, Copy, Debug)]
pub struct AccountTable {
    base: Addr,
    accounts: u64,
}

impl AccountTable {
    /// Allocates the table and opens every account at `initial` balance
    /// (direct stores — call on a quiescent heap).
    ///
    /// # Panics
    ///
    /// Panics when the heap cannot hold `2 * accounts` words.
    pub fn create(heap: &Heap, accounts: u64, initial: u64) -> AccountTable {
        assert!(accounts >= 2, "transfers need at least two accounts");
        let base = heap
            .allocator()
            .alloc(0, accounts * 2)
            .expect("heap too small for the account table");
        let table = AccountTable { base, accounts };
        for i in 0..accounts {
            heap.store(table.open(i), 1);
            heap.store(table.balance(i), initial);
        }
        table
    }

    /// Number of accounts.
    pub fn accounts(&self) -> u64 {
        self.accounts
    }

    /// The open-flag word of account `i` (1 = open, 0 = closed/private).
    pub fn open(&self, i: u64) -> Addr {
        self.base.offset(i * 2)
    }

    /// The balance word of account `i`.
    pub fn balance(&self, i: u64) -> Addr {
        self.base.offset(i * 2 + 1)
    }

    /// Direct (non-transactional) sum of all balances, for quiescent
    /// invariant checks.
    pub fn total(&self, heap: &Heap) -> u64 {
        (0..self.accounts).map(|i| heap.load(self.balance(i))).sum()
    }
}

/// One transfer of the batch: move up to `amount` from one account to
/// another, skipping closed accounts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Transfer {
    /// Source account index.
    pub from: u64,
    /// Destination account index (distinct from `from`).
    pub to: u64,
    /// Requested amount (clamped to the source balance at execution).
    pub amount: u64,
}

/// Draws `n` transfers over `accounts` accounts with the KV generator's
/// zipfian sampler: account 0 is the hottest, `zipf_theta = 0.0` is
/// uniform, `0.99` the YCSB-style default. Deterministic in `seed`.
pub fn transfer_batch(accounts: u64, n: usize, zipf_theta: f64, seed: u64) -> Vec<Transfer> {
    let trace = gen::generate(&TraceConfig {
        requests: n,
        keyspace: accounts,
        zipf_theta,
        mix: Mix { get: 0, put: 0, delete: 0, transfer: 1, range: 0 },
        seed,
        ..TraceConfig::default()
    });
    // Generator keys are 1..=accounts; the table indexes from 0.
    trace.iter().map(|r| Transfer { from: r.key - 1, to: r.key2 - 1, amount: r.amount }).collect()
}

/// Runs one transfer as one interactive transaction on `session` — the
/// bank example's loop body, shared so every engine executes the exact
/// semantics the batch form does.
pub fn transfer_interactive(session: &mut Session, table: &AccountTable, t: &Transfer) {
    session
        .run(|tx| {
            // Closed accounts are private: transactions leave them alone.
            if tx.read(table.open(t.from))? == 0 || tx.read(table.open(t.to))? == 0 {
                return Ok(());
            }
            let from_balance = tx.read(table.balance(t.from))?;
            let to_balance = tx.read(table.balance(t.to))?;
            let amount = t.amount.min(from_balance);
            tx.write(table.balance(t.from), from_balance - amount)?;
            tx.write(table.balance(t.to), to_balance + amount)
        })
        .expect("transfer cannot fault");
}

/// One [`Transfer`] bound to its table, in batch form.
#[derive(Clone, Copy, Debug)]
pub struct TransferTxn {
    table: AccountTable,
    t: Transfer,
}

impl BatchTxn for TransferTxn {
    fn execute(&self, view: &mut TxView<'_>) -> Result<(), Blocked> {
        let (table, t) = (&self.table, &self.t);
        if view.read(table.open(t.from))? == 0 || view.read(table.open(t.to))? == 0 {
            return Ok(());
        }
        let from_balance = view.read(table.balance(t.from))?;
        let to_balance = view.read(table.balance(t.to))?;
        let amount = t.amount.min(from_balance);
        view.write(table.balance(t.from), from_balance - amount);
        view.write(table.balance(t.to), to_balance + amount);
        Ok(())
    }
}

/// A workload expressible both as a pre-formed batch for the
/// [`ParallelExecutor`](rh_norec::batch::ParallelExecutor) and as the
/// equivalent interactive transaction stream for the session engines —
/// the contract `rh-bench batch` races the execution modes on.
///
/// The vector index of [`BatchWorkload::batch`] is the rank; running
/// ranks `0..len()` through [`BatchWorkload::run_interactive`] in any
/// serializable order must satisfy the same [`BatchWorkload::verify`].
pub trait BatchWorkload: Send + Sync {
    /// Display name (ledger scenario labels).
    fn name(&self) -> String;

    /// Transactions in the batch (ranks are `0..len()`).
    fn len(&self) -> usize;

    /// Whether the batch is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The rank-ordered batch for the batch engine.
    fn batch(&self) -> Vec<Box<dyn BatchTxn>>;

    /// Runs rank `rank` as one interactive transaction on `session`,
    /// performing the same logical reads and writes as the batch form.
    fn run_interactive(&self, session: &mut Session, rank: usize);

    /// Checks workload invariants on the quiescent heap after a run.
    ///
    /// # Errors
    ///
    /// Describes the first violated invariant.
    fn verify(&self, heap: &Heap) -> Result<(), String>;
}

/// Shape of a generated [`TransferBatch`].
#[derive(Clone, Copy, Debug)]
pub struct TransferBatchConfig {
    /// Accounts in the table.
    pub accounts: u64,
    /// Initial balance per account.
    pub initial: u64,
    /// Transfers in the batch.
    pub transfers: usize,
    /// Zipf exponent of the account sampler (0.0 = uniform).
    pub zipf_theta: f64,
    /// Generator seed.
    pub seed: u64,
}

impl Default for TransferBatchConfig {
    fn default() -> Self {
        TransferBatchConfig {
            accounts: 64,
            initial: 1_000,
            transfers: 4_096,
            zipf_theta: 0.99,
            seed: 0x5eed_ba7c,
        }
    }
}

/// The account-table transfer batch: the concrete [`BatchWorkload`] the
/// bank example and `rh-bench batch` share.
#[derive(Clone, Debug)]
pub struct TransferBatch {
    table: AccountTable,
    transfers: Vec<Transfer>,
    expected_total: u64,
}

impl TransferBatch {
    /// Creates the account table on `heap` and draws the batch.
    pub fn generate(heap: &Heap, config: &TransferBatchConfig) -> TransferBatch {
        let table = AccountTable::create(heap, config.accounts, config.initial);
        let transfers =
            transfer_batch(config.accounts, config.transfers, config.zipf_theta, config.seed);
        TransferBatch { table, transfers, expected_total: config.accounts * config.initial }
    }

    /// The underlying account table.
    pub fn table(&self) -> &AccountTable {
        &self.table
    }

    /// The drawn transfers, in rank order.
    pub fn transfers(&self) -> &[Transfer] {
        &self.transfers
    }
}

impl BatchWorkload for TransferBatch {
    fn name(&self) -> String {
        format!("transfer-batch/{}tx", self.transfers.len())
    }

    fn len(&self) -> usize {
        self.transfers.len()
    }

    fn batch(&self) -> Vec<Box<dyn BatchTxn>> {
        self.transfers
            .iter()
            .map(|&t| Box::new(TransferTxn { table: self.table, t }) as Box<dyn BatchTxn>)
            .collect()
    }

    fn run_interactive(&self, session: &mut Session, rank: usize) {
        transfer_interactive(session, &self.table, &self.transfers[rank]);
    }

    fn verify(&self, heap: &Heap) -> Result<(), String> {
        let total = self.table.total(heap);
        if total != self.expected_total {
            return Err(format!(
                "balance sum drifted: expected {}, found {total}",
                self.expected_total
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rh_norec::batch::{execute_sequential, BatchConfig, ParallelExecutor};
    use rh_norec::prelude::{Algorithm, TmConfig, TmRuntime};
    use sim_htm::{Htm, HtmConfig};
    use sim_mem::HeapConfig;
    use std::sync::Arc;

    fn small() -> TransferBatchConfig {
        TransferBatchConfig { accounts: 8, initial: 100, transfers: 200, ..Default::default() }
    }

    #[test]
    fn batch_and_interactive_forms_agree_on_final_state() {
        let snapshot = |interactive: bool| {
            let heap = Arc::new(Heap::new(HeapConfig { words: 1 << 16 }));
            let workload = TransferBatch::generate(&heap, &small());
            if interactive {
                let htm = Htm::new(Arc::clone(&heap), HtmConfig::default());
                let rt = TmRuntime::new(Arc::clone(&heap), htm, TmConfig::new(Algorithm::RhNorec))
                    .expect("runtime construction cannot fail");
                let mut session = rt.open_session().expect("free worker slot");
                for rank in 0..workload.len() {
                    workload.run_interactive(&mut session, rank);
                }
            } else {
                execute_sequential(&heap, &workload.batch());
            }
            workload.verify(&heap).expect("conservation");
            (0..workload.table().accounts())
                .map(|i| heap.load(workload.table().balance(i)))
                .collect::<Vec<u64>>()
        };
        assert_eq!(snapshot(false), snapshot(true), "the two forms diverge");
    }

    #[test]
    fn speculative_execution_conserves_and_verifies() {
        let heap = Arc::new(Heap::new(HeapConfig { words: 1 << 16 }));
        let workload = TransferBatch::generate(&heap, &small());
        let exec =
            ParallelExecutor::new(Arc::clone(&heap), BatchConfig::with_workers(4)).unwrap();
        let report = exec.execute(&workload.batch());
        assert!(report.speculative());
        assert_eq!(report.txs() as usize, workload.len());
        workload.verify(&heap).expect("conservation under speculation");
    }

    #[test]
    fn zipf_skew_concentrates_on_hot_accounts() {
        let transfers = transfer_batch(256, 20_000, 0.99, 1);
        let hot = transfers.iter().filter(|t| t.from < 16).count();
        assert!(hot as f64 / transfers.len() as f64 > 0.30, "zipf skew missing");
        assert!(transfers.iter().all(|t| t.from != t.to && t.from < 256 && t.to < 256));
    }
}
