#!/usr/bin/env bash
# Tier-1 gate: build, test, and a short deterministic opacity sweep.
#
# Run from the repository root:
#
#   ./scripts/ci.sh
#
# The sweep gives each of the paper's five algorithms a ~1-second budget
# of seeded deterministic schedules on each HTM configuration, checking
# every recorded history for opacity. A failure prints the replay seed;
# reproduce it with
#
#   cargo run -p tm-check --release --bin sweep -- \
#       --algorithm <name> --htm <config> --replay <seed>

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --workspace --release

echo "== tests =="
cargo test -q --workspace

echo "== deterministic opacity sweep (~1 s per algorithm per HTM config) =="
for htm in default disabled tiny; do
    cargo run -p tm-check --release --bin sweep -- --htm "$htm" --seconds 1
done

echo "ci.sh: all green"
