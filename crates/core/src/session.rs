//! The service-grade session layer over [`TmRuntime`]/[`TmThread`].
//!
//! [`TmRuntime::register`] is the white-box interface: the caller owns
//! thread-id bookkeeping, must keep ids unique, and gets the low-level
//! execution handle back. Every application-shaped consumer in this
//! workspace (the KV service tier, the evaluation workloads, the
//! examples) wants the same three things instead:
//!
//! 1. **scoped registration** — "give me a worker slot, free it when I'm
//!    done", with no `tid` threading through application code,
//! 2. **typed outcomes** — transaction faults as values
//!    ([`Session::run`]), with the panicking convenience
//!    ([`Session::execute`]) still available for bodies that are known
//!    fault-free,
//! 3. **the same statistics surface** as the raw handle, so harnesses
//!    migrate without losing their reporting.
//!
//! A [`Session`] owns a [`TmThread`] whose id was picked from the
//! runtime's free slots; dropping the session returns the slot. Open one
//! per OS (or virtual) thread — the handle is deliberately not `Sync`,
//! exactly like [`TmThread`].
//!
//! ```rust
//! use std::sync::Arc;
//! use rh_norec::prelude::*;
//! use sim_htm::{Htm, HtmConfig};
//! use sim_mem::{Heap, HeapConfig};
//!
//! let heap = Arc::new(Heap::new(HeapConfig::default()));
//! let htm = Htm::new(Arc::clone(&heap), HtmConfig::default());
//! let rt = TmRuntime::new(Arc::clone(&heap), htm, TmConfig::new(Algorithm::RhNorec))?;
//! let counter = heap.allocator().alloc(0, 1)?;
//!
//! let mut session = Session::open(&rt)?;
//! let old = session.run(|tx| {
//!     let v = tx.read(counter)?;
//!     tx.write(counter, v + 1)?;
//!     Ok(v)
//! })?;
//! assert_eq!(old, 0);
//! drop(session); // slot is free again
//! let _reopened = Session::open(&rt)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::fmt;
use std::sync::Arc;

use crate::error::{TmError, TxFault, TxResult};
use crate::runtime::{TmRuntime, TmThread};
use crate::stats::{ThreadReport, TmThreadStats};
use crate::tx::Tx;
use crate::TxKind;

/// A scoped worker registration: a [`TmThread`] with automatic thread-id
/// assignment and release.
///
/// Obtain one with [`Session::open`] (or
/// [`TmRuntime::open_session`]); the runtime hands out the lowest free
/// thread id and reclaims it when the session drops. All transaction
/// execution goes through [`run`](Session::run) /
/// [`run_read`](Session::run_read) (typed fault results) or the
/// panicking [`execute`](Session::execute) mirror of the raw handle.
pub struct Session {
    thread: TmThread,
}

impl Session {
    /// Opens a session on `runtime`, registering the lowest free thread
    /// id.
    ///
    /// # Errors
    ///
    /// Returns [`TmError::ThreadIdOutOfRange`] when every thread slot of
    /// the simulated machine is taken (the error carries the capacity).
    pub fn open(runtime: &Arc<TmRuntime>) -> Result<Session, TmError> {
        let max = sim_mem::MAX_THREADS;
        for tid in 0..max {
            match runtime.register(tid) {
                Ok(thread) => return Ok(Session { thread }),
                Err(TmError::ThreadAlreadyRegistered { .. }) => continue,
                Err(other) => return Err(other),
            }
        }
        Err(TmError::ThreadIdOutOfRange { tid: max, max })
    }

    /// Runs `body` as one read-write transaction, surfacing programming
    /// faults as typed values.
    ///
    /// The engine retries the body transparently until it commits: the
    /// body must be safe to re-execute (no side effects other than
    /// through the [`Tx`] handle) and must propagate every `Err` from
    /// `Tx` operations.
    ///
    /// # Errors
    ///
    /// Returns the [`TxFault`] the body tripped; the attempt has been
    /// torn down cleanly and the heap is as if it never ran.
    #[inline]
    pub fn run<T>(
        &mut self,
        body: impl FnMut(&mut Tx<'_>) -> TxResult<T>,
    ) -> Result<T, TxFault> {
        self.thread.try_execute(TxKind::ReadWrite, body)
    }

    /// Runs `body` as one transaction statically declared read-only
    /// (engines skip the commit-time clock update; a write inside the
    /// body is refused as [`TxFault::WriteInReadOnly`]).
    ///
    /// # Errors
    ///
    /// Returns the [`TxFault`] the body tripped.
    #[inline]
    pub fn run_read<T>(
        &mut self,
        body: impl FnMut(&mut Tx<'_>) -> TxResult<T>,
    ) -> Result<T, TxFault> {
        self.thread.try_execute(TxKind::ReadOnly, body)
    }

    /// Runs `body` as one atomic transaction of the given kind and
    /// returns its result — the panicking mirror of
    /// [`TmThread::execute`], for bodies known not to fault.
    ///
    /// # Panics
    ///
    /// Panics if the body trips a [`TxFault`]; use [`run`](Session::run)
    /// / [`run_read`](Session::run_read) to handle faults as values.
    #[inline]
    pub fn execute<T>(
        &mut self,
        kind: TxKind,
        body: impl FnMut(&mut Tx<'_>) -> TxResult<T>,
    ) -> T {
        self.thread.execute(kind, body)
    }

    /// Like [`execute`](Session::execute) with an explicit kind, but
    /// surfacing faults as values (the [`TmThread::try_execute`] mirror).
    ///
    /// # Errors
    ///
    /// Returns the [`TxFault`] the body tripped.
    #[inline]
    pub fn try_execute<T>(
        &mut self,
        kind: TxKind,
        body: impl FnMut(&mut Tx<'_>) -> TxResult<T>,
    ) -> Result<T, TxFault> {
        self.thread.try_execute(kind, body)
    }

    /// The thread id this session registered (diagnostics; application
    /// code never needs it).
    #[inline]
    pub fn tid(&self) -> usize {
        self.thread.tid()
    }

    /// The runtime this session belongs to.
    #[inline]
    pub fn runtime(&self) -> &Arc<TmRuntime> {
        self.thread.runtime()
    }

    /// Engine-level statistics for this session's worker.
    #[inline]
    pub fn stats(&self) -> TmThreadStats {
        self.thread.stats()
    }

    /// Combined engine + raw HTM statistics.
    #[inline]
    pub fn report(&self) -> ThreadReport {
        self.thread.report()
    }

    /// Resets both engine and HTM statistics.
    #[inline]
    pub fn reset_stats(&mut self) {
        self.thread.reset_stats();
    }

    /// Current adaptive HTM-prefix length (reads), for diagnostics.
    #[inline]
    pub fn prefix_len(&self) -> u64 {
        self.thread.prefix_len()
    }

    /// Controller epochs completed by the adaptive policy layer
    /// (0 when the layer is off), for diagnostics.
    #[inline]
    pub fn policy_epoch(&self) -> u64 {
        self.thread.policy_epoch()
    }

    /// The commit clock's current active-lane count (equals
    /// `clock_shards` whenever lane adaptation is off), for diagnostics.
    #[inline]
    pub fn active_clock_lanes(&self) -> u32 {
        self.thread.active_clock_lanes()
    }

    /// Reallocations of the recycled slow-path log arenas since the
    /// session opened (see [`TmThread::log_grow_events`]).
    #[inline]
    pub fn log_grow_events(&self) -> u64 {
        self.thread.log_grow_events()
    }

    /// Borrows the underlying low-level handle, for white-box callers
    /// that need the raw surface while keeping scoped registration.
    #[inline]
    pub fn thread_mut(&mut self) -> &mut TmThread {
        &mut self.thread
    }
}

impl fmt::Debug for Session {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Session")
            .field("tid", &self.thread.tid())
            .field("stats", &self.thread.stats())
            .finish_non_exhaustive()
    }
}

impl TmRuntime {
    /// Opens a [`Session`] on this runtime — scoped registration with the
    /// lowest free thread id (see [`Session::open`]).
    ///
    /// # Errors
    ///
    /// Returns [`TmError::ThreadIdOutOfRange`] when the machine's thread
    /// capacity is exhausted.
    pub fn open_session(self: &Arc<Self>) -> Result<Session, TmError> {
        Session::open(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Algorithm, TmConfig};
    use sim_htm::{Htm, HtmConfig};
    use sim_mem::{Heap, HeapConfig};

    fn runtime(algorithm: Algorithm) -> (Arc<Heap>, Arc<TmRuntime>) {
        let heap = Arc::new(Heap::new(HeapConfig { words: 1 << 20 }));
        let htm = Htm::new(Arc::clone(&heap), HtmConfig::default());
        let rt = TmRuntime::new(Arc::clone(&heap), htm, TmConfig::new(algorithm))
            .expect("runtime construction cannot fail");
        (heap, rt)
    }

    #[test]
    fn sessions_assign_lowest_free_tids_and_recycle_on_drop() {
        let (_heap, rt) = runtime(Algorithm::RhNorec);
        let s0 = rt.open_session().unwrap();
        let s1 = rt.open_session().unwrap();
        let s2 = rt.open_session().unwrap();
        assert_eq!((s0.tid(), s1.tid(), s2.tid()), (0, 1, 2));
        drop(s1);
        let s1_again = rt.open_session().unwrap();
        assert_eq!(s1_again.tid(), 1, "dropped slot is reused first");
        drop(s0);
        drop(s2);
        assert_eq!(rt.open_session().unwrap().tid(), 0);
    }

    #[test]
    fn sessions_coexist_with_raw_registration() {
        let (_heap, rt) = runtime(Algorithm::Norec);
        let raw = rt.register(0).unwrap();
        let session = rt.open_session().unwrap();
        assert_eq!(session.tid(), 1, "session skips the raw handle's id");
        drop(raw);
        let next = rt.open_session().unwrap();
        assert_eq!(next.tid(), 0);
    }

    #[test]
    fn run_commits_and_counts() {
        let (heap, rt) = runtime(Algorithm::RhNorec);
        let cell = heap.allocator().alloc(0, 1).unwrap();
        let mut session = rt.open_session().unwrap();
        for i in 0..10u64 {
            let prev = session
                .run(|tx| {
                    let v = tx.read(cell)?;
                    tx.write(cell, v + 1)?;
                    Ok(v)
                })
                .unwrap();
            assert_eq!(prev, i);
        }
        assert_eq!(heap.load(cell), 10);
        assert_eq!(session.stats().commits, 10);
    }

    #[test]
    fn run_read_refuses_writes_as_typed_fault() {
        let (heap, rt) = runtime(Algorithm::Norec);
        let cell = heap.allocator().alloc(0, 1).unwrap();
        heap.store(cell, 7);
        let mut session = rt.open_session().unwrap();
        let read = session.run_read(|tx| tx.read(cell)).unwrap();
        assert_eq!(read, 7);
        let fault = session.run_read(|tx| tx.write(cell, 1)).unwrap_err();
        assert_eq!(fault, TxFault::WriteInReadOnly);
        assert_eq!(heap.load(cell), 7, "faulted attempt left the heap untouched");
        let after = session.run(|tx| tx.write(cell, 8));
        assert!(after.is_ok(), "session survives a faulted attempt");
    }

    #[test]
    fn exhausting_the_machine_is_a_typed_error() {
        let (_heap, rt) = runtime(Algorithm::Norec);
        let mut held = Vec::new();
        for _ in 0..sim_mem::MAX_THREADS {
            held.push(rt.open_session().unwrap());
        }
        match Session::open(&rt) {
            Err(TmError::ThreadIdOutOfRange { max, .. }) => {
                assert_eq!(max, sim_mem::MAX_THREADS)
            }
            other => panic!("expected exhaustion error, got {other:?}"),
        }
        held.pop();
        assert!(Session::open(&rt).is_ok());
    }
}
