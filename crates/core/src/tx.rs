//! The transactional interface workloads are written against.

use sim_mem::{Addr, Heap};

use crate::error::TxResult;
use crate::trace;

/// Engine-side operations backing a [`Tx`].
///
/// Each algorithm path (hardware fast path, software slow path, mixed slow
/// path, serial section) implements this trait; workload code only ever
/// sees [`Tx`]. The trait is crate-private by sealing: it is not
/// implementable outside `rh-norec`.
pub(crate) trait TxOps {
    fn read(&mut self, addr: Addr) -> TxResult<u64>;
    fn write(&mut self, addr: Addr, value: u64) -> TxResult<()>;
    fn alloc(&mut self, words: u64) -> TxResult<Addr>;
    fn free(&mut self, addr: Addr) -> TxResult<()>;
}

/// A live transaction, passed to the transaction body.
///
/// All shared-memory access inside a transaction goes through this handle;
/// the engine behind it provides atomicity, opacity and privatization per
/// the configured algorithm. Operations return [`TxResult`] — bodies
/// propagate failures with `?`, and the engine restarts them transparently.
///
/// # Examples
///
/// Transaction bodies look like this (see [`TmThread::execute`] for the
/// full setup):
///
/// ```rust,ignore
/// thread.execute(TxKind::ReadWrite, |tx| {
///     let v = tx.read(counter)?;
///     tx.write(counter, v + 1)?;
///     Ok(v)
/// });
/// ```
///
/// [`TmThread::execute`]: crate::TmThread::execute
#[derive(Debug)]
pub struct Tx<'a> {
    ops: &'a mut dyn TxOps,
}

impl std::fmt::Debug for dyn TxOps + '_ {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("TxOps")
    }
}

impl<'a> Tx<'a> {
    pub(crate) fn new(ops: &'a mut dyn TxOps) -> Self {
        Tx { ops }
    }

    /// Transactionally reads the word at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`TxRestart`](crate::TxRestart) when the attempt must
    /// restart; propagate it with `?`.
    #[inline]
    pub fn read(&mut self, addr: Addr) -> TxResult<u64> {
        sim_htm::sched::yield_point();
        let value = self.ops.read(addr)?;
        trace::read(addr, value);
        Ok(value)
    }

    /// Transactionally writes `value` to `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`TxRestart`](crate::TxRestart) when the attempt must
    /// restart.
    ///
    /// # Panics
    ///
    /// Panics if the transaction was declared [`TxKind::ReadOnly`](crate::TxKind::ReadOnly).
    #[inline]
    pub fn write(&mut self, addr: Addr, value: u64) -> TxResult<()> {
        sim_htm::sched::yield_point();
        self.ops.write(addr, value)?;
        trace::write(addr, value);
        Ok(())
    }

    /// Allocates a zeroed block of `words` words, visible to this
    /// transaction immediately and rolled back if it aborts.
    ///
    /// # Errors
    ///
    /// Returns [`TxRestart`](crate::TxRestart) when the attempt must
    /// restart.
    ///
    /// # Panics
    ///
    /// Panics if the heap is exhausted (the workloads treat simulated OOM
    /// as fatal, as STAMP does).
    #[inline]
    pub fn alloc(&mut self, words: u64) -> TxResult<Addr> {
        sim_htm::sched::yield_point();
        self.ops.alloc(words)
    }

    /// Frees `addr`'s block. The free takes effect only if the transaction
    /// commits (deferred reclamation keeps concurrent optimistic readers
    /// safe).
    ///
    /// # Errors
    ///
    /// Returns [`TxRestart`](crate::TxRestart) when the attempt must
    /// restart.
    #[inline]
    pub fn free(&mut self, addr: Addr) -> TxResult<()> {
        sim_htm::sched::yield_point();
        self.ops.free(addr)
    }

    /// Reads a word and decodes it as a pointer.
    #[inline]
    pub fn read_addr(&mut self, addr: Addr) -> TxResult<Addr> {
        Ok(Addr::from_word(self.read(addr)?))
    }

    /// Writes a pointer value.
    #[inline]
    pub fn write_addr(&mut self, addr: Addr, value: Addr) -> TxResult<()> {
        self.write(addr, value.to_word())
    }

    /// Reads a word and reinterprets it as a signed integer.
    #[inline]
    pub fn read_i64(&mut self, addr: Addr) -> TxResult<i64> {
        Ok(self.read(addr)? as i64)
    }

    /// Writes a signed integer.
    #[inline]
    pub fn write_i64(&mut self, addr: Addr, value: i64) -> TxResult<()> {
        self.write(addr, value as u64)
    }

    /// Reads a word and reinterprets its bits as a float.
    #[inline]
    pub fn read_f64(&mut self, addr: Addr) -> TxResult<f64> {
        Ok(f64::from_bits(self.read(addr)?))
    }

    /// Writes a float's bit pattern.
    #[inline]
    pub fn write_f64(&mut self, addr: Addr, value: f64) -> TxResult<()> {
        self.write(addr, value.to_bits())
    }
}

/// Transaction-scoped memory management: immediate allocation with
/// abort-time undo, and commit-deferred frees.
///
/// Allocations become usable the moment they are made (the paper's
/// workloads initialize freshly allocated nodes inside the transaction);
/// if the attempt aborts they are returned to the pool. Frees are logged
/// and only executed after a successful commit, so a concurrent optimistic
/// reader can never have its memory recycled under it mid-attempt.
#[derive(Debug, Default)]
pub(crate) struct TxMem {
    allocs: Vec<Addr>,
    frees: Vec<Addr>,
}

impl TxMem {
    pub(crate) fn alloc(&mut self, heap: &Heap, tid: usize, words: u64) -> Addr {
        let addr = heap
            .allocator()
            .alloc(tid, words)
            .expect("simulated heap exhausted");
        self.allocs.push(addr);
        addr
    }

    pub(crate) fn free(&mut self, addr: Addr) {
        self.frees.push(addr);
    }

    /// Commit: execute deferred frees, keep allocations.
    pub(crate) fn commit(&mut self, heap: &Heap, tid: usize) {
        for addr in self.frees.drain(..) {
            heap.allocator().free(tid, addr);
        }
        self.allocs.clear();
    }

    /// Abort: undo allocations, forget deferred frees.
    pub(crate) fn rollback(&mut self, heap: &Heap, tid: usize) {
        for addr in self.allocs.drain(..) {
            heap.allocator().free(tid, addr);
        }
        self.frees.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mem::HeapConfig;

    #[test]
    fn rollback_returns_allocations() {
        let heap = Heap::new(HeapConfig { words: 1 << 12 });
        let mut mem = TxMem::default();
        let a = mem.alloc(&heap, 0, 4);
        mem.rollback(&heap, 0);
        // The block is back in the pool: the next same-class alloc reuses it.
        let b = mem.alloc(&heap, 0, 4);
        assert_eq!(a, b);
        mem.commit(&heap, 0);
    }

    #[test]
    fn frees_are_deferred_to_commit() {
        let heap = Heap::new(HeapConfig { words: 1 << 12 });
        let mut mem = TxMem::default();
        let a = mem.alloc(&heap, 0, 4);
        mem.commit(&heap, 0);

        mem.free(a);
        // Before commit the block is still live: a fresh alloc must differ.
        let b = mem.alloc(&heap, 0, 4);
        assert_ne!(a, b);
        mem.commit(&heap, 0);
        // After commit the freed block is reusable.
        let c = mem.alloc(&heap, 0, 4);
        assert_eq!(c, a);
    }

    #[test]
    fn rollback_cancels_frees() {
        let heap = Heap::new(HeapConfig { words: 1 << 12 });
        let mut mem = TxMem::default();
        let a = mem.alloc(&heap, 0, 4);
        mem.commit(&heap, 0);

        mem.free(a);
        mem.rollback(&heap, 0);
        // The free never happened; `a` is still live.
        let b = mem.alloc(&heap, 0, 4);
        assert_ne!(a, b);
    }
}
