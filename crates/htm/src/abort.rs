//! Abort codes and the abort error type.

use std::error::Error;
use std::fmt;

/// Why a simulated hardware transaction aborted.
///
/// Mirrors the RTM abort status word: the code classifies the event and
/// [`AbortCode::may_retry`] reproduces the `_XABORT_RETRY` hint that the
/// paper's retry policy keys on (§3.3: "capacity aborts immediately go to
/// the software, while conflict aborts retry many times in the hardware").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum AbortCode {
    /// Another thread's commit or coherent store touched a line in this
    /// transaction's tracking set.
    Conflict,
    /// The read or write set outgrew the simulated cache capacity.
    Capacity {
        /// `true` when the write set (L1) overflowed, `false` for the read
        /// set (L2/bloom filter).
        write_set: bool,
    },
    /// The program requested an abort (`HTM_Abort()` in the paper's
    /// pseudo-code, `_xabort(imm)` on real RTM).
    Explicit {
        /// The 8-bit immediate passed to the abort instruction.
        user_code: u8,
    },
    /// A simulated external event (interrupt, page fault, syscall).
    Spurious,
    /// The transaction could not even begin (HTM disabled in the
    /// configuration — models a machine without RTM, for fallback testing).
    NotSupported,
}

impl AbortCode {
    /// Whether retrying the transaction in hardware may help, per the RTM
    /// `_XABORT_RETRY` convention.
    ///
    /// Conflicts are transient, so they retry. Capacity overflow is
    /// deterministic for a given footprint, so it does not. Explicit aborts
    /// carry the retry hint because the paper's protocols use them for
    /// transient conditions (lock subscription). Spurious events model
    /// interrupts, which RTM reports without the retry hint.
    #[inline]
    pub fn may_retry(self) -> bool {
        match self {
            AbortCode::Conflict => true,
            AbortCode::Capacity { .. } => false,
            AbortCode::Explicit { .. } => true,
            AbortCode::Spurious => false,
            AbortCode::NotSupported => false,
        }
    }

    /// Whether this is a conflict abort (for the figure statistics).
    #[inline]
    pub fn is_conflict(self) -> bool {
        matches!(self, AbortCode::Conflict)
    }

    /// Whether this is a capacity abort (for the figure statistics).
    #[inline]
    pub fn is_capacity(self) -> bool {
        matches!(self, AbortCode::Capacity { .. })
    }
}

impl fmt::Display for AbortCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortCode::Conflict => write!(f, "conflict with another thread"),
            AbortCode::Capacity { write_set: true } => write!(f, "write-set capacity exceeded"),
            AbortCode::Capacity { write_set: false } => write!(f, "read-set capacity exceeded"),
            AbortCode::Explicit { user_code } => write!(f, "explicit abort (code {user_code})"),
            AbortCode::Spurious => write!(f, "spurious event"),
            AbortCode::NotSupported => write!(f, "hardware transactions not supported"),
        }
    }
}

/// The error returned when a simulated hardware transaction aborts.
///
/// After an abort every speculative effect of the transaction has been
/// discarded; the thread may immediately begin a new transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HtmAbort {
    /// Classification of the abort.
    pub code: AbortCode,
}

impl HtmAbort {
    pub(crate) fn new(code: AbortCode) -> Self {
        HtmAbort { code }
    }

    /// Shorthand for `self.code.may_retry()`.
    #[inline]
    pub fn may_retry(self) -> bool {
        self.code.may_retry()
    }
}

impl fmt::Display for HtmAbort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "hardware transaction aborted: {}", self.code)
    }
}

impl Error for HtmAbort {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retry_hints_match_rtm_convention() {
        assert!(AbortCode::Conflict.may_retry());
        assert!(!AbortCode::Capacity { write_set: true }.may_retry());
        assert!(!AbortCode::Capacity { write_set: false }.may_retry());
        assert!(AbortCode::Explicit { user_code: 0 }.may_retry());
        assert!(!AbortCode::Spurious.may_retry());
        assert!(!AbortCode::NotSupported.may_retry());
    }

    #[test]
    fn classification_helpers() {
        assert!(AbortCode::Conflict.is_conflict());
        assert!(!AbortCode::Conflict.is_capacity());
        assert!(AbortCode::Capacity { write_set: true }.is_capacity());
        assert!(!AbortCode::Spurious.is_conflict());
    }

    #[test]
    fn display_distinguishes_read_and_write_capacity() {
        let w = AbortCode::Capacity { write_set: true }.to_string();
        let r = AbortCode::Capacity { write_set: false }.to_string();
        assert_ne!(w, r);
    }
}
