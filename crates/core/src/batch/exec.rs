//! The `ParallelExecutor`: optimistic rank-ordered execution of a
//! pre-formed transaction batch over the multi-version map.
//!
//! Workers pull tasks from the [`BatchSched`] until the batch quiesces;
//! then a single rank-ordered commit sweep writes the surviving versions
//! back to the heap. Per-attempt read and write capture reuses the
//! recycled [`crate::txlog`] arenas (one set per worker, cleared — not
//! freed — between attempts), so the warm speculative path allocates
//! nothing per transaction.
//!
//! A single-worker executor takes a no-speculation fast path: the batch
//! is already an execution order, so with nobody to race against it runs
//! each body directly against the heap with plain loads and stores.

use std::sync::{Arc, Mutex};

use sim_mem::{Addr, Heap};

use crate::config::BatchConfig;
use crate::cost;
use crate::error::TmError;
use crate::txlog::{LogVec, WriteSet};

use super::mvmap::{MvMap, Resolve};
use super::sched::{BatchSched, Poll, Task};

/// Marker error: a speculative read hit an ESTIMATE (a lower-rank writer
/// aborted and has not republished). The executor suspends the attempt
/// as a dependency of the aborted writer and re-runs it once that writer
/// republishes; transaction bodies just propagate it with `?`.
#[derive(Debug)]
#[non_exhaustive]
pub struct Blocked {
    /// Rank of the aborted writer whose republish unblocks the reader.
    pub(crate) on: u32,
}

/// Where a captured read got its value — what validation re-checks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
enum Origin {
    /// Base storage: no lower-rank writer existed at read time.
    #[default]
    Storage,
    /// A lower rank's published version.
    Version { rank: u32, incarnation: u32 },
}

/// One captured read: address, provenance, and the value observed (the
/// value is what the committed history reports to the oracle).
#[derive(Clone, Copy, Debug, Default)]
struct ReadRecord {
    addr: u64,
    origin: Origin,
    value: u64,
}

/// One transaction of a batch. Implementations run the body against the
/// view, reading and writing simulated-heap words; a [`Blocked`] from
/// [`TxView::read`] must be propagated (the executor handles it).
///
/// The same body runs unchanged on the speculative path and on the
/// single-worker fast path — only the view's plumbing differs.
pub trait BatchTxn: Send + Sync {
    /// Executes the transaction body against `view`.
    ///
    /// # Errors
    ///
    /// Returns [`Blocked`] when a read hit an unresolved speculative
    /// dependency; the executor re-runs the body later.
    fn execute(&self, view: &mut TxView<'_>) -> Result<(), Blocked>;
}

impl<T: BatchTxn + ?Sized> BatchTxn for &T {
    fn execute(&self, view: &mut TxView<'_>) -> Result<(), Blocked> {
        (**self).execute(view)
    }
}

impl<T: BatchTxn + ?Sized> BatchTxn for Box<T> {
    fn execute(&self, view: &mut TxView<'_>) -> Result<(), Blocked> {
        (**self).execute(view)
    }
}

enum ViewInner<'a> {
    /// Single-worker fast path: plain heap accesses, writes applied
    /// immediately, nothing captured.
    Direct { heap: &'a Heap },
    /// Speculative: reads resolve through the multi-version map, writes
    /// buffer into the worker's recycled arena.
    Spec {
        heap: &'a Heap,
        mvmap: &'a MvMap,
        rank: u32,
        writes: &'a mut WriteSet,
        reads: &'a mut LogVec<ReadRecord>,
    },
}

/// The transactional view a [`BatchTxn`] body runs against.
pub struct TxView<'a> {
    inner: ViewInner<'a>,
    cycles: u64,
    accesses: u64,
    /// [`BatchConfig::interleave_accesses`]: yield the host thread every
    /// this many speculative accesses (0 = never).
    every: u32,
}

impl std::fmt::Debug for TxView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxView").field("cycles", &self.cycles).finish_non_exhaustive()
    }
}

impl<'a> TxView<'a> {
    /// Charges a speculative access and, on the interleave period, yields
    /// the host thread (same contract as the session engines' access
    /// meter — see [`BatchConfig::interleave_accesses`]). Takes the
    /// metering fields directly so it can run under the active borrow of
    /// `self.inner`.
    fn tick(cycles: &mut u64, accesses: &mut u64, every: u32, cost: u64) {
        *cycles += cost;
        *accesses += 1;
        if every != 0 && accesses.is_multiple_of(u64::from(every)) {
            std::thread::yield_now();
        }
    }

    /// Reads one word.
    ///
    /// # Errors
    ///
    /// [`Blocked`] when the resolving version is an ESTIMATE.
    pub fn read(&mut self, addr: Addr) -> Result<u64, Blocked> {
        match &mut self.inner {
            ViewInner::Direct { heap } => {
                self.cycles += cost::BATCH_SEQ_ACCESS;
                Ok(heap.load(addr))
            }
            ViewInner::Spec { heap, mvmap, rank, writes, reads } => {
                if let Some(value) = writes.lookup(addr) {
                    Self::tick(&mut self.cycles, &mut self.accesses, self.every, cost::BATCH_RAW);
                    return Ok(value);
                }
                Self::tick(&mut self.cycles, &mut self.accesses, self.every, cost::BATCH_READ);
                sim_htm::sched::yield_point();
                let word = addr.to_word();
                match mvmap.read(word, *rank) {
                    Resolve::Storage => {
                        let value = heap.load(addr);
                        reads.push(ReadRecord { addr: word, origin: Origin::Storage, value });
                        Ok(value)
                    }
                    Resolve::Version { rank: w, incarnation, value } => {
                        reads.push(ReadRecord {
                            addr: word,
                            origin: Origin::Version { rank: w, incarnation },
                            value,
                        });
                        Ok(value)
                    }
                    Resolve::Estimate { rank: on } => Err(Blocked { on }),
                }
            }
        }
    }

    /// Writes one word (buffered until commit on the speculative path,
    /// immediate on the fast path).
    pub fn write(&mut self, addr: Addr, value: u64) {
        match &mut self.inner {
            ViewInner::Direct { heap } => {
                self.cycles += cost::BATCH_SEQ_ACCESS;
                heap.store(addr, value);
            }
            ViewInner::Spec { writes, .. } => {
                Self::tick(&mut self.cycles, &mut self.accesses, self.every, cost::BATCH_WRITE);
                writes.insert(addr, value);
            }
        }
    }
}

/// Committed effect of one rank: the reads it observed and the writes it
/// published, in the final (validated) incarnation. Addresses are heap
/// word addresses. The commit order is the rank order, so replaying
/// these records in sequence *is* the serialization the executor claims.
#[derive(Clone, Debug, Default)]
pub struct TxnRecord {
    /// `(word address, value read)` in program order, RAW hits excluded.
    pub reads: Vec<(u64, u64)>,
    /// `(word address, value written)` in first-write order.
    pub writes: Vec<(u64, u64)>,
}

/// Per-rank output slot shared between executions and validations.
#[derive(Debug, Default)]
struct TxnOutput {
    incarnation: u32,
    reads: Vec<ReadRecord>,
    writes: Vec<(u64, u64)>,
}

/// Per-worker counters; cycles include wasted (aborted/blocked) work.
#[derive(Clone, Copy, Debug, Default)]
struct WorkerStats {
    cycles: u64,
    executions: u64,
    blocked: u64,
    aborts: u64,
    validations: u64,
}

/// What a batch run measured.
#[derive(Clone, Debug)]
pub struct BatchReport {
    txs: u64,
    speculative: bool,
    worker_cycles: Vec<u64>,
    commit_cycles: u64,
    executions: u64,
    blocked: u64,
    aborts: u64,
    validations: u64,
    max_incarnation: u32,
    committed: Vec<TxnRecord>,
}

impl BatchReport {
    /// Transactions committed.
    pub fn txs(&self) -> u64 {
        self.txs
    }

    /// `false` when the single-worker no-speculation fast path ran.
    pub fn speculative(&self) -> bool {
        self.speculative
    }

    /// Execution attempts that ran a body to completion (re-executions
    /// included).
    pub fn executions(&self) -> u64 {
        self.executions
    }

    /// Attempts abandoned on an ESTIMATE read.
    pub fn blocked(&self) -> u64 {
        self.blocked
    }

    /// Validation failures (each one re-executed a rank).
    pub fn aborts(&self) -> u64 {
        self.aborts
    }

    /// Validation tasks run.
    pub fn validations(&self) -> u64 {
        self.validations
    }

    /// Highest incarnation any rank reached (0 = conflict-free run).
    pub fn max_incarnation(&self) -> u32 {
        self.max_incarnation
    }

    /// Modeled cycles of the critical path: the busiest worker plus the
    /// sequential commit sweep.
    pub fn makespan_cycles(&self) -> u64 {
        self.worker_cycles.iter().copied().max().unwrap_or(0) + self.commit_cycles
    }

    /// Modeled cycles of the rank-ordered commit sweep alone.
    pub fn commit_cycles(&self) -> u64 {
        self.commit_cycles
    }

    /// Total modeled cycles across all workers (work, not latency).
    pub fn total_cycles(&self) -> u64 {
        self.worker_cycles.iter().sum::<u64>() + self.commit_cycles
    }

    /// Modeled wall nanoseconds per transaction at [`cost::MODEL_HZ`],
    /// from the makespan (workers run concurrently).
    pub fn modeled_ns_per_tx(&self) -> f64 {
        if self.txs == 0 {
            return 0.0;
        }
        self.makespan_cycles() as f64 / self.txs as f64 / cost::MODEL_HZ * 1e9
    }

    /// Per-rank committed effects (empty on the fast path, which applies
    /// writes directly and captures nothing).
    pub fn committed(&self) -> &[TxnRecord] {
        &self.committed
    }
}

/// Recycled per-worker capture arenas (txlog-style: cleared, not freed).
#[derive(Debug, Default)]
struct Arena {
    writes: WriteSet,
    reads: LogVec<ReadRecord>,
    read_scratch: Vec<ReadRecord>,
    addr_scratch: Vec<u64>,
}

/// Everything the workers share for one batch run.
struct Shared<'a, T> {
    heap: &'a Heap,
    batch: &'a [T],
    mvmap: MvMap,
    sched: BatchSched,
    outputs: Vec<Mutex<TxnOutput>>,
    stats: Vec<Mutex<WorkerStats>>,
    /// [`BatchConfig::interleave_accesses`].
    interleave: u32,
    /// Sampled once per run: the `batch_stale_estimate` mutant.
    stale_estimate: bool,
}

/// The Block-STM-style batch engine: the repo's sixth execution mode.
///
/// Construct one over a heap with [`ParallelExecutor::new`], then feed it
/// pre-formed batches of [`BatchTxn`]s with [`ParallelExecutor::execute`].
/// The committed state is always the one sequential rank-order execution
/// would produce, whatever the worker interleaving.
pub struct ParallelExecutor {
    heap: Arc<Heap>,
    config: BatchConfig,
    #[cfg(feature = "mutants")]
    mutant_mask: std::sync::atomic::AtomicU32,
}

impl std::fmt::Debug for ParallelExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelExecutor").field("config", &self.config).finish_non_exhaustive()
    }
}

impl ParallelExecutor {
    /// Builds an executor over `heap` with validated `config`.
    ///
    /// # Errors
    ///
    /// [`TmError::InvalidConfig`] on out-of-range knobs (see
    /// [`BatchConfig`]).
    pub fn new(heap: Arc<Heap>, config: BatchConfig) -> Result<ParallelExecutor, TmError> {
        config.validate()?;
        Ok(ParallelExecutor {
            heap,
            config,
            #[cfg(feature = "mutants")]
            mutant_mask: std::sync::atomic::AtomicU32::new(0),
        })
    }

    /// The executor's configuration.
    pub fn config(&self) -> &BatchConfig {
        &self.config
    }

    /// The heap the executor commits into.
    pub fn heap(&self) -> &Arc<Heap> {
        &self.heap
    }

    /// Arms or disarms a planted bug on this executor (mutation-score
    /// harness hook; mirrors `TmRuntime::set_mutant`). Mutants the batch
    /// engine does not implement are inert.
    #[cfg(feature = "mutants")]
    pub fn set_mutant(&self, mutant: crate::mutants::Mutant, enabled: bool) {
        use std::sync::atomic::Ordering;
        if enabled {
            self.mutant_mask.fetch_or(mutant.bit(), Ordering::SeqCst);
        } else {
            self.mutant_mask.fetch_and(!mutant.bit(), Ordering::SeqCst);
        }
    }

    /// Whether a planted bug is armed on this executor.
    #[cfg(feature = "mutants")]
    pub fn mutant_armed(&self, mutant: crate::mutants::Mutant) -> bool {
        use std::sync::atomic::Ordering;
        self.mutant_mask.load(Ordering::SeqCst) & mutant.bit() != 0
    }

    fn stale_estimate_armed(&self) -> bool {
        #[cfg(feature = "mutants")]
        {
            self.mutant_armed(crate::mutants::Mutant::BatchStaleEstimate)
        }
        #[cfg(not(feature = "mutants"))]
        {
            false
        }
    }

    /// Executes `batch` and commits its effects to the heap. With one
    /// worker this takes the no-speculation fast path; otherwise workers
    /// run on scoped OS threads.
    pub fn execute<T: BatchTxn>(&self, batch: &[T]) -> BatchReport {
        self.execute_chained(batch, &[batch.len()]).0
    }

    /// Executes a *chain* of blocks sharing one rank space: `boundaries`
    /// are ascending end-exclusive rank ends (the last equal to
    /// `batch.len()`). All blocks run under one scheduler and one
    /// speculation window, so block `N + 1`'s speculation starts while
    /// block `N`'s validation wave is still draining — the cross-block
    /// handoff the dynamic batch former relies on.
    ///
    /// Besides the report, returns each block's modeled *elapsed* cycles
    /// from chain start to that block's completion (monotone): the
    /// retired-cycle stamp of the block's last validation pass,
    /// prefix-maxed and normalized by the worker count. The commit sweep
    /// ([`BatchReport::commit_cycles`]) runs once after the last block
    /// and is not included.
    pub fn execute_chained<T: BatchTxn>(
        &self,
        batch: &[T],
        boundaries: &[usize],
    ) -> (BatchReport, Vec<u64>) {
        assert_eq!(
            boundaries.last().copied(),
            Some(batch.len()),
            "chain boundaries must cover the batch"
        );
        if self.config.workers() == 1 {
            return execute_sequential_chained(&self.heap, batch, boundaries);
        }
        self.run_speculative(batch, boundaries, |shared, workers| {
            std::thread::scope(|scope| {
                for wid in 0..workers {
                    scope.spawn(move || worker_loop(shared, wid));
                }
            });
        })
    }

    /// [`ParallelExecutor::execute`] with the workers driven as virtual
    /// threads of the deterministic cooperative scheduler: the whole
    /// speculative interleaving — and therefore every abort, estimate
    /// stall, and re-execution — is a pure function of `sched_config`.
    /// The committed state is the same as any other interleaving's.
    ///
    /// Also returns the run's scheduler decision log, so checker
    /// harnesses can replay and shrink a failing interleaving. The
    /// single-worker fast path takes no scheduling decisions and returns
    /// an empty log.
    #[cfg(feature = "deterministic")]
    pub fn execute_controlled<T: BatchTxn>(
        &self,
        batch: &[T],
        sched_config: &sim_htm::sched::SchedConfig,
    ) -> (BatchReport, sim_htm::sched::RunResult) {
        let (report, _elapsed, run) =
            self.execute_chained_controlled(batch, &[batch.len()], sched_config);
        (report, run)
    }

    /// [`ParallelExecutor::execute_chained`] under the deterministic
    /// cooperative scheduler: the cross-block interleaving — which ranks
    /// of block `N + 1` speculate while block `N` validates, and every
    /// abort that crosses a boundary — is a pure function of
    /// `sched_config`.
    #[cfg(feature = "deterministic")]
    pub fn execute_chained_controlled<T: BatchTxn>(
        &self,
        batch: &[T],
        boundaries: &[usize],
        sched_config: &sim_htm::sched::SchedConfig,
    ) -> (BatchReport, Vec<u64>, sim_htm::sched::RunResult) {
        use sim_htm::sched::RunResult;
        assert_eq!(
            boundaries.last().copied(),
            Some(batch.len()),
            "chain boundaries must cover the batch"
        );
        if self.config.workers() == 1 {
            let (report, elapsed) = execute_sequential_chained(&self.heap, batch, boundaries);
            return (report, elapsed, RunResult { decisions: Vec::new(), steps: 0 });
        }
        let mut run = None;
        let (report, elapsed) = self.run_speculative(batch, boundaries, |shared, workers| {
            let bodies: Vec<Box<dyn FnOnce() + Send + '_>> = (0..workers)
                .map(|wid| Box::new(move || worker_loop(shared, wid)) as Box<dyn FnOnce() + Send>)
                .collect();
            run = Some(sim_htm::sched::run_threads(sched_config, bodies));
        });
        (report, elapsed, run.expect("spawn closure always runs"))
    }

    /// Shared speculative-phase driver: `spawn` must run `workers`
    /// worker loops to completion before returning.
    fn run_speculative<T: BatchTxn>(
        &self,
        batch: &[T],
        boundaries: &[usize],
        spawn: impl for<'s> FnOnce(&'s Shared<'s, T>, usize),
    ) -> (BatchReport, Vec<u64>) {
        let workers = self.config.workers();
        let shared = Shared {
            heap: &self.heap,
            batch,
            mvmap: MvMap::new(self.config.mvmap_shards()),
            // Fresh speculation stays within a few tasks per worker of
            // the validation wave: deep enough to keep every worker fed,
            // shallow enough that an abort's re-validation sweep stays
            // O(workers), not O(batch). The window is shared across the
            // whole chain, so it is also the cross-block handoff depth.
            sched: BatchSched::chained(batch.len(), 8 * workers, boundaries),
            outputs: (0..batch.len()).map(|_| Mutex::new(TxnOutput::default())).collect(),
            stats: (0..workers).map(|_| Mutex::new(WorkerStats::default())).collect(),
            interleave: self.config.interleave_accesses(),
            stale_estimate: self.stale_estimate_armed(),
        };
        spawn(&shared, workers);
        shared.mvmap.assert_no_estimates();
        // Per-block completion: the retired-cycle stamps of each block's
        // last validation pass, prefix-maxed (a block cannot complete
        // before its predecessor) and spread across the workers.
        let mut elapsed = shared.sched.marks();
        let mut peak = 0u64;
        for mark in &mut elapsed {
            peak = peak.max(*mark);
            *mark = peak / workers as u64;
        }

        // Rank-ordered lazy commit, folded per address: the map's
        // version lists are rank-sorted, so the highest version of each
        // address is exactly what the rank-ordered sweep would leave —
        // one store per distinct written address, not per write entry.
        let mut commit_cycles = 0u64;
        for (addr, value) in shared.mvmap.final_versions() {
            self.heap.store(Addr::from_word(addr), value);
            commit_cycles += cost::BATCH_COMMIT_ENTRY;
        }
        // Per-rank effect records for the history oracles: observability
        // capture, not engine work, so it carries no modeled cost.
        let mut committed = Vec::with_capacity(batch.len());
        for output in &shared.outputs {
            let out = output.lock().unwrap_or_else(|e| e.into_inner());
            committed.push(TxnRecord {
                reads: out.reads.iter().map(|r| (r.addr, r.value)).collect(),
                writes: out.writes.clone(),
            });
        }

        let mut report = BatchReport {
            txs: batch.len() as u64,
            speculative: true,
            worker_cycles: Vec::with_capacity(workers),
            commit_cycles,
            executions: 0,
            blocked: 0,
            aborts: 0,
            validations: 0,
            max_incarnation: shared.sched.max_incarnation(),
            committed,
        };
        for stat in &shared.stats {
            let s = *stat.lock().unwrap_or_else(|e| e.into_inner());
            report.worker_cycles.push(s.cycles);
            report.executions += s.executions;
            report.blocked += s.blocked;
            report.aborts += s.aborts;
            report.validations += s.validations;
        }
        (report, elapsed)
    }
}

/// Sequential rank-order execution: the parity baseline and the body of
/// the single-worker fast path. Plain heap accesses, no speculation, no
/// capture.
pub fn execute_sequential<T: BatchTxn>(heap: &Heap, batch: &[T]) -> BatchReport {
    execute_sequential_chained(heap, batch, &[batch.len()]).0
}

/// [`execute_sequential`] over a block chain: the per-block elapsed
/// cycles are the running total at each boundary (sequential execution
/// has no overlap to model).
fn execute_sequential_chained<T: BatchTxn>(
    heap: &Heap,
    batch: &[T],
    boundaries: &[usize],
) -> (BatchReport, Vec<u64>) {
    let mut cycles = 0u64;
    let mut elapsed = Vec::with_capacity(boundaries.len());
    for (rank, txn) in batch.iter().enumerate() {
        cycles += cost::BATCH_SEQ_TX;
        let mut view =
            TxView { inner: ViewInner::Direct { heap }, cycles: 0, accesses: 0, every: 0 };
        txn.execute(&mut view).expect("direct-mode reads never block");
        cycles += view.cycles;
        if boundaries.get(elapsed.len()) == Some(&(rank + 1)) {
            elapsed.push(cycles);
        }
    }
    // Trailing (or empty-batch) boundaries complete at the current total.
    while elapsed.len() < boundaries.len() {
        elapsed.push(cycles);
    }
    let report = BatchReport {
        txs: batch.len() as u64,
        speculative: false,
        worker_cycles: vec![cycles],
        commit_cycles: 0,
        executions: batch.len() as u64,
        blocked: 0,
        aborts: 0,
        validations: 0,
        max_incarnation: 0,
        committed: Vec::new(),
    };
    (report, elapsed)
}

/// One worker: pull tasks until the batch quiesces.
fn worker_loop<T: BatchTxn>(shared: &Shared<'_, T>, wid: usize) {
    let mut arena = Arena::default();
    let mut st = WorkerStats::default();
    loop {
        sim_htm::sched::yield_point();
        match shared.sched.next_task() {
            Poll::Done => break,
            Poll::Idle => {
                // Modeled stall accounting: under the deterministic
                // scheduler one idle poll is one cooperative step, a
                // faithful proxy for waiting on a dependency. On real
                // OS threads the poll count is a property of host
                // timesharing, not of the protocol — an idle worker is
                // modeled as parked (its wall time is bounded by the
                // busy workers, which the makespan max already covers).
                if sim_htm::sched::is_controlled() {
                    st.cycles += cost::SPIN_ITER;
                } else {
                    std::thread::yield_now();
                }
            }
            Poll::Run(Task::Execute { rank, incarnation }) => {
                run_execution(shared, &mut arena, &mut st, rank, incarnation);
            }
            Poll::Run(Task::Validate { rank, incarnation }) => {
                run_validation(shared, &mut arena, &mut st, rank, incarnation);
            }
        }
    }
    *shared.stats[wid].lock().unwrap_or_else(|e| e.into_inner()) = st;
}

fn run_execution<T: BatchTxn>(
    shared: &Shared<'_, T>,
    arena: &mut Arena,
    st: &mut WorkerStats,
    rank: usize,
    incarnation: u32,
) {
    // `spent` is this task's modeled cost: it lands both in the worker's
    // cycle count and in the scheduler's retired clock (the wave marks).
    let mut spent = cost::BATCH_TASK;
    arena.writes.clear();
    arena.reads.clear();
    let mut view = TxView {
        inner: ViewInner::Spec {
            heap: shared.heap,
            mvmap: &shared.mvmap,
            rank: rank as u32,
            writes: &mut arena.writes,
            reads: &mut arena.reads,
        },
        cycles: 0,
        accesses: 0,
        every: shared.interleave,
    };
    let result = shared.batch[rank].execute(&mut view);
    spent += view.cycles;
    match result {
        Err(Blocked { on }) => {
            st.blocked += 1;
            st.cycles += spent;
            shared.sched.block_execution(rank, on as usize, spent);
        }
        Ok(()) => {
            st.executions += 1;
            // Swap the captured sets into the rank's output slot, diffing
            // against the previous incarnation's write set on the way.
            let mut out = shared.outputs[rank].lock().unwrap_or_else(|e| e.into_inner());
            arena.addr_scratch.clear();
            let mut wrote_new = false;
            for &(addr, _) in &out.writes {
                if arena.writes.lookup(Addr::from_word(addr)).is_none() {
                    arena.addr_scratch.push(addr);
                }
            }
            for (addr, _) in arena.writes.iter() {
                if !out.writes.iter().any(|&(prev, _)| prev == addr.to_word()) {
                    wrote_new = true;
                }
            }
            out.incarnation = incarnation;
            out.reads.clear();
            out.reads.extend_from_slice(arena.reads.as_slice());
            out.writes.clear();
            out.writes.extend(arena.writes.iter().map(|(a, v)| (a.to_word(), v)));
            let entries = out.writes.len() as u64;
            drop(out);
            sim_htm::sched::yield_point();
            shared.mvmap.publish(
                rank as u32,
                incarnation,
                arena.writes.iter().map(|(a, v)| (a.to_word(), v)),
            );
            spent += entries * cost::BATCH_PUBLISH_ENTRY;
            st.cycles += spent;
            shared.mvmap.retract(rank as u32, &arena.addr_scratch);
            shared.sched.finish_execution(rank, incarnation, wrote_new, spent);
        }
    }
}

fn run_validation<T: BatchTxn>(
    shared: &Shared<'_, T>,
    arena: &mut Arena,
    st: &mut WorkerStats,
    rank: usize,
    incarnation: u32,
) {
    st.validations += 1;
    let mut spent = cost::BATCH_TASK;
    // Copy the captured read set out under the slot lock (no yields while
    // holding it), then resolve each read against the map.
    {
        let out = shared.outputs[rank].lock().unwrap_or_else(|e| e.into_inner());
        if out.incarnation != incarnation {
            drop(out);
            st.cycles += spent;
            shared.sched.pass_validation(rank, spent);
            return;
        }
        arena.read_scratch.clear();
        arena.read_scratch.extend_from_slice(&out.reads);
    }
    let mut ok = true;
    for (i, record) in arena.read_scratch.iter().enumerate() {
        spent += cost::BATCH_VALIDATE_ENTRY;
        sim_htm::sched::yield_point();
        // Validation probes interleave on the same period as execution
        // accesses — a validation-only worker must not monopolize the core.
        if shared.interleave != 0 && (i as u64 + 1).is_multiple_of(u64::from(shared.interleave)) {
            std::thread::yield_now();
        }
        let valid = match (shared.mvmap.read(record.addr, rank as u32), record.origin) {
            (Resolve::Storage, Origin::Storage) => true,
            (
                Resolve::Version { rank: w, incarnation: i, .. },
                Origin::Version { rank: ow, incarnation: oi },
            ) => w == ow && i == oi,
            // MUTANT (`Mutant::BatchStaleEstimate`): a read that now
            // resolves to an ESTIMATE means the writer below aborted
            // after we read it — the captured value belongs to a dead
            // incarnation and this validation must fail. The mutant
            // "recognizes" the tombstone as the version it read (same
            // writer rank, incarnation unchecked) and lets the stale
            // read survive the writer's re-execution: a lost update.
            (Resolve::Estimate { rank: e }, Origin::Version { rank: ow, .. }) => {
                shared.stale_estimate && e == ow
            }
            _ => false,
        };
        if !valid {
            ok = false;
            break;
        }
    }
    if ok {
        st.cycles += spent;
        shared.sched.pass_validation(rank, spent);
        return;
    }
    // Collect the write addresses to tombstone, then abort under the
    // scheduler lock (stale failures are discarded there).
    arena.addr_scratch.clear();
    {
        let out = shared.outputs[rank].lock().unwrap_or_else(|e| e.into_inner());
        arena.addr_scratch.extend(out.writes.iter().map(|&(addr, _)| addr));
    }
    st.cycles += spent;
    if shared.sched.fail_validation(rank, incarnation, &shared.mvmap, &arena.addr_scratch, spent) {
        st.aborts += 1;
        st.cycles += cost::BATCH_ABORT;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mem::HeapConfig;

    /// Read one slot, bump it, and mirror the pre-bump value elsewhere.
    struct Bump {
        slot: Addr,
        mirror: Addr,
    }

    impl BatchTxn for Bump {
        fn execute(&self, view: &mut TxView<'_>) -> Result<(), Blocked> {
            let v = view.read(self.slot)?;
            view.write(self.slot, v + 1);
            view.write(self.mirror, v);
            Ok(())
        }
    }

    fn hot_batch(heap: &Heap, n: usize) -> (Addr, Vec<Bump>) {
        let slot = heap.allocator().alloc(0, 1).unwrap();
        let mirrors = heap.allocator().alloc(0, n as u64).unwrap();
        let batch = (0..n).map(|i| Bump { slot, mirror: mirrors.offset(i as u64) }).collect();
        (slot, batch)
    }

    #[test]
    fn single_worker_takes_the_fast_path() {
        let heap = Arc::new(Heap::new(HeapConfig::default()));
        let (slot, batch) = hot_batch(&heap, 16);
        let exec = ParallelExecutor::new(Arc::clone(&heap), BatchConfig::default()).unwrap();
        let report = exec.execute(&batch);
        assert!(!report.speculative());
        assert_eq!(report.txs(), 16);
        assert_eq!(report.aborts(), 0);
        assert_eq!(heap.load(slot), 16);
        assert_eq!(heap.load(batch[7].mirror), 7);
        assert!(report.makespan_cycles() > 0);
    }

    #[test]
    fn speculative_run_matches_sequential_on_a_hot_slot() {
        let heap = Arc::new(Heap::new(HeapConfig::default()));
        let (slot, batch) = hot_batch(&heap, 48);
        let exec =
            ParallelExecutor::new(Arc::clone(&heap), BatchConfig::with_workers(4)).unwrap();
        let report = exec.execute(&batch);
        assert!(report.speculative());
        assert_eq!(heap.load(slot), 48);
        // Every rank reads the value its predecessor wrote: the mirrors
        // must come out 0..48 in rank order, whatever the interleaving.
        for (rank, tx) in batch.iter().enumerate() {
            assert_eq!(heap.load(tx.mirror), rank as u64, "mirror of rank {rank}");
        }
        assert_eq!(report.committed().len(), 48);
        // Rank 0's speculative read came from frozen base storage.
        assert_eq!(report.committed()[0].reads, vec![(slot.to_word(), 0)]);
        assert_eq!(report.committed()[47].writes[0], (slot.to_word(), 48));
    }

    #[test]
    fn disjoint_batch_never_aborts() {
        let heap = Arc::new(Heap::new(HeapConfig::default()));
        let slots = heap.allocator().alloc(0, 32).unwrap();
        struct Set(Addr);
        impl BatchTxn for Set {
            fn execute(&self, view: &mut TxView<'_>) -> Result<(), Blocked> {
                let v = view.read(self.0)?;
                view.write(self.0, v + 41);
                Ok(())
            }
        }
        let batch: Vec<Set> = (0..32).map(|i| Set(slots.offset(i))).collect();
        let exec =
            ParallelExecutor::new(Arc::clone(&heap), BatchConfig::with_workers(4)).unwrap();
        let report = exec.execute(&batch);
        assert_eq!(report.aborts(), 0);
        assert_eq!(report.max_incarnation(), 0);
        assert_eq!(report.executions(), 32);
        for i in 0..32 {
            assert_eq!(heap.load(slots.offset(i)), 41);
        }
    }

    #[test]
    fn chained_blocks_commit_like_one_batch_and_complete_in_order() {
        for workers in [1usize, 4] {
            let heap = Arc::new(Heap::new(HeapConfig::default()));
            let (slot, batch) = hot_batch(&heap, 24);
            let exec =
                ParallelExecutor::new(Arc::clone(&heap), BatchConfig::with_workers(workers))
                    .unwrap();
            let (report, elapsed) = exec.execute_chained(&batch, &[8, 16, 24]);
            assert_eq!(report.txs(), 24);
            assert_eq!(heap.load(slot), 24, "workers {workers}");
            for (rank, tx) in batch.iter().enumerate() {
                assert_eq!(heap.load(tx.mirror), rank as u64);
            }
            assert_eq!(elapsed.len(), 3);
            assert!(elapsed[0] > 0);
            assert!(elapsed.windows(2).all(|w| w[0] <= w[1]), "elapsed {elapsed:?}");
        }
    }

    #[cfg(feature = "deterministic")]
    #[test]
    fn chained_controlled_replay_is_a_pure_function_of_the_seed() {
        use sim_htm::sched::SchedConfig;
        let run = |seed: u64| {
            let heap = Arc::new(Heap::new(HeapConfig::default()));
            let (slot, batch) = hot_batch(&heap, 18);
            let exec =
                ParallelExecutor::new(Arc::clone(&heap), BatchConfig::with_workers(3)).unwrap();
            let (report, elapsed, _run) = exec.execute_chained_controlled(
                &batch,
                &[6, 12, 18],
                &SchedConfig::from_seed(seed),
            );
            assert_eq!(heap.load(slot), 18);
            assert!(elapsed.windows(2).all(|w| w[0] <= w[1]));
            (report.executions(), report.aborts(), elapsed)
        };
        for seed in 0..8 {
            assert_eq!(run(seed), run(seed), "seed {seed} not reproducible");
        }
    }

    #[cfg(feature = "deterministic")]
    #[test]
    fn controlled_replay_is_a_pure_function_of_the_seed() {
        use sim_htm::sched::SchedConfig;
        let run = |seed: u64| {
            let heap = Arc::new(Heap::new(HeapConfig::default()));
            let (slot, batch) = hot_batch(&heap, 12);
            let exec =
                ParallelExecutor::new(Arc::clone(&heap), BatchConfig::with_workers(3)).unwrap();
            let (report, _run) = exec.execute_controlled(&batch, &SchedConfig::from_seed(seed));
            assert_eq!(heap.load(slot), 12);
            (report.executions(), report.aborts(), report.blocked(), report.makespan_cycles())
        };
        for seed in 0..8 {
            assert_eq!(run(seed), run(seed), "seed {seed} not reproducible");
        }
    }
}
