//! Cache-line identity and per-line version metadata.
//!
//! The simulated machine groups heap words into 64-byte cache lines (8
//! words). Each line carries one metadata word maintained seqlock-style:
//!
//! ```text
//!   bit 0      : write lock (1 = a commit or coherent store is in flight)
//!   bits 63..1 : version, incremented on every unlock
//! ```
//!
//! This metadata is *not* visible to TM algorithms — it belongs to the
//! simulated hardware. The HTM simulator records `LineSnapshot`s in its read
//! set and revalidates them, which is how "another core wrote a line in my
//! tracking set" manifests as a conflict abort.

use core::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::Addr;

/// Number of 64-bit words per simulated cache line (64 bytes).
pub const WORDS_PER_LINE: u64 = 8;

const LOCK_BIT: u64 = 1;
const VERSION_STEP: u64 = 2;

/// Identifies one simulated cache line.
///
/// # Examples
///
/// ```rust
/// use sim_mem::{Addr, LineId};
///
/// assert_eq!(LineId::containing(Addr::new(0)), LineId::containing(Addr::new(7)));
/// assert_ne!(LineId::containing(Addr::new(7)), LineId::containing(Addr::new(8)));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineId(u64);

impl LineId {
    /// The line containing the given word address.
    #[inline]
    pub const fn containing(addr: Addr) -> Self {
        LineId(addr.index() / WORDS_PER_LINE)
    }

    /// Raw line index (into the heap's metadata table).
    #[inline]
    pub const fn index(self) -> u64 {
        self.0
    }

    /// First word address of this line.
    #[inline]
    pub const fn first_word(self) -> Addr {
        Addr::new(self.0 * WORDS_PER_LINE)
    }
}

impl fmt::Debug for LineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineId({:#x})", self.0)
    }
}

/// An observation of a line's metadata at some instant: either "unlocked at
/// version v" or "locked".
///
/// HTM read sets store unlocked snapshots; revalidation fails if the line
/// has since been locked or its version moved.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LineSnapshot(u64);

impl LineSnapshot {
    /// Whether the line was write-locked when observed.
    #[inline]
    pub const fn is_locked(self) -> bool {
        self.0 & LOCK_BIT != 0
    }

    /// The observed version (meaningful only when unlocked).
    #[inline]
    pub const fn version(self) -> u64 {
        self.0 >> 1
    }

    /// Raw metadata word, for compact storage in read-set logs.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

/// One cache line's version/lock word.
///
/// All transitions use the protocol documented at module level. The lock is
/// a plain test-and-set spin bit: the simulator's critical sections are a
/// handful of word stores, so spinning is appropriate (and matches what a
/// directory-based coherence protocol would serialize anyway).
#[derive(Debug, Default)]
pub struct LineMeta(AtomicU64);

impl LineMeta {
    /// A fresh, unlocked line at version 0.
    pub const fn new() -> Self {
        LineMeta(AtomicU64::new(0))
    }

    /// Observes the current metadata.
    #[inline]
    pub fn snapshot(&self) -> LineSnapshot {
        LineSnapshot(self.0.load(Ordering::Acquire))
    }

    /// Attempts to acquire the line's write lock.
    ///
    /// Returns the pre-lock snapshot on success; `None` if the line is
    /// already locked by someone else.
    #[inline]
    pub fn try_lock(&self) -> Option<LineSnapshot> {
        let cur = self.0.load(Ordering::Relaxed);
        if cur & LOCK_BIT != 0 {
            return None;
        }
        match self
            .0
            .compare_exchange(cur, cur | LOCK_BIT, Ordering::Acquire, Ordering::Relaxed)
        {
            Ok(_) => Some(LineSnapshot(cur)),
            Err(_) => None,
        }
    }

    /// Acquires the line's write lock, spinning until it is free.
    #[inline]
    pub fn lock(&self) -> LineSnapshot {
        let mut tries = 0u32;
        loop {
            if let Some(snap) = self.try_lock() {
                return snap;
            }
            tries += 1;
            if tries < 16 {
                std::hint::spin_loop();
            } else {
                // On an oversubscribed host the holder may be descheduled;
                // yield so it can publish and release.
                std::thread::yield_now();
            }
        }
    }

    /// Releases the write lock, bumping the version so that every reader
    /// snapshot taken before the lock was acquired is invalidated.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the line is not locked.
    #[inline]
    pub fn unlock_bump(&self) {
        let cur = self.0.load(Ordering::Relaxed);
        debug_assert!(cur & LOCK_BIT != 0, "unlock_bump on unlocked line");
        self.0
            .store((cur & !LOCK_BIT) + VERSION_STEP, Ordering::Release);
    }

    /// Releases the write lock *without* bumping the version.
    ///
    /// Used when a lock was taken but no word was modified (for example a
    /// simulated-HTM commit that aborts after locking part of its write
    /// set), so reader snapshots stay valid.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the line is not locked.
    #[inline]
    pub fn unlock_unchanged(&self) {
        let cur = self.0.load(Ordering::Relaxed);
        debug_assert!(cur & LOCK_BIT != 0, "unlock_unchanged on unlocked line");
        self.0.store(cur & !LOCK_BIT, Ordering::Release);
    }

    /// Whether `snap` is still the current, unlocked state of this line.
    #[inline]
    pub fn validate(&self, snap: LineSnapshot) -> bool {
        !snap.is_locked() && self.0.load(Ordering::Acquire) == snap.raw()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_partition_addresses() {
        for w in 0..64 {
            let line = LineId::containing(Addr::new(w));
            assert_eq!(line.index(), w / WORDS_PER_LINE);
            assert!(line.first_word().index() <= w);
            assert!(w < line.first_word().index() + WORDS_PER_LINE);
        }
    }

    #[test]
    fn snapshot_starts_unlocked_version_zero() {
        let m = LineMeta::new();
        let s = m.snapshot();
        assert!(!s.is_locked());
        assert_eq!(s.version(), 0);
        assert!(m.validate(s));
    }

    #[test]
    fn lock_then_bump_invalidates_snapshot() {
        let m = LineMeta::new();
        let before = m.snapshot();
        let held = m.lock();
        assert_eq!(held, before);
        assert!(m.snapshot().is_locked());
        assert!(!m.validate(before), "locked line must fail validation");
        m.unlock_bump();
        let after = m.snapshot();
        assert!(!after.is_locked());
        assert_eq!(after.version(), before.version() + 1);
        assert!(!m.validate(before));
        assert!(m.validate(after));
    }

    #[test]
    fn unlock_unchanged_preserves_snapshot_validity() {
        let m = LineMeta::new();
        let before = m.snapshot();
        m.lock();
        m.unlock_unchanged();
        assert!(m.validate(before));
    }

    #[test]
    fn try_lock_fails_when_held() {
        let m = LineMeta::new();
        assert!(m.try_lock().is_some());
        assert!(m.try_lock().is_none());
        m.unlock_bump();
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn locked_snapshot_never_validates() {
        let m = LineMeta::new();
        m.lock();
        let locked = m.snapshot();
        assert!(locked.is_locked());
        assert!(!m.validate(locked));
        m.unlock_bump();
        assert!(!m.validate(locked));
    }
}
