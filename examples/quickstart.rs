//! Quickstart: build a simulated machine, pick a TM algorithm, and run
//! transactions through a [`Session`].
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use rh_norec_repro::htm::{Htm, HtmConfig};
use rh_norec_repro::mem::{Heap, HeapConfig};
use rh_norec_repro::tm::prelude::*;

fn main() {
    // 1. The simulated machine: a shared heap and a best-effort HTM
    //    modeled on the paper's 8-core / 2-way-SMT Haswell.
    let heap = Arc::new(Heap::new(HeapConfig::default()));
    let htm = Htm::new(Arc::clone(&heap), HtmConfig::default());

    // 2. The TM runtime: RH NOrec, the paper's contribution.
    let rt = TmRuntime::new(Arc::clone(&heap), htm, TmConfig::new(Algorithm::RhNorec)).expect("runtime construction cannot fail");

    // 3. Shared data lives at heap addresses.
    let counter = heap.allocator().alloc(0, 1).expect("allocation");

    // 4. Each thread opens a session, then runs closures as transactions.
    std::thread::scope(|s| {
        for tid in 0..4 {
            let rt = Arc::clone(&rt);
            s.spawn(move || {
                let mut session = rt.open_session().expect("free worker slot");
                for _ in 0..10_000 {
                    session
                        .run(|tx| {
                            let v = tx.read(counter)?;
                            tx.write(counter, v + 1)
                        })
                        .expect("increment cannot fault");
                }
                let stats = session.stats();
                println!(
                    "thread {tid}: {} commits, {} on the fast path, {} slow-path entries",
                    stats.commits, stats.fast_path_commits, stats.slow_path_entries
                );
            });
        }
    });

    let total = heap.load(counter);
    assert_eq!(total, 40_000);
    println!("final counter: {total} (exact — transactions never lose updates)");
}
