//! Accounting invariants of [`TmThreadStats`] across every algorithm.
//!
//! The figures in the paper are ratios of these counters, so a counter
//! that drifts (a commit counted twice, a fallback entry that never
//! resolves) silently corrupts every derived row. This suite runs a
//! seeded deterministic sweep over all algorithms and three HTM device
//! shapes and asserts the closed-form accounting identities that must
//! hold for any fault-free execution:
//!
//! * every commit happened on exactly one path:
//!   `commits == fast_path_commits + slow_path_commits + serial_commits`,
//! * every slow-path entry resolved in exactly one slow or serial commit:
//!   `slow_path_entries == slow_path_commits + serial_commits`,
//! * prefix/postfix attempts dominate their commits, and only the RH
//!   algorithms run prefixes/postfixes at all.

use std::sync::{Arc, Mutex};

use rh_norec::{Algorithm, TmConfig, TmRuntime, TmThreadStats, TxKind};
use sim_htm::{Htm, HtmConfig};
use sim_mem::{Addr, Heap, HeapConfig};

const THREADS: usize = 2;
const TXS_PER_THREAD: u64 = 12;

/// The three device shapes: the default machine, a capacity-starved one
/// that forces fallbacks, and one with HTM fused off entirely.
fn device_shapes() -> Vec<(&'static str, HtmConfig)> {
    vec![
        ("default", HtmConfig::default()),
        (
            "tiny",
            HtmConfig {
                max_write_lines: 2,
                max_read_lines: 4,
                ..HtmConfig::default()
            },
        ),
        ("disabled", HtmConfig { enabled: false, ..HtmConfig::default() }),
    ]
}

/// Runs `THREADS` workers under the deterministic scheduler, each doing a
/// mix of read-write and read-only transactions over shared slots, and
/// returns the merged per-thread stats.
fn run_case(algorithm: Algorithm, htm_config: HtmConfig, seed: u64) -> TmThreadStats {
    let heap = Arc::new(Heap::new(HeapConfig { words: 1 << 14 }));
    let htm = Htm::new(Arc::clone(&heap), htm_config);
    let rt = TmRuntime::new(Arc::clone(&heap), htm, TmConfig::new(algorithm))
        .expect("runtime construction cannot fail");

    let slots: Vec<Addr> = (0..8)
        .map(|_| heap.allocator().alloc(0, 1).expect("heap has room"))
        .collect();

    let merged = Mutex::new(TmThreadStats::default());
    let bodies: Vec<_> = (0..THREADS)
        .map(|tid| {
            let rt = Arc::clone(&rt);
            let slots = slots.clone();
            let merged = &merged;
            move || {
                let mut worker = rt.register(tid).expect("fresh thread id");
                for i in 0..TXS_PER_THREAD {
                    if i % 3 == 2 {
                        // Read-only sweep over every slot.
                        worker.execute(TxKind::ReadOnly, |tx| {
                            let mut sum = 0u64;
                            for &slot in &slots {
                                sum = sum.wrapping_add(tx.read(slot)?);
                            }
                            Ok(sum)
                        });
                    } else {
                        // Read-modify-write of two (likely conflicting) slots.
                        let a = slots[((seed + i) % 8) as usize];
                        let b = slots[((seed + i * 5 + tid as u64) % 8) as usize];
                        worker.execute(TxKind::ReadWrite, |tx| {
                            let v = tx.read(a)?;
                            tx.write(a, v + 1)?;
                            let w = tx.read(b)?;
                            tx.write(b, w + 1)
                        });
                    }
                }
                let mut m = merged.lock().unwrap();
                *m = m.merge(&worker.stats());
            }
        })
        .collect();
    sim_htm::sched::run_threads_seeded(seed, bodies);
    merged.into_inner().unwrap()
}

#[test]
fn commit_and_attempt_accounting_balances_for_every_algorithm() {
    for algorithm in Algorithm::ALL {
        for (shape, htm_config) in device_shapes() {
            for seed in 0..6u64 {
                let s = run_case(algorithm, htm_config, seed);
                let ctx = format!("{algorithm:?}/{shape}/seed {seed}: {s:?}");

                assert_eq!(
                    s.commits,
                    THREADS as u64 * TXS_PER_THREAD,
                    "every executed transaction commits exactly once ({ctx})"
                );
                assert_eq!(
                    s.commits,
                    s.fast_path_commits + s.slow_path_commits + s.serial_commits,
                    "each commit lands on exactly one path ({ctx})"
                );
                assert_eq!(
                    s.slow_path_entries,
                    s.slow_path_commits + s.serial_commits,
                    "each slow-path entry resolves in one slow/serial commit ({ctx})"
                );
                assert!(
                    s.prefix_commits <= s.prefix_attempts,
                    "prefix commits cannot exceed attempts ({ctx})"
                );
                assert!(
                    s.postfix_commits <= s.postfix_attempts,
                    "postfix commits cannot exceed attempts ({ctx})"
                );

                let uses_htm_fast_path = !matches!(
                    algorithm,
                    Algorithm::Norec | Algorithm::NorecLazy | Algorithm::Tl2
                );
                if !uses_htm_fast_path || !htm_config.enabled {
                    assert_eq!(
                        s.fast_path_commits, 0,
                        "no fast-path commits without a usable HTM fast path ({ctx})"
                    );
                }
                let mixed = matches!(
                    algorithm,
                    Algorithm::RhNorec | Algorithm::RhNorecPostfixOnly
                );
                if !mixed {
                    assert_eq!(
                        s.prefix_attempts + s.postfix_attempts,
                        0,
                        "only the RH mixed slow path runs prefix/postfix HTM ({ctx})"
                    );
                }
                if algorithm != Algorithm::LockElision {
                    assert_eq!(
                        s.serial_commits, 0,
                        "only Lock Elision commits under its serializing lock ({ctx})"
                    );
                }
            }
        }
    }
}

/// The invariants also hold for a single uncontended thread, where the
/// fast path should carry everything on the default device.
#[test]
fn uncontended_default_device_commits_on_the_fast_path() {
    for algorithm in [Algorithm::LockElision, Algorithm::HybridNorec, Algorithm::RhNorec] {
        let heap = Arc::new(Heap::new(HeapConfig { words: 1 << 14 }));
        let htm = Htm::new(Arc::clone(&heap), HtmConfig::default());
        let rt = TmRuntime::new(Arc::clone(&heap), htm, TmConfig::new(algorithm))
            .expect("runtime construction cannot fail");
        let slot = heap.allocator().alloc(0, 1).expect("heap has room");
        let mut worker = rt.register(0).expect("fresh thread id");
        for _ in 0..32 {
            worker.execute(TxKind::ReadWrite, |tx| {
                let v = tx.read(slot)?;
                tx.write(slot, v + 1)
            });
        }
        let s = worker.stats();
        assert_eq!(s.commits, 32, "{algorithm:?}: {s:?}");
        assert_eq!(s.fast_path_commits, 32, "{algorithm:?} uncontended runs pure HTM: {s:?}");
        assert_eq!(s.commits, s.fast_path_commits + s.slow_path_commits + s.serial_commits);
        assert_eq!(s.slow_path_entries, 0, "{algorithm:?}: {s:?}");
    }
}
