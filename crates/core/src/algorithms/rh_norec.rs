//! **Reduced Hardware NOrec** — the paper's contribution (§2.2–§2.4).
//!
//! Two changes relative to Hybrid NOrec, both enabled by putting small
//! hardware transactions *inside the software slow path* (making it a
//! "mixed" slow path):
//!
//! * **HTM postfix** (Algorithm 2): the slow path's first write locks the
//!   global clock and opens a small hardware transaction that carries every
//!   subsequent access; all the writes publish atomically at its commit.
//!   Fast paths therefore can never observe partial slow-path writes — so
//!   the fast path reads the global clock only *at its commit point*
//!   instead of at start, eliminating Hybrid NOrec's false-abort storm.
//!   If the postfix cannot run, the slow path raises `global_htm_lock`
//!   (aborting all fast paths) and writes in place, exactly like Hybrid
//!   NOrec.
//! * **HTM prefix** (Algorithm 3): the slow path *starts* inside a small
//!   hardware transaction that covers as many initial reads as possible,
//!   deferring the clock read to the prefix's commit. Until then the HTM's
//!   own conflict detection replaces NOrec's per-read clock validation,
//!   shrinking the window in which a concurrent writer forces a slow-path
//!   restart. The prefix length adapts from abort feedback (§2.4); a
//!   transaction that fits entirely inside the prefix commits pure-HTM.
//!
//! Starvation of the slow path is handled by the §3.3 serial lock, which
//! writer fast paths subscribe to at commit.

use sim_htm::AbortCode;
use sim_mem::{Addr, Heap};

use crate::algorithms::common::{
    acquire_word_lock, classify_fast_abort, release_word_lock, xabort, FastFail,
};
use crate::algorithms::hybrid_norec::fast_commit_clock_update;
use crate::clock_shard::ClockSnapshot;
use crate::cost;
use crate::error::{TxFault, TxResult, RESTART};
use crate::globals::Globals;
use crate::runtime::TmThread;
use crate::stats::TmThreadStats;
use crate::trace;
use crate::tx::{Tx, TxCtx, TxMem, TxOps};
use crate::{PrefixConfig, TxKind};

pub(crate) fn run<T>(
    t: &mut TmThread,
    kind: TxKind,
    body: &mut dyn FnMut(&mut Tx<'_>) -> TxResult<T>,
    with_prefix: bool,
) -> Result<T, TxFault> {
    let retries = t.rt.config().retry.fast_path_retries;
    let mut attempts = 0;
    loop {
        trace::begin(trace::Path::Fast);
        match try_fast(t, kind, body) {
            Ok(value) => {
                trace::commit(trace::Path::Fast);
                t.stats.fast_path_commits += 1;
                return Ok(value);
            }
            Err(FastFail::Fault(fault)) => {
                trace::abort();
                return Err(fault);
            }
            Err(FastFail::Htm(code)) => {
                trace::abort();
                if let Some(code) = code {
                    classify_fast_abort(&mut t.stats, code);
                    attempts += 1;
                    if code.may_retry() && attempts < retries {
                        // Backoff before retrying in hardware so the
                        // conflicting transaction can finish (what
                        // production elision runtimes do between xbegin
                        // attempts); otherwise retries re-collide and
                        // convoy into the fallback.
                        sim_htm::sched::yield_point();
                        t.backoff.pause(attempts - 1, &mut t.stats.cycles);
                        continue;
                    }
                }
                break;
            }
        }
    }
    mixed_slow_path(t, kind, body, with_prefix)
}

/// The RH NOrec hardware fast path (Algorithm 1): subscribe only to
/// `global_htm_lock`; touch the clock at commit, not at start.
fn try_fast<T>(
    t: &mut TmThread,
    kind: TxKind,
    body: &mut dyn FnMut(&mut Tx<'_>) -> TxResult<T>,
) -> Result<T, FastFail> {
    let rt = t.rt.clone();
    let heap: &Heap = rt.heap();
    let g = rt.globals();

    if t.htm_thread.begin().is_err() {
        return Err(FastFail::Htm(None));
    }
    t.stats.cycles += cost::HTM_BEGIN + cost::HTM_ACCESS;
    match t.htm_thread.read(g.global_htm_lock) {
        Ok(0) => {}
        Ok(_) => {
            t.stats.cycles += cost::HTM_ABORT;
            return Err(FastFail::Htm(Some(t.htm_thread.abort(xabort::LOCK_HELD).code)));
        }
        Err(e) => {
            t.stats.cycles += cost::HTM_ABORT;
            return Err(FastFail::Htm(Some(e.code)));
        }
    }

    let interleave = t.rt.config().interleave_accesses;
    let ctx = crate::algorithms::common::FastCtx::new(
        &mut t.htm_thread,
        heap,
        &mut t.mem,
        t.tid,
        interleave,
    );
    let mut tx = Tx::new(TxCtx::Fast(ctx), kind);
    let outcome = body(&mut tx);
    let (ctx, fault) = tx.into_parts();
    let TxCtx::Fast(ctx) = ctx else { unreachable!() };
    let wrote = ctx.wrote;
    let dead = ctx.dead;
    t.stats.cycles += ctx.meter.cycles;

    if let Some(fault) = fault {
        if dead.is_none() {
            t.htm_thread.abort(xabort::FAULT);
        }
        t.stats.cycles += cost::HTM_ABORT;
        t.mem.rollback(heap, t.tid);
        return Err(FastFail::Fault(fault));
    }
    match outcome {
        Ok(value) => {
            if let Some(code) = dead {
                t.stats.cycles += cost::HTM_ABORT;
                t.mem.rollback(heap, t.tid);
                return Err(FastFail::Htm(Some(code)));
            }
            if wrote {
                // The scalability win: the clock enters the tracking set
                // only for this handful of instructions before commit.
                if let Err(code) = fast_commit_clock_update(t, &rt) {
                    t.stats.cycles += cost::HTM_ABORT;
                    t.mem.rollback(heap, t.tid);
                    return Err(FastFail::Htm(Some(code)));
                }
            }
            match t.htm_thread.commit() {
                Ok(()) => {
                    t.stats.cycles += cost::HTM_COMMIT;
                    t.mem.commit(heap, t.tid);
                    Ok(value)
                }
                Err(e) => {
                    t.stats.cycles += cost::HTM_ABORT;
                    t.mem.rollback(heap, t.tid);
                    Err(FastFail::Htm(Some(e.code)))
                }
            }
        }
        Err(_) => {
            let code = dead.expect("fast-path body restarted without an abort");
            t.stats.cycles += cost::HTM_ABORT;
            t.mem.rollback(heap, t.tid);
            Err(FastFail::Htm(Some(code)))
        }
    }
}

/// Which execution regime the mixed slow path is currently in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Mode {
    /// Inside the HTM prefix: reads run in hardware, uninstrumented.
    Prefix,
    /// Plain eager-NOrec reads with per-read clock validation.
    Software,
    /// Inside the HTM postfix: the write phase runs in hardware.
    Postfix,
    /// The postfix could not run: `global_htm_lock` is raised and writes go
    /// directly to memory (the Hybrid NOrec write phase).
    SoftwareWriter,
}

fn mixed_slow_path<T>(
    t: &mut TmThread,
    kind: TxKind,
    body: &mut dyn FnMut(&mut Tx<'_>) -> TxResult<T>,
    with_prefix: bool,
) -> Result<T, TxFault> {
    let rt = t.rt.clone();
    let heap: &Heap = rt.heap();
    let globals = rt.globals_snapshot();
    let restart_limit = rt.config().retry.slow_path_restart_limit;
    let small_retries = rt.config().retry.small_htm_retries;
    let prefix_cfg = rt.config().prefix;

    t.stats.slow_path_entries += 1;
    let mut restarts: u32 = 0;
    let mut serial_held = false;
    let mut counted = false;
    // A small hardware transaction that dies for a deterministic reason
    // (capacity) — or keeps dying — is abandoned for the remainder of
    // this transaction: the paper's "reverts back to the Hybrid NOrec
    // full software slow-path counterpart".
    let mut allow_prefix = with_prefix;
    let mut allow_postfix = true;
    let mut prefix_deaths = 0u32;
    let mut postfix_deaths = 0u32;
    // Out-of-context snapshot slot (see `norec::run_eager`): keeps the
    // cache-line-wide lane vector out of the `TxCtx` enum's moves.
    let mut snap_slot = ClockSnapshot::single(0);

    let value = loop {
        trace::begin(trace::Path::Mixed);
        if restarts > restart_limit && !serial_held {
            acquire_word_lock(heap, globals.serial_lock, &mut t.stats.cycles, &mut t.backoff);
            serial_held = true;
            t.stats.serial_lock_acquisitions += 1;
        }
        let mut ctx = RhCtx {
            heap,
            globals: &globals,
            mem: &mut t.mem,
            tid: t.tid,
            htm: &mut t.htm_thread,
            stats: &mut t.stats,
            backoff: &mut t.backoff,
            prefix_len: &mut t.prefix_len,
            prefix_cfg,
            small_retries,
            allow_postfix,
            interleave: rt.config().interleave_accesses,
            accesses: 0,
            mode: Mode::Software,
            snap: &mut snap_slot,
            counted,
            prefix_reads: 0,
            prefix_budget: 0,
            dead: false,
            died_in_prefix: false,
            died_in_postfix: false,
            death_may_retry: true,
            #[cfg(feature = "mutants")]
            mutant: rt.mutant_armed(crate::mutants::Mutant::PostfixClock),
            #[cfg(feature = "mutants")]
            no_htm_lock: rt.mutant_armed(crate::mutants::Mutant::RhWriterNoHtmLock),
        };
        ctx.start(allow_prefix);
        let mut tx = Tx::new(TxCtx::Rh(ctx), kind);
        let outcome = body(&mut tx);
        let (ctx, fault) = tx.into_parts();
        let TxCtx::Rh(mut ctx) = ctx else { unreachable!() };
        if let Some(fault) = fault {
            ctx.fault_teardown();
            counted = ctx.counted;
            trace::abort();
            t.mem.rollback(heap, t.tid);
            break Err(fault);
        }
        let committed = match outcome {
            Ok(value) => ctx.commit().map(|()| value),
            Err(_) => {
                debug_assert!(ctx.dead, "slow-path body restarted without cause");
                Err(RESTART)
            }
        };
        counted = ctx.counted;
        if ctx.died_in_prefix {
            prefix_deaths += 1;
            // Capacity deaths are handled by the adaptive controller
            // (each retry runs a shorter prefix); ban outright only when
            // the length cannot shrink, or as a last-resort bound.
            let can_shrink = prefix_cfg.adaptive && *ctx.prefix_len > prefix_cfg.min_reads;
            if (!ctx.death_may_retry && !can_shrink) || prefix_deaths >= 8 {
                allow_prefix = false;
            }
        }
        if ctx.died_in_postfix {
            postfix_deaths += 1;
            // The postfix has no length to adapt: a deterministic
            // (capacity) death means it can never succeed this
            // transaction.
            if !ctx.death_may_retry || postfix_deaths >= 4 {
                allow_postfix = false;
            }
        }
        match committed {
            Ok(value) => {
                trace::commit(trace::Path::Mixed);
                t.mem.commit(heap, t.tid);
                t.stats.slow_path_commits += 1;
                break Ok(value);
            }
            Err(_) => {
                trace::abort();
                t.mem.rollback(heap, t.tid);
                t.stats.slow_path_restarts += 1;
                restarts += 1;
            }
        }
    };
    debug_assert!(!counted, "fallback count leaked");
    if serial_held {
        t.stats.cycles += cost::GLOBAL_STORE;
        release_word_lock(heap, globals.serial_lock);
    }
    value
}

/// The mixed slow-path transaction context (Algorithms 2 and 3).
pub(crate) struct RhCtx<'a> {
    heap: &'a Heap,
    globals: &'a Globals,
    mem: &'a mut TxMem,
    tid: usize,
    htm: &'a mut sim_htm::HtmThread,
    stats: &'a mut TmThreadStats,
    backoff: &'a mut crate::txlog::Backoff,
    /// Adaptive expected prefix length, persisted on the thread.
    prefix_len: &'a mut u64,
    prefix_cfg: PrefixConfig,
    small_retries: u32,
    /// Postfix permitted this attempt (cleared after deterministic death).
    allow_postfix: bool,
    interleave: u32,
    accesses: u64,
    mode: Mode,
    /// The transaction's clock snapshot (locked/write-phase form after the
    /// first write), held by reference so the context stays cheap to move.
    snap: &'a mut ClockSnapshot,
    /// Whether this transaction currently holds a `num_of_fallbacks` unit.
    counted: bool,
    prefix_reads: u64,
    prefix_budget: u64,
    dead: bool,
    /// Death diagnostics for the retry loop's ban policy.
    died_in_prefix: bool,
    died_in_postfix: bool,
    death_may_retry: bool,
    /// Run the deliberately broken first-write protocol (mutation test).
    #[cfg(feature = "mutants")]
    mutant: bool,
    /// Armed `RhWriterNoHtmLock` corpus mutant: the software-writer
    /// fallback skips raising `global_htm_lock` (the planted bug).
    #[cfg(feature = "mutants")]
    no_htm_lock: bool,
}

impl RhCtx<'_> {
    /// Charges one transactional access and paces interleaving.
    #[inline]
    fn tick(&mut self, cycles: u64) {
        self.stats.cycles += cycles;
        self.accesses += 1;
        if self.interleave != 0 && self.accesses.is_multiple_of(self.interleave as u64) {
            std::thread::yield_now();
        }
    }

    /// MIXED_SLOW_PATH_START: try the HTM prefix; otherwise the original
    /// (Algorithm 2) software start.
    fn start(&mut self, with_prefix: bool) {
        if with_prefix && *self.prefix_len > 0 && self.start_prefix() {
            return;
        }
        self.software_start();
    }

    fn software_start(&mut self) {
        if !self.counted {
            self.stats.cycles += cost::GLOBAL_RMW;
            self.heap.fetch_update(self.globals.num_of_fallbacks, |v| v + 1);
            self.counted = true;
        }
        let mut spin = cost::STM_START;
        self.globals
            .clock
            .begin_into(self.heap, &mut spin, self.backoff, self.snap);
        self.stats.cycles += spin;
        self.mode = Mode::Software;
    }

    /// START_RH_HTM_PREFIX (Algorithm 3 lines 9–26).
    fn start_prefix(&mut self) -> bool {
        for _ in 0..self.small_retries.max(1) {
            self.stats.prefix_attempts += 1;
            if self.htm.begin().is_err() {
                continue;
            }
            self.stats.cycles += cost::HTM_BEGIN + cost::HTM_ACCESS;
            // Subscribe to the HTM lock to preserve opacity against
            // software-writer slow paths.
            match self.htm.read(self.globals.global_htm_lock) {
                Ok(0) => {
                    self.mode = Mode::Prefix;
                    self.prefix_reads = 0;
                    self.prefix_budget = *self.prefix_len;
                    return true;
                }
                Ok(_) => {
                    let code = self.htm.abort(xabort::LOCK_HELD).code;
                    self.note_prefix_abort(code);
                }
                Err(e) => self.note_prefix_abort(e.code),
            }
        }
        false
    }

    fn note_prefix_abort(&mut self, code: AbortCode) {
        self.stats.cycles += cost::HTM_ABORT;
        match code {
            AbortCode::Conflict => self.stats.prefix_conflict_aborts += 1,
            AbortCode::Capacity { .. } => self.stats.prefix_capacity_aborts += 1,
            _ => {}
        }
        if self.prefix_cfg.adaptive {
            // Capacity means the length itself is wrong: shrink hard.
            // Conflicts and external events are transient: back off
            // gently, or repeated bad luck disables the prefix for good.
            *self.prefix_len = match code {
                AbortCode::Capacity { .. } => *self.prefix_len / 2,
                _ => self.prefix_len.saturating_sub(8),
            }
            .max(self.prefix_cfg.min_reads);
        }
    }

    fn note_prefix_commit(&mut self) {
        self.stats.prefix_commits += 1;
        if self.prefix_cfg.adaptive {
            *self.prefix_len = (*self.prefix_len + 8).min(self.prefix_cfg.max_reads);
        }
    }

    fn note_postfix_abort(&mut self, code: AbortCode) {
        self.stats.cycles += cost::HTM_ABORT;
        match code {
            AbortCode::Conflict => self.stats.postfix_conflict_aborts += 1,
            AbortCode::Capacity { .. } => self.stats.postfix_capacity_aborts += 1,
            _ => {}
        }
    }

    /// COMMIT_RH_HTM_PREFIX (Algorithm 3 lines 47–56): performed when the
    /// prefix budget runs out, at the first write, or never (a transaction
    /// that commits wholly inside the prefix).
    ///
    /// Transitions to `Software` mode on success; kills the attempt on
    /// failure.
    fn commit_prefix(&mut self) -> TxResult<()> {
        debug_assert_eq!(self.mode, Mode::Prefix);
        self.stats.cycles += 3 * cost::HTM_ACCESS + cost::HTM_COMMIT;
        // Transactionally announce the fallback and snapshot the clock: the
        // HTM validates both together with every prefix read.
        if !self.counted {
            let fb = match self.htm.read(self.globals.num_of_fallbacks) {
                Ok(v) => v,
                Err(e) => return self.prefix_died(e.code),
            };
            if let Err(e) = self.htm.write(self.globals.num_of_fallbacks, fb + 1) {
                return self.prefix_died(e.code);
            }
        }
        let tv = match self.globals.clock.htm_snapshot(self.htm) {
            Ok(snap) => snap,
            Err(code) => return self.prefix_died(code),
        };
        match self.htm.commit() {
            Ok(()) => {
                self.note_prefix_commit();
                self.counted = true;
                *self.snap = tv;
                self.mode = Mode::Software;
                Ok(())
            }
            Err(e) => self.prefix_died(e.code),
        }
    }

    fn prefix_died(&mut self, code: AbortCode) -> TxResult<()> {
        self.note_prefix_abort(code);
        self.died_in_prefix = true;
        self.death_may_retry = code.may_retry();
        self.dead = true;
        Err(RESTART)
    }

    /// HANDLE_FIRST_WRITE (Algorithm 2 lines 25–31): lock the clock, then
    /// open the HTM postfix; if it cannot start, raise the HTM lock and
    /// fall back to direct writes.
    fn handle_first_write(&mut self) -> TxResult<()> {
        debug_assert_eq!(self.mode, Mode::Software);
        debug_assert!(self.counted);
        self.stats.cycles += cost::GLOBAL_RMW;
        self.lock_clock()?;

        if self.allow_postfix {
            for _ in 0..self.small_retries.max(1) {
                self.stats.postfix_attempts += 1;
                if self.htm.begin().is_ok() {
                    self.stats.cycles += cost::HTM_BEGIN;
                    self.mode = Mode::Postfix;
                    return Ok(());
                }
            }
        }
        // Postfix refused: abort all fast paths and write in software.
        // Skipped when the `rh_writer_no_htm_lock` corpus mutant is armed:
        // fast paths subscribe *only* to this lock, so without the raise a
        // read-only hardware transaction can commit a mixed snapshot taken
        // across this writer's in-place stores.
        self.stats.cycles += cost::GLOBAL_STORE;
        if !self.htm_lock_elided() {
            self.heap.store(self.globals.global_htm_lock, 1);
        }
        self.mode = Mode::SoftwareWriter;
        Ok(())
    }

    /// True when the `RhWriterNoHtmLock` corpus mutant is armed.
    #[inline]
    fn htm_lock_elided(&self) -> bool {
        #[cfg(feature = "mutants")]
        {
            self.no_htm_lock
        }
        #[cfg(not(feature = "mutants"))]
        {
            false
        }
    }

    /// Locks the clock's write phase from our start snapshot, so the lock
    /// doubles as the final conflict check — it fails iff anyone committed
    /// a write since we last validated.
    fn lock_clock(&mut self) -> TxResult<()> {
        #[cfg(feature = "mutants")]
        if self.mutant {
            // MUTANT (opacity-checker mutation test): re-read the clock at
            // the start of the write phase and lock whatever it holds now,
            // instead of entering from the deferred, per-read-validated
            // snapshot. Reads taken before an intervening commit survive
            // into the write phase — a lost update the checker must flag.
            if !self
                .globals
                .clock
                .force_enter_write_phase(self.heap, self.snap)
            {
                self.dead = true;
                return Err(RESTART);
            }
            return Ok(());
        }
        if !self
            .globals
            .clock
            .try_enter_write_phase(self.heap, self.snap)
        {
            self.backoff.note_lane_cas_failure();
            self.dead = true;
            return Err(RESTART);
        }
        Ok(())
    }

    /// Postfix death: discard speculation, close the write phase at its
    /// pre-lock version (nothing was published), kill the attempt.
    fn postfix_died(&mut self, code: AbortCode) -> TxResult<()> {
        self.note_postfix_abort(code);
        self.died_in_postfix = true;
        self.death_may_retry = code.may_retry();
        self.stats.cycles += cost::GLOBAL_STORE;
        self.globals
            .clock
            .release_without_publish(self.heap, self.snap);
        self.dead = true;
        Err(RESTART)
    }

    /// Tears the attempt down after a programming fault. A fault can only
    /// fire from a read-only body's first write, so the write phase was
    /// never entered: the clock is not locked, `global_htm_lock` was never
    /// raised by this transaction, and the only state to undo is a live
    /// prefix speculation and the fallback announcement.
    fn fault_teardown(&mut self) {
        debug_assert!(
            matches!(self.mode, Mode::Prefix | Mode::Software),
            "write phase entered by a read-only transaction"
        );
        if self.mode == Mode::Prefix && !self.dead {
            self.stats.cycles += cost::HTM_ABORT;
            self.htm.abort(xabort::FAULT);
        }
        if self.counted {
            self.stats.cycles += cost::GLOBAL_RMW;
            self.heap.fetch_update(self.globals.num_of_fallbacks, |v| v - 1);
            self.counted = false;
        }
    }

    /// MIXED_SLOW_PATH_COMMIT (Algorithms 2 and 3).
    fn commit(&mut self) -> TxResult<()> {
        if self.dead {
            return Err(RESTART);
        }
        match self.mode {
            Mode::Prefix => {
                // The whole transaction fit in the prefix.
                self.stats.cycles += cost::HTM_COMMIT;
                match self.htm.commit() {
                    Ok(()) => {
                        self.note_prefix_commit();
                        if self.counted {
                            self.stats.cycles += cost::GLOBAL_RMW;
                            self.heap.fetch_update(self.globals.num_of_fallbacks, |v| v - 1);
                            self.counted = false;
                        }
                        Ok(())
                    }
                    Err(e) => self.prefix_died(e.code),
                }
            }
            Mode::Software => {
                // Read-only (no write was encountered).
                if self.counted {
                    self.stats.cycles += cost::GLOBAL_RMW;
                    self.heap.fetch_update(self.globals.num_of_fallbacks, |v| v - 1);
                    self.counted = false;
                }
                Ok(())
            }
            Mode::Postfix => {
                // Sharded lanes bump *inside* the hardware transaction, so
                // the version advance commits atomically with the buffered
                // writes (single clock: a no-op — its bump follows commit).
                if let Err(code) = self.globals.clock.htm_postfix_bump(self.htm, self.tid, self.snap) {
                    return self.postfix_died(code);
                }
                match self.htm.commit() {
                    Ok(()) => {
                        self.stats.cycles +=
                            cost::HTM_COMMIT + cost::GLOBAL_STORE + cost::GLOBAL_RMW;
                        self.stats.postfix_commits += 1;
                        self.globals
                            .clock
                            .finish_postfix_publish(self.heap, self.snap);
                        self.heap.fetch_update(self.globals.num_of_fallbacks, |v| v - 1);
                        self.counted = false;
                        Ok(())
                    }
                    Err(e) => self.postfix_died(e.code),
                }
            }
            Mode::SoftwareWriter => {
                self.stats.cycles += 2 * cost::GLOBAL_STORE + cost::GLOBAL_RMW;
                self.heap.store(self.globals.global_htm_lock, 0);
                self.globals.clock.publish(self.heap, self.snap, self.tid);
                self.heap.fetch_update(self.globals.num_of_fallbacks, |v| v - 1);
                self.counted = false;
                Ok(())
            }
        }
    }
}

impl TxOps for RhCtx<'_> {
    fn read(&mut self, addr: Addr) -> TxResult<u64> {
        if self.dead {
            return Err(RESTART);
        }
        if self.mode == Mode::Prefix {
            self.prefix_reads += 1;
            if self.prefix_reads <= self.prefix_budget {
                self.tick(cost::HTM_ACCESS);
                return match self.htm.read(addr) {
                    Ok(v) => Ok(v),
                    Err(e) => self.prefix_died(e.code).map(|()| 0),
                };
            }
            // Budget exhausted: close the prefix and continue in software.
            self.commit_prefix()?;
        }
        match self.mode {
            Mode::Software => {
                self.tick(cost::NOREC_READ);
                self.stats.cycles += self.globals.clock.validate_cost(self.snap);
                let value = self.heap.load(addr);
                if !self.globals.clock.is_valid(self.heap, self.snap) {
                    self.dead = true;
                    return Err(RESTART);
                }
                Ok(value)
            }
            Mode::Postfix => {
                self.tick(cost::HTM_ACCESS);
                match self.htm.read(addr) {
                    Ok(v) => Ok(v),
                    Err(e) => self.postfix_died(e.code).map(|()| 0),
                }
            }
            Mode::SoftwareWriter => {
                self.tick(cost::NOREC_READ);
                Ok(self.heap.load(addr))
            }
            Mode::Prefix => unreachable!("prefix handled above"),
        }
    }

    fn write(&mut self, addr: Addr, value: u64) -> TxResult<()> {
        if self.dead {
            return Err(RESTART);
        }
        if self.mode == Mode::Prefix {
            // First write ends the prefix (Algorithm 3 lines 40–45).
            self.commit_prefix()?;
        }
        if self.mode == Mode::Software {
            self.handle_first_write()?;
        }
        match self.mode {
            Mode::Postfix => {
                self.tick(cost::HTM_ACCESS);
                match self.htm.write(addr, value) {
                    Ok(()) => Ok(()),
                    Err(e) => self.postfix_died(e.code),
                }
            }
            Mode::SoftwareWriter => {
                self.tick(cost::NOREC_WRITE);
                self.heap.store(addr, value);
                Ok(())
            }
            Mode::Prefix | Mode::Software => unreachable!("write phase established above"),
        }
    }

    fn alloc(&mut self, words: u64) -> TxResult<Addr> {
        if self.dead {
            return Err(RESTART);
        }
        self.stats.cycles += cost::ALLOC;
        Ok(self.mem.alloc(self.heap, self.tid, words))
    }

    fn free(&mut self, addr: Addr) -> TxResult<()> {
        if self.dead {
            return Err(RESTART);
        }
        self.stats.cycles += cost::FREE;
        self.mem.free(addr);
        Ok(())
    }
}
