//! # sim-mem: simulated shared memory for transactional-memory research
//!
//! This crate provides the memory substrate on which the rest of the
//! repository builds a reproduction of *Reduced Hardware NOrec* (Matveev &
//! Shavit, ASPLOS 2015). It models the pieces of a real machine's memory
//! system that hybrid transactional memory algorithms care about:
//!
//! * A **word-addressable shared heap** ([`Heap`]) of 64-bit words grouped
//!   into 64-byte **cache lines** (8 words per line), shared between threads.
//! * **Per-line version metadata** maintained seqlock-style, which is what
//!   lets the companion `sim-htm` crate publish a hardware transaction's
//!   write set *atomically* with respect to plain loads — the property the
//!   NOrec hybrid protocols rely on for opacity.
//! * A **scalable allocator** ([`Allocator`]) with per-thread pools, standing
//!   in for the tcmalloc allocator the paper had to adopt so that memory
//!   management would not induce spurious HTM conflicts (paper §3.2).
//!
//! Shared data lives at [`Addr`]esses rather than behind Rust references so
//! that every access — transactional or not — can be interposed on by the
//! simulated hardware. This mirrors how the STAMP benchmarks address memory
//! in C.
//!
//! ## Coherence model
//!
//! Two access families are exposed:
//!
//! * [`Heap::load`] / [`Heap::store`]: *coherent* accesses. A load never
//!   observes a value from the middle of an in-flight simulated-HTM commit;
//!   a store immediately invalidates (dooms) any simulated hardware
//!   transaction whose read or write set covers the line — the strong
//!   isolation that real HTM provides to non-transactional code.
//! * [`RawHeap`]: uninstrumented accessors for TM-runtime implementors (the
//!   `sim-htm` crate). These bypass coherence bookkeeping and must only be
//!   used under the line-locking protocol documented on [`RawHeap`].
//!
//! ## Example
//!
//! ```rust
//! use sim_mem::{Heap, HeapConfig};
//!
//! let heap = Heap::new(HeapConfig::default());
//! let alloc = heap.allocator();
//! let a = alloc.alloc(0, 4).expect("allocation");
//! heap.store(a, 42);
//! assert_eq!(heap.load(a), 42);
//! alloc.free(0, a);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod addr;
mod alloc;
mod error;
mod heap;
mod line;
mod size_class;

pub use addr::Addr;
pub use alloc::{AllocStats, Allocator};
pub use error::MemError;
pub use heap::{Heap, HeapConfig, RawHeap};
pub use line::{LineId, LineMeta, LineSnapshot, WORDS_PER_LINE};
pub use size_class::{SizeClass, NUM_SIZE_CLASSES};

/// Maximum number of worker threads any component of the simulator supports.
///
/// The paper's testbed is a 16-way (8-core, 2-way HyperThreaded) Haswell;
/// we leave generous headroom for oversubscription experiments.
pub const MAX_THREADS: usize = 64;
