//! The strict-serializability history checker — the cross-algorithm rung
//! below [`crate::opacity`] in the oracle hierarchy.
//!
//! Strict serializability (conflict-serializability consistent with
//! real-time order) constrains only what **committed** transactions did:
//! they must form one sequential history where each committed writer sees
//! exactly the state left by the writers serialized before it, and each
//! committed read-only transaction sees some state from its real-time
//! window. What aborted attempts observed is irrelevant.
//!
//! This is deliberately weaker than opacity, and that weakness is the
//! point: it applies uniformly to every engine in the repo — TL2 and lock
//! elision included, whose aborted attempts legitimately observe odd
//! intermediate states (TL2 readers can spin on locked stripes; elided
//! hardware attempts are discarded wholesale) — and it splits diagnoses.
//! An engine bug that corrupts committed results fails here; a bug that
//! only exposes zombie reads fails opacity alone. [`crate::verdict::judge`]
//! runs both and reports which rung broke.

use std::collections::HashMap;

use rh_norec::trace::Event;

use crate::history::{check_history, Property};
pub use crate::history::{Summary, Violation};

/// Checks `history` for strict serializability of its committed
/// transactions against `initial` memory contents (see
/// [`crate::opacity::check`] for the `initial` convention).
///
/// # Errors
///
/// Returns the first [`Violation`] found.
pub fn check(initial: &HashMap<u64, u64>, history: &[Event]) -> Result<Summary, Violation> {
    check_history(initial, history, Property::Serializability)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rh_norec::trace::{EventKind, Path};

    fn ev(vtid: usize, kind: EventKind) -> Event {
        Event { vtid, kind }
    }
    fn begin(vtid: usize) -> Event {
        ev(vtid, EventKind::Begin { path: Path::Stm })
    }
    fn read(vtid: usize, addr: u64, value: u64) -> Event {
        ev(vtid, EventKind::Read { addr, value })
    }
    fn write(vtid: usize, addr: u64, value: u64) -> Event {
        ev(vtid, EventKind::Write { addr, value })
    }
    fn commit(vtid: usize) -> Event {
        ev(vtid, EventKind::Commit { path: Path::Stm })
    }
    fn abort(vtid: usize) -> Event {
        ev(vtid, EventKind::Abort)
    }

    #[test]
    fn zombie_reads_pass_serializability_but_fail_opacity() {
        // The aborted attempt observes a torn snapshot — an opacity
        // violation that serializability, by design, does not see.
        let h = vec![
            begin(0),
            read(0, 8, 0),
            begin(1),
            write(1, 8, 7),
            write(1, 16, 7),
            commit(1),
            read(0, 16, 7),
            abort(0),
        ];
        check(&HashMap::new(), &h).unwrap();
        assert!(crate::opacity::check(&HashMap::new(), &h).is_err());
    }

    #[test]
    fn committed_lost_update_fails_both_properties() {
        let h = vec![
            begin(0),
            read(0, 8, 0),
            begin(1),
            read(1, 8, 0),
            write(0, 8, 1),
            commit(0),
            write(1, 8, 1),
            commit(1),
        ];
        let err = check(&HashMap::new(), &h).unwrap_err();
        assert_eq!(err.property, Property::Serializability);
        assert!(err.committed);
        assert!(crate::opacity::check(&HashMap::new(), &h).is_err());
    }

    #[test]
    fn committed_read_only_still_floats_in_its_window() {
        let h = vec![
            begin(0),
            read(0, 8, 0),
            begin(1),
            write(1, 16, 9),
            commit(1),
            read(0, 24, 0),
            commit(0),
        ];
        let s = check(&HashMap::new(), &h).unwrap();
        assert_eq!(s.commits, 2);
        assert_eq!(s.writer_commits, 1);
    }

    #[test]
    fn committed_torn_read_only_snapshot_fails() {
        // Same torn snapshot as the zombie test, but the reader COMMITS:
        // now serializability must flag it.
        let h = vec![
            begin(0),
            read(0, 8, 0),
            begin(1),
            write(1, 8, 7),
            write(1, 16, 7),
            commit(1),
            read(0, 16, 7),
            commit(0),
        ];
        let err = check(&HashMap::new(), &h).unwrap_err();
        assert_eq!(err.vtid, 0);
        assert!(err.committed);
    }
}
