//! Batch-engine parity sweep: whatever the worker count, the
//! interleaving, or the store geometry, the `ParallelExecutor` must leave
//! the heap **bit-for-bit identical** to sequential rank-order execution
//! of the same batch — rank order is the serialization the engine
//! claims, and the claim is checked here as raw store words, not
//! summaries.
//!
//! The sweep crosses schedule/trace seeds with kv shard counts {1, 4}
//! and batch sizes {1, 64, 1024}; a separate case pins that the
//! degenerate one-worker executor takes the no-speculation fast path.

use std::collections::HashMap;
use std::sync::Arc;

use rh_kv::batch::bind_trace;
use rh_kv::gen::{self, Mix, TraceConfig};
use rh_kv::{KvConfig, KvStore};
use rh_norec::batch::{execute_sequential, BatchConfig, ParallelExecutor};
use sim_htm::sched::SchedConfig;
use sim_mem::{Heap, HeapConfig};

/// Store shard counts the sweep covers (mirrors `kv_sweep.rs`).
const KV_SHARDS: [usize; 2] = [1, 4];
/// Batch sizes: degenerate, a contended handful, and a real block.
const BATCH_SIZES: [usize; 3] = [1, 64, 1024];
const SEEDS: u64 = 6;
const KEYSPACE: u64 = 12;
const BALANCE: u64 = 100;

/// A geometry that holds `KEYSPACE` keys at any shard count regardless
/// of hash skew: a bucket can never carry more than the whole key set.
fn geometry(kv_shards: usize) -> KvConfig {
    KvConfig { shards: kv_shards, buckets_per_shard: 2, slots_per_bucket: KEYSPACE as usize }
}

/// Runs one seeded transfer batch and returns the final store words.
/// `workers == 0` is the sequential rank-order baseline; otherwise a
/// `workers`-wide executor, controlled by `sched_seed` when given.
fn final_state(
    kv_shards: usize,
    size: usize,
    seed: u64,
    workers: usize,
    sched_seed: Option<u64>,
) -> HashMap<u64, u64> {
    let heap = Arc::new(Heap::new(HeapConfig { words: 1 << 18 }));
    let store = KvStore::create(&heap, geometry(kv_shards)).expect("test heap fits the store");
    for key in 1..=KEYSPACE {
        store.load(&heap, key, BALANCE).expect("geometry holds the keyspace");
    }
    let trace = gen::generate(&TraceConfig {
        requests: size,
        keyspace: KEYSPACE,
        mix: Mix::transfer_heavy(),
        seed,
        ..TraceConfig::default()
    });
    let batch = bind_trace(&store, &trace);
    if workers == 0 {
        execute_sequential(&heap, &batch);
    } else {
        let exec = ParallelExecutor::new(Arc::clone(&heap), BatchConfig::with_workers(workers))
            .expect("test batch config is valid");
        match sched_seed {
            Some(s) => {
                exec.execute_controlled(&batch, &SchedConfig::from_seed(s));
            }
            None => {
                exec.execute(&batch);
            }
        }
    }
    assert_eq!(store.sum_direct(&heap), KEYSPACE * BALANCE, "batch drifted the balance sum");
    store.snapshot_words(&heap)
}

/// Free-running OS-thread workers across the full grid: every shard
/// count, batch size, and seed lands on the sequential state exactly.
#[test]
fn speculative_state_equals_sequential_across_the_grid() {
    for kv_shards in KV_SHARDS {
        for size in BATCH_SIZES {
            for seed in 0..SEEDS {
                let sequential = final_state(kv_shards, size, seed, 0, None);
                let speculative = final_state(kv_shards, size, seed, 4, None);
                assert_eq!(
                    speculative, sequential,
                    "kv_shards={kv_shards} size={size} seed={seed}: state diverged"
                );
            }
        }
    }
}

/// The same parity under the deterministic cooperative scheduler, where
/// the schedule seed picks genuinely adversarial interleavings (and any
/// divergence replays from the seed alone).
#[test]
fn controlled_interleavings_preserve_parity() {
    for kv_shards in KV_SHARDS {
        let sequential = final_state(kv_shards, 64, 3, 0, None);
        for sched_seed in 0..SEEDS {
            let controlled = final_state(kv_shards, 64, 3, 3, Some(sched_seed));
            assert_eq!(
                controlled, sequential,
                "kv_shards={kv_shards} sched_seed={sched_seed}: state diverged"
            );
        }
    }
}

/// A one-worker executor is the sequential execution: it must take the
/// no-speculation fast path (no capture, no validation, no commit sweep)
/// and still land on the identical state.
#[test]
fn one_worker_takes_the_fast_path_with_identical_state() {
    let heap = Arc::new(Heap::new(HeapConfig { words: 1 << 18 }));
    let store = KvStore::create(&heap, geometry(1)).expect("test heap fits the store");
    for key in 1..=KEYSPACE {
        store.load(&heap, key, BALANCE).expect("geometry holds the keyspace");
    }
    let trace = gen::generate(&TraceConfig {
        requests: 64,
        keyspace: KEYSPACE,
        mix: Mix::transfer_heavy(),
        seed: 11,
        ..TraceConfig::default()
    });
    let batch = bind_trace(&store, &trace);
    let exec = ParallelExecutor::new(Arc::clone(&heap), BatchConfig::default())
        .expect("default batch config is valid");
    let report = exec.execute(&batch);
    assert!(!report.speculative(), "one worker must not speculate");
    assert_eq!(report.aborts(), 0);
    assert_eq!(report.validations(), 0);
    assert!(report.committed().is_empty(), "the fast path captures nothing");
    assert_eq!(store.snapshot_words(&heap), final_state(1, 64, 11, 0, None));
}
