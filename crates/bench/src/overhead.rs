//! `rh-bench overhead`: per-operation cost of the TM API.
//!
//! The RH NOrec fast path is supposed to be *uninstrumented* — the HyTM
//! lower-bound results (Alistarh et al.; Brown & Ravi) show per-access
//! instrumentation is exactly what kills hybrid scaling. This benchmark
//! measures what one transactional access actually costs through the
//! public `Tx` handle, per algorithm. Any cycles left here are pure API,
//! dispatch, and log-engine tax.
//!
//! Seven scenarios per algorithm:
//!
//! * `read` — a `TxKind::ReadOnly` transaction of 16 uncontended reads
//!   (HTM on: hybrids run their fast path),
//! * `read_write` — a `TxKind::ReadWrite` transaction of 8 read/write
//!   pairs (HTM on),
//! * `write_heavy` — 16 writes cycling over 4 distinct addresses, **HTM
//!   disabled** so the hybrids run their software slow paths: exercises
//!   write-set coalescing (4 live entries, not 16) and write-back,
//! * `read_after_write` — 16 writes to distinct addresses, then 8 reads
//!   of written addresses (read-after-write hits) and 8 reads of
//!   unwritten ones (misses), HTM disabled: exercises the write-set
//!   lookup path on both sides of the bloom filter,
//! * `contended` — 4 threads incrementing one shared cell (HTM on):
//!   exercises the fast-path retry and spin-site backoff under real
//!   contention. Wall-clock noise makes this cell informative rather
//!   than gated,
//! * `contended_disjoint` — 4 threads each incrementing a private
//!   line-padded cell with the fallback counter pinned nonzero (HTM on,
//!   `clock_shards = 1`): the transactions share *no data*, so every
//!   HTM conflict comes from the commit-clock metadata itself,
//! * `contended_sharded` — the identical workload at `clock_shards = 4`:
//!   each thread bumps its own sequence lane, so the metadata conflicts
//!   vanish. The `contended_disjoint` / `contended_sharded` pair is the
//!   sharded-clock sentinel: same body, same machine, only the clock
//!   layout differs. Both twins run interleave-paced and report the
//!   *modeled* ns/tx (cycle budget over [`rh_norec::cost::MODEL_HZ`]),
//!   so the comparison holds on hosts with fewer cores than workers.
//!
//! Results go to stdout (table or `--csv`) and to `BENCH_4.json`, which
//! also embeds the single-clock baseline (the `current` rows of the
//! committed `BENCH_3.json`, measured by this same harness just before
//! the sharded-clock engine landed), so the before/after comparison
//! survives in machine-readable form.

use std::sync::Arc;
use std::time::{Duration, Instant};

use rh_norec::{Algorithm, TmConfig, TmRuntime, TxKind};
use sim_htm::{Htm, HtmConfig};
use sim_mem::{Addr, Heap, HeapConfig, WORDS_PER_LINE};

use crate::figures::Scale;
use crate::ledger;

/// Transactional accesses per transaction in the `read` / `read_write` /
/// `write_heavy` scenarios (kept from BENCH_2 for comparability).
pub const ACCESSES_PER_TX: u64 = 16;

/// One benchmark scenario: body shape plus machine configuration.
#[derive(Clone, Copy, Debug)]
pub struct ScenarioSpec {
    /// Scenario name (stable across BENCH files).
    pub name: &'static str,
    /// Transactional accesses per transaction.
    pub accesses: u64,
    /// Whether the simulated HTM is available. Off forces the hybrid
    /// algorithms onto their software slow paths.
    pub htm: bool,
    /// Worker threads (1 = uncontended single-thread cell).
    pub threads: usize,
    /// Commit-clock sequence lanes (`TmConfig::clock_shards`); 1 is the
    /// classic single-word clock.
    pub clock_shards: u32,
    /// Multi-threaded cells only: give each thread a private line-padded
    /// cell instead of one shared word, so the only remaining HTM
    /// conflicts are on the clock metadata.
    pub disjoint: bool,
    /// Multi-threaded cells only: pin `num_of_fallbacks` to 1 before
    /// measuring, so hardware fast paths run their commit-time clock
    /// bump on every transaction (with the counter at 0 they skip the
    /// clock entirely and the scenario would measure nothing).
    pub pin_fallback: bool,
    /// `TmConfig::interleave_accesses` for this cell. Nonzero makes each
    /// worker yield the host thread every N transactional accesses *and*
    /// inside the commit-bump window, so concurrent transactions overlap
    /// in time the way they would on dedicated cores — without it, a
    /// few-core host timeslices whole transactions back to back and
    /// clock conflicts never physically occur. The figure driver uses
    /// the same pacing; the single-thread and legacy cells keep 0.
    pub interleave: u32,
    /// Report modeled ns/tx (summed `TmThreadStats::cycles` over
    /// `cost::MODEL_HZ`) instead of wall clock. Interleave-paced cells
    /// must use this: their host wall clock is dominated by deliberate
    /// yields and simulator bookkeeping, while the cycle budget charges
    /// exactly the protocol work — including every aborted attempt's
    /// body, abort penalty, and retry (the same policy the figure
    /// harness documents for interleaving-sensitive rows).
    pub modeled: bool,
}

/// The full scenario matrix.
pub const SCENARIOS: &[ScenarioSpec] = &[
    ScenarioSpec {
        name: "read",
        accesses: 16,
        htm: true,
        threads: 1,
        clock_shards: 1,
        disjoint: false,
        pin_fallback: false,
        interleave: 0,
        modeled: false,
    },
    ScenarioSpec {
        name: "read_write",
        accesses: 16,
        htm: true,
        threads: 1,
        clock_shards: 1,
        disjoint: false,
        pin_fallback: false,
        interleave: 0,
        modeled: false,
    },
    ScenarioSpec {
        name: "write_heavy",
        accesses: 16,
        htm: false,
        threads: 1,
        clock_shards: 1,
        disjoint: false,
        pin_fallback: false,
        interleave: 0,
        modeled: false,
    },
    ScenarioSpec {
        name: "read_after_write",
        accesses: 32,
        htm: false,
        threads: 1,
        clock_shards: 1,
        disjoint: false,
        pin_fallback: false,
        interleave: 0,
        modeled: false,
    },
    ScenarioSpec {
        name: "contended",
        accesses: 2,
        htm: true,
        threads: 4,
        clock_shards: 1,
        disjoint: false,
        pin_fallback: false,
        interleave: 0,
        modeled: false,
    },
    ScenarioSpec {
        name: "contended_disjoint",
        accesses: 2,
        htm: true,
        threads: 4,
        clock_shards: 1,
        disjoint: true,
        pin_fallback: true,
        interleave: 1,
        modeled: true,
    },
    ScenarioSpec {
        name: "contended_sharded",
        accesses: 2,
        htm: true,
        threads: 4,
        clock_shards: 4,
        disjoint: true,
        pin_fallback: true,
        interleave: 1,
        modeled: true,
    },
];

/// Per-op numbers captured **before** the sharded-clock engine: the
/// `current` rows of the committed `BENCH_3.json`, measured on the CI
/// container by this same harness against the single-word-clock engine
/// (recycled txlog arenas, coalescing indexed write-set + bloom, seeded
/// backoff). Units are nanoseconds. Kept as data so `BENCH_4.json`
/// always reports the before/after pair.
const BASELINE_SINGLE_CLOCK: &[(&str, &str, f64, f64)] = &[
    ("Lock Elision", "read", 871.12, 54.445),
    ("Lock Elision", "read_write", 1285.45, 80.341),
    ("Lock Elision", "write_heavy", 523.20, 32.700),
    ("Lock Elision", "read_after_write", 547.68, 17.115),
    ("Lock Elision", "contended", 289.03, 144.515),
    ("NOrec", "read", 172.97, 10.811),
    ("NOrec", "read_write", 317.72, 19.857),
    ("NOrec", "write_heavy", 496.89, 31.055),
    ("NOrec", "read_after_write", 577.46, 18.045),
    ("NOrec", "contended", 135.91, 67.954),
    ("NOrec-Lazy", "read", 205.91, 12.869),
    ("NOrec-Lazy", "read_write", 386.92, 24.183),
    ("NOrec-Lazy", "write_heavy", 240.06, 15.003),
    ("NOrec-Lazy", "read_after_write", 713.43, 22.295),
    ("NOrec-Lazy", "contended", 131.46, 65.728),
    ("TL2", "read", 148.43, 9.277),
    ("TL2", "read_write", 401.92, 25.120),
    ("TL2", "write_heavy", 551.12, 34.445),
    ("TL2", "read_after_write", 836.53, 26.141),
    ("TL2", "contended", 97.31, 48.657),
    ("HY-NOrec", "read", 884.65, 55.291),
    ("HY-NOrec", "read_write", 1440.59, 90.037),
    ("HY-NOrec", "write_heavy", 612.48, 38.280),
    ("HY-NOrec", "read_after_write", 693.15, 21.661),
    ("HY-NOrec", "contended", 407.48, 203.738),
    ("HY-NOrec-Lazy", "read", 853.50, 53.344),
    ("HY-NOrec-Lazy", "read_write", 1388.03, 86.752),
    ("HY-NOrec-Lazy", "write_heavy", 355.14, 22.196),
    ("HY-NOrec-Lazy", "read_after_write", 803.24, 25.101),
    ("HY-NOrec-Lazy", "contended", 412.94, 206.472),
    ("RH-NOrec", "read", 879.63, 54.977),
    ("RH-NOrec", "read_write", 1328.17, 83.011),
    ("RH-NOrec", "write_heavy", 644.36, 40.273),
    ("RH-NOrec", "read_after_write", 767.01, 23.969),
    ("RH-NOrec", "contended", 354.40, 177.200),
    ("RH-NOrec-Postfix", "read", 808.89, 50.556),
    ("RH-NOrec-Postfix", "read_write", 1422.12, 88.882),
    ("RH-NOrec-Postfix", "write_heavy", 651.99, 40.750),
    ("RH-NOrec-Postfix", "read_after_write", 731.71, 22.866),
    ("RH-NOrec-Postfix", "contended", 383.10, 191.548),
];

/// Engine description of the baseline rows above.
const BASELINE_ENGINE: &str =
    "single-word commit clock (recycled txlog arenas, indexed write-set + bloom, seeded backoff)";

/// Engine description of the current rows.
const CURRENT_ENGINE: &str = "sharded commit clock: per-core sequence lanes + aggregate epoch \
     (contended_sharded at clock_shards=4, every other cell at clock_shards=1)";

/// One measured cell.
#[derive(Clone, Debug)]
pub struct OverheadRow {
    /// Algorithm label (matches figure legends).
    pub algorithm: &'static str,
    /// Scenario name.
    pub scenario: &'static str,
    /// Transactions measured (after warmup).
    pub txs: u64,
    /// Wall-clock nanoseconds per transaction.
    pub ns_per_tx: f64,
    /// Wall-clock nanoseconds per transactional access.
    pub ns_per_access: f64,
}

fn measure_budget(scale: Scale) -> Duration {
    match scale {
        Scale::Quick => Duration::from_millis(96),
        Scale::Paper => Duration::from_millis(400),
    }
}

/// Measurement passes per cell. Each cell's budget is split into
/// `PASSES` slices interleaved with every other cell's, so a
/// multi-second load burst on a shared host degrades *some batches of
/// every cell* instead of *every batch of one cell* — the per-cell
/// minimum then recovers the uncontended cost for all of them.
const PASSES: u32 = 4;

fn make_runtime(algorithm: Algorithm, spec: &ScenarioSpec) -> (Arc<Heap>, Arc<TmRuntime>) {
    let heap = Arc::new(Heap::new(HeapConfig { words: 1 << 16 }));
    // Default HTM config: ample capacity, no spurious aborts; disabled
    // models a machine without RTM so the software slow paths run alone.
    let htm_cfg = if spec.htm { HtmConfig::default() } else { HtmConfig::disabled() };
    let htm = Htm::new(Arc::clone(&heap), htm_cfg);
    let tm_cfg = TmConfig::builder(algorithm)
        .clock_shards(spec.clock_shards)
        .interleave_accesses(spec.interleave)
        .build()
        .expect("overhead TM configuration rejected");
    let rt = TmRuntime::new(Arc::clone(&heap), htm, tm_cfg)
        .expect("overhead runtime construction cannot fail");
    (heap, rt)
}

fn alloc_slots(heap: &Heap) -> Vec<Addr> {
    let alloc = heap.allocator();
    (0..64)
        .map(|i| {
            let a = alloc.alloc(0, 8).expect("overhead heap too small");
            heap.store(a, i);
            a
        })
        .collect()
}

fn run_body(scenario: &'static str, worker: &mut rh_norec::Session, slots: &[Addr]) {
    match scenario {
        "read" => {
            let sum = worker.execute(TxKind::ReadOnly, |tx| {
                let mut acc = 0u64;
                for slot in &slots[..16] {
                    acc = acc.wrapping_add(tx.read(*slot)?);
                }
                Ok(acc)
            });
            std::hint::black_box(sum);
        }
        "read_write" => {
            worker.execute(TxKind::ReadWrite, |tx| {
                for i in 0..8 {
                    let v = tx.read(slots[i])?;
                    tx.write(slots[32 + i], v.wrapping_add(1))?;
                }
                Ok(())
            });
        }
        "write_heavy" => {
            // 16 writes over 4 addresses: a coalescing write-set keeps 4
            // live entries and writes back 4 words; an append-only one
            // keeps 16 and writes back 16.
            worker.execute(TxKind::ReadWrite, |tx| {
                for i in 0..16u64 {
                    tx.write(slots[(i & 3) as usize], i)?;
                }
                Ok(())
            });
        }
        "read_after_write" => {
            // 16 distinct writes, then 8 read-after-write hits and 8
            // misses: hits exercise the write-set lookup, misses the
            // bloom-filter negative path.
            let sum = worker.execute(TxKind::ReadWrite, |tx| {
                for i in 0..16u64 {
                    tx.write(slots[i as usize], i)?;
                }
                let mut acc = 0u64;
                for slot in &slots[..8] {
                    acc = acc.wrapping_add(tx.read(*slot)?);
                }
                for slot in &slots[32..40] {
                    acc = acc.wrapping_add(tx.read(*slot)?);
                }
                Ok(acc)
            });
            std::hint::black_box(sum);
        }
        other => unreachable!("unknown overhead scenario {other}"),
    }
}

/// A warmed-up single-threaded cell with its accumulated measurement
/// state, kept alive across interleaved passes.
struct LiveCell {
    algorithm: Algorithm,
    spec: &'static ScenarioSpec,
    worker: rh_norec::Session,
    slots: Vec<Addr>,
    best_batch: Duration,
    txs: u64,
}

impl LiveCell {
    fn new(algorithm: Algorithm, spec: &'static ScenarioSpec) -> Self {
        let (heap, rt) = make_runtime(algorithm, spec);
        let mut worker = rt.open_session().expect("free worker slot");
        let slots = alloc_slots(&heap);
        // Warmup: fault in the working set, settle adaptive state, and
        // let the recycled log arenas reach their steady-state capacity.
        for _ in 0..2_000 {
            run_body(spec.name, &mut worker, &slots);
        }
        LiveCell {
            algorithm,
            spec,
            worker,
            slots,
            best_batch: Duration::MAX,
            txs: 0,
        }
    }

    /// One timed slice: batches of 1024 transactions until the slice
    /// budget elapses, keeping the fastest batch. We report the minimum,
    /// not the mean: on a shared CI machine the mean folds in scheduler
    /// preemptions and co-tenant load, while the minimum converges on
    /// the true uncontended cost.
    fn pass(&mut self, slice: Duration) {
        let started = Instant::now();
        loop {
            let batch_started = Instant::now();
            for _ in 0..1_024 {
                run_body(self.spec.name, &mut self.worker, &self.slots);
            }
            self.best_batch = self.best_batch.min(batch_started.elapsed());
            self.txs += 1_024;
            if started.elapsed() >= slice {
                break;
            }
        }
    }

    fn into_row(self) -> OverheadRow {
        let ns_per_tx = self.best_batch.as_nanos() as f64 / 1_024.0;
        OverheadRow {
            algorithm: self.algorithm.label(),
            scenario: self.spec.name,
            txs: self.txs,
            ns_per_tx,
            ns_per_access: ns_per_tx / self.spec.accesses as f64,
        }
    }
}

/// Runs a multi-threaded contended-cell scenario: `threads` workers each
/// increment either one shared word or (`disjoint`) a private line-padded
/// word `txs_per_thread` times.
fn run_contended(algorithm: Algorithm, spec: &ScenarioSpec, scale: Scale) -> OverheadRow {
    let (heap, rt) = make_runtime(algorithm, spec);
    let alloc = heap.allocator();
    // Line-padded so disjoint cells never share a simulated cache line —
    // the HTM detects conflicts at line granularity, and data false
    // sharing would mask the clock-metadata effect under measurement.
    let cells: Vec<Addr> = if spec.disjoint {
        (0..spec.threads)
            .map(|_| alloc.alloc(0, WORDS_PER_LINE).expect("overhead heap too small"))
            .collect()
    } else {
        vec![alloc.alloc(0, WORDS_PER_LINE).expect("overhead heap too small")]
    };
    if spec.pin_fallback {
        // A nonzero fallback count makes every hardware fast-path commit
        // run its clock bump (see `fast_commit_clock_update`): the
        // scenario measures the commit clock, not the no-fallback
        // shortcut that skips it.
        heap.store(rt.globals().num_of_fallbacks, 1);
    }

    let txs_per_thread: u64 = match scale {
        Scale::Quick => 4_000,
        Scale::Paper => 25_000,
    };
    let started = Instant::now();
    let reports: Vec<rh_norec::ThreadReport> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..spec.threads)
            .map(|tid| {
                let rt = Arc::clone(&rt);
                let cell = cells[tid % cells.len()];
                s.spawn(move || {
                    let mut worker = rt.open_session().expect("free worker slot");
                    for _ in 0..txs_per_thread {
                        worker.execute(TxKind::ReadWrite, |tx| {
                            let v = tx.read(cell)?;
                            tx.write(cell, v.wrapping_add(1))
                        });
                    }
                    worker.report()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("overhead worker panicked"))
            .collect()
    });
    let elapsed = started.elapsed();

    let txs = txs_per_thread * spec.threads as u64;
    for cell in &cells {
        let expected = if spec.disjoint { txs_per_thread } else { txs };
        assert_eq!(
            heap.load(*cell),
            expected,
            "{algorithm:?} lost updates on a {} cell",
            spec.name
        );
    }
    let ns_per_tx = if spec.modeled {
        // Modeled cost: the summed per-thread cycle budget charges every
        // attempt's body, abort penalty, and retry at the simulator's
        // published costs, converted at `MODEL_HZ` — immune to the pacing
        // yields that dominate the paced cells' host wall clock.
        let cycles: u64 = reports.iter().map(|r| r.tm.cycles).sum();
        cycles as f64 / txs as f64 / rh_norec::cost::MODEL_HZ * 1e9
    } else {
        elapsed.as_nanos() as f64 / txs as f64
    };
    OverheadRow {
        algorithm: algorithm.label(),
        scenario: spec.name,
        txs,
        ns_per_tx,
        ns_per_access: ns_per_tx / spec.accesses as f64,
    }
}

/// Runs the full overhead matrix: every algorithm × every scenario.
pub fn run_matrix(scale: Scale) -> Vec<OverheadRow> {
    let budget = measure_budget(scale);

    // Warm up every single-threaded cell, then interleave their
    // measurement passes (see [`PASSES`]).
    let mut singles: Vec<LiveCell> = Algorithm::ALL
        .iter()
        .flat_map(|&algorithm| {
            SCENARIOS
                .iter()
                .filter(|spec| spec.threads == 1)
                .map(move |spec| LiveCell::new(algorithm, spec))
        })
        .collect();
    let slice = budget / PASSES;
    for _ in 0..PASSES {
        for cell in &mut singles {
            cell.pass(slice);
        }
    }

    // The multi-threaded cells run once each, after the gated cells, so
    // their thread churn does not perturb the single-thread minima.
    let mut single_rows = singles.into_iter().map(LiveCell::into_row);
    let mut rows = Vec::new();
    for &algorithm in &Algorithm::ALL {
        for spec in SCENARIOS {
            if spec.threads == 1 {
                rows.push(single_rows.next().expect("one row per single cell"));
            } else {
                rows.push(run_contended(algorithm, spec, scale));
            }
        }
    }
    rows
}

/// A row set in the shared ledger's emission shape.
fn ledger_rows<'a>(
    rows: &'a [(&'a str, &'a str, f64, f64, Option<u64>)],
) -> Vec<Vec<(&'a str, ledger::Value)>> {
    rows.iter()
        .map(|&(alg, scenario, ns_tx, ns_access, txs)| {
            let mut row = vec![
                ("algorithm", ledger::Value::Str(alg.to_string())),
                ("scenario", ledger::Value::Str(scenario.to_string())),
                ("ns_per_tx", ledger::Value::Num(ns_tx, 2)),
                ("ns_per_access", ledger::Value::Num(ns_access, 3)),
            ];
            if let Some(txs) = txs {
                row.push(("txs", ledger::Value::Int(txs)));
            }
            row
        })
        .collect()
}

/// Serializes the result (plus the embedded single-clock baseline) as the
/// `BENCH_4.json` document.
pub fn to_json(rows: &[OverheadRow]) -> String {
    let current: Vec<(&str, &str, f64, f64, Option<u64>)> = rows
        .iter()
        .map(|r| (r.algorithm, r.scenario, r.ns_per_tx, r.ns_per_access, Some(r.txs)))
        .collect();
    let baseline: Vec<(&str, &str, f64, f64, Option<u64>)> = BASELINE_SINGLE_CLOCK
        .iter()
        .map(|&(alg, scenario, ns_tx, ns_access)| (alg, scenario, ns_tx, ns_access, None))
        .collect();

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"overhead\",\n");
    out.push_str(
        "  \"description\": \"per-op cost through the public Tx handle; write_heavy and read_after_write run with HTM disabled (software slow paths), contended runs 4 threads on one cell; contended_disjoint/contended_sharded run 4 threads on private line-padded cells with the fallback counter pinned, at clock_shards 1 and 4\",\n",
    );
    out.push_str(&format!(
        "  \"instrumentation_compiled\": {},\n",
        rh_norec::INSTRUMENTED
    ));
    out.push_str("  \"baseline_single_clock\": {\n");
    out.push_str(&format!("    \"engine\": \"{}\",\n", ledger::escape(BASELINE_ENGINE)));
    out.push_str("    \"rows\": ");
    out.push_str(&ledger::rows_array(&ledger_rows(&baseline), "      ", "    "));
    out.push_str("\n  },\n");
    out.push_str("  \"current\": {\n");
    out.push_str(&format!("    \"engine\": \"{}\",\n", ledger::escape(CURRENT_ENGINE)));
    out.push_str("    \"rows\": ");
    out.push_str(&ledger::rows_array(&ledger_rows(&current), "      ", "    "));
    out.push_str("\n  }\n");
    out.push_str("}\n");
    out
}

/// Runs the matrix `best_of` times and merges per-cell minima: the same
/// noise policy as [`LiveCell::pass`]'s min-of-batches, extended across
/// whole runs, so a load burst spanning one run cannot inflate a cell
/// that a later run measures cleanly. Transaction counts accumulate;
/// the modeled cells are cycle-derived and effectively run-invariant.
pub fn run_matrix_best_of(scale: Scale, best_of: u32) -> Vec<OverheadRow> {
    let mut best = run_matrix(scale);
    for _ in 1..best_of {
        let next = run_matrix(scale);
        for (acc, row) in best.iter_mut().zip(&next) {
            assert_eq!(
                (acc.algorithm, acc.scenario),
                (row.algorithm, row.scenario),
                "run_matrix row order must be stable across runs"
            );
            acc.txs += row.txs;
            if row.ns_per_tx < acc.ns_per_tx {
                acc.ns_per_tx = row.ns_per_tx;
                acc.ns_per_access = row.ns_per_access;
            }
        }
    }
    best
}

/// Runs the matrix (merged over `best_of` runs), prints it (`--csv` for
/// machine-readable rows), and writes `BENCH_4.json` into the current
/// directory.
pub fn run(scale: Scale, csv: bool, best_of: u32) {
    let rows = run_matrix_best_of(scale, best_of.max(1));

    if csv {
        println!("algorithm,scenario,txs,ns_per_tx,ns_per_access");
        for r in &rows {
            println!(
                "{},{},{},{:.2},{:.3}",
                r.algorithm, r.scenario, r.txs, r.ns_per_tx, r.ns_per_access
            );
        }
    } else {
        println!(
            "overhead: cost per transactional access (instrumentation compiled: {})",
            rh_norec::INSTRUMENTED
        );
        println!(
            "{:<18} {:<18} {:>10} {:>12} {:>14}",
            "algorithm", "scenario", "txs", "ns/tx", "ns/access"
        );
        for r in &rows {
            println!(
                "{:<18} {:<18} {:>10} {:>12.2} {:>14.3}",
                r.algorithm, r.scenario, r.txs, r.ns_per_tx, r.ns_per_access
            );
        }
        if !BASELINE_SINGLE_CLOCK.is_empty() {
            println!();
            println!("single-clock baseline ({BASELINE_ENGINE}):");
            for &(alg, scenario, ns_tx, ns_access) in BASELINE_SINGLE_CLOCK {
                println!("{alg:<18} {scenario:<18} {:>10} {ns_tx:>12.2} {ns_access:>14.3}", "-");
            }
        }
    }

    let json = to_json(&rows);
    let path = "BENCH_4.json";
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
