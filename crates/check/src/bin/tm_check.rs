//! `tm-check` — the mutation-score gate over the planted-bug corpus.
//!
//! ```text
//! tm-check list
//! tm-check mutate [--budget N] [--mutant NAME]...
//! ```
//!
//! `mutate` sweeps every manifest entry (`rh_norec::mutants::MANIFEST`)
//! through its declared kill recipe: the mutated engine must fail an
//! oracle (or panic) within the bounded seed budget, and the *same*
//! engine unmutated must pass every seed of that budget clean. On top of
//! the per-mutant pairing, all five paper algorithms are swept clean at
//! clock shards 1 and 4. Any surviving mutant or any clean-engine failure
//! exits nonzero — the CI gate is a hard 100% kill floor.
//!
//! `--budget N` raises the per-mutant seed floor to at least `N` and sets
//! the clean cross-algorithm sweep to `N` seeds per configuration; each
//! mutant always gets at least its manifest `seed_budget`.

use std::process::ExitCode;

use rh_norec::mutants::{HtmProfile, Mutant, MutantSpec};
use rh_norec::Algorithm;
use sim_htm::sched::SchedConfig;
use sim_htm::HtmConfig;
use rh_norec::mutants::WorkloadShape;
use tm_check::harness::{run_case, run_case_minimized, CaseConfig, CaseFailure, CaseWorkload};

/// The paper's five algorithms — the clean cross-sweep set.
const CLEAN_SET: &[Algorithm] = &[
    Algorithm::LockElision,
    Algorithm::Norec,
    Algorithm::Tl2,
    Algorithm::HybridNorec,
    Algorithm::RhNorec,
];

/// Clock shardings the clean cross-sweep covers.
const CLEAN_SHARDS: &[u32] = &[1, 4];

const DEFAULT_BUDGET: u64 = 40;

fn usage() -> ! {
    eprintln!("usage: tm-check list");
    eprintln!("       tm-check mutate [--budget N] [--mutant NAME]...");
    eprintln!(
        "mutants: {}",
        Mutant::ALL.iter().map(|m| m.name()).collect::<Vec<_>>().join(", ")
    );
    std::process::exit(2);
}

fn htm_config(profile: HtmProfile) -> HtmConfig {
    match profile {
        HtmProfile::Haswell => HtmConfig::default(),
        HtmProfile::Disabled => HtmConfig::disabled(),
        HtmProfile::Tiny => HtmConfig::tiny_capacity(),
    }
}

fn case_for(spec: &MutantSpec, mutant: Option<Mutant>) -> CaseConfig {
    CaseConfig {
        algorithm: spec.algorithm,
        htm: htm_config(spec.htm),
        threads: spec.threads,
        slots: spec.slots,
        txs_per_thread: spec.txs_per_thread,
        ops_per_tx: spec.ops_per_tx,
        clock_shards: spec.clock_shards,
        mutant,
        backoff: None,
        workload: match spec.workload {
            WorkloadShape::Scripted => CaseWorkload::Scripted,
            // One shard maximizes key collisions in the transfer path.
            WorkloadShape::KvTransfer => CaseWorkload::KvTransfer { kv_shards: 1 },
            WorkloadShape::Batch => CaseWorkload::Batch { kv_shards: 1 },
            WorkloadShape::StealService => CaseWorkload::StealService { kv_shards: 1 },
        },
        policy: spec.policy.then(tm_check::harness::adaptive_policy),
    }
}

fn sched_for(spec: &MutantSpec, seed: u64) -> SchedConfig {
    let mut cfg = SchedConfig::from_seed(seed);
    cfg.abort_injection = spec.abort_injection;
    cfg
}

/// Outcome of one mutant's kill sweep.
struct KillRow {
    spec: &'static MutantSpec,
    budget: u64,
    /// `Some` when killed: (killing seed, diagnosis, shrink note).
    kill: Option<(u64, String, String)>,
    /// `Some` when the paired clean engine failed: (seed, diagnosis).
    clean_failure: Option<(u64, String)>,
}

fn sweep_mutant(spec: &'static MutantSpec, budget: u64) -> KillRow {
    let mutated = case_for(spec, Some(spec.mutant));
    let mut kill = None;
    for seed in 0..budget {
        let cfg = sched_for(spec, seed);
        if run_case(&mutated, &cfg).is_err() {
            // Re-run minimized so the table carries a steppable repro.
            let failure = run_case_minimized(&mutated, &cfg)
                .expect_err("deterministic failure must reproduce");
            let (diagnosis, shrink) = match &failure {
                CaseFailure::Violation { verdict, shrunk, .. } => (
                    format!(
                        "{} @ prefix {}/{}",
                        verdict.failed_properties(),
                        verdict.minimal_prefix,
                        verdict.history_len
                    ),
                    match shrunk {
                        Some(s) => format!("{} decisions -> {} events", s.guided.len(), s.events),
                        None => "-".to_string(),
                    },
                ),
                CaseFailure::Panicked { message, .. } => {
                    (format!("panic: {}", first_line(message)), "-".to_string())
                }
            };
            kill = Some((seed, diagnosis, shrink));
            break;
        }
    }

    // The paired clean engine must pass the *entire* budget: a recipe
    // that also kills the real engine proves nothing about the mutant.
    let clean = case_for(spec, None);
    let mut clean_failure = None;
    for seed in 0..budget {
        if let Err(failure) = run_case(&clean, &sched_for(spec, seed)) {
            clean_failure = Some((seed, first_line(&failure.to_string()).to_string()));
            break;
        }
    }

    KillRow { spec, budget, kill, clean_failure }
}

fn first_line(s: &str) -> &str {
    s.lines().next().unwrap_or(s)
}

fn cmd_list() -> ExitCode {
    println!("{} corpus mutants:", Mutant::ALL.len());
    for m in Mutant::ALL {
        let s = m.spec();
        println!(
            "  {:<24} {:?} ({:?}, shards {}, inject {}, budget {})",
            s.name, s.algorithm, s.htm, s.clock_shards, s.abort_injection, s.seed_budget
        );
        println!("    bug:   {}", s.summary);
        println!("    kill:  {}", s.kills_via);
    }
    ExitCode::SUCCESS
}

fn cmd_mutate(budget_floor: u64, selected: Vec<Mutant>) -> ExitCode {
    let full_corpus = selected.len() == Mutant::ALL.len();
    let mut rows = Vec::new();
    for m in selected {
        let spec = m.spec();
        let budget = spec.seed_budget.max(budget_floor);
        let row = sweep_mutant(spec, budget);
        match &row.kill {
            Some((seed, diagnosis, _)) => {
                println!("mutant {:<24} killed @ seed {seed} ({diagnosis})", spec.name)
            }
            None => println!("mutant {:<24} SURVIVED {budget} seeds", spec.name),
        }
        rows.push(row);
    }

    println!();
    println!(
        "{:<24} {:<18} {:>6} {:>9} {:<34} {:<28} clean pair",
        "mutant", "algorithm", "budget", "killed@", "diagnosis", "shrunk repro"
    );
    let mut killed = 0usize;
    let mut clean_ok = true;
    for row in &rows {
        let (killed_at, diagnosis, shrink) = match &row.kill {
            Some((seed, d, s)) => {
                killed += 1;
                (seed.to_string(), d.clone(), s.clone())
            }
            None => ("-".to_string(), "SURVIVED".to_string(), "-".to_string()),
        };
        let clean = match &row.clean_failure {
            None => "pass".to_string(),
            Some((seed, d)) => {
                clean_ok = false;
                format!("FAIL @ seed {seed}: {d}")
            }
        };
        println!(
            "{:<24} {:<18} {:>6} {:>9} {:<34} {:<28} {}",
            row.spec.name,
            format!("{:?}", row.spec.algorithm),
            row.budget,
            killed_at,
            diagnosis,
            shrink,
            clean
        );
    }
    println!();
    println!("mutation score: {killed}/{} killed", rows.len());

    // Cross-algorithm clean gate: every paper algorithm, both clock
    // shardings, must pass the full seed budget under both oracles.
    let mut cross_ok = true;
    if full_corpus {
        let seeds = budget_floor.max(DEFAULT_BUDGET);
        for &alg in CLEAN_SET {
            for &shards in CLEAN_SHARDS {
                let mut case = CaseConfig::contended(alg, HtmConfig::default());
                case.clock_shards = shards;
                let failure = (0..seeds)
                    .find_map(|seed| run_case(&case, &SchedConfig::from_seed(seed)).err());
                match failure {
                    None => println!("clean {alg:?} shards={shards}: {seeds} seeds pass"),
                    Some(f) => {
                        println!("clean {alg:?} shards={shards}: FAILED: {f}");
                        cross_ok = false;
                    }
                }
            }
        }
    }

    let all_killed = killed == rows.len();
    if !all_killed {
        eprintln!("FAIL: {} mutant(s) survived the budget", rows.len() - killed);
    }
    if !clean_ok {
        eprintln!("FAIL: a clean paired engine failed its mutant's kill recipe");
    }
    if !cross_ok {
        eprintln!("FAIL: a real engine failed the cross-algorithm clean sweep");
    }
    if all_killed && clean_ok && cross_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("list") => cmd_list(),
        Some("mutate") => {
            let mut budget = DEFAULT_BUDGET;
            let mut selected: Vec<Mutant> = Vec::new();
            while let Some(arg) = args.next() {
                let mut value = || args.next().unwrap_or_else(|| usage());
                match arg.as_str() {
                    "--budget" => budget = value().parse().unwrap_or_else(|_| usage()),
                    "--mutant" => {
                        let name = value();
                        match Mutant::from_name(&name) {
                            Some(m) => selected.push(m),
                            None => {
                                eprintln!("unknown mutant: {name}");
                                usage();
                            }
                        }
                    }
                    _ => usage(),
                }
            }
            if selected.is_empty() {
                selected = Mutant::ALL.to_vec();
            }
            cmd_mutate(budget, selected)
        }
        _ => usage(),
    }
}
