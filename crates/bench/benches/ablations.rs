//! Criterion bench for the design-choice ablations DESIGN.md calls out:
//! prefix+postfix vs postfix-only, adaptive vs fixed prefix, and the
//! small-HTM retry budget (§3.4: one attempt performed best).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use rh_bench::{run_cell, CellConfig};
use rh_norec::{Algorithm, TmConfigBuilder};
use tm_workloads::rbtree_bench::{RbTreeBench, RbTreeBenchConfig};

fn rbtree_cell(alg: Algorithm, overrides: Option<fn(TmConfigBuilder) -> TmConfigBuilder>) -> u64 {
    let config = CellConfig {
        duration: Duration::from_millis(20),
        heap_words: 1 << 20,
        tm_overrides: overrides,
        ..CellConfig::new(alg, 2, Duration::from_millis(20))
    };
    run_cell(
        &|heap| {
            Box::new(RbTreeBench::new(
                heap,
                RbTreeBenchConfig { initial_size: 256, mutation_pct: 10 },
            ))
        },
        &config,
    )
    .ops
}

fn ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    group.bench_function("rh_full", |b| b.iter(|| rbtree_cell(Algorithm::RhNorec, None)));
    group.bench_function("rh_postfix_only", |b| {
        b.iter(|| rbtree_cell(Algorithm::RhNorecPostfixOnly, None))
    });
    group.bench_function("rh_fixed_prefix", |b| {
        b.iter(|| rbtree_cell(Algorithm::RhNorec, Some(|b| b.adaptive_prefix(false))))
    });
    group.bench_function("rh_small_htm_retries_4", |b| {
        b.iter(|| rbtree_cell(Algorithm::RhNorec, Some(|b| b.small_htm_retries(4))))
    });
    group.bench_function("norec_eager", |b| b.iter(|| rbtree_cell(Algorithm::Norec, None)));
    group.bench_function("norec_lazy", |b| b.iter(|| rbtree_cell(Algorithm::NorecLazy, None)));
    group.finish();
}

criterion_group!(benches, ablations);
criterion_main!(benches);
