//! A transactional bank demonstrating the safety properties the paper
//! insists on — opacity and privatization — under concurrent transfers.
//!
//! Auditors take whole-bank snapshots inside read-only transactions (they
//! must always see the exact total); one thread *privatizes* an account by
//! transactionally closing it, after which it may access the balance
//! without any synchronization at all.
//!
//! ```text
//! cargo run --release --example bank
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use rh_norec_repro::htm::{Htm, HtmConfig};
use rh_norec_repro::mem::{Heap, HeapConfig};
use rh_norec_repro::tm::prelude::*;

const ACCOUNTS: u64 = 64;
const INITIAL: u64 = 1_000;
const TRANSFERS: u64 = 30_000;

fn main() {
    let heap = Arc::new(Heap::new(HeapConfig::default()));
    let htm = Htm::new(Arc::clone(&heap), HtmConfig::default());
    let rt = TmRuntime::new(Arc::clone(&heap), htm, TmConfig::new(Algorithm::RhNorec)).expect("runtime construction cannot fail");

    // Account table: [open_flag, balance] pairs.
    let table = heap.allocator().alloc(0, ACCOUNTS * 2).expect("alloc");
    let open = |i: u64| table.offset(i * 2);
    let balance = |i: u64| table.offset(i * 2 + 1);
    for i in 0..ACCOUNTS {
        heap.store(open(i), 1);
        heap.store(balance(i), INITIAL);
    }

    let done = AtomicBool::new(false);
    let audits = std::sync::atomic::AtomicU64::new(0);

    std::thread::scope(|s| {
        // Transfer threads.
        for tid in 0..2usize {
            let rt = Arc::clone(&rt);
            s.spawn(move || {
                let mut w = rt.open_session().expect("free worker slot");
                let mut rng = (tid as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15);
                for _ in 0..TRANSFERS {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    let from = rng % ACCOUNTS;
                    let to = (rng >> 17) % ACCOUNTS;
                    if from == to {
                        continue;
                    }
                    w.run(|tx| {
                        // Closed accounts are private: transactions must
                        // leave them alone.
                        if tx.read(open(from))? == 0 || tx.read(open(to))? == 0 {
                            return Ok(());
                        }
                        let f = tx.read(balance(from))?;
                        let t = tx.read(balance(to))?;
                        let amount = f.min(7);
                        tx.write(balance(from), f - amount)?;
                        tx.write(balance(to), t + amount)
                    })
                    .expect("transfer cannot fault");
                }
            });
        }
        // Auditor thread: snapshot consistency (opacity at work).
        {
            let rt = Arc::clone(&rt);
            let done = &done;
            let audits = &audits;
            s.spawn(move || {
                let mut w = rt.open_session().expect("free worker slot");
                while !done.load(Ordering::Acquire) {
                    let total = w
                        .run_read(|tx| {
                            let mut sum = 0u64;
                            for i in 0..ACCOUNTS {
                                sum += tx.read(balance(i))?;
                            }
                            Ok(sum)
                        })
                        .expect("audit cannot fault");
                    assert_eq!(total, ACCOUNTS * INITIAL, "torn audit snapshot!");
                    audits.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // Privatizer: close account 0, then use it non-transactionally.
        {
            let rt = Arc::clone(&rt);
            let heap = Arc::clone(&heap);
            let done = &done;
            s.spawn(move || {
                let mut w = rt.open_session().expect("free worker slot");
                std::thread::yield_now();
                let closed_balance = w
                    .run(|tx| {
                        tx.write(open(0), 0)?;
                        tx.read(balance(0))
                    })
                    .expect("privatization cannot fault");
                // The account is now private: plain loads and stores are
                // safe, exactly as after a privatizing commit on real HTM.
                heap.store(balance(0), closed_balance);
                for _ in 0..100_000 {
                    assert_eq!(
                        heap.load(balance(0)),
                        closed_balance,
                        "privatization violated"
                    );
                }
                // Reopen so the audit total stays exact.
                w.run(|tx| tx.write(open(0), 1)).expect("reopen cannot fault");
                done.store(true, Ordering::Release);
            });
        }
    });

    let final_total: u64 = (0..ACCOUNTS).map(|i| heap.load(balance(i))).sum();
    println!("final total : {final_total} (expected {})", ACCOUNTS * INITIAL);
    println!("audits run  : {}", audits.load(Ordering::Relaxed));
    assert_eq!(final_total, ACCOUNTS * INITIAL);
    println!("opacity and privatization held throughout");
}
