//! The TL2 STM of Dice, Shalev and Shavit, in the paper's configuration
//! (§3.1): per-location (per-stripe) versioned locks with **eager
//! encounter-time writes** and an undo log.
//!
//! TL2 pays higher constant overheads than NOrec (a metadata access per
//! read and write) but scales better under writers, because conflict
//! detection is per location instead of one global clock — in the paper's
//! 40%-mutation RBTree it overtakes Hybrid NOrec.

use std::sync::atomic::{AtomicU64, Ordering};

use sim_mem::{Addr, Heap, LineId};

use crate::algorithms::common::Meter;
use crate::cost;
use crate::error::{TxFault, TxResult, RESTART};
use crate::runtime::TmThread;
use crate::trace;
use crate::tx::{Tx, TxCtx, TxMem, TxOps};
use crate::txlog::{Backoff, LogMap, LogVec};
use crate::TxKind;

/// Number of stripe locks (power of two).
const STRIPES: usize = 1 << 16;

/// TL2's global metadata: the version clock and the stripe-lock table.
///
/// This is STM-internal bookkeeping, so it lives in ordinary process
/// memory (as it would in a real TL2), not in the simulated heap: TL2
/// never coexists with hardware transactions.
pub(crate) struct Tl2Meta {
    clock: AtomicU64,
    stripes: Box<[AtomicU64]>,
}

impl Tl2Meta {
    pub(crate) fn new() -> Self {
        Tl2Meta {
            clock: AtomicU64::new(0),
            stripes: (0..STRIPES)
                .map(|_| AtomicU64::new(0))
                .collect::<Vec<_>>()
                .into_boxed_slice(),
        }
    }

    /// Stripe index covering `addr` (one stripe per cache line, hashed).
    #[inline]
    fn stripe_of(&self, addr: Addr) -> usize {
        (LineId::containing(addr).index() as usize) & (STRIPES - 1)
    }

    #[inline]
    fn stripe(&self, index: usize) -> &AtomicU64 {
        &self.stripes[index]
    }
}

impl std::fmt::Debug for Tl2Meta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tl2Meta")
            .field("clock", &self.clock.load(Ordering::Relaxed))
            .field("stripes", &STRIPES)
            .finish()
    }
}

const LOCK_BIT: u64 = 1;

#[inline]
fn is_locked(meta: u64) -> bool {
    meta & LOCK_BIT != 0
}

#[inline]
fn version(meta: u64) -> u64 {
    meta >> 1
}

pub(crate) fn run<T>(
    t: &mut TmThread,
    kind: TxKind,
    body: &mut dyn FnMut(&mut Tx<'_>) -> TxResult<T>,
) -> Result<T, TxFault> {
    let rt = t.rt.clone();
    let heap: &Heap = rt.heap();
    let meta = rt.tl2();
    let interleave = rt.config().interleave_accesses;
    t.stats.slow_path_entries += 1;
    loop {
        trace::begin(trace::Path::Stm);
        // Recycled arenas: the owned-stripe table keeps its open-addressed
        // index allocated across attempts (no SipHash, no rehash churn).
        t.logs.tl2_read.clear();
        t.logs.tl2_undo.clear();
        t.logs.tl2_owned.clear();
        let mut ctx = Tl2Ctx {
            heap,
            meta,
            mem: &mut t.mem,
            tid: t.tid,
            rv: meta.clock.load(Ordering::Acquire),
            read_set: &mut t.logs.tl2_read,
            owned: &mut t.logs.tl2_owned,
            undo: &mut t.logs.tl2_undo,
            backoff: &mut t.backoff,
            dead: false,
            #[cfg(feature = "mutants")]
            skip_commit_validation: rt.mutant_armed(crate::mutants::Mutant::Tl2CommitNoValidate),
            #[cfg(feature = "mutants")]
            early_lock_release: rt.mutant_armed(crate::mutants::Mutant::Tl2EarlyRelease),
            meter: Meter::new(interleave),
        };
        ctx.meter.charge(cost::STM_START);
        let mut tx = Tx::new(TxCtx::Tl2(ctx), kind);
        let outcome = body(&mut tx);
        let (ctx, fault) = tx.into_parts();
        let TxCtx::Tl2(mut ctx) = ctx else { unreachable!() };
        if let Some(fault) = fault {
            // The refused write acquired no stripe and logged no undo
            // entry (the fault fires first in a read-only body), but
            // rollback_writes also covers the empty case and keeps the
            // teardown uniform.
            ctx.rollback_writes();
            trace::abort();
            t.stats.cycles += ctx.meter.cycles;
            t.mem.rollback(heap, t.tid);
            return Err(fault);
        }
        match outcome {
            Ok(value) => {
                if ctx.commit().is_ok() {
                    trace::commit(trace::Path::Stm);
                    t.stats.cycles += ctx.meter.cycles;
                    t.mem.commit(heap, t.tid);
                    t.stats.slow_path_commits += 1;
                    return Ok(value);
                }
                trace::abort();
                t.stats.cycles += ctx.meter.cycles;
                t.mem.rollback(heap, t.tid);
                t.stats.slow_path_restarts += 1;
            }
            Err(_) => {
                ctx.rollback_writes();
                trace::abort();
                t.stats.cycles += ctx.meter.cycles;
                t.mem.rollback(heap, t.tid);
                t.stats.slow_path_restarts += 1;
            }
        }
    }
}

pub(crate) struct Tl2Ctx<'a> {
    heap: &'a Heap,
    meta: &'a Tl2Meta,
    mem: &'a mut TxMem,
    tid: usize,
    /// Read version: the clock value sampled at transaction start.
    rv: u64,
    /// Stripes read, with the metadata observed at read time.
    read_set: &'a mut LogVec<(usize, u64)>,
    /// Stripes this transaction write-locked, with their pre-lock metadata.
    /// The shared recycled index map: first-lock order preserved for
    /// release, O(1) ownership checks on every read and write.
    owned: &'a mut LogMap,
    /// Undo log for eager writes (applied in reverse on abort).
    undo: &'a mut LogVec<(Addr, u64)>,
    backoff: &'a mut Backoff,
    dead: bool,
    /// Armed `Tl2CommitNoValidate` corpus mutant: commit skips read-set
    /// validation when the clock moved (the planted bug).
    #[cfg(feature = "mutants")]
    skip_commit_validation: bool,
    /// Armed `Tl2EarlyRelease` corpus mutant: abort releases stripe locks
    /// before undoing eager writes (the planted bug).
    #[cfg(feature = "mutants")]
    early_lock_release: bool,
    meter: Meter,
}

impl Tl2Ctx<'_> {
    /// True when the `Tl2CommitNoValidate` corpus mutant is armed.
    #[inline]
    fn commit_validation_elided(&self) -> bool {
        #[cfg(feature = "mutants")]
        {
            self.skip_commit_validation
        }
        #[cfg(not(feature = "mutants"))]
        {
            false
        }
    }

    /// True when the `Tl2EarlyRelease` corpus mutant is armed.
    #[inline]
    fn release_before_undo(&self) -> bool {
        #[cfg(feature = "mutants")]
        {
            self.early_lock_release
        }
        #[cfg(not(feature = "mutants"))]
        {
            false
        }
    }
    /// Restores overwritten values and releases stripe locks at their
    /// original versions (values are unchanged after undo, so reader
    /// snapshots stay valid).
    fn rollback_writes(&mut self) {
        self.meter.charge(
            self.undo.len() as u64 * cost::NOREC_WRITEBACK_ENTRY
                + self.owned.len() as u64 * cost::TL2_RELEASE_ENTRY,
        );
        if self.release_before_undo() {
            // Lock-release-before-write-back: the stripes go back to their
            // pre-lock versions while the dirty values are still in place,
            // and a scheduling point lets a reader in — it sees an aborted
            // write at an unlocked, valid-looking stripe. (The release loop
            // below is then a no-op: `owned` is already empty.)
            for &(stripe, pre) in self.owned.iter() {
                self.meta.stripe(stripe as usize).store(pre, Ordering::Release);
            }
            self.owned.clear();
            sim_htm::sched::yield_point();
        }
        for &(addr, old) in self.undo.as_slice().iter().rev() {
            self.heap.store(addr, old);
        }
        self.undo.clear();
        for &(stripe, pre) in self.owned.iter() {
            self.meta.stripe(stripe as usize).store(pre, Ordering::Release);
        }
        self.owned.clear();
    }

    fn acquire_stripe(&mut self, stripe: usize) -> TxResult<()> {
        if self.owned.contains(stripe as u64) {
            return Ok(());
        }
        let cur = self.meta.stripe(stripe).load(Ordering::Acquire);
        // Reject locked stripes and stripes newer than our read version;
        // the latter keeps reads of unwritten words in owned stripes
        // consistent with the rest of the snapshot.
        if is_locked(cur) || version(cur) > self.rv {
            self.dead = true;
            return Err(RESTART);
        }
        if self
            .meta
            .stripe(stripe)
            .compare_exchange(cur, cur | LOCK_BIT, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            self.dead = true;
            return Err(RESTART);
        }
        self.owned.insert(stripe as u64, cur);
        Ok(())
    }

    fn commit(&mut self) -> TxResult<()> {
        if self.owned.is_empty() {
            // Read-only: every read was validated against rv at read time,
            // so the snapshot is consistent as of rv. Nothing to do.
            return Ok(());
        }
        self.meter.charge(cost::TL2_COMMIT);
        let wv = self.meta.clock.fetch_add(2, Ordering::AcqRel) + 2;
        if wv != self.rv + 2 && !self.commit_validation_elided() {
            // Validate the read set.
            self.meter
                .charge(self.read_set.len() as u64 * cost::TL2_VALIDATE_ENTRY);
            for &(stripe, seen) in self.read_set.as_slice() {
                let cur = self.meta.stripe(stripe).load(Ordering::Acquire);
                let ok = if let Some(pre) = self.owned.get(stripe as u64) {
                    pre == seen
                } else {
                    cur == seen
                };
                if !ok {
                    self.rollback_writes();
                    self.dead = true;
                    return Err(RESTART);
                }
            }
        }
        // Publish: release stripes at the new write version.
        self.meter
            .charge(self.owned.len() as u64 * cost::TL2_RELEASE_ENTRY);
        for &(stripe, _) in self.owned.iter() {
            self.meta.stripe(stripe as usize).store(wv << 1, Ordering::Release);
        }
        self.owned.clear();
        self.undo.clear();
        Ok(())
    }
}

impl TxOps for Tl2Ctx<'_> {
    fn read(&mut self, addr: Addr) -> TxResult<u64> {
        if self.dead {
            return Err(RESTART);
        }
        self.meter.tick(cost::TL2_READ);
        let stripe = self.meta.stripe_of(addr);
        if self.owned.contains(stripe as u64) {
            // We hold the lock: the value is ours or stable.
            return Ok(self.heap.load(addr));
        }
        // Consistent (meta, value, meta) sandwich, then version check. The
        // wait on a locked stripe is bounded: this transaction may itself
        // hold stripe locks (eager writes), so waiting forever on another
        // writer deadlocks — after the bound, abort and restart instead.
        let mut patience = 128u32;
        let observed = loop {
            let before = self.meta.stripe(stripe).load(Ordering::Acquire);
            if is_locked(before) {
                self.meter.charge(cost::SPIN_ITER);
                patience -= 1;
                if patience == 0 {
                    self.dead = true;
                    return Err(RESTART);
                }
                sim_htm::sched::yield_point();
                let mut spin = 0;
                self.backoff.pause(128 - patience, &mut spin);
                self.meter.charge(spin);
                continue;
            }
            let value = self.heap.load(addr);
            let after = self.meta.stripe(stripe).load(Ordering::Acquire);
            if before == after {
                break (before, value);
            }
        };
        let (stripe_meta, value) = observed;
        if version(stripe_meta) > self.rv {
            self.dead = true;
            return Err(RESTART);
        }
        self.read_set.push((stripe, stripe_meta));
        Ok(value)
    }

    fn write(&mut self, addr: Addr, value: u64) -> TxResult<()> {
        if self.dead {
            return Err(RESTART);
        }
        self.meter.tick(cost::TL2_WRITE);
        let stripe = self.meta.stripe_of(addr);
        self.acquire_stripe(stripe)?;
        self.undo.push((addr, self.heap.load(addr)));
        self.heap.store(addr, value);
        Ok(())
    }

    fn alloc(&mut self, words: u64) -> TxResult<Addr> {
        if self.dead {
            return Err(RESTART);
        }
        self.meter.charge(cost::ALLOC);
        Ok(self.mem.alloc(self.heap, self.tid, words))
    }

    fn free(&mut self, addr: Addr) -> TxResult<()> {
        if self.dead {
            return Err(RESTART);
        }
        self.meter.charge(cost::FREE);
        self.mem.free(addr);
        Ok(())
    }
}
