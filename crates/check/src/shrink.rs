//! Failure minimization: binary-search the schedule's decision prefix for
//! the shortest guided schedule that still reproduces a failure.
//!
//! A failing run hands back its full scheduler decision log. Replaying a
//! *prefix* of that log (the tail refilled from the seed's tail RNG — see
//! `SchedConfig::guided`) usually still fails: the offending interleaving
//! is pinned down by the first few dozen choices and the rest is noise.
//! [`minimize`] bisects for the shortest failing prefix and reports how
//! short the reproducing history got, so a sweep failure prints a replay
//! recipe a human can actually step through.
//!
//! Failure here means *any* failure of the same case — a checker
//! violation or a panic. Minimization never weakens the diagnosis: the
//! returned prefix is re-verified failing on every probe, so non-monotone
//! failure regions cannot smuggle in a passing "minimum".

use sim_htm::sched::SchedConfig;

use crate::harness::{run_case, CaseConfig, CaseFailure};

/// A minimized reproduction of a failing case.
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// The shortest failing guided decision prefix found.
    pub guided: Vec<usize>,
    /// Events in the reproducing run's history (0 for a panic before any
    /// event was recorded).
    pub events: usize,
}

/// Bisects `decisions` (the decision log of a failing run of `case` under
/// `base`) for the shortest prefix that still fails when replayed as a
/// guided schedule.
///
/// Returns `None` when even the full decision list does not reproduce the
/// failure — possible if `base` does not match the original run's
/// configuration — so callers never report an unverified shrink.
pub fn minimize(case: &CaseConfig, base: &SchedConfig, decisions: &[usize]) -> Option<Shrunk> {
    let fails = |k: usize| -> Option<usize> {
        let cfg = SchedConfig {
            guided: Some(decisions[..k].to_vec()),
            ..base.clone()
        };
        match run_case(case, &cfg) {
            Ok(_) => None,
            Err(CaseFailure::Violation { history, .. }) => Some(history.len()),
            Err(CaseFailure::Panicked { .. }) => Some(0),
        }
    };

    // The invariant `fails(hi)` must hold before bisection starts.
    let mut best = fails(decisions.len())?;
    let (mut lo, mut hi) = (0usize, decisions.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        match fails(mid) {
            Some(events) => {
                best = events;
                hi = mid;
            }
            None => lo = mid + 1,
        }
    }
    Some(Shrunk {
        guided: decisions[..hi].to_vec(),
        events: best,
    })
}
