//! Dynamic batch formation: draining the open-loop request stream into
//! rank-ordered blocks for the Block-STM batch executor.
//!
//! The former walks the trace in arrival order and greedily grows a
//! block of *batchable* requests (gets and transfers — the classes
//! [`crate::batch::BatchOp`] can express). A block **closes** at the
//! earliest of three events:
//!
//! - it reaches [`FormerConfig::max_batch`] members (`close_at` is the
//!   arrival of the request that filled it);
//! - the next arrival would land after the **deadline** of the block's
//!   oldest member, `oldest.at_ns + latency_budget_ns` (the block
//!   closes *at that deadline*: the former has spent the oldest
//!   request's slack waiting and must release it);
//! - a non-batchable request (put/delete/range) arrives — a barrier —
//!   or the trace ends before the deadline; the block closes at
//!   `min(deadline, barrier arrival)`, or at the deadline on trace end
//!   (an online former cannot know no more arrivals are coming).
//!
//! A closed block below [`FormerConfig::min_batch`] occupancy is not
//! worth the executor's per-block overhead: it **falls back** to
//! per-request sessions. The fallback is hysteretic: after a fallback
//! the former demands `2 * min_batch` occupancy before opening blocks
//! again, so a sparse stretch of the trace does not flap between modes
//! at every block boundary.
//!
//! The former is allocation-free on the warm path: its segment buffer
//! is recycled across [`Former::form`] calls (cleared, not freed).

use crate::gen::{OpClass, Request};

/// Batch-formation policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct FormerConfig {
    /// Close a block when it reaches this many requests.
    pub max_batch: usize,
    /// Close a block when the oldest member has waited this long.
    pub latency_budget_ns: u64,
    /// Blocks below this occupancy fall back to per-request sessions.
    pub min_batch: usize,
}

impl Default for FormerConfig {
    fn default() -> Self {
        // Defaults tuned on the BENCH_10 bursty trace: bursts fill
        // 64-deep blocks well inside the budget, while the quiescent
        // stretches between bursts fall through to sessions.
        FormerConfig { max_batch: 64, latency_budget_ns: 400_000, min_batch: 4 }
    }
}

impl FormerConfig {
    /// Panics unless the knobs are coherent.
    pub fn validate(&self) {
        assert!(self.max_batch >= 1, "max_batch must be at least 1");
        assert!(self.min_batch >= 1, "min_batch must be at least 1");
        assert!(
            self.min_batch <= self.max_batch,
            "min_batch {} cannot exceed max_batch {}",
            self.min_batch,
            self.max_batch
        );
        assert!(self.latency_budget_ns > 0, "latency budget must be positive");
    }
}

/// One contiguous run of the trace, tagged with how it executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Segment {
    /// `trace[start..start + len]` executes as one rank-ordered block
    /// on the batch executor; the block is released at `close_at_ns`.
    Batch {
        /// First trace index of the block.
        start: usize,
        /// Block occupancy.
        len: usize,
        /// Modeled instant the former releases the block.
        close_at_ns: u64,
    },
    /// `trace[start..start + len]` executes as per-request sessions
    /// (non-batchable classes, or a block that fell below occupancy).
    Session {
        /// First trace index of the run.
        start: usize,
        /// Run length.
        len: usize,
    },
}

/// Whether the batch executor can express this request.
pub fn batchable(request: &Request) -> bool {
    matches!(request.class, OpClass::Get | OpClass::Transfer)
}

/// The batch former. Holds the recycled segment buffer; one instance
/// serves any number of traces.
#[derive(Debug)]
pub struct Former {
    config: FormerConfig,
    segments: Vec<Segment>,
    /// Hysteresis state: the previous candidate block fell back.
    fell_back: bool,
}

impl Former {
    /// A former with the given policy (validated here).
    pub fn new(config: FormerConfig) -> Self {
        config.validate();
        Former { config, segments: Vec::new(), fell_back: false }
    }

    /// The policy this former runs.
    pub fn config(&self) -> FormerConfig {
        self.config
    }

    /// Partitions `trace` into segments. The returned slice borrows the
    /// recycled internal buffer and is valid until the next `form`.
    pub fn form(&mut self, trace: &[Request]) -> &[Segment] {
        self.segments.clear();
        self.fell_back = false;
        let mut i = 0;
        while i < trace.len() {
            if !batchable(&trace[i]) {
                // Barrier run: contiguous non-batchable requests.
                let start = i;
                while i < trace.len() && !batchable(&trace[i]) {
                    i += 1;
                }
                self.push_session(start, i - start);
                continue;
            }
            // Grow a candidate block.
            let start = i;
            let deadline = trace[start].at_ns + self.config.latency_budget_ns;
            let mut close_at = deadline;
            i += 1;
            loop {
                if i - start == self.config.max_batch {
                    // Filled: released the moment the filling request
                    // arrived.
                    close_at = trace[i - 1].at_ns;
                    break;
                }
                match trace.get(i) {
                    Some(next) if next.at_ns > deadline => break,
                    Some(next) if !batchable(next) => {
                        // Barrier: flush now rather than hold the block
                        // open across an operation it cannot contain.
                        close_at = deadline.min(next.at_ns);
                        break;
                    }
                    Some(_) => i += 1,
                    None => break,
                }
            }
            let len = i - start;
            let threshold = if self.fell_back {
                // Hysteresis: demand twice the occupancy to reopen
                // batching after a fallback.
                2 * self.config.min_batch
            } else {
                self.config.min_batch
            };
            if len < threshold {
                self.push_session(start, len);
                self.fell_back = true;
            } else {
                self.segments.push(Segment::Batch { start, len, close_at_ns: close_at });
                self.fell_back = false;
            }
        }
        &self.segments
    }

    /// Pushes a session run, merging into a preceding session segment
    /// so fallback runs and barrier runs coalesce.
    fn push_session(&mut self, start: usize, len: usize) {
        if let Some(Segment::Session { start: s, len: l }) = self.segments.last_mut() {
            if *s + *l == start {
                *l += len;
                return;
            }
        }
        self.segments.push(Segment::Session { start, len });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(at_ns: u64, class: OpClass) -> Request {
        Request { at_ns, class, key: 1, key2: 2, amount: 1 }
    }

    fn lens(segments: &[Segment]) -> Vec<(bool, usize)> {
        segments
            .iter()
            .map(|s| match *s {
                Segment::Batch { len, .. } => (true, len),
                Segment::Session { len, .. } => (false, len),
            })
            .collect()
    }

    #[test]
    fn a_burst_fills_one_block_closed_by_max_batch() {
        let trace: Vec<Request> =
            (0..10).map(|k| req(k * 10, OpClass::Transfer)).collect();
        let mut former = Former::new(FormerConfig {
            max_batch: 8,
            latency_budget_ns: 1_000_000,
            min_batch: 2,
        });
        let segs = former.form(&trace).to_vec();
        // 8 fill the first block (closed at the 8th arrival, inside the
        // budget); the 2-request tail still clears min_batch.
        assert_eq!(lens(&segs), vec![(true, 8), (true, 2)]);
        assert_eq!(segs[0], Segment::Batch { start: 0, len: 8, close_at_ns: 70 });
    }

    #[test]
    fn the_deadline_closes_a_slow_block() {
        // Arrivals 500ns apart with a 1000ns budget: the third arrival
        // (at 1000 = deadline) joins; the fourth (1500 > 1000) closes
        // the block at the oldest member's deadline.
        let trace: Vec<Request> =
            (0..8).map(|k| req(k * 500, OpClass::Transfer)).collect();
        let mut former = Former::new(FormerConfig {
            max_batch: 64,
            latency_budget_ns: 1_000,
            min_batch: 2,
        });
        let segs = former.form(&trace).to_vec();
        assert_eq!(segs[0], Segment::Batch { start: 0, len: 3, close_at_ns: 1_000 });
    }

    #[test]
    fn barriers_split_blocks_and_run_as_sessions() {
        let mut trace: Vec<Request> =
            (0..6).map(|k| req(k * 10, OpClass::Transfer)).collect();
        trace.insert(3, req(25, OpClass::Put));
        let mut former = Former::new(FormerConfig {
            max_batch: 64,
            latency_budget_ns: 1_000_000,
            min_batch: 3,
        });
        let segs = former.form(&trace).to_vec();
        // Block of 3 flushed at the barrier arrival, the put as a
        // session, then the remaining 3 transfers as a block.
        assert_eq!(lens(&segs), vec![(true, 3), (false, 1), (true, 3)]);
        assert_eq!(segs[0], Segment::Batch { start: 0, len: 3, close_at_ns: 25 });
    }

    #[test]
    fn fallback_is_hysteretic() {
        // Sparse singles (1500ns apart, 1000ns budget) fall back; a
        // burst of min_batch (4) is still below the post-fallback
        // threshold (8); only a full 8-burst reopens batching.
        let mut trace: Vec<Request> = Vec::new();
        let mut at = 0;
        for _ in 0..3 {
            trace.push(req(at, OpClass::Transfer));
            at += 1_500;
        }
        for _ in 0..4 {
            trace.push(req(at, OpClass::Transfer));
            at += 10;
        }
        at += 1_500;
        for _ in 0..8 {
            trace.push(req(at, OpClass::Transfer));
            at += 10;
        }
        let mut former = Former::new(FormerConfig {
            max_batch: 64,
            latency_budget_ns: 1_000,
            min_batch: 4,
        });
        let segs = former.form(&trace).to_vec();
        assert_eq!(lens(&segs), vec![(false, 7), (true, 8)]);
    }

    #[test]
    fn the_segment_buffer_is_recycled_and_covers_the_trace() {
        let trace: Vec<Request> = (0..100)
            .map(|k| {
                let class = if k % 7 == 0 { OpClass::Range } else { OpClass::Transfer };
                req(k * 100, class)
            })
            .collect();
        let mut former = Former::new(FormerConfig::default());
        for _ in 0..3 {
            let segs = former.form(&trace);
            // Segments tile the trace exactly, in order.
            let mut next = 0;
            for seg in segs {
                let (start, len) = match *seg {
                    Segment::Batch { start, len, .. } => (start, len),
                    Segment::Session { start, len } => (start, len),
                };
                assert_eq!(start, next);
                assert!(len > 0);
                next = start + len;
            }
            assert_eq!(next, trace.len());
        }
    }
}
