//! Text and CSV rendering of figure grids.

use rh_norec::Algorithm;

use crate::driver::CellResult;

/// Prints one sub-benchmark's five figure rows as aligned text tables.
pub fn print_figure(
    figure: &str,
    label: &str,
    threads: &[usize],
    grid: &[(Algorithm, Vec<CellResult>)],
) {
    println!();
    println!("== {figure} / {label} ==");

    let header = |title: &str| {
        println!();
        println!("-- {title} --");
        print!("{:<18}", "threads");
        for n in threads {
            print!("{n:>11}");
        }
        println!();
    };

    header("Throughput (modeled ops/s, dedicated core per thread)");
    for (alg, row) in grid {
        print!("{:<18}", alg.label());
        for cell in row {
            print!("{:>11.0}", cell.throughput());
        }
        println!();
    }

    let hybrid_rows: Vec<&(Algorithm, Vec<CellResult>)> = grid
        .iter()
        .filter(|(alg, _)| {
            matches!(
                alg,
                Algorithm::HybridNorec | Algorithm::RhNorec | Algorithm::RhNorecPostfixOnly
            )
        })
        .collect();
    if hybrid_rows.is_empty() {
        return;
    }

    header("HTM conflict aborts per operation");
    for (alg, row) in &hybrid_rows {
        print!("{:<18}", alg.label());
        for cell in row {
            print!("{:>11.4}", cell.conflicts_per_op());
        }
        println!();
    }

    header("HTM capacity aborts per operation");
    for (alg, row) in &hybrid_rows {
        print!("{:<18}", alg.label());
        for cell in row {
            print!("{:>11.4}", cell.capacity_per_op());
        }
        println!();
    }

    header("Slow-path restarts per slow-path txn");
    for (alg, row) in &hybrid_rows {
        print!("{:<18}", alg.label());
        for cell in row {
            print!("{:>11.3}", cell.tm.restarts_per_slow_path());
        }
        println!();
    }

    header("Slow-path execution ratio");
    for (alg, row) in &hybrid_rows {
        print!("{:<18}", alg.label());
        for cell in row {
            print!("{:>10.2}%", cell.tm.slow_path_ratio() * 100.0);
        }
        println!();
    }

    header("RH prefix / postfix success ratios");
    for (alg, row) in &hybrid_rows {
        if !matches!(alg, Algorithm::RhNorec | Algorithm::RhNorecPostfixOnly) {
            continue;
        }
        print!("{:<18}", format!("{} prefix", alg.label()));
        for cell in row {
            print!("{:>10.0}%", cell.tm.prefix_success_ratio() * 100.0);
        }
        println!();
        print!("{:<18}", format!("{} postfix", alg.label()));
        for cell in row {
            print!("{:>10.0}%", cell.tm.postfix_success_ratio() * 100.0);
        }
        println!();
    }
}

/// Prints one sub-benchmark's grid as CSV rows (header once per call).
pub fn print_csv(
    figure: &str,
    label: &str,
    threads: &[usize],
    grid: &[(Algorithm, Vec<CellResult>)],
) {
    println!(
        "figure,workload,algorithm,threads,ops,elapsed_s,throughput,\
         conflicts_per_op,capacity_per_op,restarts_per_slow_path,\
         slow_path_ratio,prefix_success,postfix_success"
    );
    for (alg, row) in grid {
        for (n, cell) in threads.iter().zip(row) {
            println!(
                "{figure},{label},{},{n},{},{:.4},{:.1},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6}",
                alg.label(),
                cell.ops,
                cell.elapsed.as_secs_f64(),
                cell.throughput(),
                cell.conflicts_per_op(),
                cell.capacity_per_op(),
                cell.tm.restarts_per_slow_path(),
                cell.tm.slow_path_ratio(),
                cell.tm.prefix_success_ratio(),
                cell.tm.postfix_success_ratio(),
            );
        }
    }
}
