//! Transactional data structures: the substrates the RBTree microbenchmark
//! and the STAMP applications are built from.

mod hashtable;
mod list;
mod pairing_heap;
mod queue;
mod rbtree;

pub use hashtable::HashTable;
pub use list::SortedList;
pub use pairing_heap::PairingHeap;
pub use queue::Queue;
pub use rbtree::RbTree;
