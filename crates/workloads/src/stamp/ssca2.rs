//! SSCA2: scalable synthetic compact applications, kernel 1 (STAMP).
//!
//! "The SSCA2 kernel performs mostly uncontended small read-modify-write
//! operations in order to build a directed, weighted multigraph" (§3.6).
//! Transactions are tiny (append one arc to a node's adjacency array), so
//! HTM fast paths almost always win and every algorithm looks similar —
//! which is itself the result the paper reports.

use std::sync::atomic::{AtomicU64, Ordering};

use rand::Rng;
use rh_norec::prelude::{Session, TxKind};
use sim_mem::{Addr, Heap};

use crate::{Workload, WorkloadRng};

/// R-MAT quadrant probabilities (the SSCA2 specification's a/b/c/d =
/// 0.55/0.1/0.1/0.25): recursively pick a quadrant of the adjacency
/// matrix, giving the scale-free degree distribution the benchmark
/// requires — a few hub nodes see most of the transactional traffic.
fn rmat_endpoint(rng: &mut WorkloadRng, scale: u32) -> (u64, u64) {
    let (mut src, mut dst) = (0u64, 0u64);
    for _ in 0..scale {
        src <<= 1;
        dst <<= 1;
        let roll: f64 = rng.gen();
        if roll < 0.55 {
            // quadrant a: (0, 0)
        } else if roll < 0.65 {
            dst |= 1; // b: (0, 1)
        } else if roll < 0.75 {
            src |= 1; // c: (1, 0)
        } else {
            src |= 1;
            dst |= 1; // d: (1, 1)
        }
    }
    (src, dst)
}

/// Node record layout: `[degree, arcs...]` with capacity `max_degree`.
/// Arcs are packed `(target << 32) | weight` words.
const N_DEGREE: u64 = 0;
const N_ARCS: u64 = 1;

/// Configuration of the SSCA2 workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Ssca2Config {
    /// Graph scale: `2^scale` nodes (the SSCA2 parameter).
    pub scale: u32,
    /// Adjacency capacity per node.
    pub max_degree: u64,
    /// Size of the synthetic R-MAT arc list to replay.
    pub arcs: u64,
}

impl Default for Ssca2Config {
    fn default() -> Self {
        Ssca2Config {
            scale: 12,
            max_degree: 32,
            arcs: 1 << 16,
        }
    }
}

impl Ssca2Config {
    fn nodes(&self) -> u64 {
        1 << self.scale
    }
}

/// The SSCA2 kernel-1 (graph construction) workload.
#[derive(Debug)]
pub struct Ssca2 {
    config: Ssca2Config,
    /// Node records, contiguous: node i at `nodes_base + i * stride`.
    nodes_base: Addr,
    stride: u64,
    /// Precomputed R-MAT arcs `(src, packed target|weight)`.
    arc_list: Vec<(u64, u64)>,
    cursor: AtomicU64,
}

impl Ssca2 {
    /// Allocates the node table and synthesizes the R-MAT arc list.
    pub fn new(heap: &Heap, config: Ssca2Config, seed: u64) -> Ssca2 {
        assert!(config.scale >= 1 && config.scale < 30 && config.max_degree > 0);
        let stride = N_ARCS + config.max_degree;
        let nodes_base = heap
            .allocator()
            .alloc(0, config.nodes() * stride)
            .expect("heap exhausted allocating SSCA2 nodes");
        let mut rng = {
            use rand::SeedableRng;
            WorkloadRng::seed_from_u64(seed)
        };
        let arc_list = (0..config.arcs)
            .map(|_| {
                let (src, dst) = rmat_endpoint(&mut rng, config.scale);
                // Weights nonzero so verify can distinguish filled slots.
                let weight = rng.gen_range(1u64..1 << 30);
                (src, (dst << 32) | weight)
            })
            .collect();
        Ssca2 {
            config,
            nodes_base,
            stride,
            arc_list,
            cursor: AtomicU64::new(0),
        }
    }

    fn node(&self, i: u64) -> Addr {
        self.nodes_base.offset(i * self.stride)
    }

    /// Degree histogram skew witness: fraction of all arcs currently held
    /// by the top 1% highest-degree nodes (quiescent heap only).
    pub fn hub_concentration(&self, heap: &Heap) -> f64 {
        let mut degrees: Vec<u64> = (0..self.config.nodes())
            .map(|i| heap.load(self.node(i).offset(N_DEGREE)))
            .collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = degrees.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let top = (degrees.len() / 100).max(1);
        degrees[..top].iter().sum::<u64>() as f64 / total as f64
    }
}

impl Workload for Ssca2 {
    fn name(&self) -> String {
        format!("SSCA2 (scale={}, arcs={})", self.config.scale, self.config.arcs)
    }

    fn setup(&self, _worker: &mut Session, _rng: &mut WorkloadRng) {
        // The node table starts zeroed (degree 0 everywhere).
    }

    fn run_op(&self, worker: &mut Session, _rng: &mut WorkloadRng) {
        let i = self.cursor.fetch_add(1, Ordering::Relaxed) % self.arc_list.len() as u64;
        let (src, packed) = self.arc_list[i as usize];
        let node = self.node(src);
        let weight = packed;
        let cap = self.config.max_degree;
        // The kernel-1 transaction: read degree, append arc — or recycle
        // the node when its adjacency array is full (keeps the workload
        // self-sustaining without changing the transaction shape).
        worker.execute(TxKind::ReadWrite, |tx| {
            let degree = tx.read(node.offset(N_DEGREE))?;
            if degree < cap {
                tx.write(node.offset(N_ARCS + degree), weight)?;
                tx.write(node.offset(N_DEGREE), degree + 1)?;
            } else {
                for slot in 0..cap {
                    tx.write(node.offset(N_ARCS + slot), 0)?;
                }
                tx.write(node.offset(N_DEGREE), 0)?;
            }
            Ok(())
        });
    }

    fn verify(&self, heap: &Heap) -> Result<(), String> {
        for i in 0..self.config.nodes() {
            let node = self.node(i);
            let degree = heap.load(node.offset(N_DEGREE));
            if degree > self.config.max_degree {
                return Err(format!("node {i} degree {degree} exceeds capacity"));
            }
            for slot in 0..degree {
                if heap.load(node.offset(N_ARCS + slot)) == 0 {
                    return Err(format!("node {i} slot {slot} empty below degree {degree}"));
                }
            }
            for slot in degree..self.config.max_degree {
                if heap.load(node.offset(N_ARCS + slot)) != 0 {
                    return Err(format!("node {i} slot {slot} dirty above degree {degree}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::single_runtime;
    use rand::SeedableRng;
    use rh_norec::Algorithm;
    use std::sync::Arc;

    fn small() -> Ssca2Config {
        Ssca2Config {
            scale: 6,
            max_degree: 8,
            arcs: 1024,
        }
    }

    #[test]
    fn sequential_replay_is_consistent() {
        let (heap, rt) = single_runtime(Algorithm::Norec);
        let g = Ssca2::new(&heap, small(), 7);
        let mut w = rt.open_session().expect("free worker slot");
        let mut rng = WorkloadRng::seed_from_u64(0);
        for _ in 0..2000 {
            g.run_op(&mut w, &mut rng);
        }
        g.verify(&heap).unwrap();
    }

    #[test]
    fn concurrent_replay_is_consistent() {
        let (heap, rt) = single_runtime(Algorithm::RhNorec);
        let g = Arc::new(Ssca2::new(&heap, small(), 8));
        std::thread::scope(|s| {
            for tid in 0..4usize {
                let rt = Arc::clone(&rt);
                let g = Arc::clone(&g);
                s.spawn(move || {
                    let mut w = rt.open_session().expect("free worker slot");
                    let mut rng = WorkloadRng::seed_from_u64(tid as u64);
                    for _ in 0..800 {
                        g.run_op(&mut w, &mut rng);
                    }
                });
            }
        });
        g.verify(&heap).unwrap();
    }

    #[test]
    fn degrees_grow_until_recycled() {
        let (heap, rt) = single_runtime(Algorithm::Norec);
        let g = Ssca2::new(&heap, Ssca2Config { scale: 1, max_degree: 4, arcs: 16 }, 9);
        let mut w = rt.open_session().expect("free worker slot");
        let mut rng = WorkloadRng::seed_from_u64(0);
        for _ in 0..16 {
            g.run_op(&mut w, &mut rng);
        }
        g.verify(&heap).unwrap();
        let d0 = heap.load(g.node(0).offset(N_DEGREE));
        let d1 = heap.load(g.node(1).offset(N_DEGREE));
        assert!(d0 <= 4 && d1 <= 4);
        assert!(d0 + d1 > 0, "no arcs were appended");
    }

    #[test]
    fn rmat_arcs_are_scale_free() {
        let (heap, _rt) = single_runtime(Algorithm::Norec);
        let g = Ssca2::new(&heap, Ssca2Config { scale: 8, max_degree: 64, arcs: 8192 }, 10);
        // Skew of the generated endpoints (the degree counters themselves
        // recycle at capacity, so measure the input): with a = 0.55 the
        // top 1% of sources must receive far more than a uniform 1% of
        // the arcs.
        let mut counts = vec![0u64; 256];
        for &(src, _) in &g.arc_list {
            counts[src as usize] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top: u64 = counts[..3].iter().sum();
        let share = top as f64 / g.arc_list.len() as f64;
        assert!(share > 0.05, "R-MAT skew missing: top-1% share = {share:.3}");
    }
}
