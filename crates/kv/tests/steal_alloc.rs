//! Warm-path allocation guard for the work-stealing scheduler and the
//! dynamic batch former.
//!
//! Both sit on the service tier's per-request hot path, so neither may
//! touch the heap once warm: a [`StealDeque`] is a preloaded fixed
//! buffer whose take/steal operations are pure atomics, and a
//! [`Former`] recycles its segment buffer across [`Former::form`]
//! calls (cleared, not freed). This test pins both — thousands of warm
//! queue operations and repeated batch formations over a real bursty
//! trace perform zero heap allocations.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use rh_kv::former::{batchable, Former, FormerConfig, Segment};
use rh_kv::gen::{generate, Mix, TraceConfig};
use rh_kv::steal::StealDeque;

/// Counts every allocation so tests can assert a warm region is
/// allocation-free. Integration tests are separate binaries, so the
/// global allocator swap is scoped to this file.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The BENCH_10-shaped trace both guards run over: bursty service mix,
/// enough requests to cycle the former through fills, deadline closes,
/// barriers, and hysteretic fallbacks.
fn warm_trace() -> Vec<rh_kv::gen::Request> {
    generate(&TraceConfig {
        requests: 2_048,
        keyspace: 96,
        mix: Mix::service_bursty(),
        mean_interarrival_ns: 120_000,
        burst_factor: 1_000,
        burst_len: 256,
        ..TraceConfig::default()
    })
}

#[test]
fn warm_steal_queue_operations_never_allocate() {
    let trace = warm_trace();
    let n = trace.len() as u32;
    // Preload (the one allocation site) happens outside the measured
    // region: one contended queue per simulated worker.
    let deques: Vec<StealDeque> = (0..8)
        .map(|w| StealDeque::preload((w..n).step_by(8), true))
        .collect();
    let uncontended = StealDeque::preload(0..n, false);

    let allocs = ALLOCATIONS.load(Ordering::Relaxed);
    // Drain every queue through the same mix of operations the worker
    // loop issues: peek, owner take, and thief steals with an accept
    // closure that rejects every other candidate (exercising the
    // reject-and-leave-in-place path).
    let mut served = 0u64;
    for (w, own) in deques.iter().enumerate() {
        loop {
            let _ = own.peek_next();
            match own.take_next() {
                Some(_) => served += 1,
                None => break,
            }
            let victim = &deques[(w + 1) % deques.len()];
            if victim.steal_top(|c| c % 2 == 0).is_some() {
                served += 1;
            }
        }
        let _ = own.is_empty();
    }
    while uncontended.take_next().is_some() {
        served += 1;
    }
    assert_eq!(
        ALLOCATIONS.load(Ordering::Relaxed),
        allocs,
        "a warm StealDeque operation hit the heap allocator"
    );
    // Exactly-once: every index is consumed by one party.
    assert_eq!(served, 2 * n as u64);
    assert!(deques.iter().all(StealDeque::is_empty));
}

#[test]
fn warm_batch_formation_never_allocates() {
    let trace = warm_trace();
    let mut former = Former::new(FormerConfig {
        max_batch: 64,
        latency_budget_ns: 10_000,
        min_batch: 4,
    });
    // First pass sizes the recycled segment buffer.
    let warm_segments = former.form(&trace).len();
    assert!(warm_segments > 0, "the bursty trace must form segments");

    let allocs = ALLOCATIONS.load(Ordering::Relaxed);
    for _ in 0..64 {
        let segments = former.form(&trace);
        // Segments tile the trace and classify it consistently.
        assert_eq!(segments.len(), warm_segments);
        let mut next = 0;
        for segment in segments {
            let (start, len) = match *segment {
                Segment::Batch { start, len, .. } => (start, len),
                Segment::Session { start, len } => (start, len),
            };
            assert_eq!(start, next);
            next = start + len;
            if let Segment::Batch { start, len, .. } = *segment {
                assert!(trace[start..start + len].iter().all(batchable));
            }
        }
        assert_eq!(next, trace.len());
    }
    assert_eq!(
        ALLOCATIONS.load(Ordering::Relaxed),
        allocs,
        "a warm Former::form call hit the heap allocator \
         (the segment buffer must be recycled, not refreed)"
    );
}
