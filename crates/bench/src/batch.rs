//! `rh-bench batch`: the batch-executor throughput race.
//!
//! Runs the shared account-table transfer batch
//! ([`tm_workloads::batch::TransferBatch`]) through every execution
//! mode the repo has on **identical** pre-formed work:
//!
//! * the Block-STM-style [`ParallelExecutor`](rh_norec::batch) at each
//!   thread count of the sweep (1 worker = the no-speculation
//!   sequential fast path),
//! * plain sequential rank-order execution (the semantic baseline),
//! * the five interactive session engines, the batch split contiguously
//!   across the same number of OS threads, one transaction per rank.
//!
//! Every cell reports *modeled* ns/tx — the makespan cycle budget
//! (slowest thread) over [`rh_norec::cost::MODEL_HZ`] — so the ledger
//! is a property of the protocols, not of CI host load, and every cell
//! asserts balance conservation before it reports anything.
//!
//! Full runs write `BENCH_9.json`: the committed `BENCH_8.json` rows
//! carried verbatim (so the committed BENCH_8 → BENCH_9 diff joins and
//! gates every existing cell at zero delta) plus the new `batch/*`
//! cells, which land in the diff's `unmatched` section — informative,
//! never gated. The gating teeth for the new mode are the **pinned
//! sentinel** instead, asserted on every run including `--smoke`:
//!
//! * the 1-thread batch cell is within 10% of sequential execution
//!   (the degenerate executor must not tax the non-speculative case),
//! * at every thread count ≥ 4 in the sweep, the batch engine beats the
//!   best interactive engine on the same work.

use std::sync::Arc;

use rh_norec::batch::{execute_sequential, BatchConfig, ParallelExecutor};
use rh_norec::{Algorithm, TmConfig, TmRuntime};
use sim_htm::{Htm, HtmConfig};
use sim_mem::{Heap, HeapConfig};
use tm_workloads::batch::{BatchWorkload, TransferBatch, TransferBatchConfig};

use crate::ledger::{self, Value};

/// Engine label of the batch-executor rows.
pub const BATCH_ENGINE: &str = "Batch-STM";

/// CLI-shaped options of one `batch` invocation.
#[derive(Clone, Debug)]
pub struct BatchArgs {
    /// Thread counts to sweep (batch workers and interactive threads).
    pub threads: Vec<usize>,
    /// Transfers in the batch.
    pub transfers: usize,
    /// Accounts in the table.
    pub accounts: u64,
    /// Zipf exponent of the account sampler (0.0 = uniform).
    pub zipf_theta: f64,
    /// Workload generator seed.
    pub seed: u64,
    /// Smoke scale: a small batch, thread counts {1, 4}, sentinel
    /// asserted, no ledger write.
    pub smoke: bool,
    /// Machine-readable output.
    pub csv: bool,
}

impl Default for BatchArgs {
    fn default() -> Self {
        let workload = TransferBatchConfig::default();
        BatchArgs {
            threads: vec![1, 2, 4, 8, 16],
            transfers: 4_096,
            accounts: workload.accounts,
            zipf_theta: workload.zipf_theta,
            seed: workload.seed,
            smoke: false,
            csv: false,
        }
    }
}

/// One measured cell.
#[derive(Clone, Debug)]
struct Cell {
    /// Engine label (`Batch-STM` or an [`Algorithm::label`]).
    algorithm: String,
    /// `batch/transfer@seq` or `batch/transfer@t<N>`.
    scenario: String,
    /// Threads the cell ran on (0 = the sequential baseline).
    threads: usize,
    ns_per_tx: f64,
    txs: u64,
}

fn workload_config(args: &BatchArgs) -> TransferBatchConfig {
    TransferBatchConfig {
        transfers: args.transfers,
        accounts: args.accounts,
        zipf_theta: args.zipf_theta,
        seed: args.seed,
        ..TransferBatchConfig::default()
    }
}

/// Scenario key of a thread-count cell (shared by the batch engine and
/// the interactive engines so columns line up per thread count).
fn scenario(threads: usize) -> String {
    format!("batch/transfer@t{threads}")
}

/// One batch-engine cell: fresh heap, generate, execute, verify.
/// `workers == 0` runs the sequential rank-order baseline.
fn run_batch_cell(cfg: &TransferBatchConfig, workers: usize) -> Cell {
    let heap = Arc::new(Heap::new(HeapConfig { words: 1 << 16 }));
    let workload = TransferBatch::generate(&heap, cfg);
    let report = if workers == 0 {
        execute_sequential(&heap, &workload.batch())
    } else {
        // Periodic yields keep multi-worker cells honest on timesharing
        // hosts — the same knob the interactive cells set below.
        let config = BatchConfig::with_workers(workers).with_interleave(u32::from(workers > 1));
        let exec = ParallelExecutor::new(Arc::clone(&heap), config)
            .expect("batch executor construction cannot fail");
        exec.execute(&workload.batch())
    };
    workload
        .verify(&heap)
        .expect("batch cell violated balance conservation");
    Cell {
        algorithm: BATCH_ENGINE.to_string(),
        scenario: if workers == 0 { "batch/transfer@seq".to_string() } else { scenario(workers) },
        threads: workers,
        ns_per_tx: report.modeled_ns_per_tx(),
        txs: report.txs(),
    }
}

/// One interactive cell: the same generated batch split contiguously
/// across `threads` sessions of `algorithm`, one transaction per rank.
/// Modeled ns/tx uses the makespan (slowest thread's cycle budget), the
/// same wall-clock model [`rh_norec::batch::BatchReport`] reports.
fn run_interactive_cell(cfg: &TransferBatchConfig, algorithm: Algorithm, threads: usize) -> Cell {
    let heap = Arc::new(Heap::new(HeapConfig { words: 1 << 16 }));
    let workload = TransferBatch::generate(&heap, cfg);
    let htm = Htm::new(Arc::clone(&heap), HtmConfig::default());
    // Periodic yields restore realistic interleaving density on a
    // timesharing host (the same knob every contended bench cell uses);
    // without them concurrent transactions barely overlap in time and
    // the interactive engines would measure a contention-free fiction.
    let tm_cfg = TmConfig::builder(algorithm)
        .interleave_accesses(u32::from(threads > 1))
        .build()
        .expect("batch bench TM configuration rejected");
    let rt = TmRuntime::new(Arc::clone(&heap), htm, tm_cfg)
        .expect("runtime construction cannot fail");

    let ranks = workload.len();
    let chunk = ranks.div_ceil(threads);
    let cycles: Vec<u64> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|tid| {
                let rt = Arc::clone(&rt);
                let workload = &workload;
                s.spawn(move || {
                    let mut session = rt.open_session().expect("free worker slot");
                    session.reset_stats();
                    let lo = (tid * chunk).min(ranks);
                    let hi = (lo + chunk).min(ranks);
                    for rank in lo..hi {
                        workload.run_interactive(&mut session, rank);
                    }
                    session.report().tm.cycles
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("interactive batch worker panicked"))
            .collect()
    });
    workload
        .verify(&heap)
        .expect("interactive cell violated balance conservation");

    let makespan = cycles.into_iter().max().unwrap_or(0);
    Cell {
        algorithm: algorithm.label().to_string(),
        scenario: scenario(threads),
        threads,
        ns_per_tx: makespan as f64 / ranks as f64 / rh_norec::cost::MODEL_HZ * 1e9,
        txs: ranks as u64,
    }
}

/// Runs the full grid: sequential baseline, batch engine per thread
/// count, five interactive engines per thread count.
fn run_cells(args: &BatchArgs) -> Vec<Cell> {
    let cfg = workload_config(args);
    let mut cells = vec![run_batch_cell(&cfg, 0)];
    for &threads in &args.threads {
        cells.push(run_batch_cell(&cfg, threads));
    }
    for &threads in &args.threads {
        for algorithm in Algorithm::PAPER_SET {
            cells.push(run_interactive_cell(&cfg, algorithm, threads));
        }
    }
    cells
}

/// The pinned acceptance sentinel. Panics (failing CI) when violated:
///
/// * `batch@t1` within 10% of `batch@seq`,
/// * at every swept thread count ≥ 4, `Batch-STM` strictly beats the
///   best interactive engine.
fn assert_sentinel(cells: &[Cell]) {
    let seq = cells
        .iter()
        .find(|c| c.scenario == "batch/transfer@seq")
        .expect("sequential baseline cell missing");
    if let Some(t1) = cells.iter().find(|c| c.algorithm == BATCH_ENGINE && c.threads == 1) {
        let overhead = (t1.ns_per_tx - seq.ns_per_tx) / seq.ns_per_tx * 100.0;
        assert!(
            overhead <= 10.0,
            "sentinel: 1-thread batch executor is {overhead:.1}% over sequential \
             ({:.2} vs {:.2} ns/tx) — the no-speculation fast path must be free",
            t1.ns_per_tx,
            seq.ns_per_tx,
        );
    }
    for batch_cell in cells.iter().filter(|c| c.algorithm == BATCH_ENGINE && c.threads >= 4) {
        let best = cells
            .iter()
            .filter(|c| c.algorithm != BATCH_ENGINE && c.threads == batch_cell.threads)
            .min_by(|a, b| a.ns_per_tx.total_cmp(&b.ns_per_tx));
        let Some(best) = best else { continue };
        assert!(
            batch_cell.ns_per_tx < best.ns_per_tx,
            "sentinel: batch executor loses to {} at {} threads \
             ({:.2} vs {:.2} modeled ns/tx)",
            best.algorithm,
            batch_cell.threads,
            batch_cell.ns_per_tx,
            best.ns_per_tx,
        );
    }
}

fn print_cells(cells: &[Cell], csv: bool) {
    if csv {
        println!("algorithm,scenario,txs,ns_per_tx");
        for c in cells {
            println!("{},{},{},{:.2}", c.algorithm, c.scenario, c.txs, c.ns_per_tx);
        }
        return;
    }
    println!("batch race: modeled ns/tx (makespan cycle budget at MODEL_HZ)");
    println!("{:<16} {:<22} {:>8} {:>12}", "engine", "scenario", "txs", "ns/tx");
    for c in cells {
        println!("{:<16} {:<22} {:>8} {:>12.2}", c.algorithm, c.scenario, c.txs, c.ns_per_tx);
    }
    // Per-thread-count verdict: batch vs the best interactive engine.
    let mut threads: Vec<usize> =
        cells.iter().filter(|c| c.threads > 0).map(|c| c.threads).collect();
    threads.sort_unstable();
    threads.dedup();
    for t in threads {
        let batch = cells.iter().find(|c| c.algorithm == BATCH_ENGINE && c.threads == t);
        let best = cells
            .iter()
            .filter(|c| c.algorithm != BATCH_ENGINE && c.threads == t)
            .min_by(|a, b| a.ns_per_tx.total_cmp(&b.ns_per_tx));
        if let (Some(batch), Some(best)) = (batch, best) {
            println!(
                "t{t:<2} batch vs best interactive ({}): {:+.1}%",
                best.algorithm,
                (batch.ns_per_tx - best.ns_per_tx) / best.ns_per_tx * 100.0,
            );
        }
    }
}

/// One carried-over ledger row: algorithm, scenario, ns/tx, optional txs.
type CarriedRow = (String, String, f64, Option<u64>);

/// Parses the committed `BENCH_8.json` rows for verbatim carry-over.
///
/// # Errors
///
/// Reports a missing or malformed document.
fn carried_rows(doc: &str) -> Result<Vec<CarriedRow>, String> {
    let current = ledger::object_after(doc, "current")?;
    let rows = ledger::array_after(current, "rows")?;
    ledger::objects(rows)
        .into_iter()
        .map(|obj| {
            let alg = ledger::string_field(obj, "algorithm")?;
            let scenario = ledger::string_field(obj, "scenario")?;
            let ns = ledger::number_field(obj, "ns_per_tx")?;
            let txs = ledger::number_field(obj, "txs").ok().map(|t| t as u64);
            Ok((alg, scenario, ns, txs))
        })
        .collect()
}

/// Serializes the complete BENCH_9 document: the carried BENCH_8 rows
/// followed by the batch-race cells.
fn bench9_json(carried: &[CarriedRow], cells: &[Cell]) -> String {
    let mut rows: Vec<Vec<(&str, Value)>> = Vec::new();
    for (alg, scenario, ns, txs) in carried {
        let mut row = vec![
            ("algorithm", Value::Str(alg.clone())),
            ("scenario", Value::Str(scenario.clone())),
            ("ns_per_tx", Value::Num(*ns, 2)),
        ];
        if let Some(txs) = txs {
            row.push(("txs", Value::Int(*txs)));
        }
        rows.push(row);
    }
    for c in cells {
        rows.push(vec![
            ("algorithm", Value::Str(c.algorithm.clone())),
            ("scenario", Value::Str(c.scenario.clone())),
            ("ns_per_tx", Value::Num(c.ns_per_tx, 2)),
            ("txs", Value::Int(c.txs)),
        ]);
    }
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"batch\",\n");
    out.push_str(
        "  \"description\": \"batch execution mode ledger: the committed BENCH_8 rows \
         carried verbatim (so the BENCH_8 -> BENCH_9 committed diff joins and gates every \
         existing cell) plus the batch race — the Block-STM-style executor, sequential \
         rank-order execution, and the five interactive engines on the identical zipfian \
         transfer batch (scenario batch/transfer@t<N>, modeled makespan ns/tx)\",\n",
    );
    out.push_str(&format!(
        "  \"instrumentation_compiled\": {},\n",
        rh_norec::INSTRUMENTED
    ));
    out.push_str("  \"current\": {\n");
    out.push_str(
        "    \"engine\": \"Block-STM-style batch executor vs the interactive session \
         engines (batch/* rows; the rest re-states BENCH_8)\",\n",
    );
    out.push_str("    \"rows\": ");
    out.push_str(&ledger::rows_array(&rows, "      ", "    "));
    out.push_str("\n  }\n");
    out.push_str("}\n");
    out
}

/// CLI entry for `rh-bench batch`: runs the race, prints it, asserts
/// the pinned sentinel, and (full runs only) writes `BENCH_9.json`.
pub fn run(args: &BatchArgs) {
    let args = if args.smoke {
        BatchArgs {
            threads: vec![1, 4],
            // 4096 transfers keeps the smoke run fast while staying large
            // enough to amortize the batch engine's ramp-up: at 1024 the
            // speculation-window fill dominates and the t4 cell sits within
            // noise of TL2's, so the sentinel would be flaky.
            transfers: args.transfers.min(4_096),
            ..args.clone()
        }
    } else {
        args.clone()
    };
    if args.threads.iter().any(|&t| t == 0 || t > rh_norec::MAX_BATCH_WORKERS) {
        eprintln!("batch thread counts must be in 1..={}", rh_norec::MAX_BATCH_WORKERS);
        std::process::exit(2);
    }
    if !args.csv {
        println!(
            "batch: {} transfers over {} accounts, seed {:#x}, threads {:?}{}",
            args.transfers,
            workload_config(&args).accounts,
            args.seed,
            args.threads,
            if args.smoke { " (smoke: sentinel only, no ledger write)" } else { "" },
        );
    }
    let cells = run_cells(&args);
    print_cells(&cells, args.csv);
    assert_sentinel(&cells);
    if !args.csv {
        println!("sentinel held: t1 within 10% of sequential; batch beats best interactive at >=4 threads");
    }
    if args.smoke {
        return;
    }
    let carried = match std::fs::read_to_string("BENCH_8.json") {
        Ok(doc) => carried_rows(&doc).unwrap_or_else(|e| {
            eprintln!("BENCH_8.json unreadable ({e}); BENCH_9 will carry no prior rows");
            Vec::new()
        }),
        Err(e) => {
            eprintln!("BENCH_8.json missing ({e}); BENCH_9 will carry no prior rows");
            Vec::new()
        }
    };
    let json = bench9_json(&carried, &cells);
    let path = "BENCH_9.json";
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
