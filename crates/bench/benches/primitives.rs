//! Microbenchmarks of the primitives underneath the figures: raw heap
//! accesses, simulated-HTM transactions, and single transactions per
//! algorithm. These quantify the instrumentation-cost gaps the paper's
//! throughput rows rest on (uninstrumented fast path vs NOrec vs TL2).

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use rh_norec::{Algorithm, TmConfig, TmRuntime, TxKind};
use sim_htm::{Htm, HtmConfig};
use sim_mem::{Heap, HeapConfig};

fn heap_primitives(c: &mut Criterion) {
    let heap = Heap::new(HeapConfig { words: 1 << 16 });
    let addr = heap.allocator().alloc(0, 8).unwrap();
    let mut group = c.benchmark_group("heap");
    group.measurement_time(Duration::from_secs(1)).warm_up_time(Duration::from_millis(200));
    group.bench_function("coherent_load", |b| b.iter(|| heap.load(addr)));
    group.bench_function("coherent_store", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            heap.store(addr, i);
        })
    });
    group.finish();
}

fn htm_transaction(c: &mut Criterion) {
    let heap = Arc::new(Heap::new(HeapConfig { words: 1 << 16 }));
    let htm = Htm::new(Arc::clone(&heap), HtmConfig::default());
    let addr = heap.allocator().alloc(0, 8).unwrap();
    let mut thread = htm.register(0);
    let mut group = c.benchmark_group("htm");
    group.measurement_time(Duration::from_secs(1)).warm_up_time(Duration::from_millis(200));
    group.bench_function("rmw_transaction", |b| {
        b.iter(|| {
            thread.begin().unwrap();
            let v = thread.read(addr).unwrap();
            thread.write(addr, v + 1).unwrap();
            thread.commit().unwrap();
        })
    });
    group.finish();
}

fn algorithm_transactions(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm_rmw_tx");
    group.measurement_time(Duration::from_secs(1)).warm_up_time(Duration::from_millis(200));
    for alg in Algorithm::ALL {
        let heap = Arc::new(Heap::new(HeapConfig { words: 1 << 16 }));
        let htm = Htm::new(Arc::clone(&heap), HtmConfig::default());
        let rt = TmRuntime::new(Arc::clone(&heap), htm, TmConfig::new(alg)).expect("runtime construction cannot fail");
        let addr = heap.allocator().alloc(0, 8).unwrap();
        let mut worker = rt.register(0).expect("fresh thread id");
        group.bench_function(alg.label(), |b| {
            b.iter(|| {
                worker.execute(TxKind::ReadWrite, |tx| {
                    let v = tx.read(addr)?;
                    tx.write(addr, v + 1)
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, heap_primitives, htm_transaction, algorithm_transactions);
criterion_main!(benches);
