//! The hybrid protocols' global coordination variables.
//!
//! The paper's protocols coordinate through three shared variables (§2.3)
//! plus the retry policy's serial lock (§3.3). All four live in the
//! simulated heap — one per cache line so that subscribing to one never
//! tracks another — because the hardware fast paths must be able to read
//! and write them transactionally.

use sim_mem::{Addr, Heap, WORDS_PER_LINE};

/// Version-clock encoding helpers (lock bit in bit 0, version above it) —
/// the paper's `is_locked` / `set_lock_bit` / `clear_lock_bit`.
pub mod clock {
    /// Whether the clock value carries the writer lock bit.
    #[inline]
    pub const fn is_locked(value: u64) -> bool {
        value & 1 == 1
    }

    /// The clock value with the lock bit set.
    #[inline]
    pub const fn set_lock_bit(value: u64) -> u64 {
        value | 1
    }

    /// The clock value with the lock bit cleared.
    #[inline]
    pub const fn clear_lock_bit(value: u64) -> u64 {
        value & !1
    }

    /// The unlocked clock value one version later.
    #[inline]
    pub const fn next_version(value: u64) -> u64 {
        clear_lock_bit(value) + 2
    }
}

/// Heap addresses of the protocol's global variables.
#[derive(Clone, Copy, Debug)]
pub struct Globals {
    /// The NOrec global clock: version with writer lock bit.
    pub global_clock: Addr,
    /// Set to abort all hardware fast paths when a mixed slow path must run
    /// its writes in software.
    pub global_htm_lock: Addr,
    /// Number of transactions currently on a software/mixed slow path.
    pub num_of_fallbacks: Addr,
    /// The starvation-avoidance serial lock (§3.3).
    pub serial_lock: Addr,
}

impl Globals {
    /// Allocates the globals, one per cache line, zero-initialized.
    ///
    /// # Panics
    ///
    /// Panics if the heap cannot satisfy four line-sized allocations.
    pub fn allocate(heap: &Heap) -> Globals {
        let alloc = heap.allocator();
        let slot = || {
            alloc
                .alloc(0, WORDS_PER_LINE)
                .expect("heap too small for TM globals")
        };
        Globals {
            global_clock: slot(),
            global_htm_lock: slot(),
            num_of_fallbacks: slot(),
            serial_lock: slot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mem::{HeapConfig, LineId};

    #[test]
    fn clock_encoding_round_trips() {
        let v = 42 << 1;
        assert!(!clock::is_locked(v));
        let locked = clock::set_lock_bit(v);
        assert!(clock::is_locked(locked));
        assert_eq!(clock::clear_lock_bit(locked), v);
        assert_eq!(clock::next_version(locked), v + 2);
        assert_eq!(clock::next_version(v), v + 2);
    }

    #[test]
    fn globals_live_on_distinct_lines() {
        let heap = Heap::new(HeapConfig { words: 1 << 12 });
        let g = Globals::allocate(&heap);
        let lines = [
            LineId::containing(g.global_clock),
            LineId::containing(g.global_htm_lock),
            LineId::containing(g.num_of_fallbacks),
            LineId::containing(g.serial_lock),
        ];
        for i in 0..lines.len() {
            for j in i + 1..lines.len() {
                assert_ne!(lines[i], lines[j], "globals share a cache line");
            }
        }
    }

    #[test]
    fn clock_lock_bit_round_trips_at_extremes() {
        for v in [0u64, 1, 2, u64::MAX - 1, u64::MAX] {
            let locked = clock::set_lock_bit(v);
            assert!(clock::is_locked(locked));
            assert_eq!(clock::set_lock_bit(locked), locked, "set is idempotent");
            let unlocked = clock::clear_lock_bit(v);
            assert!(!clock::is_locked(unlocked));
            assert_eq!(clock::clear_lock_bit(unlocked), unlocked, "clear is idempotent");
            assert_eq!(clock::clear_lock_bit(locked), clock::clear_lock_bit(v));
            assert_eq!(locked | unlocked, v | 1);
        }
        assert!(clock::is_locked(u64::MAX));
        assert!(!clock::is_locked(u64::MAX - 1));
    }

    #[test]
    fn next_version_near_u64_max() {
        // u64::MAX - 1 is the largest unlocked (even) clock value; the
        // largest value `next_version` accepts without overflowing is
        // therefore u64::MAX - 3 (and its locked form u64::MAX - 2).
        assert_eq!(clock::next_version(u64::MAX - 3), u64::MAX - 1);
        assert_eq!(clock::next_version(u64::MAX - 2), u64::MAX - 1);
        assert_eq!(clock::next_version(0), 2);
        assert_eq!(clock::next_version(1), 2);
    }

    #[test]
    fn freshly_allocated_globals_read_as_unlocked() {
        let heap = Heap::new(HeapConfig { words: 1 << 12 });
        let g = Globals::allocate(&heap);
        assert!(!clock::is_locked(heap.load(g.global_clock)));
        // A locked clock round-trips through the heap unharmed.
        heap.store(g.global_clock, clock::set_lock_bit(heap.load(g.global_clock)));
        assert!(clock::is_locked(heap.load(g.global_clock)));
        heap.store(g.global_clock, clock::clear_lock_bit(heap.load(g.global_clock)));
        assert!(!clock::is_locked(heap.load(g.global_clock)));
    }

    #[test]
    fn globals_start_zeroed() {
        let heap = Heap::new(HeapConfig { words: 1 << 12 });
        let g = Globals::allocate(&heap);
        assert_eq!(heap.load(g.global_clock), 0);
        assert_eq!(heap.load(g.global_htm_lock), 0);
        assert_eq!(heap.load(g.num_of_fallbacks), 0);
        assert_eq!(heap.load(g.serial_lock), 0);
    }
}
