//! The HTM device: configuration plus thread registration.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sim_mem::{Heap, MAX_THREADS};

use crate::thread::HtmThread;
use crate::HtmConfig;

/// The simulated HTM device attached to a [`Heap`].
///
/// `Htm` itself is passive configuration plus a registry of which thread
/// ids currently exist (the registry drives the SMT capacity-halving
/// model). Per-thread transaction state lives in [`HtmThread`] handles
/// obtained from [`Htm::register`].
pub struct Htm {
    heap: Arc<Heap>,
    config: HtmConfig,
    /// Bitmap of registered thread ids (bit `tid` set while a handle for
    /// `tid` is alive). `MAX_THREADS` is 64, so one word suffices.
    registered: AtomicU64,
}

impl Htm {
    /// Creates an HTM device over `heap`.
    pub fn new(heap: Arc<Heap>, config: HtmConfig) -> Arc<Self> {
        Arc::new(Htm {
            heap,
            config,
            registered: AtomicU64::new(0),
        })
    }

    /// The device configuration.
    #[inline]
    pub fn config(&self) -> &HtmConfig {
        &self.config
    }

    /// The heap this device is attached to.
    #[inline]
    pub fn heap(&self) -> &Arc<Heap> {
        &self.heap
    }

    /// Registers hardware thread `tid` and returns its transaction handle.
    ///
    /// Registration models a software thread being scheduled onto hardware
    /// thread `tid` (core `tid % cores`); while two threads of the same
    /// core are registered, both run at half HTM capacity.
    ///
    /// # Panics
    ///
    /// Panics if `tid >= MAX_THREADS` or `tid` is already registered. Use
    /// [`try_register`](Self::try_register) to handle these as errors.
    pub fn register(self: &Arc<Self>, tid: usize) -> HtmThread {
        self.try_register(tid).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`register`](Self::register).
    ///
    /// # Errors
    ///
    /// Returns [`RegisterError::TidOutOfRange`] if `tid >= MAX_THREADS`,
    /// or [`RegisterError::AlreadyRegistered`] if a handle for `tid` is
    /// already alive.
    pub fn try_register(self: &Arc<Self>, tid: usize) -> Result<HtmThread, RegisterError> {
        if tid >= MAX_THREADS {
            return Err(RegisterError::TidOutOfRange { tid, max: MAX_THREADS });
        }
        let bit = 1u64 << tid;
        let prev = self.registered.fetch_or(bit, Ordering::AcqRel);
        if prev & bit != 0 {
            // The bit was already set by the live handle; the fetch_or
            // changed nothing, so there is nothing to undo.
            return Err(RegisterError::AlreadyRegistered { tid });
        }
        Ok(HtmThread::new(Arc::clone(self), tid))
    }

    pub(crate) fn unregister(&self, tid: usize) {
        self.registered.fetch_and(!(1u64 << tid), Ordering::AcqRel);
    }

    /// Whether another registered thread shares `tid`'s core.
    pub(crate) fn has_active_sibling(&self, tid: usize) -> bool {
        let topo = self.config.topology;
        let map = self.registered.load(Ordering::Acquire);
        let mut rest = map & !(1u64 << tid);
        while rest != 0 {
            let other = rest.trailing_zeros() as usize;
            if topo.core_of(other) == topo.core_of(tid) {
                return true;
            }
            rest &= rest - 1;
        }
        false
    }

    /// Number of currently registered threads.
    pub fn registered_threads(&self) -> usize {
        self.registered.load(Ordering::Acquire).count_ones() as usize
    }
}

/// Error from [`Htm::try_register`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegisterError {
    /// The requested thread id exceeds the simulated machine's capacity.
    TidOutOfRange {
        /// The offending thread id.
        tid: usize,
        /// Exclusive upper bound ([`MAX_THREADS`]).
        max: usize,
    },
    /// A handle for the requested thread id is already alive.
    AlreadyRegistered {
        /// The offending thread id.
        tid: usize,
    },
}

impl fmt::Display for RegisterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegisterError::TidOutOfRange { tid, max } => {
                write!(f, "thread id {tid} exceeds MAX_THREADS ({max})")
            }
            RegisterError::AlreadyRegistered { tid } => {
                write!(f, "thread id {tid} registered twice")
            }
        }
    }
}

impl std::error::Error for RegisterError {}

impl fmt::Debug for Htm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Htm")
            .field("config", &self.config)
            .field("registered_threads", &self.registered_threads())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mem::HeapConfig;

    fn device() -> Arc<Htm> {
        Htm::new(Arc::new(Heap::new(HeapConfig { words: 1 << 14 })), HtmConfig::default())
    }

    #[test]
    fn registration_tracks_thread_count() {
        let htm = device();
        assert_eq!(htm.registered_threads(), 0);
        let t0 = htm.register(0);
        let t1 = htm.register(1);
        assert_eq!(htm.registered_threads(), 2);
        drop(t0);
        assert_eq!(htm.registered_threads(), 1);
        drop(t1);
        assert_eq!(htm.registered_threads(), 0);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn double_registration_panics() {
        let htm = device();
        let _a = htm.register(3);
        let _b = htm.register(3);
    }

    #[test]
    fn try_register_reports_typed_errors() {
        let htm = device();
        let _live = htm.register(2);
        assert_eq!(
            htm.try_register(2).unwrap_err(),
            RegisterError::AlreadyRegistered { tid: 2 }
        );
        assert_eq!(
            htm.try_register(MAX_THREADS).unwrap_err(),
            RegisterError::TidOutOfRange { tid: MAX_THREADS, max: MAX_THREADS }
        );
        // A failed attempt must not clobber the live registration.
        assert_eq!(htm.registered_threads(), 1);
    }

    #[test]
    fn tid_is_reusable_after_drop() {
        let htm = device();
        drop(htm.register(5));
        let _again = htm.register(5);
    }

    #[test]
    fn sibling_detection_follows_topology() {
        let htm = device(); // 8 cores, 2-way SMT
        let _t0 = htm.register(0);
        assert!(!htm.has_active_sibling(0), "alone on core 0");
        let _t8 = htm.register(8); // also core 0
        assert!(htm.has_active_sibling(0));
        assert!(htm.has_active_sibling(8));
        let _t1 = htm.register(1);
        assert!(!htm.has_active_sibling(1), "core 1 has one thread");
    }
}
