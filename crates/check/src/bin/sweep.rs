//! Seed-sweep CLI for the opacity checker.
//!
//! ```text
//! sweep [--algorithm NAME]... [--htm default|disabled|tiny] \
//!       [--seeds N | --seconds N] [--abort-injection P] \
//!       [--mutant NAME] [--replay SEED]
//! ```
//!
//! With no arguments: every algorithm, the default HTM, a one-second
//! budget per algorithm. Exits nonzero on the first failing schedule,
//! printing the replay seed and a minimized reproducing schedule.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use rh_norec::mutants::Mutant;
use rh_norec::Algorithm;
use sim_htm::sched::SchedConfig;
use sim_htm::HtmConfig;
use tm_check::harness::{run_case, run_case_minimized, CaseConfig};

const ALGORITHM_NAMES: &[(&str, Algorithm)] = &[
    ("lock_elision", Algorithm::LockElision),
    ("norec", Algorithm::Norec),
    ("norec_lazy", Algorithm::NorecLazy),
    ("tl2", Algorithm::Tl2),
    ("hybrid_norec", Algorithm::HybridNorec),
    ("hybrid_norec_lazy", Algorithm::HybridNorecLazy),
    ("rh_norec", Algorithm::RhNorec),
    ("rh_norec_postfix_only", Algorithm::RhNorecPostfixOnly),
];

/// The paper's five algorithms — the default sweep set.
const DEFAULT_SET: &[Algorithm] = &[
    Algorithm::LockElision,
    Algorithm::Norec,
    Algorithm::Tl2,
    Algorithm::HybridNorec,
    Algorithm::RhNorec,
];

struct Options {
    algorithms: Vec<Algorithm>,
    htm: HtmConfig,
    htm_name: String,
    seeds: Option<u64>,
    budget: Duration,
    abort_injection: f64,
    mutant: Option<Mutant>,
    replay: Option<u64>,
}

fn usage() -> ! {
    eprintln!(
        "usage: sweep [--algorithm NAME]... [--htm default|disabled|tiny] \
         [--seeds N | --seconds N] [--abort-injection P] [--mutant NAME] [--replay SEED]"
    );
    eprintln!("algorithms: {}", ALGORITHM_NAMES.iter().map(|(n, _)| *n).collect::<Vec<_>>().join(", "));
    eprintln!(
        "mutants: {}",
        Mutant::ALL.iter().map(|m| m.name()).collect::<Vec<_>>().join(", ")
    );
    std::process::exit(2);
}

fn parse_seed(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn parse_options() -> Options {
    let mut opts = Options {
        algorithms: Vec::new(),
        htm: HtmConfig::default(),
        htm_name: "default".to_string(),
        seeds: None,
        budget: Duration::from_secs(1),
        abort_injection: 0.0,
        mutant: None,
        replay: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--algorithm" | "-a" => {
                let name = value();
                match ALGORITHM_NAMES.iter().find(|(n, _)| *n == name) {
                    Some(&(_, alg)) => opts.algorithms.push(alg),
                    None => {
                        eprintln!("unknown algorithm: {name}");
                        usage();
                    }
                }
            }
            "--htm" => {
                opts.htm_name = value();
                opts.htm = match opts.htm_name.as_str() {
                    "default" => HtmConfig::default(),
                    "disabled" => HtmConfig::disabled(),
                    "tiny" => HtmConfig::tiny_capacity(),
                    other => {
                        eprintln!("unknown htm config: {other}");
                        usage();
                    }
                };
            }
            "--seeds" => opts.seeds = Some(value().parse().unwrap_or_else(|_| usage())),
            "--seconds" => {
                opts.budget = Duration::from_secs_f64(value().parse().unwrap_or_else(|_| usage()))
            }
            "--abort-injection" => {
                opts.abort_injection = value().parse().unwrap_or_else(|_| usage())
            }
            "--mutant" => {
                let name = value();
                match Mutant::from_name(&name) {
                    Some(m) => opts.mutant = Some(m),
                    None => {
                        eprintln!("unknown mutant: {name}");
                        usage();
                    }
                }
            }
            "--replay" => opts.replay = Some(parse_seed(&value()).unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }
    if opts.algorithms.is_empty() {
        opts.algorithms = DEFAULT_SET.to_vec();
    }
    opts
}

fn main() -> ExitCode {
    let opts = parse_options();
    let mut failed = false;

    for &alg in &opts.algorithms {
        let mut case = CaseConfig::contended(alg, opts.htm);
        case.mutant = opts.mutant;

        if let Some(seed) = opts.replay {
            let mut cfg = SchedConfig::from_seed(seed);
            cfg.abort_injection = opts.abort_injection;
            match run_case_minimized(&case, &cfg) {
                Ok(report) => println!(
                    "{alg:?}/{}: seed {seed:#x} ok ({} events, {} commits, {} decisions)",
                    opts.htm_name,
                    report.history.len(),
                    report.summary.commits,
                    report.run.decisions.len()
                ),
                Err(failure) => {
                    println!("{alg:?}/{}: {failure}", opts.htm_name);
                    failed = true;
                }
            }
            continue;
        }

        let start = Instant::now();
        let mut seed = 0u64;
        let mut runs = 0u64;
        let mut events = 0usize;
        let failure = loop {
            match opts.seeds {
                Some(n) if seed >= n => break None,
                None if start.elapsed() >= opts.budget => break None,
                _ => {}
            }
            let mut cfg = SchedConfig::from_seed(seed);
            cfg.abort_injection = opts.abort_injection;
            match run_case(&case, &cfg) {
                Ok(report) => events += report.history.len(),
                // Re-run minimized: the failure is deterministic, and the
                // shrink prints a steppable reproducing schedule.
                Err(failure) => {
                    break Some(run_case_minimized(&case, &cfg).err().unwrap_or(failure))
                }
            }
            runs += 1;
            seed += 1;
        };
        match failure {
            Some(failure) => {
                println!("{alg:?}/{}: FAILED after {runs} clean seeds: {failure}", opts.htm_name);
                failed = true;
            }
            None => println!(
                "{alg:?}/{}: {runs} seeds opaque ({events} events checked) in {:?}",
                opts.htm_name,
                start.elapsed()
            ),
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
