//! Yada: Delaunay mesh refinement (STAMP, Ruppert's algorithm).
//!
//! The real thing, in two dimensions: a Delaunay triangulation over a
//! square region, a shared work heap of poor-quality triangles, and
//! refinement transactions that pop a bad triangle, carve out the
//! *cavity* of triangles whose circumcircles contain its circumcenter
//! (Bowyer–Watson), and re-triangulate the cavity around the new point —
//! the paper's heaviest transactions: long reads (cavity walk), many
//! writes, and allocation.
//!
//! Quality is the radius–edge measure (equivalently the minimum angle);
//! when the work heap drains, operations insert fresh random points,
//! which creates new skinny triangles and keeps a duration-driven harness
//! fed — exactly how STAMP's input phases keep the original busy.

use std::sync::atomic::{AtomicU64, Ordering};

use rand::Rng;
use rh_norec::prelude::{Session, Tx, TxKind, TxResult};
use sim_mem::{Addr, Heap};

use crate::structures::{PairingHeap, RbTree};
use crate::{Workload, WorkloadRng};

/// Point record: `[x_bits, y_bits]`.
const P_X: u64 = 0;
const P_Y: u64 = 1;
const POINT_WORDS: u64 = 2;

/// Triangle record: `[v0, v1, v2, n0, n1, n2, alive, id]`.
/// `n_i` is the neighbor across the edge *opposite* vertex `i`
/// (edge `v_{i+1} v_{i+2}`), null at the region boundary.
const T_V0: u64 = 0;
const T_N0: u64 = 3;
const T_ALIVE: u64 = 6;
const T_ID: u64 = 7;
const TRI_WORDS: u64 = 8;

/// Configuration of the Yada workload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct YadaConfig {
    /// Initial mesh granularity: a `grid × grid` square mesh
    /// (2·grid² triangles).
    pub grid: u64,
    /// Minimum acceptable angle in degrees; triangles below it are
    /// refined. Ruppert terminates below ≈20.7°; larger bounds keep the
    /// workload generating (the paper's yada uses 20–30°).
    pub min_angle_deg: f64,
}

impl Default for YadaConfig {
    fn default() -> Self {
        YadaConfig { grid: 8, min_angle_deg: 24.0 }
    }
}

/// The Yada mesh-refinement workload.
#[derive(Debug)]
pub struct Yada {
    config: YadaConfig,
    /// Region side length (points live in `[0, side] × [0, side]`).
    side: f64,
    /// Work heap: quality key (scaled min angle) → triangle address.
    work: PairingHeap,
    /// Registry of triangles ever created: id → record address (dead
    /// triangles stay, flagged `alive = 0`, so stale work entries and the
    /// verifier can inspect them; STAMP's yada also reclaims only at end).
    registry: RbTree,
    next_id: AtomicU64,
    refined: AtomicU64,
    inserted_points: AtomicU64,
    stale_pops: AtomicU64,
    /// Heap word stashing one initial-mesh triangle (the BFS root used by
    /// `setup`; the mesh is connected, so everything is reachable).
    root_stash: Addr,
}

/// Plain-old geometry on decoded points.
#[derive(Clone, Copy, Debug, PartialEq)]
struct Pt {
    x: f64,
    y: f64,
}

fn orient(a: Pt, b: Pt, c: Pt) -> f64 {
    (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x)
}

/// Positive when `d` lies inside the circumcircle of CCW triangle `abc`.
fn in_circle(a: Pt, b: Pt, c: Pt, d: Pt) -> f64 {
    let (ax, ay) = (a.x - d.x, a.y - d.y);
    let (bx, by) = (b.x - d.x, b.y - d.y);
    let (cx, cy) = (c.x - d.x, c.y - d.y);
    let a2 = ax * ax + ay * ay;
    let b2 = bx * bx + by * by;
    let c2 = cx * cx + cy * cy;
    ax * (by * c2 - b2 * cy) - ay * (bx * c2 - b2 * cx) + a2 * (bx * cy - by * cx)
}

fn circumcenter(a: Pt, b: Pt, c: Pt) -> Option<Pt> {
    let d = 2.0 * (a.x * (b.y - c.y) + b.x * (c.y - a.y) + c.x * (a.y - b.y));
    if d.abs() < 1e-12 {
        return None;
    }
    let a2 = a.x * a.x + a.y * a.y;
    let b2 = b.x * b.x + b.y * b.y;
    let c2 = c.x * c.x + c.y * c.y;
    Some(Pt {
        x: (a2 * (b.y - c.y) + b2 * (c.y - a.y) + c2 * (a.y - b.y)) / d,
        y: (a2 * (c.x - b.x) + b2 * (a.x - c.x) + c2 * (b.x - a.x)) / d,
    })
}

/// Minimum angle of triangle `abc`, in degrees.
fn min_angle_deg(a: Pt, b: Pt, c: Pt) -> f64 {
    let side = |p: Pt, q: Pt| ((p.x - q.x).powi(2) + (p.y - q.y).powi(2)).sqrt();
    let (la, lb, lc) = (side(b, c), side(c, a), side(a, b));
    let angle = |opp: f64, s1: f64, s2: f64| {
        let cos = ((s1 * s1 + s2 * s2 - opp * opp) / (2.0 * s1 * s2)).clamp(-1.0, 1.0);
        cos.acos().to_degrees()
    };
    angle(la, lb, lc)
        .min(angle(lb, lc, la))
        .min(angle(lc, la, lb))
}

impl Yada {
    /// Builds the initial structured mesh non-transactionally.
    ///
    /// # Panics
    ///
    /// Panics if the heap is exhausted or `grid < 2`.
    pub fn new(heap: &Heap, config: YadaConfig) -> Yada {
        assert!(config.grid >= 2, "mesh needs at least a 2x2 grid");
        assert!(config.min_angle_deg > 0.0 && config.min_angle_deg < 60.0);
        let root_stash = heap
            .allocator()
            .alloc(0, 1)
            .expect("heap exhausted allocating yada root stash");
        let yada = Yada {
            config,
            side: config.grid as f64,
            work: PairingHeap::create(heap),
            registry: RbTree::create(heap),
            next_id: AtomicU64::new(1),
            refined: AtomicU64::new(0),
            inserted_points: AtomicU64::new(0),
            stale_pops: AtomicU64::new(0),
            root_stash,
        };
        yada.build_initial_mesh(heap);
        yada
    }

    fn alloc_point(heap: &Heap, p: Pt) -> Addr {
        let a = heap.allocator().alloc(0, POINT_WORDS).expect("heap exhausted");
        heap.store(a.offset(P_X), p.x.to_bits());
        heap.store(a.offset(P_Y), p.y.to_bits());
        a
    }

    fn build_initial_mesh(&self, heap: &Heap) {
        let g = self.config.grid as usize;
        // Grid points, jittered off the lattice so no four points are
        // exactly cocircular (which would make in-circle tests ambiguous).
        let mut pts = vec![vec![Addr::NULL; g + 1]; g + 1];
        for (i, row) in pts.iter_mut().enumerate() {
            for (j, slot) in row.iter_mut().enumerate() {
                let jitter = |v: usize, w: usize| {
                    if v == 0 || v == g {
                        0.0
                    } else {
                        ((v * 31 + w * 17) % 13) as f64 * 0.019 - 0.12
                    }
                };
                *slot = Self::alloc_point(
                    heap,
                    Pt {
                        x: i as f64 + jitter(i, j),
                        y: j as f64 + jitter(j, i),
                    },
                );
            }
        }
        // Two CCW triangles per cell: lower (p00, p10, p11), upper
        // (p00, p11, p01).
        let mut lower = vec![vec![Addr::NULL; g]; g];
        let mut upper = vec![vec![Addr::NULL; g]; g];
        for i in 0..g {
            for j in 0..g {
                lower[i][j] = self.alloc_triangle_raw(
                    heap,
                    [pts[i][j], pts[i + 1][j], pts[i + 1][j + 1]],
                );
                upper[i][j] = self.alloc_triangle_raw(
                    heap,
                    [pts[i][j], pts[i + 1][j + 1], pts[i][j + 1]],
                );
            }
        }
        // Adjacency. Lower(i,j): edge v1v2 (right) → lower/upper of (i+1,j)?
        // Work it out per edge: lower = (p00, p10, p11):
        //   n0 (edge p10-p11, the right side)  → lower(i+1,j)'s left … is
        //     upper(i+1,j) has edge p00-p01 = that column? Simpler: the
        //     right edge x=i+1 between y=j and y=j+1 belongs to
        //     upper(i+1,j) (edge p00-p01 of that cell).
        //   n1 (edge p11-p00, the diagonal)    → upper(i,j)
        //   n2 (edge p00-p10, the bottom)      → upper(i,j-1)
        // upper = (p00, p11, p01):
        //   n0 (edge p11-p01, the top)         → lower(i,j+1)
        //   n1 (edge p01-p00, the left)        → lower(i-1,j)
        //   n2 (edge p00-p11, the diagonal)    → lower(i,j)
        let raw = heap.raw();
        let set_n = |t: Addr, slot: u64, n: Addr| {
            raw.store_raw(t.offset(T_N0 + slot), n.to_word());
        };
        for i in 0..g {
            for j in 0..g {
                set_n(lower[i][j], 0, if i + 1 < g { upper[i + 1][j] } else { Addr::NULL });
                set_n(lower[i][j], 1, upper[i][j]);
                set_n(lower[i][j], 2, if j > 0 { upper[i][j - 1] } else { Addr::NULL });
                set_n(upper[i][j], 0, if j + 1 < g { lower[i][j + 1] } else { Addr::NULL });
                set_n(upper[i][j], 1, if i > 0 { lower[i - 1][j] } else { Addr::NULL });
                set_n(upper[i][j], 2, lower[i][j]);
            }
        }
        heap.store(self.root_stash, lower[0][0].to_word());
    }

    fn alloc_triangle_raw(&self, heap: &Heap, vs: [Addr; 3]) -> Addr {
        let t = heap.allocator().alloc(0, TRI_WORDS).expect("heap exhausted");
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        for (i, v) in vs.iter().enumerate() {
            heap.store(t.offset(T_V0 + i as u64), v.to_word());
        }
        heap.store(t.offset(T_ALIVE), 1);
        heap.store(t.offset(T_ID), id);
        // Registry + work queue are populated in setup() transactions so
        // their internal structure is built through the TM API; here we
        // only stage records.
        t
    }

    fn read_point(tx: &mut Tx<'_>, p: Addr) -> TxResult<Pt> {
        Ok(Pt {
            x: f64::from_bits(tx.read(p.offset(P_X))?),
            y: f64::from_bits(tx.read(p.offset(P_Y))?),
        })
    }

    fn read_vertices(tx: &mut Tx<'_>, t: Addr) -> TxResult<[Addr; 3]> {
        Ok([
            tx.read_addr(t.offset(T_V0))?,
            tx.read_addr(t.offset(T_V0 + 1))?,
            tx.read_addr(t.offset(T_V0 + 2))?,
        ])
    }

    fn read_corners(tx: &mut Tx<'_>, t: Addr) -> TxResult<[Pt; 3]> {
        let vs = Self::read_vertices(tx, t)?;
        Ok([
            Self::read_point(tx, vs[0])?,
            Self::read_point(tx, vs[1])?,
            Self::read_point(tx, vs[2])?,
        ])
    }

    /// Quality key for the work heap: scaled minimum angle (pop smallest
    /// = worst first).
    fn quality_key(corners: [Pt; 3]) -> u64 {
        (min_angle_deg(corners[0], corners[1], corners[2]) * 1000.0) as u64
    }

    fn is_bad(&self, corners: [Pt; 3]) -> bool {
        min_angle_deg(corners[0], corners[1], corners[2]) < self.config.min_angle_deg
    }

    /// Registers a freshly created triangle: registry entry plus a work
    /// entry when its quality is poor.
    fn register_triangle(&self, tx: &mut Tx<'_>, t: Addr) -> TxResult<()> {
        let id = tx.read(t.offset(T_ID))?;
        self.registry.put(tx, id, t.to_word())?;
        let corners = Self::read_corners(tx, t)?;
        if self.is_bad(corners) {
            self.work.push(tx, Self::quality_key(corners), t.to_word())?;
        }
        Ok(())
    }

    /// Creates a triangle inside a transaction (vertices CCW).
    fn create_triangle(&self, tx: &mut Tx<'_>, vs: [Addr; 3]) -> TxResult<Addr> {
        let t = tx.alloc(TRI_WORDS)?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        for (i, v) in vs.iter().enumerate() {
            tx.write_addr(t.offset(T_V0 + i as u64), *v)?;
        }
        tx.write(t.offset(T_ALIVE), 1)?;
        tx.write(t.offset(T_ID), id)?;
        Ok(t)
    }

    /// A random alive triangle, probed through the registry.
    fn random_alive(&self, tx: &mut Tx<'_>, rng_key: u64) -> TxResult<Option<Addr>> {
        let top = self.next_id.load(Ordering::Relaxed);
        let mut probe = rng_key % top.max(1);
        for _ in 0..32 {
            let hit = match self.registry.ceiling(tx, probe)? {
                Some((_, word)) => Addr::from_word(word),
                None => match self.registry.ceiling(tx, 0)? {
                    Some((_, word)) => Addr::from_word(word),
                    None => return Ok(None),
                },
            };
            if tx.read(hit.offset(T_ALIVE))? == 1 {
                return Ok(Some(hit));
            }
            probe = tx.read(hit.offset(T_ID))? + 1;
        }
        Ok(None)
    }

    /// Bowyer–Watson insertion of `p`, starting the cavity search from a
    /// triangle known to have `p` inside its circumcircle.
    ///
    /// Returns the number of new triangles, or `None` when the insertion
    /// is rejected (degenerate geometry).
    fn insert_point(&self, tx: &mut Tx<'_>, seed: Addr, p: Pt) -> TxResult<Option<usize>> {
        // Cavity: BFS over alive triangles whose circumcircle contains p.
        let mut cavity = vec![seed];
        let mut queue = vec![seed];
        let mut boundary: Vec<(Addr, Addr, Addr)> = Vec::new(); // (a, b, outside)
        while let Some(t) = queue.pop() {
            let vs = Self::read_vertices(tx, t)?;
            for i in 0..3u64 {
                let n = tx.read_addr(t.offset(T_N0 + i))?;
                let a = vs[((i + 1) % 3) as usize];
                let b = vs[((i + 2) % 3) as usize];
                if n.is_null() {
                    boundary.push((a, b, Addr::NULL));
                    continue;
                }
                if cavity.contains(&n) {
                    continue;
                }
                let c = Self::read_corners(tx, n)?;
                if in_circle(c[0], c[1], c[2], p) > 0.0 {
                    cavity.push(n);
                    queue.push(n);
                } else {
                    boundary.push((a, b, n));
                }
            }
        }
        // Reject degenerate cavities (p nearly on an existing vertex).
        for &(a, b, _) in &boundary {
            let pa = Self::read_point(tx, a)?;
            let pb = Self::read_point(tx, b)?;
            if orient(pa, pb, p).abs() < 1e-9 {
                return Ok(None);
            }
        }
        // Kill the cavity.
        for &t in &cavity {
            tx.write(t.offset(T_ALIVE), 0)?;
            let id = tx.read(t.offset(T_ID))?;
            self.registry.remove(tx, id)?;
        }
        // New point + one new triangle per boundary edge.
        let pv = tx.alloc(POINT_WORDS)?;
        tx.write(pv.offset(P_X), p.x.to_bits())?;
        tx.write(pv.offset(P_Y), p.y.to_bits())?;

        let mut fresh: Vec<(Addr, Addr, Addr, Addr)> = Vec::new(); // (tri, a, b, outside)
        for &(a, b, outside) in &boundary {
            let pa = Self::read_point(tx, a)?;
            let pb = Self::read_point(tx, b)?;
            // Order CCW with the new point as v0: (p, a, b) must be CCW.
            let (a, b, pa, pb) = if orient(p, pa, pb) > 0.0 {
                (a, b, pa, pb)
            } else {
                (b, a, pb, pa)
            };
            let _ = (pa, pb);
            let t = self.create_triangle(tx, [pv, a, b])?;
            // n0 (edge a-b, opposite the new point) is the outside world.
            tx.write_addr(t.offset(T_N0), outside)?;
            fresh.push((t, a, b, outside));
        }
        // Rewire outside neighbors to the fresh triangles, and stitch the
        // fresh fan: edge (p, a) of one triangle matches edge (p, b) of
        // the one before it around the fan.
        for &(t, a, b, outside) in &fresh {
            if !outside.is_null() {
                // Replace the outside triangle's dead neighbor with t —
                // precisely the slot whose opposite edge is {a, b} (an
                // outside triangle can border the cavity along several
                // edges, each owed to a different fresh triangle).
                let ovs = Self::read_vertices(tx, outside)?;
                for i in 0..3u64 {
                    let ea = ovs[((i + 1) % 3) as usize];
                    let eb = ovs[((i + 2) % 3) as usize];
                    if (ea == a && eb == b) || (ea == b && eb == a) {
                        tx.write_addr(outside.offset(T_N0 + i), t)?;
                    }
                }
            }
            // Neighbor across edge (p, b) — slot n1 (opposite vertex a) —
            // is the fresh triangle whose `a` equals our `b`; across
            // (p, a) — slot n2 — the one whose `b` equals our `a`.
            for &(u, ua, ub, _) in &fresh {
                if u == t {
                    continue;
                }
                if ua == b {
                    tx.write_addr(t.offset(T_N0 + 1), u)?;
                }
                if ub == a {
                    tx.write_addr(t.offset(T_N0 + 2), u)?;
                }
            }
        }
        for &(t, _, _, _) in &fresh {
            self.register_triangle(tx, t)?;
        }
        Ok(Some(fresh.len()))
    }

    /// One refinement transaction: pop a bad triangle and insert its
    /// circumcenter. Returns `false` when the work heap is empty.
    fn refine_one(&self, tx: &mut Tx<'_>) -> TxResult<bool> {
        let Some((_key, t_word)) = self.work.pop_min(tx)? else {
            return Ok(false);
        };
        let t = Addr::from_word(t_word);
        if tx.read(t.offset(T_ALIVE))? == 0 {
            // Removed by an earlier cavity; skip.
            self.stale_pops.fetch_add(1, Ordering::Relaxed);
            return Ok(true);
        }
        let corners = Self::read_corners(tx, t)?;
        let Some(center) = circumcenter(corners[0], corners[1], corners[2]) else {
            return Ok(true);
        };
        // Off-mesh circumcenters would need boundary-segment splitting
        // (Ruppert's encroachment rule); we accept those triangles as-is.
        if center.x <= 0.0 || center.y <= 0.0 || center.x >= self.side || center.y >= self.side {
            return Ok(true);
        }
        // The circumcenter is, by definition, inside t's circumcircle.
        self.insert_point(tx, t, center)?;
        Ok(true)
    }

    /// Triangles refined so far.
    pub fn refined(&self) -> u64 {
        self.refined.load(Ordering::Relaxed)
    }

    /// Random points inserted to regenerate work.
    pub fn inserted_points(&self) -> u64 {
        self.inserted_points.load(Ordering::Relaxed)
    }

    /// Work-queue entries that pointed at already-refined triangles.
    pub fn stale_pops(&self) -> u64 {
        self.stale_pops.load(Ordering::Relaxed)
    }

    /// Drains the work heap (test helper; terminates for angle bounds
    /// below Ruppert's 20.7°).
    pub fn drain(&self, worker: &mut Session) {
        while worker.execute(TxKind::ReadWrite, |tx| self.refine_one(tx)) {}
    }

    /// Point location: walk from `start` toward `p` by orientation tests;
    /// returns the containing triangle if the walk converges.
    fn locate(&self, tx: &mut Tx<'_>, start: Addr, p: Pt) -> TxResult<Option<Addr>> {
        let mut t = start;
        for _ in 0..256 {
            let vs = Self::read_vertices(tx, t)?;
            let c = [
                Self::read_point(tx, vs[0])?,
                Self::read_point(tx, vs[1])?,
                Self::read_point(tx, vs[2])?,
            ];
            let mut moved = false;
            for i in 0..3u64 {
                let a = c[((i + 1) % 3) as usize];
                let b = c[((i + 2) % 3) as usize];
                if orient(a, b, p) < -1e-12 {
                    let n = tx.read_addr(t.offset(T_N0 + i))?;
                    if n.is_null() {
                        return Ok(None);
                    }
                    t = n;
                    moved = true;
                    break;
                }
            }
            if !moved {
                return Ok(Some(t));
            }
        }
        Ok(None)
    }
}

impl Workload for Yada {
    fn name(&self) -> String {
        format!(
            "Yada (grid={}, min-angle={}°)",
            self.config.grid, self.config.min_angle_deg
        )
    }

    fn setup(&self, worker: &mut Session, _rng: &mut WorkloadRng) {
        // Register the staged triangles through the TM API: BFS over the
        // adjacency links from the stashed root (the mesh is connected).
        let heap = std::sync::Arc::clone(worker.runtime().heap());
        let mut seen = std::collections::HashSet::new();
        let mut queue = vec![Addr::from_word(heap.load(self.root_stash))];
        while let Some(t) = queue.pop() {
            if t.is_null() || !seen.insert(t) {
                continue;
            }
            worker.execute(TxKind::ReadWrite, |tx| self.register_triangle(tx, t));
            for i in 0..3u64 {
                queue.push(Addr::from_word(heap.load(t.offset(T_N0 + i))));
            }
        }
    }

    fn run_op(&self, worker: &mut Session, rng: &mut WorkloadRng) {
        let did = worker.execute(TxKind::ReadWrite, |tx| self.refine_one(tx));
        if did {
            self.refined.fetch_add(1, Ordering::Relaxed);
            return;
        }
        // Work drained: insert a random point to regenerate skinny
        // triangles (a fresh input region arriving, as in STAMP's phases).
        let p = Pt {
            x: rng.gen_range(0.05..0.95) * self.side,
            y: rng.gen_range(0.05..0.95) * self.side,
        };
        let probe = rng.gen::<u64>();
        let inserted = worker.execute(TxKind::ReadWrite, |tx| {
            let Some(start) = self.random_alive(tx, probe)? else {
                return Ok(false);
            };
            let Some(container) = self.locate(tx, start, p)? else {
                return Ok(false);
            };
            // The containing triangle's circumcircle contains p, so it
            // seeds the cavity.
            Ok(self.insert_point(tx, container, p)?.is_some())
        });
        if inserted {
            self.inserted_points.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn verify(&self, heap: &Heap) -> Result<(), String> {
        self.registry.check_invariants(heap)?;
        let tris = self.registry.collect(heap);
        let point = |p: Addr| Pt {
            x: f64::from_bits(heap.load(p.offset(P_X))),
            y: f64::from_bits(heap.load(p.offset(P_Y))),
        };
        for (id, t_word) in &tris {
            let t = Addr::from_word(*t_word);
            if heap.load(t.offset(T_ALIVE)) != 1 {
                return Err(format!("registered triangle {id} is dead"));
            }
            let vs = [
                Addr::from_word(heap.load(t.offset(T_V0))),
                Addr::from_word(heap.load(t.offset(T_V0 + 1))),
                Addr::from_word(heap.load(t.offset(T_V0 + 2))),
            ];
            let c = [point(vs[0]), point(vs[1]), point(vs[2])];
            if orient(c[0], c[1], c[2]) <= 0.0 {
                return Err(format!("triangle {id} is not CCW / degenerate"));
            }
            for i in 0..3u64 {
                let n = Addr::from_word(heap.load(t.offset(T_N0 + i)));
                if n.is_null() {
                    continue;
                }
                if heap.load(n.offset(T_ALIVE)) != 1 {
                    return Err(format!("triangle {id} has a dead neighbor"));
                }
                // Reciprocity: n must point back at t.
                let back = (0..3u64).any(|j| {
                    Addr::from_word(heap.load(n.offset(T_N0 + j))) == t
                });
                if !back {
                    return Err(format!("triangle {id} neighbor link not reciprocal"));
                }
                // Shared edge: n must contain both endpoints of the edge
                // opposite vertex i.
                let a = vs[((i + 1) % 3) as usize];
                let b = vs[((i + 2) % 3) as usize];
                let nvs = [
                    Addr::from_word(heap.load(n.offset(T_V0))),
                    Addr::from_word(heap.load(n.offset(T_V0 + 1))),
                    Addr::from_word(heap.load(n.offset(T_V0 + 2))),
                ];
                if !nvs.contains(&a) || !nvs.contains(&b) {
                    return Err(format!("triangle {id} neighbor does not share its edge"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::single_runtime;
    use rand::SeedableRng;
    use rh_norec::Algorithm;
    use std::sync::Arc;

    #[test]
    fn geometry_predicates() {
        let a = Pt { x: 0.0, y: 0.0 };
        let b = Pt { x: 1.0, y: 0.0 };
        let c = Pt { x: 0.0, y: 1.0 };
        assert!(orient(a, b, c) > 0.0, "CCW triangle");
        assert!(in_circle(a, b, c, Pt { x: 0.3, y: 0.3 }) > 0.0, "inside");
        assert!(in_circle(a, b, c, Pt { x: 2.0, y: 2.0 }) < 0.0, "outside");
        let center = circumcenter(a, b, c).unwrap();
        assert!((center.x - 0.5).abs() < 1e-12 && (center.y - 0.5).abs() < 1e-12);
        let equilateral_angle = min_angle_deg(
            Pt { x: 0.0, y: 0.0 },
            Pt { x: 1.0, y: 0.0 },
            Pt { x: 0.5, y: 0.866 },
        );
        assert!((equilateral_angle - 60.0).abs() < 0.1);
    }

    #[test]
    fn initial_mesh_is_consistent() {
        let (heap, rt) = single_runtime(Algorithm::Norec);
        let yada = Yada::new(&heap, YadaConfig { grid: 4, min_angle_deg: 24.0 });
        let mut w = rt.open_session().expect("free worker slot");
        let mut rng = WorkloadRng::seed_from_u64(1);
        yada.setup(&mut w, &mut rng);
        yada.verify(&heap).unwrap();
        assert_eq!(yada.registry.collect(&heap).len(), 2 * 4 * 4);
    }

    #[test]
    fn refinement_improves_the_mesh_and_keeps_it_consistent() {
        let (heap, rt) = single_runtime(Algorithm::Norec);
        // 18° terminates (below Ruppert's bound).
        let yada = Yada::new(&heap, YadaConfig { grid: 4, min_angle_deg: 18.0 });
        let mut w = rt.open_session().expect("free worker slot");
        let mut rng = WorkloadRng::seed_from_u64(2);
        yada.setup(&mut w, &mut rng);
        yada.drain(&mut w);
        yada.verify(&heap).unwrap();
        // Every surviving triangle whose circumcenter lies inside the
        // region meets the angle bound.
        for (_, t_word) in yada.registry.collect(&heap) {
            let t = Addr::from_word(t_word);
            let p = |k: u64| {
                let v = Addr::from_word(heap.load(t.offset(T_V0 + k)));
                Pt {
                    x: f64::from_bits(heap.load(v.offset(P_X))),
                    y: f64::from_bits(heap.load(v.offset(P_Y))),
                }
            };
            let (a, b, c) = (p(0), p(1), p(2));
            if let Some(center) = circumcenter(a, b, c) {
                let inside = center.x > 0.0
                    && center.y > 0.0
                    && center.x < yada.side
                    && center.y < yada.side;
                if inside {
                    assert!(
                        min_angle_deg(a, b, c) >= 18.0 - 1e-9,
                        "skinny triangle survived the drain"
                    );
                }
            }
        }
    }

    #[test]
    fn random_point_insertion_keeps_the_mesh_consistent() {
        let (heap, rt) = single_runtime(Algorithm::Norec);
        let yada = Yada::new(&heap, YadaConfig { grid: 4, min_angle_deg: 18.0 });
        let mut w = rt.open_session().expect("free worker slot");
        let mut rng = WorkloadRng::seed_from_u64(3);
        yada.setup(&mut w, &mut rng);
        for _ in 0..300 {
            yada.run_op(&mut w, &mut rng);
        }
        yada.verify(&heap).unwrap();
        assert!(yada.refined() > 0);
    }

    #[test]
    fn concurrent_refinement_is_consistent() {
        for alg in [Algorithm::RhNorec, Algorithm::Tl2] {
            let (heap, rt) = single_runtime(alg);
            let yada = Arc::new(Yada::new(&heap, YadaConfig { grid: 6, min_angle_deg: 24.0 }));
            {
                let mut w = rt.open_session().expect("free worker slot");
                let mut rng = WorkloadRng::seed_from_u64(4);
                yada.setup(&mut w, &mut rng);
            }
            std::thread::scope(|s| {
                for tid in 0..3usize {
                    let rt = Arc::clone(&rt);
                    let yada = Arc::clone(&yada);
                    s.spawn(move || {
                        let mut w = rt.open_session().expect("free worker slot");
                        let mut rng = WorkloadRng::seed_from_u64(tid as u64);
                        for _ in 0..150 {
                            yada.run_op(&mut w, &mut rng);
                        }
                    });
                }
            });
            yada.verify(&heap).unwrap_or_else(|e| panic!("{alg:?}: {e}"));
        }
    }
}
