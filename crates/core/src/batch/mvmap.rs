//! The multi-version map: speculative write versions keyed on
//! simulated-heap word addresses, one cell per writing rank.
//!
//! Every cell is tagged with the incarnation of the execution that
//! published it. When a transaction aborts, its cells are not removed —
//! they are flipped to ESTIMATE markers, a tombstone that tells readers
//! "a lower-rank write to this address is coming, but its value is
//! unknown until the re-execution publishes". Readers that hit an
//! ESTIMATE abandon their attempt instead of speculating past it, which
//! is what keeps abort cascades short (Block-STM's central trick).
//!
//! The map never touches the heap: base storage stays frozen for the
//! whole speculative phase and is only written by the rank-ordered
//! commit sweep after every rank has validated.

use std::collections::HashMap;
use std::sync::Mutex;

/// What a speculative read at some rank resolved to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Resolve {
    /// No lower-rank writer: the value comes from base storage (the
    /// heap), which cannot change before commit.
    Storage,
    /// The highest lower-rank speculative write.
    Version {
        /// Rank of the writer.
        rank: u32,
        /// Incarnation of the writer's execution that published the cell.
        incarnation: u32,
        /// The written value.
        value: u64,
    },
    /// The highest lower-rank writer aborted and has not republished:
    /// the reader must not speculate past it.
    Estimate {
        /// Rank of the aborted writer.
        rank: u32,
    },
}

/// One published (or estimated) version of one address.
#[derive(Clone, Copy, Debug)]
struct Cell {
    rank: u32,
    incarnation: u32,
    value: u64,
    estimate: bool,
}

/// The sharded multi-version map. Shard count is a power of two fixed at
/// construction; each shard guards `word address -> versions sorted by
/// rank` behind its own mutex. Lock discipline: a shard lock is held
/// only for the duration of one probe or upsert and never across a
/// scheduler yield point, so the cooperative scheduler can never park a
/// thread that holds one.
#[derive(Debug)]
pub(crate) struct MvMap {
    mask: u64,
    shards: Vec<Mutex<HashMap<u64, Vec<Cell>>>>,
}

/// SplitMix64 finalizer: scatters word addresses across shards.
fn mix(addr: u64) -> u64 {
    let mut z = addr.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl MvMap {
    /// An empty map with `shards` shards (must be a power of two).
    pub(crate) fn new(shards: usize) -> MvMap {
        debug_assert!(shards.is_power_of_two());
        MvMap {
            mask: shards as u64 - 1,
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, addr: u64) -> std::sync::MutexGuard<'_, HashMap<u64, Vec<Cell>>> {
        let i = (mix(addr) & self.mask) as usize;
        self.shards[i].lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Resolves a read of `addr` by `reader_rank`: the highest version
    /// with rank strictly below the reader, or [`Resolve::Storage`].
    pub(crate) fn read(&self, addr: u64, reader_rank: u32) -> Resolve {
        let shard = self.shard(addr);
        let Some(cells) = shard.get(&addr) else { return Resolve::Storage };
        let below = cells.partition_point(|c| c.rank < reader_rank);
        match below.checked_sub(1).map(|i| cells[i]) {
            None => Resolve::Storage,
            Some(c) if c.estimate => Resolve::Estimate { rank: c.rank },
            Some(c) => Resolve::Version { rank: c.rank, incarnation: c.incarnation, value: c.value },
        }
    }

    /// Publishes `rank`'s write set for `incarnation`, replacing any
    /// previous cell for that rank (including its ESTIMATE tombstone).
    pub(crate) fn publish<'a>(
        &self,
        rank: u32,
        incarnation: u32,
        writes: impl Iterator<Item = (u64, u64)> + 'a,
    ) {
        for (addr, value) in writes {
            let cell = Cell { rank, incarnation, value, estimate: false };
            let mut shard = self.shard(addr);
            let cells = shard.entry(addr).or_default();
            match cells.binary_search_by_key(&rank, |c| c.rank) {
                Ok(i) => cells[i] = cell,
                Err(i) => cells.insert(i, cell),
            }
        }
    }

    /// Removes `rank`'s cells at `addrs` — addresses the previous
    /// incarnation wrote but the new one does not.
    pub(crate) fn retract(&self, rank: u32, addrs: &[u64]) {
        for &addr in addrs {
            let mut shard = self.shard(addr);
            if let Some(cells) = shard.get_mut(&addr) {
                if let Ok(i) = cells.binary_search_by_key(&rank, |c| c.rank) {
                    cells.remove(i);
                }
            }
        }
    }

    /// Flips `rank`'s cells at `addrs` to ESTIMATE markers — called
    /// under the batch scheduler's lock when a validation failure aborts
    /// the rank, so no re-execution can republish concurrently.
    pub(crate) fn mark_estimates(&self, rank: u32, addrs: &[u64]) {
        for &addr in addrs {
            let mut shard = self.shard(addr);
            if let Some(cells) = shard.get_mut(&addr) {
                if let Ok(i) = cells.binary_search_by_key(&rank, |c| c.rank) {
                    cells[i].estimate = true;
                }
            }
        }
    }

    /// The final (highest-rank) version of every written address — the
    /// batch's committed state delta. The version lists are rank-sorted,
    /// so the last cell of each list is exactly the value the
    /// rank-ordered sequential execution would leave behind: the lazy
    /// commit sweep flushes one store per distinct written address, not
    /// one per write-set entry.
    pub(crate) fn final_versions(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().unwrap_or_else(|e| e.into_inner());
            for (&addr, cells) in shard.iter() {
                if let Some(c) = cells.last() {
                    debug_assert!(!c.estimate, "estimate survived to commit");
                    out.push((addr, c.value));
                }
            }
        }
        out
    }

    /// Debug invariant: after the speculative phase quiesces, every
    /// surviving cell must be a real version — an ESTIMATE here means an
    /// aborted rank never re-executed.
    pub(crate) fn assert_no_estimates(&self) {
        for shard in &self.shards {
            let shard = shard.lock().unwrap_or_else(|e| e.into_inner());
            for cells in shard.values() {
                debug_assert!(cells.iter().all(|c| !c.estimate), "estimate survived quiescence");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_resolves_highest_rank_below() {
        let map = MvMap::new(4);
        map.publish(2, 0, [(100, 22)].into_iter());
        map.publish(5, 1, [(100, 55)].into_iter());
        assert_eq!(map.read(100, 1), Resolve::Storage);
        assert_eq!(map.read(100, 3), Resolve::Version { rank: 2, incarnation: 0, value: 22 });
        assert_eq!(map.read(100, 5), Resolve::Version { rank: 2, incarnation: 0, value: 22 });
        assert_eq!(map.read(100, 9), Resolve::Version { rank: 5, incarnation: 1, value: 55 });
        assert_eq!(map.read(101, 9), Resolve::Storage);
    }

    #[test]
    fn estimates_block_and_republish_clears() {
        let map = MvMap::new(1);
        map.publish(2, 0, [(7, 1)].into_iter());
        map.mark_estimates(2, &[7]);
        assert_eq!(map.read(7, 4), Resolve::Estimate { rank: 2 });
        // The aborted rank itself still reads around its own cell.
        assert_eq!(map.read(7, 2), Resolve::Storage);
        map.publish(2, 1, [(7, 9)].into_iter());
        assert_eq!(map.read(7, 4), Resolve::Version { rank: 2, incarnation: 1, value: 9 });
        map.assert_no_estimates();
    }

    #[test]
    fn retract_unwrites_dropped_addresses() {
        let map = MvMap::new(2);
        map.publish(3, 0, [(1, 10), (2, 20)].into_iter());
        map.retract(3, &[2]);
        assert_eq!(map.read(2, 8), Resolve::Storage);
        assert_eq!(map.read(1, 8), Resolve::Version { rank: 3, incarnation: 0, value: 10 });
    }
}
