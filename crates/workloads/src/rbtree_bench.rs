//! The paper's red-black tree microbenchmark (§3.5).
//!
//! "The red-black tree benchmark exposes a key-value pair interface of put,
//! delete, and get operations, and allows to control the (1) tree size and
//! the (2) mutation ratio (the fraction of write transactions)."
//!
//! Figure 4 uses a 10,000-node tree with 4%, 10% and 40% mutation ratios.

use rand::Rng;
use rh_norec::prelude::{Session, TxKind};
use sim_mem::Heap;

use crate::structures::RbTree;
use crate::{Workload, WorkloadRng};

/// Configuration of the RBTree microbenchmark.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RbTreeBenchConfig {
    /// Initial number of nodes (paper: 10,000).
    pub initial_size: u64,
    /// Percentage of operations that mutate (put or delete), 0–100.
    pub mutation_pct: u32,
}

impl RbTreeBenchConfig {
    /// The paper's Figure 4 configurations.
    pub fn figure4(mutation_pct: u32) -> Self {
        RbTreeBenchConfig {
            initial_size: 10_000,
            mutation_pct,
        }
    }
}

/// The RBTree microbenchmark workload.
#[derive(Debug)]
pub struct RbTreeBench {
    tree: RbTree,
    key_range: u64,
    config: RbTreeBenchConfig,
}

impl RbTreeBench {
    /// Creates the (empty) benchmark over `heap`; call
    /// [`Workload::setup`] to populate.
    ///
    /// # Panics
    ///
    /// Panics if `mutation_pct > 100` or `initial_size == 0`.
    pub fn new(heap: &Heap, config: RbTreeBenchConfig) -> RbTreeBench {
        assert!(config.mutation_pct <= 100, "mutation ratio is a percentage");
        assert!(config.initial_size > 0, "empty tree benchmarks nothing");
        RbTreeBench {
            tree: RbTree::create(heap),
            // Keys drawn from twice the size keeps the tree near its
            // initial size under 50/50 put/delete mutations.
            key_range: config.initial_size * 2,
            config,
        }
    }

    /// The underlying tree (for white-box assertions in tests).
    pub fn tree(&self) -> &RbTree {
        &self.tree
    }
}

impl Workload for RbTreeBench {
    fn name(&self) -> String {
        format!(
            "RBTree {} nodes, {}% mutations",
            self.config.initial_size, self.config.mutation_pct
        )
    }

    fn setup(&self, worker: &mut Session, rng: &mut WorkloadRng) {
        let mut inserted = 0;
        while inserted < self.config.initial_size {
            let key = rng.gen_range(0..self.key_range);
            let fresh = worker
                .execute(TxKind::ReadWrite, |tx| self.tree.put(tx, key, key))
                .is_none();
            if fresh {
                inserted += 1;
            }
        }
    }

    fn run_op(&self, worker: &mut Session, rng: &mut WorkloadRng) {
        let key = rng.gen_range(0..self.key_range);
        let roll = rng.gen_range(0..100);
        if roll < self.config.mutation_pct {
            if rng.gen_bool(0.5) {
                worker.execute(TxKind::ReadWrite, |tx| self.tree.put(tx, key, key));
            } else {
                worker.execute(TxKind::ReadWrite, |tx| self.tree.remove(tx, key));
            }
        } else {
            worker.execute(TxKind::ReadOnly, |tx| self.tree.get(tx, key));
        }
    }

    fn verify(&self, heap: &Heap) -> Result<(), String> {
        self.tree.check_invariants(heap)?;
        for (k, v) in self.tree.collect(heap) {
            if k != v {
                return Err(format!("key {k} carries foreign value {v}"));
            }
            if k >= self.key_range {
                return Err(format!("key {k} outside range {}", self.key_range));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::single_runtime;
    use rand::SeedableRng;
    use rh_norec::Algorithm;
    use std::sync::Arc;

    #[test]
    fn setup_reaches_target_size() {
        let (heap, rt) = single_runtime(Algorithm::Norec);
        let bench = RbTreeBench::new(
            &heap,
            RbTreeBenchConfig { initial_size: 500, mutation_pct: 10 },
        );
        let mut w = rt.open_session().expect("free worker slot");
        let mut rng = WorkloadRng::seed_from_u64(42);
        bench.setup(&mut w, &mut rng);
        assert_eq!(bench.tree().collect(&heap).len(), 500);
        bench.verify(&heap).unwrap();
    }

    #[test]
    fn concurrent_mixed_run_preserves_invariants() {
        let (heap, rt) = single_runtime(Algorithm::RhNorec);
        let bench = Arc::new(RbTreeBench::new(
            &heap,
            RbTreeBenchConfig { initial_size: 300, mutation_pct: 40 },
        ));
        {
            let mut w = rt.open_session().expect("free worker slot");
            let mut rng = WorkloadRng::seed_from_u64(1);
            bench.setup(&mut w, &mut rng);
        }
        std::thread::scope(|s| {
            for tid in 0..4usize {
                let rt = Arc::clone(&rt);
                let bench = Arc::clone(&bench);
                s.spawn(move || {
                    let mut w = rt.open_session().expect("free worker slot");
                    let mut rng = WorkloadRng::seed_from_u64(100 + tid as u64);
                    for _ in 0..400 {
                        bench.run_op(&mut w, &mut rng);
                    }
                });
            }
        });
        bench.verify(&heap).unwrap();
    }
}
