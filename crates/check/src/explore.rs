//! Bounded exhaustive schedule exploration.
//!
//! A controlled run logs every scheduling decision that had more than one
//! option ([`sched::Decision`](crate::sched::Decision)). The explorer
//! turns that log into a search tree: after running one schedule, every
//! decision within the depth bound that had untried alternatives spawns a
//! new *guided prefix* — the choices made up to that point, with the next
//! alternative substituted. Running all prefixes depth-first enumerates
//! every interleaving whose first `depth` decisions differ, which is the
//! standard stateless-model-checking bound: HyTM bugs need only a handful
//! of ill-placed context switches, so a shallow bound with an exhaustive
//! sweep beats deep random schedules at flushing them out.

use sim_htm::sched::SchedConfig;

use crate::harness::{run_case, CaseConfig, CaseFailure};

/// What a completed exploration covered.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExploreStats {
    /// Distinct schedules executed.
    pub schedules: usize,
    /// Whether the `max_schedules` budget cut the enumeration short (the
    /// depth bound alone does not set this: hitting it means the bounded
    /// tree was fully enumerated).
    pub truncated: bool,
}

/// Explores all schedules of `case` whose first `depth` decisions differ,
/// checking every run for opacity, up to `max_schedules` runs.
///
/// `base` supplies the seed (which also fixes the workload scripts and
/// the abort-injection stream) and the step cap; its `guided` field is
/// overridden per schedule.
///
/// # Errors
///
/// The first failing schedule, carrying its guided choice list for
/// replay.
pub fn explore_case(
    case: &CaseConfig,
    base: &SchedConfig,
    depth: usize,
    max_schedules: usize,
) -> Result<ExploreStats, CaseFailure> {
    let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
    let mut schedules = 0usize;

    while let Some(prefix) = stack.pop() {
        if schedules >= max_schedules {
            return Ok(ExploreStats { schedules, truncated: true });
        }
        let prefix_len = prefix.len();
        let cfg = SchedConfig { guided: Some(prefix), ..base.clone() };
        let report = run_case(case, &cfg)?;
        schedules += 1;

        // Branch on every decision at or past the prefix (decisions
        // inside the prefix were branched by an ancestor schedule). Push
        // deepest-first so the traversal is depth-first.
        let decisions = &report.run.decisions;
        let horizon = depth.min(decisions.len());
        for i in (prefix_len..horizon).rev() {
            for alt in (0..decisions[i].options).rev() {
                if alt == decisions[i].chosen {
                    continue;
                }
                let mut next: Vec<usize> =
                    decisions[..i].iter().map(|d| d.chosen).collect();
                next.push(alt);
                stack.push(next);
            }
        }
    }

    Ok(ExploreStats { schedules, truncated: false })
}
