//! `rh-bench overhead`: single-thread per-operation cost of the TM API.
//!
//! The RH NOrec fast path is supposed to be *uninstrumented* — the HyTM
//! lower-bound results (Alistarh et al.; Brown & Ravi) show per-access
//! instrumentation is exactly what kills hybrid scaling. This benchmark
//! measures what one transactional access actually costs through the
//! public `Tx` handle, per algorithm, with no contention at all: one
//! thread, a private working set, no spurious aborts. Any cycles left
//! here are pure API and dispatch tax.
//!
//! Two scenarios per algorithm:
//!
//! * `read` — a `TxKind::ReadOnly` transaction of 16 uncontended reads,
//! * `read_write` — a `TxKind::ReadWrite` transaction of 8 read/write
//!   pairs.
//!
//! Results go to stdout (table or `--csv`) and to `BENCH_2.json`, which
//! also embeds the pre-refactor baseline (dynamic dispatch through
//! `&mut dyn TxOps` with always-on yield points and trace hooks) captured
//! before the static-dispatch rework, so the before/after comparison
//! survives in machine-readable form.

use std::sync::Arc;
use std::time::{Duration, Instant};

use rh_norec::{Algorithm, TmConfig, TmRuntime, TxKind};
use sim_htm::{Htm, HtmConfig};
use sim_mem::{Addr, Heap, HeapConfig};

use crate::figures::Scale;

/// Transactional accesses per measured transaction (both scenarios).
pub const ACCESSES_PER_TX: u64 = 16;

/// Per-op numbers captured **before** the static-dispatch refactor, with
/// the virtual-call `Tx` handle and unconditional `sched::yield_point()`
/// and trace hooks on every access. Units are nanoseconds, measured on
/// the CI container with the same scenarios this module runs (quick
/// scale). Kept as data so `BENCH_2.json` always reports the
/// before/after pair.
const BASELINE_PRE_REFACTOR: &[(&str, &str, f64, f64)] = &[
    // (algorithm label, scenario, ns_per_tx, ns_per_access)
    ("Lock Elision", "read", 953.53, 59.596),
    ("Lock Elision", "read_write", 1795.40, 112.213),
    ("NOrec", "read", 233.56, 14.598),
    ("NOrec", "read_write", 412.78, 25.799),
    ("NOrec-Lazy", "read", 319.69, 19.981),
    ("NOrec-Lazy", "read_write", 533.11, 33.320),
    ("TL2", "read", 264.52, 16.533),
    ("TL2", "read_write", 922.22, 57.639),
    ("HY-NOrec", "read", 999.57, 62.473),
    ("HY-NOrec", "read_write", 1621.36, 101.335),
    ("HY-NOrec-Lazy", "read", 1060.68, 66.292),
    ("HY-NOrec-Lazy", "read_write", 1636.26, 102.266),
    ("RH-NOrec", "read", 967.56, 60.473),
    ("RH-NOrec", "read_write", 1684.61, 105.288),
    ("RH-NOrec-Postfix", "read", 939.85, 58.741),
    ("RH-NOrec-Postfix", "read_write", 1601.88, 100.117),
];

/// Dispatch description of the baseline rows above.
const BASELINE_DISPATCH: &str = "&mut dyn TxOps (vtable per access), yield+trace hooks always on";

/// One measured cell.
#[derive(Clone, Debug)]
pub struct OverheadRow {
    /// Algorithm label (matches figure legends).
    pub algorithm: &'static str,
    /// Scenario name: `read` or `read_write`.
    pub scenario: &'static str,
    /// Transactions measured (after warmup).
    pub txs: u64,
    /// Wall-clock nanoseconds per transaction.
    pub ns_per_tx: f64,
    /// Wall-clock nanoseconds per transactional access.
    pub ns_per_access: f64,
}

fn measure_budget(scale: Scale) -> Duration {
    match scale {
        Scale::Quick => Duration::from_millis(60),
        Scale::Paper => Duration::from_millis(400),
    }
}

/// Runs one `(algorithm, scenario)` cell and returns its row.
fn run_scenario(algorithm: Algorithm, scenario: &'static str, budget: Duration) -> OverheadRow {
    let heap = Arc::new(Heap::new(HeapConfig { words: 1 << 16 }));
    // Default HTM config: ample capacity, no spurious aborts. Every
    // transaction here fits the fast path, so we time the fast path.
    let htm = Htm::new(Arc::clone(&heap), HtmConfig::default());
    let rt = TmRuntime::new(Arc::clone(&heap), htm, TmConfig::new(algorithm))
        .expect("overhead runtime construction cannot fail");
    let mut worker = rt.register(0).expect("fresh thread id");

    let alloc = heap.allocator();
    let slots: Vec<Addr> = (0..64)
        .map(|i| {
            let a = alloc.alloc(0, 8).expect("overhead heap too small");
            heap.store(a, i);
            a
        })
        .collect();

    let one_tx = |worker: &mut rh_norec::TmThread| match scenario {
        "read" => {
            let sum = worker.execute(TxKind::ReadOnly, |tx| {
                let mut acc = 0u64;
                for slot in &slots[..ACCESSES_PER_TX as usize] {
                    acc = acc.wrapping_add(tx.read(*slot)?);
                }
                Ok(acc)
            });
            std::hint::black_box(sum);
        }
        "read_write" => {
            worker.execute(TxKind::ReadWrite, |tx| {
                for i in 0..(ACCESSES_PER_TX as usize / 2) {
                    let v = tx.read(slots[i])?;
                    tx.write(slots[32 + i], v.wrapping_add(1))?;
                }
                Ok(())
            });
        }
        other => unreachable!("unknown overhead scenario {other}"),
    };

    // Warmup: fault in the working set, settle adaptive state.
    for _ in 0..2_000 {
        one_tx(&mut worker);
    }

    // Report the fastest batch, not the mean: on a shared CI machine the
    // mean folds in scheduler preemptions and co-tenant load, while the
    // minimum converges on the true uncontended cost.
    let mut txs = 0u64;
    let mut best_batch = Duration::MAX;
    let started = Instant::now();
    loop {
        let batch_started = Instant::now();
        for _ in 0..1_024 {
            one_tx(&mut worker);
        }
        best_batch = best_batch.min(batch_started.elapsed());
        txs += 1_024;
        if started.elapsed() >= budget {
            break;
        }
    }

    let ns_per_tx = best_batch.as_nanos() as f64 / 1_024.0;
    OverheadRow {
        algorithm: algorithm.label(),
        scenario,
        txs,
        ns_per_tx,
        ns_per_access: ns_per_tx / ACCESSES_PER_TX as f64,
    }
}

/// Runs the full overhead matrix: every algorithm × both scenarios.
pub fn run_matrix(scale: Scale) -> Vec<OverheadRow> {
    let budget = measure_budget(scale);
    let mut rows = Vec::new();
    for &algorithm in &Algorithm::ALL {
        for scenario in ["read", "read_write"] {
            rows.push(run_scenario(algorithm, scenario, budget));
        }
    }
    rows
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn rows_json(out: &mut String, rows: &[(&str, &str, f64, f64, Option<u64>)]) {
    out.push_str("[\n");
    for (i, (alg, scenario, ns_tx, ns_access, txs)) in rows.iter().enumerate() {
        out.push_str("      {");
        out.push_str(&format!(
            "\"algorithm\": \"{}\", \"scenario\": \"{}\", \"ns_per_tx\": {:.2}, \"ns_per_access\": {:.3}",
            json_escape(alg),
            json_escape(scenario),
            ns_tx,
            ns_access
        ));
        if let Some(txs) = txs {
            out.push_str(&format!(", \"txs\": {txs}"));
        }
        out.push('}');
        if i + 1 < rows.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("    ]");
}

/// Serializes the result (plus the embedded pre-refactor baseline) as the
/// `BENCH_2.json` document.
pub fn to_json(rows: &[OverheadRow]) -> String {
    let current: Vec<(&str, &str, f64, f64, Option<u64>)> = rows
        .iter()
        .map(|r| (r.algorithm, r.scenario, r.ns_per_tx, r.ns_per_access, Some(r.txs)))
        .collect();
    let baseline: Vec<(&str, &str, f64, f64, Option<u64>)> = BASELINE_PRE_REFACTOR
        .iter()
        .map(|&(alg, scenario, ns_tx, ns_access)| (alg, scenario, ns_tx, ns_access, None))
        .collect();

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"overhead\",\n");
    out.push_str(
        "  \"description\": \"single-thread uncontended per-op cost through the public Tx handle\",\n",
    );
    out.push_str(&format!("  \"accesses_per_tx\": {ACCESSES_PER_TX},\n"));
    out.push_str(&format!(
        "  \"instrumentation_compiled\": {},\n",
        rh_norec::INSTRUMENTED
    ));
    out.push_str("  \"baseline_pre_refactor\": {\n");
    out.push_str(&format!("    \"dispatch\": \"{}\",\n", json_escape(BASELINE_DISPATCH)));
    out.push_str("    \"rows\": ");
    rows_json(&mut out, &baseline);
    out.push_str("\n  },\n");
    out.push_str("  \"current\": {\n");
    out.push_str(
        "    \"dispatch\": \"monomorphized TxCtx enum, yield+trace hooks behind the `deterministic` feature\",\n",
    );
    out.push_str("    \"rows\": ");
    rows_json(&mut out, &current);
    out.push_str("\n  }\n");
    out.push_str("}\n");
    out
}

/// Runs the matrix, prints it (`--csv` for machine-readable rows), and
/// writes `BENCH_2.json` into the current directory.
pub fn run(scale: Scale, csv: bool) {
    let rows = run_matrix(scale);

    if csv {
        println!("algorithm,scenario,txs,ns_per_tx,ns_per_access");
        for r in &rows {
            println!(
                "{},{},{},{:.2},{:.3}",
                r.algorithm, r.scenario, r.txs, r.ns_per_tx, r.ns_per_access
            );
        }
    } else {
        println!(
            "overhead: single-thread uncontended cost per transactional access \
             (instrumentation compiled: {})",
            rh_norec::INSTRUMENTED
        );
        println!("{:<18} {:<11} {:>10} {:>12} {:>14}", "algorithm", "scenario", "txs", "ns/tx", "ns/access");
        for r in &rows {
            println!(
                "{:<18} {:<11} {:>10} {:>12.2} {:>14.3}",
                r.algorithm, r.scenario, r.txs, r.ns_per_tx, r.ns_per_access
            );
        }
        if !BASELINE_PRE_REFACTOR.is_empty() {
            println!();
            println!("pre-refactor baseline ({BASELINE_DISPATCH}):");
            for &(alg, scenario, ns_tx, ns_access) in BASELINE_PRE_REFACTOR {
                println!("{alg:<18} {scenario:<11} {:>10} {ns_tx:>12.2} {ns_access:>14.3}", "-");
            }
        }
    }

    let json = to_json(&rows);
    let path = "BENCH_2.json";
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
