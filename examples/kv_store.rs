//! A concurrent key-value store on the transactional red-black tree — the
//! paper's RBTree microbenchmark reshaped as an application.
//!
//! Compares the five TM algorithms on the same mixed workload and prints
//! the execution-analysis numbers the paper plots under each figure.
//!
//! ```text
//! cargo run --release --example kv_store
//! ```

use std::sync::Arc;
use std::time::Instant;

use rh_norec_repro::htm::{Htm, HtmConfig};
use rh_norec_repro::mem::{Heap, HeapConfig};
use rh_norec_repro::tm::prelude::*;
use rh_norec_repro::workloads::structures::RbTree;

const THREADS: usize = 4;
const OPS_PER_THREAD: usize = 20_000;
const KEYS: u64 = 4_096;
const MUTATION_PCT: u64 = 10;

fn main() {
    println!(
        "{:<14} {:>9} {:>10} {:>10} {:>10} {:>9}",
        "algorithm", "ms", "commits", "fast-path", "slow-path", "conf/op"
    );
    for alg in Algorithm::PAPER_SET {
        let (elapsed_ms, stats) = run(alg);
        println!(
            "{:<14} {:>9} {:>10} {:>10} {:>10} {:>9.4}",
            alg.label(),
            elapsed_ms,
            stats.commits,
            stats.fast_path_commits,
            stats.slow_path_commits + stats.serial_commits,
            stats.htm_conflict_aborts() as f64 / stats.commits.max(1) as f64,
        );
    }
}

fn run(alg: Algorithm) -> (u128, TmThreadStats) {
    let heap = Arc::new(Heap::new(HeapConfig::default()));
    let htm = Htm::new(Arc::clone(&heap), HtmConfig::default());
    let rt = TmRuntime::new(Arc::clone(&heap), htm, TmConfig::new(alg)).expect("runtime construction cannot fail");
    let store = RbTree::create(&heap);

    // Preload half the key space.
    {
        let mut w = rt.open_session().expect("free worker slot");
        for k in (0..KEYS).step_by(2) {
            w.run(|tx| store.put(tx, k, k * 10)).expect("preload cannot fault");
        }
    }

    let start = Instant::now();
    let merged = std::sync::Mutex::new(TmThreadStats::default());
    std::thread::scope(|s| {
        for tid in 0..THREADS {
            let rt = Arc::clone(&rt);
            let merged = &merged;
            s.spawn(move || {
                let mut w = rt.open_session().expect("free worker slot");
                let mut rng = 0x1234_5678u64 ^ (tid as u64) << 32;
                for _ in 0..OPS_PER_THREAD {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    let key = rng % KEYS;
                    if rng % 100 < MUTATION_PCT {
                        if rng & 1 == 0 {
                            w.run(|tx| store.put(tx, key, rng)).expect("put cannot fault");
                        } else {
                            w.run(|tx| store.remove(tx, key)).expect("remove cannot fault");
                        }
                    } else {
                        w.run_read(|tx| store.get(tx, key)).expect("get cannot fault");
                    }
                }
                let stats = w.stats();
                let mut m = merged.lock().unwrap();
                *m = m.merge(&stats);
            });
        }
    });
    let elapsed = start.elapsed().as_millis();
    store.check_invariants(&heap).expect("tree invariants hold");
    (elapsed, merged.into_inner().unwrap())
}
