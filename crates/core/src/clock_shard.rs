//! The commit-clock abstraction of the NOrec family: the classic single
//! clock word, or `C` cache-line-padded per-core sequence lanes plus a
//! small aggregate epoch (DESIGN.md §11).
//!
//! Every software commit in NOrec, Hybrid NOrec and RH NOrec serializes
//! through one global clock word, so under write pressure that one cache
//! line ping-pongs between every core — the shared-metadata tax the HyTM
//! lower-bound papers identify. The sharded scheme splits the version
//! space across lanes:
//!
//! * **Lanes** are monotonic sequence counters (`+2` per commit, no lock
//!   bit). A writer bumps only its *home lane* (`tid % shards`), so two
//!   hardware fast paths committing on different cores no longer conflict
//!   on clock metadata at all.
//! * **The epoch** is a single-word mutex over the software write phase
//!   (CAS `0 → 1` to enter, store `0` to leave). NOrec has no per-location
//!   metadata, so in-place software writes need global exclusivity — the
//!   epoch provides exactly what the single clock's lock bit provided,
//!   on its own cache line.
//! * **Readers** snapshot the full lane vector under a quiescent epoch
//!   and validate that no lane moved (and the epoch is still clear). Any
//!   commit anywhere invalidates every in-flight reader, which is also
//!   the privatization argument: a committed unlink is visible to every
//!   straggler before its next read or write-phase entry.
//!
//! With `shards == 1` every method reduces to exactly the pre-sharding
//! protocol — same heap operations in the same order, lock bit in the
//! clock word, no epoch — so the default configuration is bit-for-bit
//! today's behavior.
//!
//! ## Adaptive active-lane count (DESIGN.md §14)
//!
//! When the policy layer's lane controller is on, an extra padded heap
//! word `lane_ctl` holds the number of *active* lanes (`1..=shards`).
//! Writers home on `tid % active` and validation compares only the
//! active prefix, so shrinking to one lane recovers the single clock's
//! per-read cost while keeping the sharded layout. Re-homing is
//! published only through [`ClockScheme::publish_active_lanes`], which
//! runs under the write-phase epoch and bumps lane 0 before releasing —
//! the **epoch fence**. Readers load the lane vector *before* `lane_ctl`
//! (and the fence stores `lane_ctl` before bumping lane 0), so a
//! snapshot that ever validates after the fence must have seen the fresh
//! lane 0, hence the fresh `lane_ctl`; every torn interleaving
//! self-invalidates on the bumped lane 0 or the held epoch. Without the
//! controller `lane_ctl` is `Addr::NULL`, no path touches it, and
//! behavior is bit-for-bit the static scheme.

use sim_htm::{AbortCode, HtmThread};
use sim_mem::{Addr, Heap};

use crate::algorithms::common::xabort;
use crate::cost;
use crate::globals::clock;
use crate::txlog::Backoff;

/// Upper bound on the `clock_shards` configuration knob. Lanes live in a
/// fixed array so [`crate::Globals`] stays `Copy`.
pub const MAX_CLOCK_SHARDS: usize = 8;

/// Heap layout and protocol of the commit clock: one lock-bit word
/// (`shards == 1`) or a lane vector plus a write-phase epoch.
#[derive(Clone, Copy, Debug)]
pub struct ClockScheme {
    /// Lane addresses; `lanes[0]` doubles as the single clock word.
    lanes: [Addr; MAX_CLOCK_SHARDS],
    shards: u32,
    /// Write-phase mutex (sharded only; `Addr::NULL` when `shards == 1`).
    epoch: Addr,
    /// Active-lane count word (policy lane adaptation only, `Addr::NULL`
    /// otherwise). Writers home on `tid % active`; changes go through
    /// the epoch fence of [`Self::publish_active_lanes`].
    lane_ctl: Addr,
    /// MUTANT (`Mutant::StaleLane`): skip revalidating the last lane.
    #[cfg(feature = "mutants")]
    stale_lane: bool,
}

/// A transaction's begin-time view of the clock: the single word's value,
/// or the full lane vector. Validation compares the live clock against
/// this; equality means no one committed since the snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct ClockSnapshot {
    pub(crate) lanes: [u64; MAX_CLOCK_SHARDS],
    /// Active-lane count observed at begin time; validation covers
    /// `lanes[..active]` and writers home on `tid % active`. Equal to
    /// `shards` whenever lane adaptation is off.
    pub(crate) active: u32,
}

impl ClockSnapshot {
    /// A single-clock snapshot holding `word` in lane 0.
    pub(crate) fn single(word: u64) -> Self {
        let mut lanes = [0u64; MAX_CLOCK_SHARDS];
        lanes[0] = word;
        ClockSnapshot { lanes, active: 1 }
    }

    /// The single clock word's value (lane 0).
    #[cfg(test)]
    pub(crate) fn word(&self) -> u64 {
        self.lanes[0]
    }
}

impl ClockScheme {
    pub(crate) fn new(
        lanes: [Addr; MAX_CLOCK_SHARDS],
        shards: u32,
        epoch: Addr,
        lane_ctl: Addr,
    ) -> Self {
        debug_assert!(shards >= 1 && shards as usize <= MAX_CLOCK_SHARDS);
        debug_assert_eq!(shards == 1, epoch.is_null(), "epoch iff sharded");
        debug_assert!(lane_ctl.is_null() || shards > 1, "lane_ctl iff sharded");
        ClockScheme {
            lanes,
            shards,
            epoch,
            lane_ctl,
            #[cfg(feature = "mutants")]
            stale_lane: false,
        }
    }

    /// Number of sequence lanes (1 = the classic single clock word).
    #[inline]
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Heap address of lane `i`; lane 0 is the single clock word when
    /// `shards == 1`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= shards`.
    pub fn lane(&self, i: usize) -> Addr {
        assert!(i < self.shards as usize, "lane {i} out of range (shards = {})", self.shards);
        self.lanes[i]
    }

    /// Heap address of the write-phase epoch, `None` for the single clock
    /// (whose lock bit plays the epoch's role).
    pub fn epoch_addr(&self) -> Option<Addr> {
        if self.shards == 1 {
            None
        } else {
            Some(self.epoch)
        }
    }

    /// The lane writer `tid` bumps at commit (ignoring lane adaptation;
    /// the adaptive paths home on `tid % snapshot.active` instead).
    #[inline]
    pub fn home_lane(&self, tid: usize) -> usize {
        tid % self.shards as usize
    }

    /// Whether the policy lane controller allocated an active-lane word.
    #[inline]
    pub(crate) fn has_lane_ctl(&self) -> bool {
        !self.lane_ctl.is_null()
    }

    /// Heap address of the active-lane count word, `None` when lane
    /// adaptation is off (diagnostics and the globals layout audit).
    pub fn lane_ctl_addr(&self) -> Option<Addr> {
        if self.lane_ctl.is_null() {
            None
        } else {
            Some(self.lane_ctl)
        }
    }

    /// The number of lanes `snap` covers, clamped to a sane range even
    /// if the snapshot predates construction (test convenience).
    #[inline]
    fn live_lanes(&self, snap: &ClockSnapshot) -> usize {
        (snap.active.clamp(1, self.shards)) as usize
    }

    /// The current active-lane count (diagnostics and the controller;
    /// `shards` when lane adaptation is off).
    pub fn active_lanes(&self, heap: &Heap) -> u32 {
        if self.lane_ctl.is_null() {
            self.shards
        } else {
            heap.load(self.lane_ctl) as u32
        }
    }

    /// Modeled cycles of one full software validation against `snap`:
    /// each active lane past the first costs one
    /// [`cost::LANE_VALIDATE`] compare. Zero for the single clock (and
    /// for one active lane), whose probe *is* the validation.
    #[inline]
    pub(crate) fn validate_cost(&self, snap: &ClockSnapshot) -> u64 {
        if self.shards == 1 {
            return 0;
        }
        u64::from(snap.active.saturating_sub(1)) * cost::LANE_VALIDATE
    }

    /// Publishes a new active-lane count through the **epoch fence**
    /// (policy lane controller only): acquire the write-phase epoch,
    /// store the new count, bump lane 0, release. The order is the
    /// safety argument — `lane_ctl` before the lane-0 bump, paired with
    /// readers loading lanes before `lane_ctl` — so fresh lanes imply a
    /// fresh active count and every stale snapshot fails validation on
    /// the bumped lane 0 (lane 0 is in every snapshot's active prefix).
    ///
    /// `fenced: false` is the `policy_stale_epoch` mutant: a raw store
    /// with no fence, leaving stale-homed writers invisible to fresh
    /// readers — the opacity checker's job to catch.
    pub(crate) fn publish_active_lanes(&self, heap: &Heap, new_active: u32, fenced: bool) {
        debug_assert!(self.has_lane_ctl());
        debug_assert!(new_active >= 1 && new_active <= self.shards);
        if !fenced {
            // MUTANT (`Mutant::PolicyStaleEpoch`): no epoch, no bump — a
            // raw racy store. The yield models the store landing at an
            // arbitrary scheduler point (the fenced path's CAS loop
            // yields the same way), so in-flight snapshots taken under
            // the old lane count can legitimately interleave around it.
            sim_htm::sched::yield_point();
            heap.store(self.lane_ctl, u64::from(new_active));
            return;
        }
        loop {
            sim_htm::sched::yield_point();
            if heap.compare_exchange(self.epoch, 0, 1).is_ok() {
                break;
            }
        }
        heap.store(self.lane_ctl, u64::from(new_active));
        let lane0 = self.lanes[0];
        heap.store(lane0, heap.load(lane0) + 2);
        heap.store(self.epoch, 0);
    }

    /// Arms the `Mutant::StaleLane` mutation on this copy of the scheme:
    /// validation skips the last lane, so commits homed there go unseen.
    #[cfg(feature = "mutants")]
    pub(crate) fn set_stale_lane(&mut self, on: bool) {
        self.stale_lane = on;
    }

    /// The lane index validation skips (out of range = none).
    #[inline]
    fn skip_lane(&self) -> usize {
        #[cfg(feature = "mutants")]
        if self.stale_lane && self.shards > 1 {
            // MUTANT: the last lane's bumps are never revalidated.
            return self.shards as usize - 1;
        }
        MAX_CLOCK_SHARDS
    }

    /// Waits for a quiescent clock and snapshots it, charging the
    /// waiter's spin cycles. Contended waits back off between probes so
    /// the write-phase holder's release is not met by a thundering herd.
    ///
    /// The uncontended probe is the first instruction of every
    /// NOrec-family transaction, so it stays inline; the contended spin
    /// is kept out of line to keep the hot path small.
    /// [`Self::begin_into`] returning a fresh snapshot (test convenience;
    /// the engines reuse a slot across attempts).
    #[cfg(test)]
    pub(crate) fn begin(&self, heap: &Heap, cycles: &mut u64, backoff: &mut Backoff) -> ClockSnapshot {
        let mut snap = ClockSnapshot::single(0);
        self.begin_into(heap, cycles, backoff, &mut snap);
        snap
    }

    /// [`Self::begin`] into a caller-owned slot, writing only the live
    /// lanes. The retry loops keep one snapshot slot alive across
    /// attempts, so a restart re-reads one word (single clock) or
    /// `shards` words instead of constructing and copying the full
    /// cache-line-wide vector — under contention that per-attempt copy
    /// is measurable on the `contended` benchmark cells.
    #[inline]
    pub(crate) fn begin_into(
        &self,
        heap: &Heap,
        cycles: &mut u64,
        backoff: &mut Backoff,
        snap: &mut ClockSnapshot,
    ) {
        // Yield before each probe (not only when locked): the lock holder
        // may be descheduled, and under the deterministic scheduler it can
        // only run again if the spinner passes a yield point.
        sim_htm::sched::yield_point();
        if self.shards == 1 {
            let v = heap.load(self.lanes[0]);
            if !clock::is_locked(v) {
                snap.lanes[0] = v;
                return;
            }
        } else if heap.load(self.epoch) == 0 {
            self.snapshot_lanes(heap, snap);
            return;
        }
        self.begin_contended(heap, cycles, backoff, snap)
    }

    #[cold]
    fn begin_contended(
        &self,
        heap: &Heap,
        cycles: &mut u64,
        backoff: &mut Backoff,
        snap: &mut ClockSnapshot,
    ) {
        let mut attempt = 0;
        loop {
            *cycles += cost::SPIN_ITER;
            backoff.pause(attempt, cycles);
            attempt += 1;
            sim_htm::sched::yield_point();
            if self.shards == 1 {
                let v = heap.load(self.lanes[0]);
                if !clock::is_locked(v) {
                    snap.lanes[0] = v;
                    return;
                }
            } else if heap.load(self.epoch) == 0 {
                self.snapshot_lanes(heap, snap);
                return;
            }
        }
    }

    /// Reads every live lane. A snapshot torn by a concurrent write phase
    /// is safe: the data writes that could make it dangerous land only
    /// under the epoch, and validation re-checks the epoch *and* every
    /// lane — any overlap with a write phase, or any completed commit
    /// after a lane was read, fails the next [`Self::is_valid`].
    ///
    /// `lane_ctl` is loaded **after** the lane vector, pairing with the
    /// fence's ctl-store-then-lane-0-bump: a snapshot whose lane 0 is
    /// fresh carries a fresh active count, and one whose active count is
    /// stale can never validate past the fence (lane 0 moved).
    fn snapshot_lanes(&self, heap: &Heap, snap: &mut ClockSnapshot) {
        for (slot, addr) in snap
            .lanes
            .iter_mut()
            .zip(&self.lanes)
            .take(self.shards as usize)
        {
            *slot = heap.load(*addr);
        }
        snap.active = if self.lane_ctl.is_null() {
            self.shards
        } else {
            heap.load(self.lane_ctl) as u32
        };
    }

    /// The per-read validation probe: one heap word plus the value that
    /// proves the snapshot still valid. Single clock: the clock word and
    /// its snapshot value, so the NOrec per-read check stays the one
    /// load-and-compare it has always been. Sharded: validity can never
    /// be proven by one word (a hardware commit moves only its home
    /// lane), so the probe pairs the epoch with a value it never holds —
    /// every probe misses and the caller falls through to the full
    /// [`Self::is_valid`] lane compare.
    #[inline]
    pub(crate) fn read_probe(&self, snap: &ClockSnapshot) -> (Addr, u64) {
        if self.shards == 1 {
            (self.lanes[0], snap.lanes[0])
        } else {
            (self.epoch, u64::MAX)
        }
    }

    /// Whether a [`Self::read_probe`] miss alone proves the snapshot
    /// invalid. True for the single clock — the probe *is* the clock
    /// word, so re-checking after a miss would repeat the same compare.
    /// False for the sharded clock, whose probe misses by design and
    /// decides nothing.
    #[inline]
    pub(crate) fn probe_conclusive(&self) -> bool {
        self.shards == 1
    }

    /// Whether no commit has published since `snap` (and no write phase
    /// is in flight). The NOrec per-read validation check.
    #[inline]
    pub(crate) fn is_valid(&self, heap: &Heap, snap: &ClockSnapshot) -> bool {
        if self.shards == 1 {
            return heap.load(self.lanes[0]) == snap.lanes[0];
        }
        if heap.load(self.epoch) != 0 {
            return false;
        }
        self.lanes_match(heap, snap)
    }

    fn lanes_match(&self, heap: &Heap, snap: &ClockSnapshot) -> bool {
        let skip = self.skip_lane();
        // Only the active prefix is compared. Safe because lane counts
        // change only through the epoch fence: any snapshot that
        // validates after a fence saw the fence's lane-0 bump, hence the
        // current active count, and no writer publishes outside it.
        for i in 0..self.live_lanes(snap) {
            if i == skip {
                continue;
            }
            if heap.load(self.lanes[i]) != snap.lanes[i] {
                return false;
            }
        }
        true
    }

    /// Opens the software write phase at the snapshot — the final
    /// conflict check, failing iff anyone committed since `snap` was
    /// last validated. On success the single clock holds its locked
    /// value (mirrored into `snap`) or the epoch is held; the caller
    /// must [`Self::publish`] or [`Self::release_without_publish`].
    pub(crate) fn try_enter_write_phase(&self, heap: &Heap, snap: &mut ClockSnapshot) -> bool {
        if self.shards == 1 {
            let v = snap.lanes[0];
            if heap
                .compare_exchange(self.lanes[0], v, clock::set_lock_bit(v))
                .is_err()
            {
                return false;
            }
            snap.lanes[0] = clock::set_lock_bit(v);
            return true;
        }
        if heap.compare_exchange(self.epoch, 0, 1).is_err() {
            return false;
        }
        // The epoch is ours, but a commit that published since the
        // snapshot still invalidates this attempt.
        if !self.lanes_match(heap, snap) {
            heap.store(self.epoch, 0);
            return false;
        }
        true
    }

    /// MUTANT (`Mutant::PostfixClock`): enter the write phase from the
    /// *current* clock instead of the validated snapshot — reads taken
    /// before an intervening commit survive into the write phase.
    #[cfg(feature = "mutants")]
    pub(crate) fn force_enter_write_phase(&self, heap: &Heap, snap: &mut ClockSnapshot) -> bool {
        if self.shards == 1 {
            let now = heap.load(self.lanes[0]);
            if clock::is_locked(now) {
                return false;
            }
            heap.store(self.lanes[0], clock::set_lock_bit(now));
            snap.lanes[0] = clock::set_lock_bit(now);
            return true;
        }
        if heap.compare_exchange(self.epoch, 0, 1).is_err() {
            return false;
        }
        self.snapshot_lanes(heap, snap);
        true
    }

    /// Publishes a software writer's commit: bump the version and close
    /// the write phase. Single clock: one store of the next version (the
    /// lock release doubles as the bump). Sharded: bump the home lane,
    /// then release the epoch — in that order, so a reader that sees a
    /// clear epoch also sees the bumped lane.
    pub(crate) fn publish(&self, heap: &Heap, snap: &ClockSnapshot, tid: usize) {
        if self.shards == 1 {
            heap.store(self.lanes[0], clock::next_version(snap.lanes[0]));
            return;
        }
        let home = tid % self.live_lanes(snap);
        let lane = self.lanes[home];
        heap.store(lane, heap.load(lane) + 2);
        heap.store(self.epoch, 0);
    }

    /// Closes the write phase without publishing (the postfix died, or a
    /// teardown): nothing landed, so the version must not move.
    pub(crate) fn release_without_publish(&self, heap: &Heap, snap: &ClockSnapshot) {
        if self.shards == 1 {
            heap.store(self.lanes[0], clock::clear_lock_bit(snap.lanes[0]));
            return;
        }
        heap.store(self.epoch, 0);
    }

    /// Hybrid NOrec's start-time subscription: pull the whole clock into
    /// the hardware tracking set, aborting if a write phase is in flight.
    /// Sharded, this subscribes *every* lane — Hybrid NOrec's defining
    /// false-abort cost is preserved per lane, which is exactly what the
    /// ablation against RH NOrec measures.
    pub(crate) fn htm_subscribe(&self, htm: &mut HtmThread) -> Result<(), AbortCode> {
        if self.shards == 1 {
            return match htm.read(self.lanes[0]) {
                Ok(v) if !clock::is_locked(v) => Ok(()),
                Ok(_) => Err(htm.abort(xabort::CLOCK_LOCKED).code),
                Err(e) => Err(e.code),
            };
        }
        match htm.read(self.epoch) {
            Ok(0) => {}
            Ok(_) => return Err(htm.abort(xabort::CLOCK_LOCKED).code),
            Err(e) => return Err(e.code),
        }
        for lane in &self.lanes[..self.shards as usize] {
            if let Err(e) = htm.read(*lane) {
                return Err(e.code);
            }
        }
        Ok(())
    }

    /// The writer fast path's commit-time bump: read-check-bump inside
    /// the hardware transaction. Sharded, only the home lane enters the
    /// tracking set — disjoint fast-path writers no longer conflict on
    /// clock metadata, the scheme's core win.
    pub(crate) fn htm_commit_bump(&self, htm: &mut HtmThread, tid: usize) -> Result<(), AbortCode> {
        if self.shards == 1 {
            let clk = match htm.read(self.lanes[0]) {
                Ok(v) => v,
                Err(e) => return Err(e.code),
            };
            if clock::is_locked(clk) {
                return Err(htm.abort(xabort::CLOCK_LOCKED).code);
            }
            return match htm.write(self.lanes[0], clk + 2) {
                Ok(()) => Ok(()),
                Err(e) => Err(e.code),
            };
        }
        match htm.read(self.epoch) {
            Ok(0) => {}
            Ok(_) => return Err(htm.abort(xabort::CLOCK_LOCKED).code),
            Err(e) => return Err(e.code),
        }
        // Under lane adaptation the active count joins the tracking set,
        // so a concurrent fence (which rewrites `lane_ctl` under the
        // epoch) conflict-aborts this commit — the HTM is its own fence.
        let active = if self.lane_ctl.is_null() {
            u64::from(self.shards)
        } else {
            match htm.read(self.lane_ctl) {
                Ok(v) => v.clamp(1, u64::from(self.shards)),
                Err(e) => return Err(e.code),
            }
        };
        let lane = self.lanes[tid % active as usize];
        let v = match htm.read(lane) {
            Ok(v) => v,
            Err(e) => return Err(e.code),
        };
        match htm.write(lane, v + 2) {
            Ok(()) => Ok(()),
            Err(e) => Err(e.code),
        }
    }

    /// Snapshots the clock transactionally (the RH NOrec prefix commit):
    /// the HTM validates the snapshot together with every prefix read,
    /// aborting if a write phase is in flight.
    pub(crate) fn htm_snapshot(&self, htm: &mut HtmThread) -> Result<ClockSnapshot, AbortCode> {
        if self.shards == 1 {
            let tv = match htm.read(self.lanes[0]) {
                Ok(v) => v,
                Err(e) => return Err(e.code),
            };
            if clock::is_locked(tv) {
                return Err(htm.abort(xabort::CLOCK_LOCKED).code);
            }
            return Ok(ClockSnapshot::single(tv));
        }
        match htm.read(self.epoch) {
            Ok(0) => {}
            Ok(_) => return Err(htm.abort(xabort::CLOCK_LOCKED).code),
            Err(e) => return Err(e.code),
        }
        let mut lanes = [0u64; MAX_CLOCK_SHARDS];
        for (slot, addr) in lanes.iter_mut().zip(&self.lanes).take(self.shards as usize) {
            *slot = match htm.read(*addr) {
                Ok(v) => v,
                Err(e) => return Err(e.code),
            };
        }
        let active = if self.lane_ctl.is_null() {
            self.shards
        } else {
            // Transactional read: atomic with the lane reads above, and
            // keeps the count in the tracking set against a racing fence.
            match htm.read(self.lane_ctl) {
                Ok(v) => (v as u32).clamp(1, self.shards),
                Err(e) => return Err(e.code),
            }
        };
        Ok(ClockSnapshot { lanes, active })
    }

    /// The postfix writer's version bump, *inside* the short postfix
    /// hardware transaction (sharded only): the lane store commits
    /// atomically with the buffered data writes, so the bump and the
    /// data publication are one event. The single clock is a no-op here —
    /// its bump happens after `htm.commit` via
    /// [`Self::finish_postfix_publish`], under the lock taken at first
    /// write, preserving the pre-sharding order exactly.
    /// The postfix writer homes on `snap.active` (stable here: the
    /// caller holds the write-phase epoch, which blocks any fence).
    pub(crate) fn htm_postfix_bump(
        &self,
        htm: &mut HtmThread,
        tid: usize,
        snap: &ClockSnapshot,
    ) -> Result<(), AbortCode> {
        if self.shards == 1 {
            return Ok(());
        }
        let lane = self.lanes[tid % self.live_lanes(snap)];
        let v = match htm.read(lane) {
            Ok(v) => v,
            Err(e) => return Err(e.code),
        };
        match htm.write(lane, v + 2) {
            Ok(()) => Ok(()),
            Err(e) => Err(e.code),
        }
    }

    /// Completes a postfix publication after its HTM commit: the single
    /// clock publishes its next version; sharded lanes only release the
    /// epoch (the lane already bumped inside the hardware transaction).
    pub(crate) fn finish_postfix_publish(&self, heap: &Heap, snap: &ClockSnapshot) {
        if self.shards == 1 {
            heap.store(self.lanes[0], clock::next_version(snap.lanes[0]));
            return;
        }
        heap.store(self.epoch, 0);
    }

    /// Total versions published across every lane (white-box tests and
    /// diagnostics): the sum of unlocked lane values, in version units
    /// of 2.
    pub fn total_version(&self, heap: &Heap) -> u64 {
        (0..self.shards as usize)
            .map(|i| clock::clear_lock_bit(heap.load(self.lanes[i])))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::globals::Globals;
    use crate::BackoffConfig;
    use sim_mem::HeapConfig;

    fn scheme(shards: u32) -> (Heap, Globals) {
        let heap = Heap::new(HeapConfig { words: 1 << 12 });
        let g = Globals::allocate(&heap, shards);
        (heap, g)
    }

    fn backoff() -> Backoff {
        Backoff::new(&BackoffConfig::default(), 0)
    }

    #[test]
    fn single_clock_round_trip_matches_classic_protocol() {
        let (heap, g) = scheme(1);
        let mut cycles = 0;
        let mut snap = g.clock.begin(&heap, &mut cycles, &mut backoff());
        assert_eq!(snap.word(), 0);
        assert!(g.clock.is_valid(&heap, &snap));
        assert!(g.clock.try_enter_write_phase(&heap, &mut snap));
        assert!(clock::is_locked(heap.load(g.clock.lane(0))));
        // A locked clock invalidates every other snapshot.
        assert!(!g.clock.is_valid(&heap, &ClockSnapshot::single(0)));
        g.clock.publish(&heap, &snap, 0);
        assert_eq!(heap.load(g.clock.lane(0)), 2);
        assert!(!g.clock.is_valid(&heap, &snap));
    }

    #[test]
    fn sharded_writer_bumps_only_its_home_lane() {
        let (heap, g) = scheme(4);
        let mut cycles = 0;
        for tid in [0usize, 1, 2, 5] {
            let mut snap = g.clock.begin(&heap, &mut cycles, &mut backoff());
            assert!(g.clock.try_enter_write_phase(&heap, &mut snap));
            assert_eq!(heap.load(g.clock.epoch_addr().unwrap()), 1);
            g.clock.publish(&heap, &snap, tid);
            assert_eq!(heap.load(g.clock.epoch_addr().unwrap()), 0);
        }
        // tids 0, 1, 2 each bumped their own lane; tid 5 homed on lane 1.
        assert_eq!(heap.load(g.clock.lane(0)), 2);
        assert_eq!(heap.load(g.clock.lane(1)), 4);
        assert_eq!(heap.load(g.clock.lane(2)), 2);
        assert_eq!(heap.load(g.clock.lane(3)), 0);
        assert_eq!(g.clock.total_version(&heap), 8);
    }

    #[test]
    fn any_lane_movement_invalidates_a_sharded_snapshot() {
        let (heap, g) = scheme(4);
        let mut cycles = 0;
        let snap = g.clock.begin(&heap, &mut cycles, &mut backoff());
        assert!(g.clock.is_valid(&heap, &snap));
        // A commit homed on lane 3 (tid 3) must invalidate the snapshot.
        let mut writer = snap;
        assert!(g.clock.try_enter_write_phase(&heap, &mut writer));
        g.clock.publish(&heap, &writer, 3);
        assert!(!g.clock.is_valid(&heap, &snap));
        // And a later write-phase entry from the stale snapshot fails.
        let mut stale = snap;
        assert!(!g.clock.try_enter_write_phase(&heap, &mut stale));
        assert_eq!(heap.load(g.clock.epoch_addr().unwrap()), 0, "failed entry releases the epoch");
    }

    #[test]
    fn held_epoch_blocks_validation_and_entry() {
        let (heap, g) = scheme(2);
        let mut cycles = 0;
        let mut holder = g.clock.begin(&heap, &mut cycles, &mut backoff());
        assert!(g.clock.try_enter_write_phase(&heap, &mut holder));
        let reader = ClockSnapshot { lanes: holder.lanes, active: holder.active };
        assert!(!g.clock.is_valid(&heap, &reader), "held epoch fails every reader");
        let mut rival = reader;
        assert!(!g.clock.try_enter_write_phase(&heap, &mut rival));
        g.clock.release_without_publish(&heap, &holder);
        assert!(g.clock.is_valid(&heap, &reader), "release without publish moves nothing");
    }

    #[test]
    fn single_release_without_publish_restores_the_version() {
        let (heap, g) = scheme(1);
        let mut cycles = 0;
        let mut snap = g.clock.begin(&heap, &mut cycles, &mut backoff());
        assert!(g.clock.try_enter_write_phase(&heap, &mut snap));
        g.clock.release_without_publish(&heap, &snap);
        assert_eq!(heap.load(g.clock.lane(0)), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn lane_index_is_bounds_checked() {
        let (_heap, g) = scheme(2);
        let _ = g.clock.lane(2);
    }

    fn adaptive_scheme(shards: u32) -> (Heap, Globals) {
        let heap = Heap::new(HeapConfig { words: 1 << 12 });
        let g = Globals::allocate_adaptive(&heap, shards, true);
        (heap, g)
    }

    #[test]
    fn snapshots_without_lane_ctl_cover_every_shard() {
        let (heap, g) = scheme(4);
        let mut cycles = 0;
        let snap = g.clock.begin(&heap, &mut cycles, &mut backoff());
        assert_eq!(snap.active, 4);
        assert!(!g.clock.has_lane_ctl());
        assert_eq!(g.clock.active_lanes(&heap), 4);
    }

    #[test]
    fn fenced_lane_shrink_invalidates_every_old_snapshot() {
        let (heap, g) = adaptive_scheme(4);
        let mut cycles = 0;
        let old = g.clock.begin(&heap, &mut cycles, &mut backoff());
        assert_eq!(old.active, 4);
        g.clock.publish_active_lanes(&heap, 1, true);
        // The fence bumped lane 0, so the pre-fence snapshot can neither
        // validate nor enter the write phase — no writer ever homes on a
        // lane fresh readers stopped watching.
        assert!(!g.clock.is_valid(&heap, &old));
        let mut stale = old;
        assert!(!g.clock.try_enter_write_phase(&heap, &mut stale));
        assert_eq!(heap.load(g.clock.epoch_addr().unwrap()), 0);
        // Fresh snapshots carry the new count and all agree.
        let fresh = g.clock.begin(&heap, &mut cycles, &mut backoff());
        assert_eq!(fresh.active, 1);
        assert!(g.clock.is_valid(&heap, &fresh));
    }

    #[test]
    fn shrunk_clock_homes_every_writer_on_the_active_prefix() {
        let (heap, g) = adaptive_scheme(4);
        g.clock.publish_active_lanes(&heap, 2, true);
        let mut cycles = 0;
        for tid in [0usize, 1, 2, 3, 5] {
            let mut snap = g.clock.begin(&heap, &mut cycles, &mut backoff());
            assert_eq!(snap.active, 2);
            assert!(g.clock.try_enter_write_phase(&heap, &mut snap));
            g.clock.publish(&heap, &snap, tid);
        }
        // tids 0/2 homed on lane 0 (plus the fence bump), 1/3/5 on lane 1;
        // lanes 2 and 3 never move while inactive.
        assert_eq!(heap.load(g.clock.lane(0)), 2 + 4);
        assert_eq!(heap.load(g.clock.lane(1)), 6);
        assert_eq!(heap.load(g.clock.lane(2)), 0);
        assert_eq!(heap.load(g.clock.lane(3)), 0);
    }

    #[test]
    fn unfenced_lane_publish_leaves_old_snapshots_valid() {
        // The planted policy_stale_epoch bug in miniature: after a raw
        // store, a stale-active snapshot still validates, so a writer it
        // carries may home outside the fresh readers' watch set.
        let (heap, g) = adaptive_scheme(2);
        let mut cycles = 0;
        let old = g.clock.begin(&heap, &mut cycles, &mut backoff());
        assert_eq!(old.active, 2);
        g.clock.publish_active_lanes(&heap, 1, false);
        assert!(g.clock.is_valid(&heap, &old), "nothing invalidated the stale view");
        let fresh = g.clock.begin(&heap, &mut cycles, &mut backoff());
        assert_eq!(fresh.active, 1);
        // The stale writer (tid 1, active 2) publishes on lane 1...
        let mut stale_writer = old;
        assert!(g.clock.try_enter_write_phase(&heap, &mut stale_writer));
        g.clock.publish(&heap, &stale_writer, 1);
        // ...and the fresh reader, watching only lane 0, never notices.
        assert!(g.clock.is_valid(&heap, &fresh), "the hole the checker must catch end to end");
    }

    #[test]
    fn validate_cost_scales_with_active_lanes() {
        let (heap, g) = adaptive_scheme(4);
        let mut cycles = 0;
        let snap = g.clock.begin(&heap, &mut cycles, &mut backoff());
        assert_eq!(g.clock.validate_cost(&snap), 3 * cost::LANE_VALIDATE);
        g.clock.publish_active_lanes(&heap, 1, true);
        let snap = g.clock.begin(&heap, &mut cycles, &mut backoff());
        assert_eq!(g.clock.validate_cost(&snap), 0, "one active lane costs like the single clock");
        let (heap1, g1) = scheme(1);
        let snap1 = g1.clock.begin(&heap1, &mut cycles, &mut backoff());
        assert_eq!(g1.clock.validate_cost(&snap1), 0);
    }
}
