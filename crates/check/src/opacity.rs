//! The opacity history checker.
//!
//! Opacity (Guerraoui & Kapałka) strengthens serializability in two ways
//! that matter for TM: committed transactions must appear to execute
//! atomically in a single sequential order *consistent with real time*,
//! and even transactions that eventually **abort** must only ever observe
//! consistent states — a zombie transaction reading a half-committed
//! state is an opacity violation even though it commits nothing. This is
//! the safety property §4 of the paper establishes for RH NOrec, and the
//! one its Hybrid NOrec comparison hinges on.
//!
//! The checker consumes the global event history of a controlled run
//! (see [`crate::Recorder`]). Because commits are recorded at their
//! publication point with no yield in between, the order of `Commit`
//! events is the serialization order; the checker exploits that instead
//! of searching over permutations:
//!
//! * Committed **writers** must have every external read satisfied by
//!   exactly the state produced by the writers committed before them
//!   (their serialization point is their commit).
//! * Committed **read-only** transactions and **aborted** attempts must
//!   have all their external reads satisfied by *some* single state that
//!   existed during their lifetime (their serialization point may float
//!   inside their real-time window).
//! * Reads covered by the attempt's own earlier writes must return the
//!   written value (read-your-own-writes).
//!
//! The engine itself lives in [`crate::history`], shared with the weaker
//! [`crate::serializability`] oracle; [`crate::verdict::judge`] runs both
//! and reports which property failed.

use std::collections::HashMap;

use rh_norec::trace::Event;

use crate::history::{check_history, Property};
pub use crate::history::{Summary, Violation};

/// Checks `history` for opacity against `initial` memory contents.
///
/// `initial` maps heap addresses (word form) to their contents at the
/// start of the run; addresses absent from the map are taken to be zero
/// (the simulated allocator hands out zeroed blocks).
///
/// # Errors
///
/// Returns the first [`Violation`] found.
pub fn check(initial: &HashMap<u64, u64>, history: &[Event]) -> Result<Summary, Violation> {
    check_history(initial, history, Property::Opacity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rh_norec::trace::{EventKind, Path};

    fn ev(vtid: usize, kind: EventKind) -> Event {
        Event { vtid, kind }
    }

    fn begin(vtid: usize) -> Event {
        ev(vtid, EventKind::Begin { path: Path::Stm })
    }
    fn read(vtid: usize, addr: u64, value: u64) -> Event {
        ev(vtid, EventKind::Read { addr, value })
    }
    fn write(vtid: usize, addr: u64, value: u64) -> Event {
        ev(vtid, EventKind::Write { addr, value })
    }
    fn commit(vtid: usize) -> Event {
        ev(vtid, EventKind::Commit { path: Path::Stm })
    }
    fn abort(vtid: usize) -> Event {
        ev(vtid, EventKind::Abort)
    }

    #[test]
    fn serial_counter_increments_are_opaque() {
        let h = vec![
            begin(0),
            read(0, 8, 0),
            write(0, 8, 1),
            commit(0),
            begin(1),
            read(1, 8, 1),
            write(1, 8, 2),
            commit(1),
        ];
        let s = check(&HashMap::new(), &h).unwrap();
        assert_eq!(s.writer_commits, 2);
        assert_eq!(s.attempts, 2);
    }

    #[test]
    fn lost_update_is_flagged() {
        // Both read 0, both commit +1: the second writer's read is stale.
        let h = vec![
            begin(0),
            read(0, 8, 0),
            begin(1),
            read(1, 8, 0),
            write(0, 8, 1),
            commit(0),
            write(1, 8, 1),
            commit(1),
        ];
        let err = check(&HashMap::new(), &h).unwrap_err();
        assert_eq!(err.vtid, 1);
        assert!(err.committed);
        assert!(err.detail.contains("read of 0x8"), "{}", err.detail);
    }

    #[test]
    fn aborted_attempts_must_also_see_consistent_states() {
        // The aborted attempt reads x and y across another writer's
        // commit, observing a mix of old x and new y: a zombie read.
        let h = vec![
            begin(0),
            read(0, 8, 0), // old x
            begin(1),
            write(1, 8, 7),
            write(1, 16, 7),
            commit(1),
            read(0, 16, 7), // new y — inconsistent with old x
            abort(0),
        ];
        let err = check(&HashMap::new(), &h).unwrap_err();
        assert!(!err.committed);
        assert_eq!(err.vtid, 0);
        assert_eq!(err.property, Property::Opacity);
    }

    #[test]
    fn aborted_attempt_with_consistent_snapshot_passes() {
        let h = vec![
            begin(0),
            read(0, 8, 0),
            read(0, 16, 0),
            begin(1),
            write(1, 8, 7),
            write(1, 16, 7),
            commit(1),
            abort(0),
        ];
        check(&HashMap::new(), &h).unwrap();
    }

    #[test]
    fn read_only_window_rule_allows_floating_serialization() {
        // The read-only tx brackets a writer's commit but reads only
        // untouched state: it may serialize before the writer.
        let h = vec![
            begin(0),
            read(0, 8, 0),
            begin(1),
            write(1, 16, 9),
            commit(1),
            read(0, 24, 0),
            commit(0),
        ];
        check(&HashMap::new(), &h).unwrap();
    }

    #[test]
    fn committed_writer_cannot_serialize_before_an_observed_commit() {
        // Writer 0 reads writer 1's value, so it must serialize after 1 —
        // and its other read must then also be current. It is not.
        let h = vec![
            begin(1),
            write(1, 8, 5),
            write(1, 16, 5),
            commit(1),
            begin(0),
            read(0, 8, 5),
            read(0, 16, 0), // stale
            write(0, 24, 1),
            commit(0),
        ];
        let err = check(&HashMap::new(), &h).unwrap_err();
        assert_eq!(err.vtid, 0);
    }

    #[test]
    fn read_your_own_writes_is_enforced() {
        let h = vec![
            begin(0),
            write(0, 8, 3),
            read(0, 8, 4), // wrong: own write said 3
            commit(0),
        ];
        let err = check(&HashMap::new(), &h).unwrap_err();
        assert!(err.detail.contains("own"), "{}", err.detail);
    }

    #[test]
    fn initial_state_is_honoured() {
        let initial: HashMap<u64, u64> = [(8u64, 42u64)].into_iter().collect();
        let ok = vec![begin(0), read(0, 8, 42), commit(0)];
        check(&initial, &ok).unwrap();
        let bad = vec![begin(0), read(0, 8, 0), commit(0)];
        assert!(check(&initial, &bad).is_err());
    }

    #[test]
    fn unterminated_attempts_are_checked_as_aborted() {
        let h = vec![
            begin(0),
            read(0, 8, 1), // nothing ever wrote 1
        ];
        assert!(check(&HashMap::new(), &h).is_err());
    }
}
