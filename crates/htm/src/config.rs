//! Simulated machine configuration.

/// The simulated processor's core/SMT layout.
///
/// Thread `tid` runs on core `tid % cores`. When two registered threads
/// share a core, each gets half the per-thread HTM capacity — the
/// HyperThreading effect the paper calls out: "HyperThreading reduces the
/// L1 cache capacity for HTM by a factor of 2 … in many benchmarks there
/// are significant penalties above the limit of 8 threads" (§3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Topology {
    /// Number of physical cores.
    pub cores: usize,
    /// Hardware threads per core.
    pub smt_ways: usize,
}

impl Topology {
    /// The paper's testbed: Intel Core i7-5960X — 8 cores, 2-way SMT.
    pub const fn haswell_i7_5960x() -> Self {
        Topology { cores: 8, smt_ways: 2 }
    }

    /// A topology without SMT (no capacity halving at any thread count).
    pub const fn no_smt(cores: usize) -> Self {
        Topology { cores, smt_ways: 1 }
    }

    /// The core a thread id is pinned to.
    #[inline]
    pub const fn core_of(&self, tid: usize) -> usize {
        tid % self.cores
    }

    /// Total hardware threads.
    #[inline]
    pub const fn hardware_threads(&self) -> usize {
        self.cores * self.smt_ways
    }
}

impl Default for Topology {
    fn default() -> Self {
        Topology::haswell_i7_5960x()
    }
}

/// Set-associativity model for the transactional caches.
///
/// Real HTM capacity is not a flat line count: a transaction aborts as
/// soon as any cache *set* overflows its ways, so mid-sized transactions
/// abort stochastically when their lines collide in one set. SMT halves
/// the ways available to each sibling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Associativity {
    /// L1 (write-set) sets. Haswell: 64 (32 KiB / 8 ways / 64 B).
    pub l1_sets: usize,
    /// L1 ways.
    pub l1_ways: usize,
    /// L2-equivalent (read-set) sets. Haswell: 512.
    pub l2_sets: usize,
    /// L2 ways.
    pub l2_ways: usize,
}

impl Associativity {
    /// The paper's Haswell cache geometry.
    pub const fn haswell() -> Self {
        Associativity {
            l1_sets: 64,
            l1_ways: 8,
            l2_sets: 512,
            l2_ways: 8,
        }
    }
}

impl Default for Associativity {
    fn default() -> Self {
        Associativity::haswell()
    }
}

/// Configuration of the simulated HTM.
///
/// # Examples
///
/// ```rust
/// use sim_htm::HtmConfig;
///
/// let config = HtmConfig { max_write_lines: 8, ..HtmConfig::default() };
/// assert_eq!(config.max_write_lines, 8);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HtmConfig {
    /// Core/SMT layout.
    pub topology: Topology,
    /// Per-thread write-set capacity in cache lines (models the L1: 32 KiB
    /// = 512 lines on Haswell), before SMT halving.
    pub max_write_lines: usize,
    /// Per-thread read-set capacity in cache lines (models the bloom-filter
    /// extension into the L2: 256 KiB = 4096 lines), before SMT halving.
    pub max_read_lines: usize,
    /// Set-associativity model; `None` keeps only the flat line limits
    /// (useful for tests that need deterministic capacity behaviour).
    pub associativity: Option<Associativity>,
    /// SMT sibling eviction pressure: when the core's other hardware
    /// thread is active, each transactional access aborts with probability
    /// `rate * tracked_lines / capacity` — the sibling's memory traffic
    /// evicting speculative lines. This is the dominant source of the
    /// above-8-thread capacity-abort explosion the paper measures
    /// (§3.2); 0 disables it.
    pub sibling_evict_per_access: f64,
    /// Probability that any single transactional access aborts the
    /// transaction for an external reason (interrupt, fault). `0.0`
    /// disables spurious aborts (the default — the paper's runs are long
    /// enough that interrupts are noise, not signal).
    pub spurious_abort_per_access: f64,
    /// When `false`, every `begin` fails with
    /// [`AbortCode::NotSupported`](crate::AbortCode::NotSupported) — models
    /// a machine without RTM so that software fallback paths can be
    /// exercised alone.
    pub enabled: bool,
}

impl Default for HtmConfig {
    /// The paper's Haswell testbed.
    fn default() -> Self {
        HtmConfig {
            topology: Topology::default(),
            max_write_lines: 512,
            max_read_lines: 4096,
            associativity: Some(Associativity::haswell()),
            sibling_evict_per_access: 0.1,
            spurious_abort_per_access: 0.0,
            enabled: true,
        }
    }
}

impl HtmConfig {
    /// A configuration with HTM turned off entirely.
    pub fn disabled() -> Self {
        HtmConfig { enabled: false, ..Self::default() }
    }

    /// A configuration with tiny capacities, for exercising capacity aborts
    /// in tests.
    pub fn tiny_capacity() -> Self {
        HtmConfig {
            max_write_lines: 4,
            max_read_lines: 8,
            associativity: None,
            sibling_evict_per_access: 0.0,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn haswell_topology_matches_paper() {
        let t = Topology::haswell_i7_5960x();
        assert_eq!(t.cores, 8);
        assert_eq!(t.smt_ways, 2);
        assert_eq!(t.hardware_threads(), 16);
    }

    #[test]
    fn threads_wrap_onto_cores() {
        let t = Topology::haswell_i7_5960x();
        assert_eq!(t.core_of(0), 0);
        assert_eq!(t.core_of(7), 7);
        assert_eq!(t.core_of(8), 0);
        assert_eq!(t.core_of(15), 7);
    }

    #[test]
    fn default_config_is_enabled_haswell() {
        let c = HtmConfig::default();
        assert!(c.enabled);
        assert_eq!(c.max_write_lines, 512);
        assert_eq!(c.max_read_lines, 4096);
        assert_eq!(c.spurious_abort_per_access, 0.0);
    }

    #[test]
    fn disabled_config() {
        assert!(!HtmConfig::disabled().enabled);
    }
}
