//! The all-software NOrec STM of Dalessandro, Spear and Scott, in the two
//! variants the paper evaluates (§3.1):
//!
//! * **eager** (the paper's default): no read- or write-set logging. A
//!   transaction reads the global clock at start; every read re-checks the
//!   clock and restarts if it moved; the first write locks the clock and
//!   subsequent writes go straight to memory. "For the low concurrency in
//!   our benchmarks, the eager NOrec design delivers better performance."
//! * **lazy** (the classic NOrec, kept as an ablation): value-based
//!   read-set revalidation instead of restarts, and a write set that is
//!   published at commit under the clock lock.
//!
//! Both are also the software halves of the hybrid algorithms; the hybrid
//! modules add their own coordination on top rather than reusing these
//! entry points, keeping each algorithm readable on its own.

use sim_mem::{Addr, Heap};

use crate::algorithms::common::Meter;
use crate::clock_shard::ClockSnapshot;
use crate::cost;
use crate::error::{TxFault, TxResult, RESTART};
use crate::globals::Globals;
use crate::runtime::TmThread;
use crate::trace;
use crate::tx::{Tx, TxCtx, TxMem, TxOps};
use crate::txlog::{Backoff, LogVec, WriteSet};
use crate::TxKind;

pub(crate) fn run_eager<T>(
    t: &mut TmThread,
    kind: TxKind,
    body: &mut dyn FnMut(&mut Tx<'_>) -> TxResult<T>,
) -> Result<T, TxFault> {
    let rt = t.rt.clone();
    let heap: &Heap = rt.heap();
    let globals = rt.globals_snapshot();
    let interleave = rt.config().interleave_accesses;
    t.stats.slow_path_entries += 1;
    // The snapshot lives outside the per-attempt context so the context
    // (and with it the `TxCtx` enum moved through `Tx`) stays small, and a
    // restart refreshes only the live lanes in place.
    let mut snap_slot = ClockSnapshot::single(0);
    loop {
        trace::begin(trace::Path::Stm);
        let mut spin = cost::STM_START;
        globals
            .clock
            .begin_into(heap, &mut spin, &mut t.backoff, &mut snap_slot);
        let (probe_addr, probe_word) = globals.clock.read_probe(&snap_slot);
        let mut ctx = EagerCtx {
            heap,
            globals: &globals,
            mem: &mut t.mem,
            tid: t.tid,
            snap: &mut snap_slot,
            probe_addr,
            probe_word,
            wrote: false,
            dead: false,
            set_htm_lock: false,
            htm_lock_set: false,
            #[cfg(feature = "mutants")]
            skip_validation: rt.mutant_armed(crate::mutants::Mutant::EagerSkipValidation),
            meter: Meter::new(interleave),
        };
        ctx.meter.charge(spin);
        let mut tx = Tx::new(TxCtx::Eager(ctx), kind);
        let outcome = body(&mut tx);
        let (ctx, fault) = tx.into_parts();
        let TxCtx::Eager(mut ctx) = ctx else { unreachable!() };
        if let Some(fault) = fault {
            // The fault precedes the first write, so the clock is not
            // locked and no store has landed: nothing to undo but TxMem.
            debug_assert!(!ctx.wrote);
            trace::abort();
            t.stats.cycles += ctx.meter.cycles;
            t.mem.rollback(heap, t.tid);
            return Err(fault);
        }
        match outcome {
            Ok(value) => {
                ctx.commit();
                trace::commit(trace::Path::Stm);
                t.stats.cycles += ctx.meter.cycles;
                t.mem.commit(heap, t.tid);
                t.stats.slow_path_commits += 1;
                return Ok(value);
            }
            Err(_) => {
                debug_assert!(ctx.dead, "body restarted without a validation failure");
                trace::abort();
                t.stats.cycles += ctx.meter.cycles;
                t.mem.rollback(heap, t.tid);
                t.stats.slow_path_restarts += 1;
            }
        }
    }
}

/// The eager NOrec transaction context. Shared with the hybrid slow paths
/// via the `set_htm_lock` flag (Hybrid NOrec raises the global HTM lock at
/// the first write; standalone NOrec has no hardware to notify).
pub(crate) struct EagerCtx<'a> {
    pub(crate) heap: &'a Heap,
    pub(crate) globals: &'a Globals,
    pub(crate) mem: &'a mut TxMem,
    pub(crate) tid: usize,
    /// The transaction's clock snapshot, held by reference so the context
    /// stays cheap to move (the lane vector is a cache line wide).
    pub(crate) snap: &'a mut ClockSnapshot,
    /// Per-read validation probe ([`crate::clock_shard::ClockScheme::read_probe`]):
    /// one word whose expected value proves `snap` still valid on the
    /// single clock, and never matches on the sharded clock (forcing the
    /// full lane compare).
    pub(crate) probe_addr: Addr,
    /// The probe word's expected value.
    pub(crate) probe_word: u64,
    pub(crate) wrote: bool,
    pub(crate) dead: bool,
    /// Raise `global_htm_lock` around the write phase (hybrid slow paths).
    pub(crate) set_htm_lock: bool,
    pub(crate) htm_lock_set: bool,
    /// Armed `EagerSkipValidation` corpus mutant: per-read validation is
    /// elided entirely (the planted bug).
    #[cfg(feature = "mutants")]
    pub(crate) skip_validation: bool,
    pub(crate) meter: Meter,
}

impl EagerCtx<'_> {
    /// True when the `EagerSkipValidation` corpus mutant is armed.
    #[inline]
    fn validation_elided(&self) -> bool {
        #[cfg(feature = "mutants")]
        {
            self.skip_validation
        }
        #[cfg(not(feature = "mutants"))]
        {
            false
        }
    }

    /// First-write protocol: enter the clock's write phase at our start
    /// snapshot, optionally raise the global HTM lock.
    pub(crate) fn handle_first_write(&mut self) -> TxResult<()> {
        debug_assert!(!self.wrote);
        self.meter.charge(cost::GLOBAL_RMW);
        if !self
            .globals
            .clock
            .try_enter_write_phase(self.heap, self.snap)
        {
            self.dead = true;
            return Err(RESTART);
        }
        self.wrote = true;
        if self.set_htm_lock {
            self.meter.charge(cost::GLOBAL_STORE);
            self.heap.store(self.globals.global_htm_lock, 1);
            self.htm_lock_set = true;
        }
        Ok(())
    }

    /// The out-of-line half of per-read validation, reached only when the
    /// probe misses: on the single clock that means the word moved (or is
    /// transiently locked) and the attempt is dead, full stop; on the
    /// sharded clock the probe decides nothing and the full lane compare
    /// runs for every read.
    #[cold]
    fn validate_slow(&mut self) -> TxResult<()> {
        self.meter.charge(self.globals.clock.validate_cost(self.snap));
        if !self.globals.clock.probe_conclusive()
            && self.globals.clock.is_valid(self.heap, self.snap)
        {
            return Ok(());
        }
        self.dead = true;
        Err(RESTART)
    }

    /// Commit: writers release the HTM lock (if raised) and publish a new
    /// clock version; read-only transactions have nothing to do (every
    /// read was individually validated against an unmoved clock).
    pub(crate) fn commit(&mut self) {
        if self.wrote {
            if self.htm_lock_set {
                self.meter.charge(cost::GLOBAL_STORE);
                self.heap.store(self.globals.global_htm_lock, 0);
                self.htm_lock_set = false;
            }
            self.meter.charge(cost::GLOBAL_STORE);
            self.globals.clock.publish(self.heap, self.snap, self.tid);
        }
    }
}

impl TxOps for EagerCtx<'_> {
    fn read(&mut self, addr: Addr) -> TxResult<u64> {
        if self.dead {
            return Err(RESTART);
        }
        self.meter.tick(cost::NOREC_READ);
        let value = self.heap.load(addr);
        // After the first write we hold the write phase, so the check is
        // trivially true and skipped. A probe hit proves validity on the
        // single clock; everything else takes the full check out of line.
        if !self.wrote
            && !self.validation_elided()
            && self.heap.load(self.probe_addr) != self.probe_word
        {
            self.validate_slow()?;
        }
        Ok(value)
    }

    fn write(&mut self, addr: Addr, value: u64) -> TxResult<()> {
        if self.dead {
            return Err(RESTART);
        }
        if !self.wrote {
            self.handle_first_write()?;
        }
        self.meter.tick(cost::NOREC_WRITE);
        self.heap.store(addr, value);
        Ok(())
    }

    fn alloc(&mut self, words: u64) -> TxResult<Addr> {
        if self.dead {
            return Err(RESTART);
        }
        self.meter.charge(cost::ALLOC);
        Ok(self.mem.alloc(self.heap, self.tid, words))
    }

    fn free(&mut self, addr: Addr) -> TxResult<()> {
        if self.dead {
            return Err(RESTART);
        }
        self.meter.charge(cost::FREE);
        self.mem.free(addr);
        Ok(())
    }
}

pub(crate) fn run_lazy<T>(
    t: &mut TmThread,
    kind: TxKind,
    body: &mut dyn FnMut(&mut Tx<'_>) -> TxResult<T>,
) -> Result<T, TxFault> {
    let rt = t.rt.clone();
    let heap: &Heap = rt.heap();
    let globals = rt.globals_snapshot();
    let interleave = rt.config().interleave_accesses;
    t.stats.slow_path_entries += 1;
    // The snapshot lives outside the per-attempt context so the context
    // (and with it the `TxCtx` enum moved through `Tx`) stays small, and a
    // restart refreshes only the live lanes in place.
    let mut snap_slot = ClockSnapshot::single(0);
    loop {
        trace::begin(trace::Path::Stm);
        let mut spin = cost::STM_START;
        globals
            .clock
            .begin_into(heap, &mut spin, &mut t.backoff, &mut snap_slot);
        let (probe_addr, probe_word) = globals.clock.read_probe(&snap_slot);
        // Recycled arenas: clearing keeps their allocations warm, so a
        // retry (or the next transaction) logs into already-sized buffers.
        t.logs.read_log.clear();
        t.logs.write_set.clear();
        let mut ctx = LazyCtx {
            heap,
            globals: &globals,
            mem: &mut t.mem,
            tid: t.tid,
            snap: &mut snap_slot,
            probe_addr,
            probe_word,
            read_log: &mut t.logs.read_log,
            write_set: &mut t.logs.write_set,
            backoff: &mut t.backoff,
            dead: false,
            set_htm_lock: false,
            #[cfg(feature = "mutants")]
            skip_reread: rt.mutant_armed(crate::mutants::Mutant::StaleSnapshotReuse),
            meter: Meter::new(interleave),
        };
        ctx.meter.charge(spin);
        let mut tx = Tx::new(TxCtx::Lazy(ctx), kind);
        let outcome = body(&mut tx);
        let (ctx, fault) = tx.into_parts();
        let TxCtx::Lazy(mut ctx) = ctx else { unreachable!() };
        if let Some(fault) = fault {
            // Writes are buffered and the refused one was never logged;
            // discarding the context is the whole teardown.
            debug_assert!(ctx.write_set.is_empty());
            trace::abort();
            t.stats.cycles += ctx.meter.cycles;
            t.mem.rollback(heap, t.tid);
            return Err(fault);
        }
        match outcome {
            Ok(value) => {
                if ctx.commit().is_ok() {
                    trace::commit(trace::Path::Stm);
                    t.stats.cycles += ctx.meter.cycles;
                    t.mem.commit(heap, t.tid);
                    t.stats.slow_path_commits += 1;
                    return Ok(value);
                }
                trace::abort();
                t.stats.cycles += ctx.meter.cycles;
                t.mem.rollback(heap, t.tid);
                t.stats.slow_path_restarts += 1;
            }
            Err(_) => {
                trace::abort();
                t.stats.cycles += ctx.meter.cycles;
                t.mem.rollback(heap, t.tid);
                t.stats.slow_path_restarts += 1;
            }
        }
    }
}

/// The classic lazy NOrec context: value-logged reads, buffered writes.
///
/// Both logs are borrowed from the thread's recycled arenas (cleared by
/// the caller before each attempt), so a retry allocates nothing. The
/// write-set coalesces repeated writes to one address and answers
/// read-after-write in O(1); commit writes back one store per distinct
/// address.
pub(crate) struct LazyCtx<'a> {
    pub(crate) heap: &'a Heap,
    pub(crate) globals: &'a Globals,
    pub(crate) mem: &'a mut TxMem,
    pub(crate) tid: usize,
    /// The transaction's clock snapshot (by reference; see [`EagerCtx::snap`]).
    pub(crate) snap: &'a mut ClockSnapshot,
    /// Per-read validation probe (see [`EagerCtx::probe_addr`]).
    pub(crate) probe_addr: Addr,
    /// The probe word's expected value.
    pub(crate) probe_word: u64,
    pub(crate) read_log: &'a mut LogVec<(Addr, u64)>,
    pub(crate) write_set: &'a mut WriteSet,
    pub(crate) backoff: &'a mut Backoff,
    pub(crate) dead: bool,
    /// Raise `global_htm_lock` around the commit write-back (hybrid lazy
    /// slow path): hardware fast paths must never see a partial write-back.
    pub(crate) set_htm_lock: bool,
    /// Armed `StaleSnapshotReuse` corpus mutant: revalidation refreshes
    /// the clock snapshot but skips the value-based read-log re-read (the
    /// planted bug).
    #[cfg(feature = "mutants")]
    pub(crate) skip_reread: bool,
    pub(crate) meter: Meter,
}

impl LazyCtx<'_> {
    /// True when the `StaleSnapshotReuse` corpus mutant is armed.
    #[inline]
    fn reread_elided(&self) -> bool {
        #[cfg(feature = "mutants")]
        {
            self.skip_reread
        }
        #[cfg(not(feature = "mutants"))]
        {
            false
        }
    }

    /// NOrec's value-based revalidation: loop until the clock is stable
    /// around a full re-read of the read log.
    fn revalidate(&mut self) -> TxResult<()> {
        loop {
            let mut spin = 0;
            // The old snapshot is dead weight here — validation is
            // value-based — so the fresh one lands directly in the slot.
            self.globals
                .clock
                .begin_into(self.heap, &mut spin, self.backoff, self.snap);
            self.meter.charge(
                spin
                    + self.read_log.len() as u64 * cost::NOREC_REVALIDATE_ENTRY
                    + self.globals.clock.validate_cost(self.snap),
            );
            if !self.reread_elided() {
                for &(addr, seen) in self.read_log.as_slice() {
                    if self.heap.load(addr) != seen {
                        self.dead = true;
                        return Err(RESTART);
                    }
                }
            }
            if self.globals.clock.is_valid(self.heap, self.snap) {
                let (addr, word) = self.globals.clock.read_probe(self.snap);
                self.probe_addr = addr;
                self.probe_word = word;
                return Ok(());
            }
        }
    }

    /// The out-of-line half of per-read validation (see
    /// [`EagerCtx::validate_slow`]): probe misses land here. Single
    /// clock: the miss already proves the clock moved, so revalidate
    /// immediately and loop until the refreshed probe holds around the
    /// re-read. Sharded: the full lane compare either proves the
    /// snapshot valid on the spot or drives the same revalidation loop.
    #[cold]
    fn validate_slow(&mut self, addr: Addr, value: &mut u64) -> TxResult<()> {
        if self.globals.clock.probe_conclusive() {
            loop {
                self.revalidate()?;
                *value = self.heap.load(addr);
                if self.heap.load(self.probe_addr) == self.probe_word {
                    return Ok(());
                }
            }
        }
        loop {
            self.meter.charge(self.globals.clock.validate_cost(self.snap));
            if self.globals.clock.is_valid(self.heap, self.snap) {
                return Ok(());
            }
            self.revalidate()?;
            *value = self.heap.load(addr);
        }
    }

    pub(crate) fn commit(&mut self) -> TxResult<()> {
        if self.write_set.is_empty() {
            return Ok(());
        }
        // Enter the write phase at our validated snapshot, revalidating as
        // needed.
        let mut attempt = 0;
        loop {
            self.meter.charge(cost::GLOBAL_RMW);
            if self
                .globals
                .clock
                .try_enter_write_phase(self.heap, self.snap)
            {
                break;
            }
            self.backoff.note_lane_cas_failure();
            self.revalidate()?;
            // The CAS lost to a competing committer: pause before retrying
            // so its release is not immediately re-contended.
            let mut spin = 0;
            self.backoff.pause(attempt, &mut spin);
            self.meter.charge(spin);
            attempt += 1;
        }
        self.meter.charge(
            self.write_set.len() as u64 * cost::NOREC_WRITEBACK_ENTRY + cost::GLOBAL_STORE,
        );
        if self.set_htm_lock {
            self.meter.charge(cost::GLOBAL_STORE);
            self.heap.store(self.globals.global_htm_lock, 1);
        }
        for (addr, value) in self.write_set.iter() {
            self.heap.store(addr, value);
        }
        if self.set_htm_lock {
            self.meter.charge(cost::GLOBAL_STORE);
            self.heap.store(self.globals.global_htm_lock, 0);
        }
        self.globals.clock.publish(self.heap, self.snap, self.tid);
        Ok(())
    }
}

impl TxOps for LazyCtx<'_> {
    fn read(&mut self, addr: Addr) -> TxResult<u64> {
        if self.dead {
            return Err(RESTART);
        }
        self.meter.tick(cost::NOREC_LAZY_READ);
        if let Some(v) = self.write_set.lookup(addr) {
            return Ok(v);
        }
        let mut value = self.heap.load(addr);
        // Re-validate until the clock is quiescent around the read. A
        // probe hit proves quiescence on the single clock; everything
        // else takes the full check out of line.
        if self.heap.load(self.probe_addr) != self.probe_word {
            self.validate_slow(addr, &mut value)?;
        }
        self.read_log.push((addr, value));
        Ok(value)
    }

    fn write(&mut self, addr: Addr, value: u64) -> TxResult<()> {
        if self.dead {
            return Err(RESTART);
        }
        self.meter.tick(cost::NOREC_LAZY_WRITE);
        self.write_set.insert(addr, value);
        Ok(())
    }

    fn alloc(&mut self, words: u64) -> TxResult<Addr> {
        if self.dead {
            return Err(RESTART);
        }
        self.meter.charge(cost::ALLOC);
        Ok(self.mem.alloc(self.heap, self.tid, words))
    }

    fn free(&mut self, addr: Addr) -> TxResult<()> {
        if self.dead {
            return Err(RESTART);
        }
        self.meter.charge(cost::FREE);
        self.mem.free(addr);
        Ok(())
    }
}
