//! Property tests for the simulated HTM: single-thread transactions agree
//! with a sequential model, aborts leave no trace, and capacity accounting
//! is exact.
//!
//! The generators run on the in-tree seeded RNG (no registry access
//! needed). Each case is derived entirely from one `u64` seed; on failure
//! the harness prints that seed, and seeds recorded in
//! `proptest-regressions/proptest_htm.txt` are replayed before the sweep.

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sim_htm::{AbortCode, Htm, HtmConfig};
use sim_mem::{Heap, HeapConfig, WORDS_PER_LINE};

/// Replays committed regression seeds, then sweeps `cases` fresh seeds.
/// Prints the failing seed so the case can be replayed in isolation.
fn sweep(name: &str, regressions: &str, cases: u64, case: impl Fn(u64) + std::panic::RefUnwindSafe) {
    let fresh = (0..cases).map(|i| 0x9e3779b97f4a7c15u64.wrapping_mul(i + 1));
    for seed in regression_seeds(regressions).into_iter().chain(fresh) {
        if let Err(payload) = std::panic::catch_unwind(|| case(seed)) {
            eprintln!("property '{name}' failed; replay with seed {seed:#x}");
            std::panic::resume_unwind(payload);
        }
    }
}

/// Parses `seed = 0x...` lines (comments and blanks ignored).
fn regression_seeds(file: &str) -> Vec<u64> {
    file.lines()
        .filter_map(|l| l.trim().strip_prefix("seed = "))
        .map(|s| {
            let s = s.trim();
            u64::from_str_radix(s.trim_start_matches("0x"), 16).expect("bad regression seed")
        })
        .collect()
}

const REGRESSIONS: &str = include_str!("../../../proptest-regressions/proptest_htm.txt");

#[derive(Clone, Debug)]
enum TxOp {
    Read(u64),
    Write(u64, u64),
}

#[derive(Clone, Debug)]
enum Step {
    /// A transaction made of the contained ops, then commit.
    Tx(Vec<TxOp>),
    /// A transaction that runs its ops and then explicitly aborts.
    AbortedTx(Vec<TxOp>),
    /// A coherent (non-transactional) store.
    Store(u64, u64),
}

const SLOTS: u64 = 24;

fn gen_ops(rng: &mut SmallRng) -> Vec<TxOp> {
    (0..rng.gen_range(0..12))
        .map(|_| {
            if rng.gen_bool(0.5) {
                TxOp::Read(rng.gen_range(0..SLOTS))
            } else {
                TxOp::Write(rng.gen_range(0..SLOTS), rng.gen())
            }
        })
        .collect()
}

fn gen_steps(rng: &mut SmallRng) -> Vec<Step> {
    (0..rng.gen_range(0..40))
        .map(|_| match rng.gen_range(0u32..3) {
            0 => Step::Tx(gen_ops(rng)),
            1 => Step::AbortedTx(gen_ops(rng)),
            _ => Step::Store(rng.gen_range(0..SLOTS), rng.gen()),
        })
        .collect()
}

/// Sequential execution of transactions, explicit aborts, and coherent
/// stores matches a plain map model: committed writes land, aborted
/// writes vanish, reads see the model.
#[test]
fn single_thread_matches_model() {
    sweep("single_thread_matches_model", REGRESSIONS, 64, |seed| {
        let mut rng = SmallRng::seed_from_u64(seed);
        let script = gen_steps(&mut rng);
        let heap = Arc::new(Heap::new(HeapConfig { words: 1 << 12 }));
        let htm = Htm::new(Arc::clone(&heap), HtmConfig::default());
        let base = heap.allocator().alloc(0, SLOTS).unwrap();
        let slot = |i: u64| base.offset(i);
        let mut thread = htm.register(0);
        let mut model: HashMap<u64, u64> = HashMap::new();

        for step in script {
            match step {
                Step::Tx(ops) => {
                    thread.begin().unwrap();
                    let mut staged = model.clone();
                    for op in &ops {
                        match *op {
                            TxOp::Read(a) => {
                                let got = thread.read(slot(a)).unwrap();
                                assert_eq!(got, staged.get(&a).copied().unwrap_or(0));
                            }
                            TxOp::Write(a, v) => {
                                thread.write(slot(a), v).unwrap();
                                staged.insert(a, v);
                            }
                        }
                    }
                    thread.commit().unwrap();
                    model = staged;
                }
                Step::AbortedTx(ops) => {
                    thread.begin().unwrap();
                    for op in &ops {
                        match *op {
                            TxOp::Read(a) => {
                                thread.read(slot(a)).unwrap();
                            }
                            TxOp::Write(a, v) => {
                                thread.write(slot(a), v).unwrap();
                            }
                        }
                    }
                    let abort = thread.abort(9);
                    assert_eq!(abort.code, AbortCode::Explicit { user_code: 9 });
                }
                Step::Store(a, v) => {
                    heap.store(slot(a), v);
                    model.insert(a, v);
                }
            }
        }
        for a in 0..SLOTS {
            assert_eq!(heap.load(slot(a)), model.get(&a).copied().unwrap_or(0));
        }
    });
}

/// Write-set capacity counts distinct lines exactly: a transaction
/// writing `k` distinct lines commits iff `k <= max_write_lines`.
#[test]
fn write_capacity_is_exact() {
    for lines in 1usize..12 {
        let config = HtmConfig {
            max_write_lines: 6,
            topology: sim_htm::Topology::no_smt(8),
            ..HtmConfig::default()
        };
        let heap = Arc::new(Heap::new(HeapConfig { words: 1 << 12 }));
        let htm = Htm::new(Arc::clone(&heap), config);
        let base = heap.allocator().alloc(0, 16 * WORDS_PER_LINE).unwrap();
        let mut thread = htm.register(0);
        thread.begin().unwrap();
        let mut failed = None;
        for i in 0..lines {
            // One word per line: distinct lines by construction.
            if let Err(e) = thread.write(base.offset(i as u64 * WORDS_PER_LINE), 1) {
                failed = Some(e);
                break;
            }
        }
        if lines <= 6 {
            assert!(failed.is_none());
            thread.commit().unwrap();
        } else {
            let e = failed.expect("overflow must abort");
            assert_eq!(e.code, AbortCode::Capacity { write_set: true });
        }
    }
}

/// Two words written in one transaction are always observed together
/// by coherent loads, no matter where a reader samples.
#[test]
fn commits_publish_atomically() {
    sweep("commits_publish_atomically", "", 32, |seed| {
        let value = 1 + SmallRng::seed_from_u64(seed).gen_range(0u64..999);
        let heap = Arc::new(Heap::new(HeapConfig { words: 1 << 12 }));
        let htm = Htm::new(Arc::clone(&heap), HtmConfig::default());
        let a = heap.allocator().alloc(0, WORDS_PER_LINE).unwrap();
        let b = heap.allocator().alloc(0, WORDS_PER_LINE).unwrap();
        let mut thread = htm.register(0);
        thread.begin().unwrap();
        thread.write(a, value).unwrap();
        thread.write(b, value).unwrap();
        thread.commit().unwrap();
        assert_eq!(heap.load(a), heap.load(b));
    });
}
