//! Transactional event tracing for the opacity checker (`tm-check`).
//!
//! When a sink is installed on a thread, every transactional operation of
//! that thread is recorded as an [`Event`]: attempt begin, each successful
//! read (with the value returned to the body), each accepted write,
//! commit, abort. Under the deterministic scheduler
//! ([`sim_htm::sched`]) exactly one thread runs at a time and commits are
//! recorded with no yield point between a commit's publication and its
//! event, so the global event order *is* the real-time order — which is
//! what lets `tm-check` verify opacity from the log alone.
//!
//! The sink machinery is gated behind the `deterministic` cargo feature
//! (enabled by `tm-check` and the workspace test builds): with the
//! feature on but no sink installed the hooks are one thread-local read;
//! without the feature they are empty inline functions the optimizer
//! erases, and [`install`] is inert.

use std::sync::Arc;

use sim_mem::Addr;

/// Which execution path an attempt ran on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Path {
    /// Uninstrumented hardware transaction.
    Fast,
    /// Pure software path (NOrec, TL2).
    Stm,
    /// RH NOrec's mixed slow path (prefix/software/postfix).
    Mixed,
    /// Lock Elision's serialized lock fallback.
    Serial,
}

/// One transactional event, as observed by the body.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// An attempt started.
    Begin {
        /// The path the attempt starts on.
        path: Path,
    },
    /// A read returned `value` to the transaction body.
    Read {
        /// Heap address read (word form).
        addr: u64,
        /// Value the body observed.
        value: u64,
    },
    /// A write of `value` was accepted from the body.
    Write {
        /// Heap address written (word form).
        addr: u64,
        /// Value the body wrote.
        value: u64,
    },
    /// The attempt committed. Recorded at the point the commit became
    /// visible to other committable transactions (no yield point in
    /// between), so commit-event order equals serialization order.
    Commit {
        /// The path the attempt committed on.
        path: Path,
    },
    /// The attempt aborted; a restart or fallback follows.
    Abort,
}

/// One entry of the global history: which virtual thread, what happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Virtual thread id (the caller of [`install`] chooses it).
    pub vtid: usize,
    /// What happened.
    pub kind: EventKind,
}

/// Receives events from instrumented threads. Implementations must be
/// cheap: the recording thread holds the virtual CPU while recording.
pub trait TraceSink: Send + Sync {
    /// Records one event.
    fn record(&self, event: Event);
}

#[cfg(feature = "deterministic")]
thread_local! {
    static SINK: std::cell::RefCell<Option<(Arc<dyn TraceSink>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// Installs `sink` as this thread's event recorder, tagging every event
/// with `vtid`. Replaces any previous sink.
///
/// Without the `deterministic` feature the hooks are compiled out and
/// this is a no-op: nothing will ever be recorded.
pub fn install(sink: Arc<dyn TraceSink>, vtid: usize) {
    #[cfg(feature = "deterministic")]
    SINK.with(|s| *s.borrow_mut() = Some((sink, vtid)));
    #[cfg(not(feature = "deterministic"))]
    let _ = (sink, vtid);
}

/// Removes this thread's event recorder.
pub fn uninstall() {
    #[cfg(feature = "deterministic")]
    SINK.with(|s| *s.borrow_mut() = None);
}

/// Whether a sink is installed on this thread. Always `false` without
/// the `deterministic` feature.
#[inline]
pub fn enabled() -> bool {
    #[cfg(feature = "deterministic")]
    return SINK.with(|s| s.borrow().is_some());
    #[cfg(not(feature = "deterministic"))]
    false
}

#[cfg(feature = "deterministic")]
#[inline]
pub(crate) fn emit(kind: EventKind) {
    SINK.with(|s| {
        if let Some((sink, vtid)) = &*s.borrow() {
            sink.record(Event { vtid: *vtid, kind });
        }
    });
}

#[cfg(not(feature = "deterministic"))]
#[inline(always)]
pub(crate) fn emit(kind: EventKind) {
    let _ = kind;
}

#[inline]
pub(crate) fn begin(path: Path) {
    emit(EventKind::Begin { path });
}

#[inline]
pub(crate) fn read(addr: Addr, value: u64) {
    emit(EventKind::Read { addr: addr.to_word(), value });
}

#[inline]
pub(crate) fn write(addr: Addr, value: u64) {
    emit(EventKind::Write { addr: addr.to_word(), value });
}

#[inline]
pub(crate) fn commit(path: Path) {
    emit(EventKind::Commit { path });
}

#[inline]
pub(crate) fn abort() {
    emit(EventKind::Abort);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    struct VecSink(Mutex<Vec<Event>>);
    impl TraceSink for VecSink {
        fn record(&self, event: Event) {
            self.0.lock().unwrap().push(event);
        }
    }

    #[test]
    fn events_flow_to_the_installed_sink_and_stop_after_uninstall() {
        assert!(!enabled());
        emit(EventKind::Abort); // No sink: dropped silently.

        let sink = Arc::new(VecSink(Mutex::new(Vec::new())));
        install(Arc::clone(&sink) as Arc<dyn TraceSink>, 7);
        assert!(enabled());
        begin(Path::Stm);
        commit(Path::Stm);
        uninstall();
        abort(); // After uninstall: dropped.

        let events = sink.0.lock().unwrap();
        assert_eq!(
            *events,
            vec![
                Event { vtid: 7, kind: EventKind::Begin { path: Path::Stm } },
                Event { vtid: 7, kind: EventKind::Commit { path: Path::Stm } },
            ]
        );
    }
}
