//! Figure definitions: which workloads, algorithms and thread counts make
//! up each figure of the paper, and the ablation grid.

use std::time::Duration;

use rh_norec::Algorithm;
use sim_mem::Heap;
use tm_workloads::rbtree_bench::{RbTreeBench, RbTreeBenchConfig};
use tm_workloads::stamp::{
    Genome, GenomeConfig, Intruder, IntruderConfig, Kmeans, KmeansConfig, Labyrinth,
    LabyrinthConfig, Ssca2, Ssca2Config, Vacation, VacationConfig, Yada, YadaConfig,
};
use tm_workloads::Workload;

use crate::driver::{run_cell, CellConfig, CellResult};
use crate::ledger;
use crate::report;

/// How large to run: `Paper` matches the paper's parameters, `Quick`
/// shrinks sizes and intervals for CI-grade runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// The paper's workload sizes; ~10× longer intervals.
    Paper,
    /// Scaled-down sizes for fast runs.
    Quick,
}

impl Scale {
    fn duration(self) -> Duration {
        match self {
            Scale::Paper => Duration::from_millis(1000),
            Scale::Quick => Duration::from_millis(150),
        }
    }

    fn rbtree_size(self) -> u64 {
        match self {
            Scale::Paper => 10_000,
            Scale::Quick => 1_000,
        }
    }

    fn vacation_relations(self) -> u64 {
        match self {
            Scale::Paper => 4096,
            Scale::Quick => 512,
        }
    }
}

/// Thread counts swept in every figure (the paper's x axis is 1–16).
pub fn thread_counts(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Paper => vec![1, 2, 4, 8, 12, 16],
        Scale::Quick => vec![1, 2, 4, 8, 16],
    }
}

/// Command-line overrides applied on top of the scale defaults.
#[derive(Clone, Debug, Default)]
pub struct Overrides {
    /// Replacement thread-count sweep (`--threads 1,4,16`).
    pub threads: Option<Vec<usize>>,
    /// Replacement per-cell measurement interval (`--duration-ms 500`).
    pub duration: Option<Duration>,
}

impl Overrides {
    fn threads(&self, scale: Scale) -> Vec<usize> {
        self.threads.clone().unwrap_or_else(|| thread_counts(scale))
    }

    fn duration(&self, scale: Scale) -> Duration {
        self.duration.unwrap_or_else(|| scale.duration())
    }
}

/// Boxed workload constructor: one fresh instance per cell.
pub type WorkloadBuilder = Box<dyn Fn(&Heap) -> Box<dyn Workload>>;

/// A workload constructor plus its display name.
pub struct BenchDef {
    /// Sub-benchmark label as it appears in the paper's figure.
    pub label: String,
    /// Constructor (one fresh instance per cell).
    pub build: WorkloadBuilder,
}

impl std::fmt::Debug for BenchDef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BenchDef").field("label", &self.label).finish()
    }
}

/// The three RBTree columns of Figure 4.
pub fn figure4(scale: Scale) -> Vec<BenchDef> {
    [4u32, 10, 40]
        .into_iter()
        .map(|pct| {
            let size = scale.rbtree_size();
            BenchDef {
                label: format!("{size} Nodes RB-Tree, {pct}% mutations"),
                build: Box::new(move |heap| {
                    Box::new(RbTreeBench::new(
                        heap,
                        RbTreeBenchConfig { initial_size: size, mutation_pct: pct },
                    ))
                }),
            }
        })
        .collect()
}

/// The three STAMP columns of Figure 5: Vacation-Low, Intruder, Genome.
pub fn figure5(scale: Scale) -> Vec<BenchDef> {
    let relations = scale.vacation_relations();
    vec![
        BenchDef {
            label: format!("STAMP - Vacation Low (r={relations})"),
            build: Box::new(move |heap| {
                Box::new(Vacation::new(heap, VacationConfig::low(relations)))
            }),
        },
        BenchDef {
            label: "STAMP - Intruder".into(),
            build: Box::new(|heap| Box::new(Intruder::new(heap, IntruderConfig::default()))),
        },
        BenchDef {
            label: "STAMP - Genome".into(),
            build: Box::new(|heap| Box::new(Genome::new(heap, GenomeConfig::default(), 77))),
        },
    ]
}

/// The three STAMP columns of Figure 6: Vacation-High, SSCA2, Yada.
pub fn figure6(scale: Scale) -> Vec<BenchDef> {
    let relations = scale.vacation_relations();
    vec![
        BenchDef {
            label: format!("STAMP - Vacation High (r={relations})"),
            build: Box::new(move |heap| {
                Box::new(Vacation::new(heap, VacationConfig::high(relations)))
            }),
        },
        BenchDef {
            label: "STAMP - SSCA2".into(),
            build: Box::new(|heap| Box::new(Ssca2::new(heap, Ssca2Config::default(), 78))),
        },
        BenchDef {
            label: "STAMP - Yada".into(),
            build: Box::new(|heap| Box::new(Yada::new(heap, YadaConfig::default()))),
        },
    ]
}

/// The paper-adjacent extras (Kmeans, Labyrinth — "similar to SSCA2").
pub fn extras(_scale: Scale) -> Vec<BenchDef> {
    vec![
        BenchDef {
            label: "STAMP - Kmeans".into(),
            build: Box::new(|heap| Box::new(Kmeans::new(heap, KmeansConfig::default(), 79))),
        },
        BenchDef {
            label: "STAMP - Labyrinth".into(),
            build: Box::new(|heap| Box::new(Labyrinth::new(heap, LabyrinthConfig::default()))),
        },
    ]
}

/// One figure cell grid: every algorithm × every thread count.
pub fn run_figure(
    name: &str,
    benches: &[BenchDef],
    algorithms: &[Algorithm],
    scale: Scale,
    csv: bool,
    overrides: &Overrides,
) {
    let threads = overrides.threads(scale);
    let duration = overrides.duration(scale);
    for bench in benches {
        let mut grid: Vec<(Algorithm, Vec<CellResult>)> = Vec::new();
        for &alg in algorithms {
            let mut row = Vec::new();
            for &n in &threads {
                let config = CellConfig {
                    duration,
                    ..CellConfig::new(alg, n, duration)
                };
                row.push(run_cell(&*bench.build, &config));
            }
            grid.push((alg, row));
        }
        if csv {
            report::print_csv(name, &bench.label, &threads, &grid);
        } else {
            report::print_figure(name, &bench.label, &threads, &grid);
        }
    }
}

/// The ablation grid of DESIGN.md: design choices the paper calls out,
/// including the single-vs-sharded commit-clock comparison (each clocked
/// engine at `clock_shards = 1` and `= 4`, same workload). Besides the
/// table, the grid lands in `ABLATE.json` via the shared [`crate::ledger`]
/// emitter so the rows stay machine-readable.
pub fn run_ablations(scale: Scale) {
    let threads = 8;
    let duration = scale.duration();
    let size = scale.rbtree_size();
    let build: WorkloadBuilder = Box::new(move |heap| {
        Box::new(RbTreeBench::new(
            heap,
            RbTreeBenchConfig { initial_size: size, mutation_pct: 10 },
        ))
    });

    println!("== Ablations (RBTree {size} nodes, 10% mutations, {threads} threads) ==");
    type Override = fn(rh_norec::TmConfigBuilder) -> rh_norec::TmConfigBuilder;
    let cases: Vec<(&str, Algorithm, Option<Override>)> = vec![
        ("RH-NOrec (prefix+postfix)", Algorithm::RhNorec, None),
        ("RH-NOrec postfix-only (Alg.2)", Algorithm::RhNorecPostfixOnly, None),
        ("RH-NOrec fixed prefix length", Algorithm::RhNorec,
            Some(|b| b.adaptive_prefix(false))),
        ("RH-NOrec small-HTM retries=4", Algorithm::RhNorec,
            Some(|b| b.small_htm_retries(4))),
        ("RH-NOrec fast-path retries=1", Algorithm::RhNorec,
            Some(|b| b.fast_path_retries(1))),
        ("RH-NOrec @ clock_shards=4", Algorithm::RhNorec,
            Some(|b| b.clock_shards(4))),
        ("HY-NOrec (eager slow path)", Algorithm::HybridNorec, None),
        ("HY-NOrec @ clock_shards=4", Algorithm::HybridNorec,
            Some(|b| b.clock_shards(4))),
        ("HY-NOrec (lazy slow path)", Algorithm::HybridNorecLazy, None),
        ("NOrec eager", Algorithm::Norec, None),
        ("NOrec eager @ clock_shards=4", Algorithm::Norec,
            Some(|b| b.clock_shards(4))),
        ("NOrec lazy", Algorithm::NorecLazy, None),
    ];
    println!(
        "{:<34} {:>12} {:>10} {:>10} {:>9} {:>8} {:>8}",
        "variant", "ops/s", "conf/op", "cap/op", "slow%", "prefix%", "postfix%"
    );
    let mut ledger_rows: Vec<Vec<(&str, ledger::Value)>> = Vec::new();
    for (label, alg, overrides) in cases {
        let config = CellConfig {
            duration,
            tm_overrides: overrides,
            ..CellConfig::new(alg, threads, duration)
        };
        let r = run_cell(&*build, &config);
        println!(
            "{:<34} {:>12.0} {:>10.4} {:>10.4} {:>8.1}% {:>7.0}% {:>7.0}%",
            label,
            r.throughput(),
            r.conflicts_per_op(),
            r.capacity_per_op(),
            r.tm.slow_path_ratio() * 100.0,
            r.tm.prefix_success_ratio() * 100.0,
            r.tm.postfix_success_ratio() * 100.0,
        );
        ledger_rows.push(vec![
            ("variant", ledger::Value::Str(label.to_string())),
            ("ops_per_sec", ledger::Value::Num(r.throughput(), 0)),
            ("conflicts_per_op", ledger::Value::Num(r.conflicts_per_op(), 4)),
            ("capacity_per_op", ledger::Value::Num(r.capacity_per_op(), 4)),
            ("slow_path_pct", ledger::Value::Num(r.tm.slow_path_ratio() * 100.0, 1)),
        ]);
    }

    let mut doc = String::new();
    doc.push_str("{\n  \"benchmark\": \"ablate\",\n");
    doc.push_str(&format!(
        "  \"workload\": \"{}\",\n",
        ledger::escape(&format!("RBTree {size} nodes, 10% mutations, {threads} threads"))
    ));
    doc.push_str("  \"rows\": ");
    doc.push_str(&ledger::rows_array(&ledger_rows, "    ", "  "));
    doc.push_str("\n}\n");
    let path = "ABLATE.json";
    match std::fs::write(path, &doc) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

/// The paper's headline claims (§1.3, §3.5): RH vs HY speedups on the
/// RBTree, and the HTM-conflict reduction factors.
pub fn run_summary(scale: Scale) {
    let threads = 16;
    let duration = scale.duration();
    println!("== Headline summary: RH-NOrec vs HY-NOrec at {threads} threads ==");
    println!(
        "{:<28} {:>13} {:>13} {:>9} {:>17}",
        "workload", "HY ops/s", "RH ops/s", "speedup", "conflict-reduction"
    );
    let mut benches = figure4(scale);
    benches.extend(figure5(scale));
    for bench in &benches {
        let mut results = Vec::new();
        for alg in [Algorithm::HybridNorec, Algorithm::RhNorec] {
            let config = CellConfig {
                duration,
                ..CellConfig::new(alg, threads, duration)
            };
            results.push(run_cell(&*bench.build, &config));
        }
        let (hy, rh) = (results[0], results[1]);
        let speedup = rh.throughput() / hy.throughput().max(1.0);
        let conflict_reduction = if rh.conflicts_per_op() > 0.0 {
            hy.conflicts_per_op() / rh.conflicts_per_op()
        } else if hy.conflicts_per_op() > 0.0 {
            f64::INFINITY
        } else {
            1.0
        };
        println!(
            "{:<28} {:>13.0} {:>13.0} {:>8.2}x {:>16.1}x",
            bench.label.chars().take(28).collect::<String>(),
            hy.throughput(),
            rh.throughput(),
            speedup,
            conflict_reduction,
        );
    }
}
