//! The sharded transactional key-value store.
//!
//! Layout: `shards` hash shards, each an array of `buckets_per_shard`
//! fixed-capacity buckets, each bucket `slots_per_bucket` slots of two
//! simulated-heap words — `[key, value]`, with key word `0` meaning
//! empty. Keys are therefore nonzero `u64`s and values are `u64`s; the
//! bucket for a key is fixed by its hash, so a store that held the full
//! working set once can never overflow under churn on that same key set
//! (deletes punch holes, re-inserts refill them).
//!
//! Every operation runs as **one transaction** on the typed
//! [`Session`] API — the store never touches the heap outside a
//! transaction except in the explicitly single-threaded
//! [`KvStore::load`] initializer and the quiesced-state inspection
//! helpers ([`KvStore::sum_direct`], [`KvStore::snapshot_words`]).

use std::collections::HashMap;
use std::fmt;

use rh_norec::prelude::{Session, TxFault};
use rh_norec::{Tx, TxResult};
use sim_mem::{Addr, Heap, MemError};

/// Shape of a [`KvStore`]: shard count and per-shard bucket geometry.
#[derive(Clone, Copy, Debug)]
pub struct KvConfig {
    /// Hash shards (the service tier default is 16).
    pub shards: usize,
    /// Buckets per shard.
    pub buckets_per_shard: usize,
    /// Slots per bucket (the fixed bucket capacity).
    pub slots_per_bucket: usize,
}

impl Default for KvConfig {
    fn default() -> Self {
        KvConfig { shards: 16, buckets_per_shard: 16, slots_per_bucket: 8 }
    }
}

impl KvConfig {
    /// A tiny geometry for checker workloads: few slots, maximum
    /// collision pressure.
    pub fn tiny(shards: usize) -> Self {
        KvConfig { shards, buckets_per_shard: 2, slots_per_bucket: 4 }
    }

    /// Total slot capacity.
    pub fn capacity(&self) -> usize {
        self.shards * self.buckets_per_shard * self.slots_per_bucket
    }

    /// Geometry guaranteed to hold keys `1..=keyspace` regardless of
    /// hash skew: slots per bucket is the *actual* maximum bucket load
    /// of that key set under the store's own hash, plus one spare.
    /// Buckets are fixed per key, so a store loaded with the full key
    /// set once can never overflow under churn on the same keys.
    pub fn for_keyspace(keyspace: u64) -> Self {
        let mut config = KvConfig::default();
        let mut loads = vec![0u64; config.shards * config.buckets_per_shard];
        for key in 1..=keyspace {
            let h = mix(key);
            let shard = (h % config.shards as u64) as usize;
            let bucket = ((h >> 32) % config.buckets_per_shard as u64) as usize;
            loads[shard * config.buckets_per_shard + bucket] += 1;
        }
        let max_load = loads.iter().copied().max().unwrap_or(0).max(1) as usize;
        config.slots_per_bucket = max_load + 1;
        config
    }
}

/// Failures surfaced by store operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KvError {
    /// The transaction tripped an engine-level fault.
    Tx(TxFault),
    /// Insert found the key's fixed bucket full.
    BucketFull {
        /// The key whose bucket had no free slot.
        key: u64,
    },
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::Tx(fault) => write!(f, "transaction fault: {fault}"),
            KvError::BucketFull { key } => write!(f, "bucket full inserting key {key}"),
        }
    }
}

impl std::error::Error for KvError {}

impl From<TxFault> for KvError {
    fn from(fault: TxFault) -> Self {
        KvError::Tx(fault)
    }
}

/// Result type of store operations.
pub type KvResult<T> = Result<T, KvError>;

/// Outcome of a [`KvStore::transfer`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransferOutcome {
    /// The full amount moved from source to destination.
    Done,
    /// The source balance was below the amount; nothing moved.
    InsufficientFunds,
    /// Source or destination key was absent; nothing moved.
    MissingKey,
}

/// The sharded store handle. Cheap host-side metadata (the bucket base
/// addresses); all key/value state lives in the simulated heap, so one
/// handle can be shared by reference across worker threads.
pub struct KvStore {
    config: KvConfig,
    /// `buckets[shard * buckets_per_shard + bucket]` — payload base of
    /// that bucket's slot array.
    buckets: Vec<Addr>,
}

/// SplitMix64 finalizer — scatters keys across shards and buckets.
fn mix(key: u64) -> u64 {
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl KvStore {
    /// Allocates the store's bucket arrays on `heap`. Each bucket is its
    /// own allocation so distinct buckets land on distinct cache lines —
    /// the simulated HTM detects conflicts at line granularity, and a
    /// single flat array would manufacture false conflicts between
    /// unrelated keys.
    ///
    /// # Errors
    ///
    /// Returns the allocator's [`MemError`] when the heap is too small.
    ///
    /// # Panics
    ///
    /// Panics if any `config` dimension is zero.
    pub fn create(heap: &Heap, config: KvConfig) -> Result<KvStore, MemError> {
        assert!(
            config.shards > 0 && config.buckets_per_shard > 0 && config.slots_per_bucket > 0,
            "KvConfig dimensions must be nonzero"
        );
        let alloc = heap.allocator();
        let total = config.shards * config.buckets_per_shard;
        let words = 2 * config.slots_per_bucket as u64;
        let buckets = (0..total).map(|_| alloc.alloc(0, words)).collect::<Result<_, _>>()?;
        Ok(KvStore { config, buckets })
    }

    /// The store's geometry.
    pub fn config(&self) -> &KvConfig {
        &self.config
    }

    /// Base address of `key`'s fixed bucket.
    pub(crate) fn bucket_of(&self, key: u64) -> Addr {
        debug_assert_ne!(key, 0, "key 0 is the empty-slot sentinel");
        let h = mix(key);
        let shard = (h as usize) % self.config.shards;
        let bucket = ((h >> 32) as usize) % self.config.buckets_per_shard;
        self.buckets[shard * self.config.buckets_per_shard + bucket]
    }

    /// Key/value word addresses of slot `i` in the bucket at `base`.
    pub(crate) fn slot(base: Addr, i: usize) -> (Addr, Addr) {
        let k = base.offset(2 * i as u64);
        (k, k.offset(1))
    }

    /// Transactionally scans `key`'s bucket: returns the *key-word*
    /// address of the occupied slot when present (value word is one
    /// word up), else the key-word address of the first free slot.
    /// Deletes punch holes, so the scan never stops early.
    fn probe(&self, tx: &mut Tx<'_>, key: u64) -> TxResult<Result<Addr, Option<Addr>>> {
        let base = self.bucket_of(key);
        let mut free = None;
        for i in 0..self.config.slots_per_bucket {
            let (k_addr, _) = Self::slot(base, i);
            let k = tx.read(k_addr)?;
            if k == key {
                return Ok(Ok(k_addr));
            }
            if k == 0 && free.is_none() {
                free = Some(k_addr);
            }
        }
        Ok(Err(free))
    }

    /// Reads `key` in one read-only transaction.
    ///
    /// # Errors
    ///
    /// [`KvError::Tx`] on an engine fault.
    pub fn get(&self, session: &mut Session, key: u64) -> KvResult<Option<u64>> {
        let value = session.run_read(|tx| match self.probe(tx, key)? {
            Ok(k_addr) => Ok(Some(tx.read(k_addr.offset(1))?)),
            Err(_) => Ok(None),
        })?;
        Ok(value)
    }

    /// Inserts or overwrites `key` in one transaction; returns the
    /// previous value.
    ///
    /// # Errors
    ///
    /// [`KvError::BucketFull`] when the key is absent and its fixed
    /// bucket has no free slot; [`KvError::Tx`] on an engine fault.
    pub fn put(&self, session: &mut Session, key: u64, value: u64) -> KvResult<Option<u64>> {
        let outcome = session.run(|tx| match self.probe(tx, key)? {
            Ok(k_addr) => {
                let v_addr = k_addr.offset(1);
                let old = tx.read(v_addr)?;
                tx.write(v_addr, value)?;
                Ok(Some(Some(old)))
            }
            Err(Some(k_addr)) => {
                tx.write(k_addr, key)?;
                tx.write(k_addr.offset(1), value)?;
                Ok(Some(None))
            }
            Err(None) => Ok(None),
        })?;
        outcome.ok_or(KvError::BucketFull { key })
    }

    /// Removes `key` in one transaction; returns the removed value.
    ///
    /// # Errors
    ///
    /// [`KvError::Tx`] on an engine fault.
    pub fn delete(&self, session: &mut Session, key: u64) -> KvResult<Option<u64>> {
        let removed = session.run(|tx| match self.probe(tx, key)? {
            Ok(k_addr) => {
                let old = tx.read(k_addr.offset(1))?;
                // Clearing the key word is what frees the slot; the stale
                // value word is unreachable until a fresh insert
                // overwrites both.
                tx.write(k_addr, 0)?;
                Ok(Some(old))
            }
            Err(_) => Ok(None),
        })?;
        Ok(removed)
    }

    /// Counts and sums all live keys in `lo..=hi`, atomically, in one
    /// read-only transaction. The store is hash-ordered, so this scans
    /// every slot — deliberately the large-read-set operation of the
    /// service mix (it is what pushes an HTM prefix past capacity and
    /// into the slow path).
    ///
    /// # Errors
    ///
    /// [`KvError::Tx`] on an engine fault.
    pub fn range_sum(&self, session: &mut Session, lo: u64, hi: u64) -> KvResult<(u64, u64)> {
        let result = session.run_read(|tx| {
            let mut count = 0u64;
            let mut sum = 0u64;
            for base in &self.buckets {
                for i in 0..self.config.slots_per_bucket {
                    let (k_addr, v_addr) = Self::slot(*base, i);
                    let k = tx.read(k_addr)?;
                    if k != 0 && lo <= k && k <= hi {
                        count += 1;
                        sum = sum.wrapping_add(tx.read(v_addr)?);
                    }
                }
            }
            Ok((count, sum))
        })?;
        Ok(result)
    }

    /// Moves `amount` from `src` to `dst` in one transaction.
    ///
    /// # Errors
    ///
    /// [`KvError::Tx`] on an engine fault.
    pub fn transfer(
        &self,
        session: &mut Session,
        src: u64,
        dst: u64,
        amount: u64,
    ) -> KvResult<TransferOutcome> {
        if src == dst {
            return Ok(TransferOutcome::Done);
        }
        // MUTANT (`Mutant::KvStaleTransferCredit`): probe the destination
        // balance in a separate earlier read-only transaction, then
        // blind-write `probed + amount` inside the transfer transaction.
        // A concurrent credit or debit of `dst` landing between the probe
        // and the commit is silently lost — conservation of the
        // transferred balance breaks, which the harness's post-run sum
        // check turns into a panic.
        #[cfg(feature = "mutants")]
        if session
            .runtime()
            .mutant_armed(rh_norec::mutants::Mutant::KvStaleTransferCredit)
        {
            return self.transfer_stale_credit(session, src, dst, amount);
        }
        let outcome = session.run(|tx| {
            let src_val = match self.probe(tx, src)? {
                Ok(k_addr) => k_addr.offset(1),
                Err(_) => return Ok(TransferOutcome::MissingKey),
            };
            let dst_val = match self.probe(tx, dst)? {
                Ok(k_addr) => k_addr.offset(1),
                Err(_) => return Ok(TransferOutcome::MissingKey),
            };
            let balance = tx.read(src_val)?;
            if balance < amount {
                return Ok(TransferOutcome::InsufficientFunds);
            }
            tx.write(src_val, balance - amount)?;
            let dst_balance = tx.read(dst_val)?;
            tx.write(dst_val, dst_balance + amount)?;
            Ok(TransferOutcome::Done)
        })?;
        Ok(outcome)
    }

    /// The planted bug behind `Mutant::KvStaleTransferCredit`: the credit
    /// value comes from a probe transaction that already committed, so
    /// the transfer's write set is consistent but its *value* is stale.
    #[cfg(feature = "mutants")]
    fn transfer_stale_credit(
        &self,
        session: &mut Session,
        src: u64,
        dst: u64,
        amount: u64,
    ) -> KvResult<TransferOutcome> {
        let probed = session.run_read(|tx| match self.probe(tx, dst)? {
            Ok(k_addr) => Ok(Some((k_addr.offset(1), tx.read(k_addr.offset(1))?))),
            Err(_) => Ok(None),
        })?;
        let Some((dst_val, stale_balance)) = probed else {
            return Ok(TransferOutcome::MissingKey);
        };
        let outcome = session.run(|tx| {
            let src_val = match self.probe(tx, src)? {
                Ok(k_addr) => k_addr.offset(1),
                Err(_) => return Ok(TransferOutcome::MissingKey),
            };
            let balance = tx.read(src_val)?;
            if balance < amount {
                return Ok(TransferOutcome::InsufficientFunds);
            }
            tx.write(src_val, balance - amount)?;
            // BUG: blind write from the stale probe instead of
            // read-modify-write inside this transaction.
            tx.write(dst_val, stale_balance + amount)?;
            Ok(TransferOutcome::Done)
        })?;
        Ok(outcome)
    }

    /// Single-threaded initializer: inserts `key -> value` with plain
    /// heap stores, bypassing the TM. Only valid before any concurrent
    /// worker starts (service setup, harness seeding).
    ///
    /// # Errors
    ///
    /// [`KvError::BucketFull`] when the key's bucket is full.
    pub fn load(&self, heap: &Heap, key: u64, value: u64) -> KvResult<()> {
        let base = self.bucket_of(key);
        for i in 0..self.config.slots_per_bucket {
            let (k_addr, v_addr) = Self::slot(base, i);
            let k = heap.load(k_addr);
            if k == key || k == 0 {
                heap.store(k_addr, key);
                heap.store(v_addr, value);
                return Ok(());
            }
        }
        Err(KvError::BucketFull { key })
    }

    /// Non-transactional sum of every live value — quiesced-state
    /// inspection for conservation checks (no concurrent workers).
    pub fn sum_direct(&self, heap: &Heap) -> u64 {
        let mut sum = 0u64;
        for base in &self.buckets {
            for i in 0..self.config.slots_per_bucket {
                let (k_addr, v_addr) = Self::slot(*base, i);
                if heap.load(k_addr) != 0 {
                    sum = sum.wrapping_add(heap.load(v_addr));
                }
            }
        }
        sum
    }

    /// Non-transactional count of live keys.
    pub fn len_direct(&self, heap: &Heap) -> usize {
        let mut n = 0;
        for base in &self.buckets {
            for i in 0..self.config.slots_per_bucket {
                if heap.load(Self::slot(*base, i).0) != 0 {
                    n += 1;
                }
            }
        }
        n
    }

    /// Every heap word the store owns, as `word-address -> value` — the
    /// initial map the checker's oracles replay histories against.
    pub fn snapshot_words(&self, heap: &Heap) -> HashMap<u64, u64> {
        let mut map = HashMap::new();
        for base in &self.buckets {
            for i in 0..self.config.slots_per_bucket {
                let (k_addr, v_addr) = Self::slot(*base, i);
                map.insert(k_addr.to_word(), heap.load(k_addr));
                map.insert(v_addr.to_word(), heap.load(v_addr));
            }
        }
        map
    }
}

impl fmt::Debug for KvStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KvStore")
            .field("config", &self.config)
            .field("buckets", &self.buckets.len())
            .finish()
    }
}
