//! The algorithm conformance battery: every TM algorithm must provide
//! serializability, opacity, and privatization — "the same consistency
//! properties as pure hardware transactions" (paper §1.1) — under any HTM
//! configuration, including no HTM at all.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

use rh_norec::{Algorithm, TmConfig, TmRuntime, TxKind};
use sim_htm::{Htm, HtmConfig};
use sim_mem::{Addr, Heap, HeapConfig};

fn runtime(algorithm: Algorithm, htm_config: HtmConfig) -> (Arc<Heap>, Arc<TmRuntime>) {
    let heap = Arc::new(Heap::new(HeapConfig { words: 1 << 18 }));
    let htm = Htm::new(Arc::clone(&heap), htm_config);
    let rt = TmRuntime::new(Arc::clone(&heap), htm, TmConfig::new(algorithm)).expect("runtime construction cannot fail");
    (heap, rt)
}

/// HTM configurations to exercise: the paper's machine, a machine without
/// RTM (pure software fallback), pathological capacity, and noisy
/// spurious aborts.
fn htm_configs() -> Vec<(&'static str, HtmConfig)> {
    vec![
        ("haswell", HtmConfig::default()),
        ("disabled", HtmConfig::disabled()),
        ("tiny", HtmConfig::tiny_capacity()),
        (
            "spurious",
            HtmConfig {
                spurious_abort_per_access: 0.05,
                ..HtmConfig::default()
            },
        ),
    ]
}

fn for_all_algorithms(test: impl Fn(Algorithm, HtmConfig)) {
    for &alg in &Algorithm::ALL {
        for (name, cfg) in htm_configs() {
            // STMs are HTM-independent; run them once.
            if !alg.uses_htm() && name != "haswell" {
                continue;
            }
            test(alg, cfg);
        }
    }
}

/// Serializability: concurrent read-modify-writes of one counter are never
/// lost.
#[test]
fn counter_increments_are_exact() {
    for_all_algorithms(|alg, cfg| {
        let (heap, rt) = runtime(alg, cfg);
        let counter = heap.allocator().alloc(0, 1).unwrap();
        let threads = 4;
        let per = 500u64;
        std::thread::scope(|s| {
            for tid in 0..threads {
                let rt = Arc::clone(&rt);
                s.spawn(move || {
                    let mut worker = rt.register(tid).expect("fresh thread id");
                    for _ in 0..per {
                        worker.execute(TxKind::ReadWrite, |tx| {
                            let v = tx.read(counter)?;
                            tx.write(counter, v + 1)
                        });
                    }
                });
            }
        });
        assert_eq!(
            heap.load(counter),
            threads as u64 * per,
            "{alg:?} lost increments"
        );
    });
}

/// Snapshot consistency: read-only transactions over a transfer-churned
/// bank always see the exact conserved total.
#[test]
fn bank_snapshots_see_conserved_total() {
    for_all_algorithms(|alg, cfg| {
        let (heap, rt) = runtime(alg, cfg);
        let accounts = 16u64;
        let initial = 100u64;
        let base = heap.allocator().alloc(0, accounts).unwrap();
        for i in 0..accounts {
            heap.store(base.offset(i), initial);
        }
        let done = AtomicBool::new(false);
        std::thread::scope(|s| {
            for tid in 0..2usize {
                let rt = Arc::clone(&rt);
                let done = &done;
                s.spawn(move || {
                    let mut worker = rt.register(tid).expect("fresh thread id");
                    let mut rng = 0x1234_5678_9abc_def0u64 ^ tid as u64;
                    for _ in 0..800 {
                        rng ^= rng << 13;
                        rng ^= rng >> 7;
                        rng ^= rng << 17;
                        let from = base.offset(rng % accounts);
                        let to = base.offset((rng >> 16) % accounts);
                        if from == to {
                            continue;
                        }
                        worker.execute(TxKind::ReadWrite, |tx| {
                            let f = tx.read(from)?;
                            let t = tx.read(to)?;
                            let amount = f.min(5);
                            tx.write(from, f - amount)?;
                            tx.write(to, t + amount)
                        });
                    }
                    done.store(true, Ordering::Release);
                });
            }
            {
                let rt = Arc::clone(&rt);
                let done = &done;
                s.spawn(move || {
                    let mut worker = rt.register(2).expect("fresh thread id");
                    let mut seen = 0;
                    while !done.load(Ordering::Acquire) || seen == 0 {
                        let sum = worker.execute(TxKind::ReadOnly, |tx| {
                            let mut sum = 0u64;
                            for i in 0..accounts {
                                sum += tx.read(base.offset(i))?;
                            }
                            Ok(sum)
                        });
                        assert_eq!(sum, accounts * initial, "{alg:?} torn snapshot");
                        seen += 1;
                    }
                });
            }
        });
        let total: u64 = (0..accounts).map(|i| heap.load(base.offset(i))).sum();
        assert_eq!(total, accounts * initial, "{alg:?} lost money");
    });
}

/// Opacity: even a doomed transaction never observes a state in which the
/// writer's invariant (x + y constant) is broken. The assert runs *inside*
/// the body, before the engine decides the transaction's fate.
#[test]
fn opacity_holds_mid_transaction() {
    for_all_algorithms(|alg, cfg| {
        let (heap, rt) = runtime(alg, cfg);
        let alloc = heap.allocator();
        let x = alloc.alloc(0, 8).unwrap();
        let y = alloc.alloc(0, 8).unwrap();
        let total = 1_000u64;
        heap.store(x, total);
        let done = AtomicBool::new(false);
        std::thread::scope(|s| {
            {
                let rt = Arc::clone(&rt);
                let done = &done;
                s.spawn(move || {
                    let mut worker = rt.register(0).expect("fresh thread id");
                    for step in 0..2_000u64 {
                        worker.execute(TxKind::ReadWrite, |tx| {
                            let vx = tx.read(x)?;
                            let vy = tx.read(y)?;
                            let delta = ((step % 5) + 1).min(vx);
                            tx.write(x, vx - delta)?;
                            tx.write(y, vy + delta)
                        });
                    }
                    done.store(true, Ordering::Release);
                });
            }
            for tid in 1..3usize {
                let rt = Arc::clone(&rt);
                let done = &done;
                s.spawn(move || {
                    let mut worker = rt.register(tid).expect("fresh thread id");
                    while !done.load(Ordering::Acquire) {
                        worker.execute(TxKind::ReadOnly, |tx| {
                            let vx = tx.read(x)?;
                            let vy = tx.read(y)?;
                            assert_eq!(vx + vy, total, "{alg:?} opacity violation");
                            Ok(())
                        });
                    }
                });
            }
        });
    });
}

/// Write-skew prevention: serializable TMs must not let two transactions
/// that read each other's write succeed together.
#[test]
fn write_skew_is_prevented() {
    for_all_algorithms(|alg, cfg| {
        let (heap, rt) = runtime(alg, cfg);
        let alloc = heap.allocator();
        let x = alloc.alloc(0, 8).unwrap();
        let y = alloc.alloc(0, 8).unwrap();
        let rounds = 100;
        let barrier = Barrier::new(2);
        std::thread::scope(|s| {
            let mk = |tid: usize, mine: Addr, other: Addr| {
                let rt = Arc::clone(&rt);
                let barrier = &barrier;
                let heap = Arc::clone(&heap);
                s.spawn(move || {
                    let mut worker = rt.register(tid).expect("fresh thread id");
                    for _ in 0..rounds {
                        barrier.wait();
                        worker.execute(TxKind::ReadWrite, |tx| {
                            if tx.read(other)? == 0 {
                                let v = tx.read(mine)?;
                                tx.write(mine, v + 1)?;
                            }
                            Ok(())
                        });
                        barrier.wait();
                        // One thread checks and resets between rounds.
                        if tid == 0 {
                            let vx = heap.load(x);
                            let vy = heap.load(y);
                            assert!(
                                vx == 0 || vy == 0,
                                "{alg:?} allowed write skew: x={vx} y={vy}"
                            );
                            heap.store(x, 0);
                            heap.store(y, 0);
                        }
                        barrier.wait();
                    }
                });
            };
            mk(0, x, y);
            mk(1, y, x);
        });
    });
}

/// Privatization: once a transaction commits the unlink of a node, no
/// in-flight transaction's effects may appear in it, and non-transactional
/// access to it is safe.
#[test]
fn privatization_is_safe() {
    for_all_algorithms(|alg, cfg| {
        let (heap, rt) = runtime(alg, cfg);
        let alloc = heap.allocator();
        // head -> node; writers increment node.value while linked.
        let head = alloc.alloc(0, 8).unwrap();
        let node = alloc.alloc(0, 8).unwrap();
        heap.store(head, node.to_word());
        let done = AtomicBool::new(false);
        std::thread::scope(|s| {
            for tid in 0..2usize {
                let rt = Arc::clone(&rt);
                let done = &done;
                s.spawn(move || {
                    let mut worker = rt.register(tid).expect("fresh thread id");
                    while !done.load(Ordering::Acquire) {
                        worker.execute(TxKind::ReadWrite, |tx| {
                            let target = tx.read_addr(head)?;
                            if !target.is_null() {
                                let v = tx.read(target)?;
                                tx.write(target, v + 1)?;
                            }
                            Ok(())
                        });
                    }
                });
            }
            {
                let rt = Arc::clone(&rt);
                let heap = Arc::clone(&heap);
                let done = &done;
                s.spawn(move || {
                    let mut worker = rt.register(2).expect("fresh thread id");
                    // Let the writers churn, then privatize.
                    for _ in 0..2_000 {
                        std::hint::spin_loop();
                    }
                    worker.execute(TxKind::ReadWrite, |tx| tx.write_addr(head, Addr::NULL));
                    // The node is now private: plain accesses must be stable
                    // against any straggler transaction.
                    heap.store(node, 777);
                    for _ in 0..10_000 {
                        assert_eq!(
                            heap.load(node),
                            777,
                            "{alg:?} privatization violated: a transaction wrote a private node"
                        );
                    }
                    done.store(true, Ordering::Release);
                });
            }
        });
    });
}

/// The read-only static hint is enforced.
#[test]
#[should_panic(expected = "read-only")]
fn read_only_hint_is_enforced() {
    let (heap, rt) = runtime(Algorithm::RhNorec, HtmConfig::default());
    let a = heap.allocator().alloc(0, 1).unwrap();
    let mut worker = rt.register(0).expect("fresh thread id");
    worker.execute(TxKind::ReadOnly, |tx| tx.write(a, 1));
}

/// Transactional allocation: nodes allocated and linked in committed
/// transactions are visible; transactionally freed nodes get recycled.
#[test]
fn transactional_alloc_and_free() {
    for_all_algorithms(|alg, cfg| {
        let (heap, rt) = runtime(alg, cfg);
        let alloc = heap.allocator();
        let list = alloc.alloc(0, 8).unwrap(); // head pointer
        let threads = 3usize;
        let per = 100u64;
        std::thread::scope(|s| {
            for tid in 0..threads {
                let rt = Arc::clone(&rt);
                s.spawn(move || {
                    let mut worker = rt.register(tid).expect("fresh thread id");
                    // Push `per` nodes: node = [next, value].
                    for i in 0..per {
                        worker.execute(TxKind::ReadWrite, |tx| {
                            let node = tx.alloc(2)?;
                            let old_head = tx.read_addr(list)?;
                            tx.write_addr(node, old_head)?;
                            tx.write(node.offset(1), i)?;
                            tx.write_addr(list, node)
                        });
                    }
                    // Pop half of them.
                    for _ in 0..per / 2 {
                        worker.execute(TxKind::ReadWrite, |tx| {
                            let head = tx.read_addr(list)?;
                            if !head.is_null() {
                                let next = tx.read_addr(head)?;
                                tx.write_addr(list, next)?;
                                tx.free(head)?;
                            }
                            Ok(())
                        });
                    }
                });
            }
        });
        // Count surviving nodes.
        let mut count = 0u64;
        let mut cur = Addr::from_word(heap.load(list));
        while !cur.is_null() {
            count += 1;
            cur = Addr::from_word(heap.load(cur));
        }
        assert_eq!(
            count,
            threads as u64 * (per - per / 2),
            "{alg:?} list corrupted by alloc/free"
        );
    });
}

/// Statistics sanity: commits equal operations; hybrid algorithms under a
/// disabled HTM run everything on the slow path.
#[test]
fn stats_account_for_every_commit() {
    let (heap, rt) = runtime(Algorithm::RhNorec, HtmConfig::disabled());
    let a = heap.allocator().alloc(0, 1).unwrap();
    let mut worker = rt.register(0).expect("fresh thread id");
    for _ in 0..50 {
        worker.execute(TxKind::ReadWrite, |tx| {
            let v = tx.read(a)?;
            tx.write(a, v + 1)
        });
    }
    let stats = worker.stats();
    assert_eq!(stats.commits, 50);
    assert_eq!(stats.fast_path_commits, 0, "no HTM, no fast path");
    assert_eq!(stats.slow_path_commits, 50);
    assert_eq!(stats.slow_path_entries, 50);
    assert!((stats.slow_path_ratio() - 1.0).abs() < 1e-12);
}

/// With a healthy HTM and no contention, hybrid fast paths commit in
/// hardware.
#[test]
fn uncontended_transactions_stay_on_the_fast_path() {
    for alg in [Algorithm::LockElision, Algorithm::HybridNorec, Algorithm::RhNorec] {
        let (heap, rt) = runtime(alg, HtmConfig::default());
        let a = heap.allocator().alloc(0, 1).unwrap();
        let mut worker = rt.register(0).expect("fresh thread id");
        for _ in 0..100 {
            worker.execute(TxKind::ReadWrite, |tx| {
                let v = tx.read(a)?;
                tx.write(a, v + 1)
            });
        }
        let stats = worker.stats();
        assert_eq!(stats.commits, 100);
        assert_eq!(stats.fast_path_commits, 100, "{alg:?} fell off the fast path");
        assert_eq!(stats.slow_path_entries, 0);
    }
}

/// RH NOrec under forced fallback exercises its small hardware
/// transactions: prefixes and postfixes are attempted and succeed once
/// the adaptive prefix length settles.
#[test]
fn rh_norec_small_htms_engage_under_fallback() {
    // A read-capacity squeeze kills the (24-line) fast path body, but the
    // write set (2 lines) fits the postfix, and shortened prefixes fit the
    // read capacity — driving transactions into a *working* mixed slow
    // path.
    let cfg = HtmConfig {
        max_write_lines: 512,
        max_read_lines: 8,
        ..HtmConfig::default()
    };
    let (heap, rt) = runtime(Algorithm::RhNorec, cfg);
    let alloc = heap.allocator();
    let slots: Vec<Addr> = (0..24).map(|_| alloc.alloc(0, 8).unwrap()).collect();
    let mut worker = rt.register(0).expect("fresh thread id");
    for round in 0..200u64 {
        let slots = slots.clone();
        worker.execute(TxKind::ReadWrite, |tx| {
            let mut sum = 0u64;
            for &s in &slots {
                sum = sum.wrapping_add(tx.read(s)?);
            }
            // The written value doubles every round; wrap instead of
            // overflowing once it outgrows u64 (~round 64).
            for &s in &slots[0..2] {
                tx.write(s, sum.wrapping_add(round))?;
            }
            Ok(())
        });
    }
    let stats = worker.stats();
    assert_eq!(stats.commits, 200);
    assert!(stats.slow_path_entries > 0, "fast path should capacity-abort");
    assert!(stats.postfix_attempts > 0, "postfix never attempted");
    assert!(
        stats.postfix_commits > 0,
        "postfix never succeeded: {stats:?}"
    );
    assert!(stats.prefix_attempts > 0, "prefix never attempted");
    assert!(
        stats.prefix_commits > 0,
        "adaptive prefix never settled: {stats:?}"
    );
}
