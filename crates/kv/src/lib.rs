//! # rh-kv: the transactional key-value service tier
//!
//! A 16-way hash-sharded in-memory KV store whose every operation —
//! [`KvStore::get`], [`KvStore::put`], [`KvStore::delete`],
//! [`KvStore::range_sum`], [`KvStore::transfer`] — runs as **one
//! transaction** on the typed [`rh_norec::prelude`] session API, plus
//! the service harness around it:
//!
//! * [`gen`] — a seeded open-loop request generator (zipfian keys,
//!   configurable operation mix, bursty Poisson arrivals);
//! * [`hist`] — allocation-free fixed-bucket latency histograms;
//! * [`steal`] — per-worker work-stealing deques (Chase–Lev-style over
//!   the preloaded trace partition, seeded victim selection);
//! * [`former`] — dynamic batch formation: drains the stream into
//!   rank-ordered blocks under a latency budget, with hysteretic
//!   session fallback below minimum occupancy;
//! * [`service`] — the worker pool that replays a trace and reports
//!   per-request-class sojourn percentiles (p50/p95/p99/p999/max),
//!   under either scheduling policy and either execution mode.
//!
//! `rh-bench service` drives [`service::run_service`] across every paper
//! engine with the identical trace and writes the percentile ledger that
//! CI's tail-latency gate diffs.
//!
//! With the `mutants` feature, [`KvStore::transfer`] carries the
//! `Mutant::KvStaleTransferCredit` entry of the mutation corpus: armed,
//! it credits the destination from a balance probed in an earlier,
//! separate transaction — an app-level atomicity bug the heap-level
//! oracles cannot see, killed by the harness's conservation check.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod batch;
pub mod former;
pub mod gen;
pub mod hist;
pub mod service;
pub mod steal;
mod store;

pub use store::{KvConfig, KvError, KvResult, KvStore, TransferOutcome};

#[cfg(test)]
mod tests {
    use super::*;
    use rh_norec::prelude::*;
    use sim_htm::{Htm, HtmConfig};
    use sim_mem::{Heap, HeapConfig};
    use std::sync::Arc;

    fn machine(algorithm: Algorithm) -> (Arc<Heap>, Arc<TmRuntime>) {
        let heap = Arc::new(Heap::new(HeapConfig { words: 1 << 20 }));
        let htm = Htm::new(Arc::clone(&heap), HtmConfig::default());
        let rt = TmRuntime::new(Arc::clone(&heap), htm, TmConfig::new(algorithm))
            .expect("runtime construction cannot fail");
        (heap, rt)
    }

    #[test]
    fn get_put_delete_roundtrip() {
        let (heap, rt) = machine(Algorithm::RhNorec);
        let store = KvStore::create(&heap, KvConfig::default()).unwrap();
        let mut s = rt.open_session().unwrap();

        assert_eq!(store.get(&mut s, 7).unwrap(), None);
        assert_eq!(store.put(&mut s, 7, 700).unwrap(), None);
        assert_eq!(store.get(&mut s, 7).unwrap(), Some(700));
        assert_eq!(store.put(&mut s, 7, 701).unwrap(), Some(700));
        assert_eq!(store.delete(&mut s, 7).unwrap(), Some(701));
        assert_eq!(store.get(&mut s, 7).unwrap(), None);
        assert_eq!(store.delete(&mut s, 7).unwrap(), None);
    }

    #[test]
    fn deletes_punch_holes_that_reinserts_refill() {
        let (heap, rt) = machine(Algorithm::Norec);
        // One bucket total: every key collides.
        let store = KvStore::create(
            &heap,
            KvConfig { shards: 1, buckets_per_shard: 1, slots_per_bucket: 4 },
        )
        .unwrap();
        let mut s = rt.open_session().unwrap();
        for key in 1..=4u64 {
            store.put(&mut s, key, key * 10).unwrap();
        }
        assert_eq!(store.put(&mut s, 5, 50), Err(KvError::BucketFull { key: 5 }));
        store.delete(&mut s, 2).unwrap();
        assert_eq!(store.put(&mut s, 5, 50).unwrap(), None, "hole is reusable");
        assert_eq!(store.get(&mut s, 5).unwrap(), Some(50));
        assert_eq!(store.get(&mut s, 4).unwrap(), Some(40), "keys past the hole still found");
    }

    #[test]
    fn transfer_moves_exactly_the_amount() {
        let (heap, rt) = machine(Algorithm::RhNorec);
        let store = KvStore::create(&heap, KvConfig::default()).unwrap();
        store.load(&heap, 1, 100).unwrap();
        store.load(&heap, 2, 100).unwrap();
        let mut s = rt.open_session().unwrap();

        assert_eq!(store.transfer(&mut s, 1, 2, 30).unwrap(), TransferOutcome::Done);
        assert_eq!(store.get(&mut s, 1).unwrap(), Some(70));
        assert_eq!(store.get(&mut s, 2).unwrap(), Some(130));
        assert_eq!(
            store.transfer(&mut s, 1, 2, 1_000).unwrap(),
            TransferOutcome::InsufficientFunds
        );
        assert_eq!(store.transfer(&mut s, 1, 9, 1).unwrap(), TransferOutcome::MissingKey);
        assert_eq!(store.sum_direct(&heap), 200);
    }

    #[test]
    fn range_sum_is_atomic_count_and_sum() {
        let (heap, rt) = machine(Algorithm::Tl2);
        let store = KvStore::create(&heap, KvConfig::default()).unwrap();
        for key in 1..=20u64 {
            store.load(&heap, key, key).unwrap();
        }
        let mut s = rt.open_session().unwrap();
        let (count, sum) = store.range_sum(&mut s, 5, 14).unwrap();
        assert_eq!(count, 10);
        assert_eq!(sum, (5..=14).sum::<u64>());
    }

    #[test]
    fn concurrent_transfers_conserve_on_every_engine() {
        for algorithm in Algorithm::PAPER_SET {
            let (heap, rt) = machine(algorithm);
            let store = KvStore::create(&heap, KvConfig::tiny(4)).unwrap();
            for key in 1..=8u64 {
                store.load(&heap, key, 100).unwrap();
            }
            std::thread::scope(|scope| {
                for t in 0..4u64 {
                    let rt = Arc::clone(&rt);
                    let store = &store;
                    scope.spawn(move || {
                        let mut s = rt.open_session().unwrap();
                        for i in 0..200u64 {
                            let src = 1 + (i.wrapping_mul(7) + t) % 8;
                            let dst = 1 + (i.wrapping_mul(13) + t * 3) % 8;
                            store.transfer(&mut s, src, dst, 1 + i % 3).unwrap();
                        }
                    });
                }
            });
            assert_eq!(store.sum_direct(&heap), 800, "{algorithm:?} lost or minted balance");
            assert_eq!(store.len_direct(&heap), 8);
        }
    }

    #[test]
    fn snapshot_words_covers_every_store_word() {
        let (heap, _rt) = machine(Algorithm::Norec);
        let config = KvConfig::tiny(2);
        let store = KvStore::create(&heap, config).unwrap();
        store.load(&heap, 3, 33).unwrap();
        let snapshot = store.snapshot_words(&heap);
        assert_eq!(snapshot.len(), 2 * config.capacity());
        assert!(snapshot.values().any(|v| *v == 33));
    }
}
