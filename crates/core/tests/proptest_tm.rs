//! Property tests for the TM engines: arbitrary transaction scripts give
//! model-identical results on every algorithm, and concurrent random
//! increments are never lost.

use std::collections::HashMap;
use std::sync::Arc;

use proptest::prelude::*;
use rh_norec::{Algorithm, TmConfig, TmRuntime, TxKind};
use sim_htm::{Htm, HtmConfig};
use sim_mem::{Heap, HeapConfig};

const SLOTS: u64 = 24;

#[derive(Clone, Debug)]
enum TxOp {
    Read(u64),
    Write(u64, u64),
    AllocFreePair(u64),
}

fn scripts() -> impl Strategy<Value = Vec<Vec<TxOp>>> {
    prop::collection::vec(
        prop::collection::vec(
            prop_oneof![
                (0..SLOTS).prop_map(TxOp::Read),
                (0..SLOTS, any::<u64>()).prop_map(|(a, v)| TxOp::Write(a, v)),
                (1u64..16).prop_map(TxOp::AllocFreePair),
            ],
            0..10,
        ),
        0..25,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Single-threaded scripts: every algorithm computes the same final
    /// memory state and the same read results as a sequential model.
    #[test]
    fn all_algorithms_match_the_sequential_model(script in scripts()) {
        for alg in Algorithm::ALL {
            let heap = Arc::new(Heap::new(HeapConfig { words: 1 << 14 }));
            let htm = Htm::new(Arc::clone(&heap), HtmConfig::default());
            let rt = TmRuntime::new(Arc::clone(&heap), htm, TmConfig::new(alg));
            let base = heap.allocator().alloc(0, SLOTS).unwrap();
            let mut worker = rt.register(0);
            let mut model: HashMap<u64, u64> = HashMap::new();

            for tx_ops in &script {
                let reads = worker.execute(TxKind::ReadWrite, |tx| {
                    let mut reads = Vec::new();
                    for op in tx_ops {
                        match *op {
                            TxOp::Read(a) => reads.push(tx.read(base.offset(a))?),
                            TxOp::Write(a, v) => tx.write(base.offset(a), v)?,
                            TxOp::AllocFreePair(words) => {
                                let block = tx.alloc(words)?;
                                tx.write(block, 1)?;
                                tx.free(block)?;
                            }
                        }
                    }
                    Ok(reads)
                });
                // Check reads against the model, then apply writes.
                let mut staged = model.clone();
                let mut read_iter = reads.into_iter();
                for op in tx_ops {
                    match *op {
                        TxOp::Read(a) => {
                            let got = read_iter.next().unwrap();
                            prop_assert_eq!(
                                got,
                                staged.get(&a).copied().unwrap_or(0),
                                "{} read mismatch", alg.label()
                            );
                        }
                        TxOp::Write(a, v) => { staged.insert(a, v); }
                        TxOp::AllocFreePair(_) => {}
                    }
                }
                model = staged;
            }
            for a in 0..SLOTS {
                prop_assert_eq!(
                    heap.load(base.offset(a)),
                    model.get(&a).copied().unwrap_or(0),
                    "{} final state mismatch", alg.label()
                );
            }
        }
    }

    /// Concurrent increments over random slot subsets are never lost, on a
    /// randomly chosen algorithm and HTM configuration.
    #[test]
    fn concurrent_random_increments_conserve_totals(
        seed in any::<u64>(),
        alg_idx in 0usize..Algorithm::ALL.len(),
        disable_htm in any::<bool>(),
    ) {
        let alg = Algorithm::ALL[alg_idx];
        let htm_config = if disable_htm { HtmConfig::disabled() } else { HtmConfig::default() };
        let heap = Arc::new(Heap::new(HeapConfig { words: 1 << 14 }));
        let htm = Htm::new(Arc::clone(&heap), htm_config);
        let rt = TmRuntime::new(Arc::clone(&heap), htm, TmConfig::new(alg));
        let base = heap.allocator().alloc(0, SLOTS).unwrap();
        let threads = 3usize;
        let per = 120u64;
        std::thread::scope(|s| {
            for tid in 0..threads {
                let rt = Arc::clone(&rt);
                s.spawn(move || {
                    let mut worker = rt.register(tid);
                    let mut rng = seed ^ (tid as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15) | 1;
                    for _ in 0..per {
                        rng ^= rng << 13;
                        rng ^= rng >> 7;
                        rng ^= rng << 17;
                        let a = base.offset(rng % SLOTS);
                        let b = base.offset((rng >> 13) % SLOTS);
                        worker.execute(TxKind::ReadWrite, |tx| {
                            if a == b {
                                let va = tx.read(a)?;
                                tx.write(a, va + 2)
                            } else {
                                let va = tx.read(a)?;
                                tx.write(a, va + 1)?;
                                let vb = tx.read(b)?;
                                tx.write(b, vb + 1)
                            }
                        });
                    }
                });
            }
        });
        let total: u64 = (0..SLOTS).map(|a| heap.load(base.offset(a))).sum();
        prop_assert_eq!(total, threads as u64 * per * 2, "{} lost increments", alg.label());
    }
}
