//! Anatomy of the RH NOrec mixed slow path.
//!
//! Forces transactions off the hardware fast path (a read-capacity
//! squeeze) and shows how the mixed slow path degrades gracefully through
//! its stages — HTM prefix for the leading reads, HTM postfix for the
//! write phase, and the full-software route when hardware is refused —
//! by comparing three machines: healthy HTM, tiny HTM, and no HTM.
//!
//! ```text
//! cargo run --release --example slow_path_anatomy
//! ```

use std::sync::Arc;

use rh_norec_repro::htm::{Htm, HtmConfig};
use rh_norec_repro::mem::{Addr, Heap, HeapConfig};
use rh_norec_repro::tm::prelude::*;

const OPS: u64 = 5_000;
const READ_SLOTS: u64 = 24;

fn run(label: &str, htm_config: HtmConfig) -> TmThreadStats {
    let heap = Arc::new(Heap::new(HeapConfig::default()));
    let htm = Htm::new(Arc::clone(&heap), htm_config);
    let rt = TmRuntime::new(Arc::clone(&heap), htm, TmConfig::new(Algorithm::RhNorec)).expect("runtime construction cannot fail");
    let alloc = heap.allocator();
    // Spread the read set across many cache lines.
    let slots: Vec<Addr> = (0..READ_SLOTS).map(|_| alloc.alloc(0, 8).expect("alloc")).collect();
    let mut worker = rt.open_session().expect("free worker slot");
    for round in 0..OPS {
        let slots = slots.clone();
        worker
            .run(|tx| {
                let mut sum = 0u64;
                for &s in &slots {
                    sum = sum.wrapping_add(tx.read(s)?);
                }
                tx.write(slots[(round % READ_SLOTS) as usize], sum | 1)
            })
            .expect("scan cannot fault");
    }
    let stats = worker.stats();
    println!(
        "{label:<18} fast={:<6} slow={:<6} prefix {:>4.0}% of {:<5} postfix {:>4.0}% of {:<5} final prefix len={}",
        stats.fast_path_commits,
        stats.slow_path_commits,
        stats.prefix_success_ratio() * 100.0,
        stats.prefix_attempts,
        stats.postfix_success_ratio() * 100.0,
        stats.postfix_attempts,
        worker.prefix_len(),
    );
    stats
}

fn main() {
    println!("RH NOrec mixed slow path under three machines ({OPS} identical transactions):\n");

    let healthy = run("healthy HTM", HtmConfig::default());
    assert_eq!(healthy.fast_path_commits, OPS, "healthy machine stays on the fast path");

    // Read capacity below the transaction's footprint: every fast-path
    // attempt dies of capacity, so everything runs on the mixed slow path
    // — but the small prefix and postfix still fit, so the slow path
    // remains mostly-hardware.
    let squeezed = run(
        "tiny read cap",
        HtmConfig { max_read_lines: 8, associativity: None, ..HtmConfig::default() },
    );
    assert_eq!(squeezed.fast_path_commits, 0);
    assert_eq!(squeezed.slow_path_commits, OPS);
    assert!(squeezed.postfix_commits > 0, "write phase should run in hardware");

    // No HTM at all: Algorithm 2's software route (global HTM lock) — the
    // Hybrid NOrec slow path the paper falls back to.
    let none = run("no HTM", HtmConfig::disabled());
    assert_eq!(none.slow_path_commits, OPS);
    assert_eq!(none.prefix_commits + none.postfix_commits, 0);

    println!("\nThe same transaction code ran in all three modes — the engine degraded");
    println!("from pure hardware, to a hardware-assisted slow path, to pure software,");
    println!("preserving opacity and privatization throughout (paper §2.2-2.4).");
}
