//! The KV service-tier sweep: seed-derived request traces (gets and
//! transfers over a handful of hot keys) replayed against the sharded
//! `rh_kv::KvStore` on the session API, under the deterministic
//! scheduler and both history oracles, plus the balance-conservation
//! invariant.
//!
//! Complements `opacity_sweep.rs`: those cases exercise raw heap slots;
//! these exercise the full application stack — session registration
//! inside virtual threads, bucket probes, and multi-key transfers.

use rh_norec::Algorithm;
use sim_htm::sched::SchedConfig;
use sim_htm::HtmConfig;
use tm_check::harness::{run_case, CaseConfig, CaseFailure, CaseWorkload};

const ALGORITHMS: [Algorithm; 5] = [
    Algorithm::LockElision,
    Algorithm::Norec,
    Algorithm::Tl2,
    Algorithm::HybridNorec,
    Algorithm::RhNorec,
];

/// KV store shard counts the sweep covers: a single shard (every key
/// collides into one bucket region) and four shards.
const KV_SHARDS: [usize; 2] = [1, 4];

const SEEDS: u64 = 12;

/// Every engine serves contended KV transfer traces with serializable,
/// opaque histories and a conserved balance sum, at both shard counts.
#[test]
fn kv_transfer_traces_are_clean_on_every_engine() {
    for algorithm in ALGORITHMS {
        for kv_shards in KV_SHARDS {
            let case = CaseConfig::kv_transfer(algorithm, HtmConfig::default(), kv_shards);
            for seed in 0..SEEDS {
                run_case(&case, &SchedConfig::from_seed(seed)).unwrap_or_else(|f| {
                    panic!("{algorithm:?} kv_shards={kv_shards} seed {seed}: {f}")
                });
            }
        }
    }
}

/// The same traces with the HTM disabled: every request runs the
/// software slow path, where NOrec-family validation carries the load.
#[test]
fn kv_transfer_traces_are_clean_without_htm() {
    for algorithm in ALGORITHMS {
        let case = CaseConfig::kv_transfer(algorithm, HtmConfig::disabled(), 1);
        for seed in 0..SEEDS {
            run_case(&case, &SchedConfig::from_seed(seed))
                .unwrap_or_else(|f| panic!("{algorithm:?} no-HTM seed {seed}: {f}"));
        }
    }
}

/// Sharded commit clocks compose with the KV tier: the lane-vector
/// protocol serves the same traces clean.
#[test]
fn kv_traces_are_clean_under_sharded_clocks() {
    let mut case = CaseConfig::kv_transfer(Algorithm::RhNorec, HtmConfig::default(), 4);
    case.clock_shards = 4;
    for seed in 0..SEEDS {
        run_case(&case, &SchedConfig::from_seed(seed))
            .unwrap_or_else(|f| panic!("clock_shards=4 seed {seed}: {f}"));
    }
}

/// The planted KV mutant (stale-transfer-credit) dies within its
/// manifest budget, and dies the way the manifest declares: as a
/// conservation panic, not an oracle violation — the bug's histories
/// are serializable word by word, which is exactly why the KV tier
/// carries its own invariant.
#[test]
fn stale_transfer_credit_mutant_is_killed_by_conservation() {
    let spec = rh_norec::mutants::Mutant::KvStaleTransferCredit.spec();
    let mut case = CaseConfig::kv_transfer(spec.algorithm, HtmConfig::default(), 1);
    case.threads = spec.threads;
    case.slots = spec.slots;
    case.txs_per_thread = spec.txs_per_thread;
    case.mutant = Some(spec.mutant);

    let mut kill = None;
    for seed in 0..spec.seed_budget {
        if let Err(failure) = run_case(&case, &SchedConfig::from_seed(seed)) {
            kill = Some((seed, failure));
            break;
        }
    }
    let (seed, failure) = kill.unwrap_or_else(|| {
        panic!("stale-transfer-credit mutant survived {} seeds", spec.seed_budget)
    });
    match &failure {
        CaseFailure::Panicked { message, .. } => assert!(
            message.contains("balance sum drifted"),
            "killed, but not by the conservation invariant: {message}"
        ),
        other => panic!("expected a conservation kill, got: {other}"),
    }

    // The killing seed is stable, and the clean engine passes it.
    assert!(run_case(&case, &SchedConfig::from_seed(seed)).is_err());
    let clean = CaseConfig { mutant: None, ..case };
    run_case(&clean, &SchedConfig::from_seed(seed))
        .unwrap_or_else(|f| panic!("clean engine fails the kill seed: {f}"));
    assert!(matches!(case.workload, CaseWorkload::KvTransfer { kv_shards: 1 }));
}
