//! The worker pool: replays a generated trace against a [`KvStore`] and
//! records per-request-class sojourn-time histograms.
//!
//! ## Latency model
//!
//! Wall-clock latencies on a shared CI host are noise; the service tier
//! instead reports **modeled sojourn time**, built from the engine's own
//! cycle accounting (see [`rh_norec::cost`]):
//!
//! * each worker owns a virtual clock `busy_until`;
//! * a request assigned to the worker *starts* at
//!   `max(arrival, busy_until)` — open-loop arrivals queue behind a busy
//!   worker instead of pacing themselves;
//! * its *service time* is the worker's modeled cycle delta across the
//!   operation, converted at [`rh_norec::cost::MODEL_HZ`];
//! * its recorded sojourn is `start + service − arrival`, i.e. queueing
//!   delay plus service, exactly the tail a latency SLO sees.
//!
//! ## Scheduling
//!
//! [`SchedPolicy::Static`] partitions requests round-robin by index, so
//! every engine processes the identical per-worker request sequence.
//! [`SchedPolicy::Steal`] keeps that partition as the *initial* queue
//! load but lets a worker that is modeled-idle (its own next request has
//! not arrived on its virtual clock) steal the oldest waiting request
//! from a peer that is *behind* ([`crate::steal`]). Each worker
//! publishes its modeled `busy_until`, and a steal is taken only when it
//! provably helps on the model: the victim's published clock must be
//! past the candidate's arrival (the request is genuinely queued) and
//! ahead of the thief's (the thief would start it sooner). Victim
//! selection is seeded, so under the controlled scheduler a steal run is
//! a pure function of the seed; with stealing disabled the queues are
//! owner-only and the run is bit-for-bit the static one.
//!
//! ## Execution modes
//!
//! [`ExecMode::Session`] serves every request as its own transaction on
//! the per-worker session. [`ExecMode::Batch`] instead drains the stream
//! through the dynamic batch former ([`crate::former`]) into rank-ordered
//! blocks for the Block-STM executor; consecutive blocks execute as one
//! *chain* (block `N + 1` speculates while block `N`'s validation wave
//! drains), and sub-occupancy or non-batchable stretches fall back to
//! sessions on the same modeled pool.

use std::sync::{Arc, Mutex};

use rh_norec::batch::{BatchConfig, ParallelExecutor};
use rh_norec::prelude::{Algorithm, TmConfig, TmConfigBuilder, TmRuntime};
use sim_htm::{Htm, HtmConfig};
use sim_mem::{Heap, HeapConfig};

use crate::former::{Former, FormerConfig, Segment};
use crate::gen::{self, OpClass, Request, TraceConfig};
use crate::hist::Histogram;
use crate::steal::StealDeque;
use crate::store::{KvConfig, KvStore};

/// Initial balance loaded under every key at service start.
pub const INITIAL_BALANCE: u64 = 1_000;

/// How the pool divides the request stream across workers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Static round-robin partition by request index (the PR 7 runner).
    Static,
    /// Per-worker work-stealing deques over the same initial partition.
    Steal {
        /// With `false`, deques are owner-only: no thief ever touches
        /// them and the run replays the static partition bit-for-bit
        /// (the parity configuration).
        enabled: bool,
    },
}

/// How scheduled requests execute.
#[derive(Clone, Copy, Debug)]
pub enum ExecMode {
    /// One session per worker; each request is its own transaction.
    Session,
    /// Dynamic batch formation: the former drains the stream into
    /// rank-ordered blocks for the batch executor (chained across
    /// consecutive blocks), falling back to per-request sessions below
    /// minimum occupancy. The scheduling policy does not apply here:
    /// the executor's rank scheduler replaces the partition.
    Batch(FormerConfig),
}

/// One service run: engine, pool size, and the trace to replay.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// TM algorithm backing the store.
    pub algorithm: Algorithm,
    /// Worker threads draining the request queue.
    pub threads: usize,
    /// Store geometry.
    pub kv: KvConfig,
    /// Trace shape (requests, keyspace, mix, arrivals, seed).
    pub trace: TraceConfig,
    /// Simulated machine.
    pub htm: HtmConfig,
    /// Heap size in words.
    pub heap_words: u64,
    /// Override the runtime configuration (ablations).
    pub tm_overrides: Option<fn(TmConfigBuilder) -> TmConfigBuilder>,
    /// Request scheduling policy.
    pub sched: SchedPolicy,
    /// Execution mode.
    pub mode: ExecMode,
    /// Corpus mutants armed on the run's own runtime (and batch
    /// executor) before the pool is built — mutation recipes only;
    /// empty in production runs.
    #[cfg(feature = "mutants")]
    pub armed_mutants: Vec<rh_norec::mutants::Mutant>,
}

impl ServiceConfig {
    /// A service cell on the paper's machine model (static partition,
    /// session execution — the PR 7 baseline).
    pub fn new(algorithm: Algorithm, threads: usize, trace: TraceConfig) -> Self {
        ServiceConfig {
            algorithm,
            threads,
            kv: KvConfig::for_keyspace(trace.keyspace),
            trace,
            htm: HtmConfig { spurious_abort_per_access: 1e-4, ..HtmConfig::default() },
            heap_words: 1 << 20,
            tm_overrides: None,
            sched: SchedPolicy::Static,
            mode: ExecMode::Session,
            #[cfg(feature = "mutants")]
            armed_mutants: Vec::new(),
        }
    }
}

/// Latency summary (sojourn times, nanoseconds).
#[derive(Clone, Copy, Debug)]
pub struct LatencyStats {
    /// Requests summarized.
    pub count: u64,
    /// Median sojourn.
    pub p50_ns: u64,
    /// 95th-percentile sojourn.
    pub p95_ns: u64,
    /// 99th-percentile sojourn.
    pub p99_ns: u64,
    /// 99.9th-percentile sojourn.
    pub p999_ns: u64,
    /// Worst sojourn.
    pub max_ns: u64,
    /// Mean sojourn.
    pub mean_ns: f64,
}

/// Latency summary of one request class.
#[derive(Clone, Copy, Debug)]
pub struct ClassStats {
    /// The class.
    pub class: OpClass,
    /// Its latency summary.
    pub latency: LatencyStats,
}

/// Result of one service run.
#[derive(Clone, Debug)]
pub struct ServiceReport {
    /// Engine that served the trace.
    pub algorithm: Algorithm,
    /// Per-class latency summaries (only classes present in the trace).
    pub classes: Vec<ClassStats>,
    /// All-classes summary.
    pub overall: LatencyStats,
    /// Total requests served.
    pub requests: u64,
    /// Engine commits across the pool (batch-executed requests count
    /// one commit each).
    pub commits: u64,
    /// Engine aborts across the pool (batch validation aborts included).
    pub aborts: u64,
    /// Requests served off a stolen deque slot (0 under
    /// [`SchedPolicy::Static`] or with stealing disabled).
    pub stolen: u64,
    /// Requests executed in formed blocks (0 in session mode); the
    /// remainder fell back to sessions.
    pub batched: u64,
    /// `Some(ok)` when the trace mix conserves the balance sum and the
    /// run checked it; `None` when the mix makes the check inapplicable.
    pub conserved: Option<bool>,
}

/// Per-worker accumulation: one histogram per class plus the overall.
struct WorkerHists {
    per_class: [Histogram; 5],
    overall: Histogram,
}

impl WorkerHists {
    fn new() -> Self {
        WorkerHists { per_class: std::array::from_fn(|_| Histogram::new()), overall: Histogram::new() }
    }

    fn record(&mut self, class: OpClass, sojourn_ns: u64) {
        let idx = OpClass::ALL.iter().position(|c| *c == class).expect("class in ALL");
        self.per_class[idx].record(sojourn_ns);
        self.overall.record(sojourn_ns);
    }
}

fn summarize(h: &Histogram) -> LatencyStats {
    LatencyStats {
        count: h.count(),
        p50_ns: h.quantile(0.50),
        p95_ns: h.quantile(0.95),
        p99_ns: h.quantile(0.99),
        p999_ns: h.quantile(0.999),
        max_ns: h.max(),
        mean_ns: h.mean(),
    }
}

/// Seeded xorshift64 for victim selection; state must be nonzero.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// How far (in modeled nanoseconds) one worker's virtual position may
/// run ahead of the slowest peer's before its next serve is held back.
/// Workers replay the trace at real speed, so without this bound their
/// modeled clocks drift apart by whatever their wall-clock progress
/// happens to be, and cross-worker clock comparisons — the entire basis
/// of the steal guard — degrade into measurements of replay skew. The
/// window must comfortably exceed the longest single service time (so
/// the frontier worker itself is never held), and stay well below the
/// tail scale the grid measures (so skew cannot masquerade as backlog).
const STEAL_SKEW_WINDOW_NS: u64 = 1_000_000;

/// Everything session-mode workers share for one run.
struct SessionPool<'a> {
    #[cfg_attr(not(feature = "deterministic"), allow(dead_code))]
    heap: &'a Arc<Heap>,
    rt: &'a Arc<TmRuntime>,
    store: &'a KvStore,
    trace: &'a [Request],
    /// One queue per worker, preloaded with its static partition.
    deques: Vec<StealDeque>,
    /// Each worker's published *virtual position* (see the worker loop:
    /// `max(busy_until, next own arrival)`, the end of time once
    /// drained, a completion estimate mid-serve). Advisory: thieves
    /// read it to judge whether a victim is behind, and the skew gate
    /// reads the minimum as the replay frontier.
    busy: Vec<std::sync::atomic::AtomicU64>,
    steal_enabled: bool,
    seed: u64,
    results: Vec<Mutex<Option<(WorkerHists, rh_norec::TmThreadStats, u64)>>>,
}

impl<'a> SessionPool<'a> {
    fn build(
        config: &ServiceConfig,
        heap: &'a Arc<Heap>,
        rt: &'a Arc<TmRuntime>,
        store: &'a KvStore,
        trace: &'a [Request],
    ) -> SessionPool<'a> {
        let steal_enabled = matches!(config.sched, SchedPolicy::Steal { enabled: true });
        let deques = (0..config.threads)
            .map(|me| {
                let own: Vec<u32> = (me..trace.len()).step_by(config.threads).map(|i| i as u32).collect();
                #[allow(unused_mut)]
                let mut deque = StealDeque::preload(own.into_iter(), steal_enabled);
                #[cfg(feature = "mutants")]
                if rt.mutant_armed(rh_norec::mutants::Mutant::StealBottomRace) {
                    deque.arm_race_mutant();
                }
                deque
            })
            .collect();
        SessionPool {
            heap,
            rt,
            store,
            trace,
            deques,
            busy: (0..config.threads).map(|_| std::sync::atomic::AtomicU64::new(0)).collect(),
            steal_enabled,
            seed: config.trace.seed,
            results: (0..config.threads).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// One steal attempt sweep: seeded starting victim, then the ring.
    /// A candidate is taken only when the steal pays on the model: the
    /// thief must be able to *start* the request meaningfully sooner
    /// than the backlogged victim would. With `start_thief =
    /// max(busy_ns, at)` and the victim starting its head no earlier
    /// than its published clock, the guard is
    ///
    /// ```text
    /// max(busy_ns, at) + margin < victim_busy
    /// ```
    ///
    /// where `margin` (the thief's running mean service time) filters
    /// out churn: taking a request the victim would serve almost as
    /// soon itself buys nothing and perturbs the engine's real
    /// execution overlap for free. The published clocks are advisory (a
    /// victim mid-service publishes an estimate), so the guard is a
    /// heuristic; the modeled-idle eligibility check in the caller
    /// bounds self-harm at one in-flight request.
    fn steal_one(&self, me: usize, rng: &mut u64, busy_ns: u64, margin_ns: u64) -> Option<u32> {
        use std::sync::atomic::Ordering;
        let n = self.deques.len();
        if n <= 1 {
            return None;
        }
        let offset = (xorshift(rng) % (n as u64 - 1)) as usize;
        for k in 0..n - 1 {
            let v = (offset + k) % (n - 1);
            let victim = if v >= me { v + 1 } else { v };
            let victim_busy = self.busy[victim].load(Ordering::Relaxed);
            if victim_busy <= busy_ns.saturating_add(margin_ns) {
                continue;
            }
            let taken = self.deques[victim].steal_top(|c| {
                let at = self.trace[c as usize].at_ns;
                busy_ns.max(at).saturating_add(margin_ns) < victim_busy
            });
            if taken.is_some() {
                return taken;
            }
        }
        None
    }

    /// One worker: drain the own deque in arrival order, stealing from
    /// backlogged peers whenever modeled-idle. With stealing disabled
    /// this is exactly the static-partition loop (same pops, same serve
    /// order, no extra scheduler decision points).
    fn worker(&self, me: usize) {
        use std::sync::atomic::Ordering;
        let mut session = self.rt.open_session().expect("free worker slot");
        let mut hists = WorkerHists::new();
        let mut busy_until_ns = 0u64;
        let mut stolen = 0u64;
        let mut served = 0u64;
        let mut service_total_ns = 0u64;
        let ns_per_cycle = 1.0e9 / rh_norec::cost::MODEL_HZ;
        let own = &self.deques[me];
        let mut rng = (self.seed ^ (me as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1;
        loop {
            let next_own_at = own.peek_next().map(|i| self.trace[i as usize].at_ns);
            if self.steal_enabled {
                // Publish this worker's *virtual position*: the modeled
                // instant it is logically at — past its last completion
                // and, when its queue has no arrival yet, forwarded to
                // the arrival it would idle until (a drained worker sits
                // at the end of time). Positions are what make peers'
                // clocks comparable: each worker replays at its own real
                // speed, so raw busy clocks diverge by however much
                // wall-clock progress differs, and a guard comparing
                // them would measure replay skew, not backlog.
                let pos = busy_until_ns.max(next_own_at.unwrap_or(u64::MAX));
                self.busy[me].store(pos, Ordering::Relaxed);
            }
            let theft = if self.steal_enabled {
                match next_own_at {
                    // Our next request has already queued up behind us:
                    // serve our own backlog first.
                    Some(at) if busy_until_ns >= at => None,
                    // Modeled-idle until the next own arrival (or
                    // drained): steal a queued request from a peer that
                    // is meaningfully behind. The margin is our running
                    // mean service time, the natural "is this worth
                    // one of my service slots" scale for this engine.
                    _ => {
                        let margin_ns = service_total_ns.checked_div(served).unwrap_or(0);
                        self.steal_one(me, &mut rng, busy_until_ns, margin_ns)
                    }
                }
            } else {
                None
            };
            let idx = match theft {
                Some(i) => {
                    stolen += 1;
                    i
                }
                None => match own.take_next() {
                    Some(i) => i,
                    // A thief won the race between our peek and take;
                    // re-check (the queue only drains, so this
                    // terminates).
                    None if next_own_at.is_some() => continue,
                    None => break,
                },
            };
            let request = &self.trace[idx as usize];
            let start_ns = busy_until_ns.max(request.at_ns);
            if self.steal_enabled {
                // Publish the *expected* completion of the request we
                // are about to serve (start + running mean service), so
                // a peer stuck in a long request is visibly behind while
                // it is stuck, not only after it finishes. The true
                // position replaces the estimate at the next loop top.
                // Published before the skew gate below, which is what
                // guarantees the minimum-position worker never gates on
                // itself (its own published position exceeds its start).
                let mean_ns = service_total_ns.checked_div(served).unwrap_or(0);
                self.busy[me].store(start_ns + mean_ns, Ordering::Relaxed);
                // Bounded-skew coupling (conservative time-window
                // replay): hold this serve until every peer's virtual
                // position is within the skew window of our start. This
                // keeps the published clocks mutually comparable — the
                // entire basis of the steal guard — and stops a worker
                // racing far ahead of the pack and then "relieving"
                // backlog that only exists because of replay skew. The
                // wait is a scheduling artifact, so it charges nothing;
                // the laggard that defines the frontier never waits, so
                // the pool always makes progress.
                loop {
                    let frontier = self
                        .busy
                        .iter()
                        .map(|b| b.load(Ordering::Relaxed))
                        .min()
                        .expect("at least one worker");
                    if frontier.saturating_add(STEAL_SKEW_WINDOW_NS) >= start_ns {
                        break;
                    }
                    sim_htm::sched::yield_point();
                    std::thread::yield_now();
                }
            }
            let cycles_before = session.stats().cycles;
            serve(self.store, &mut session, request);
            let cycles_after = session.stats().cycles;
            let service_ns = ((cycles_after - cycles_before) as f64 * ns_per_cycle) as u64;
            busy_until_ns = start_ns + service_ns;
            served += 1;
            service_total_ns += service_ns;
            hists.record(request.class, busy_until_ns - request.at_ns);
        }
        *self.results[me].lock().unwrap_or_else(|e| e.into_inner()) =
            Some((hists, session.stats(), stolen));
    }
}

/// Runs one service cell: builds the machine, loads the store, replays
/// the trace through the configured scheduler and execution mode, and
/// summarizes latencies.
///
/// # Panics
///
/// Panics when the store cannot hold the keyspace (misconfigured
/// geometry), when a worker hits an engine fault, when a request is lost
/// or double-served (a scheduler bug), or when the conservation check
/// applies and fails.
pub fn run_service(config: &ServiceConfig) -> ServiceReport {
    run_service_with(config, |pool, threads| {
        std::thread::scope(|s| {
            for me in 0..threads {
                s.spawn(move || pool.worker(me));
            }
        });
    })
}

/// [`run_service`] with the session-mode workers driven as virtual
/// threads of the deterministic cooperative scheduler: the entire
/// interleaving — including every steal race — is a pure function of
/// `sched_config` and the trace seed. `on_ready` runs once after the
/// store is loaded and before any worker spawns (checker harnesses
/// snapshot the initial store words there); `on_worker_start` /
/// `on_worker_done` run inside each virtual thread (install history
/// recorders there).
///
/// Batch mode has its own controlled entry points on the executor
/// (`execute_chained_controlled`); this driver supports session mode.
///
/// # Panics
///
/// As [`run_service`]; additionally panics when `config.mode` is
/// [`ExecMode::Batch`].
#[cfg(feature = "deterministic")]
pub fn run_service_controlled(
    config: &ServiceConfig,
    sched_config: &sim_htm::sched::SchedConfig,
    on_ready: &(dyn Fn(&Heap, &KvStore) + Sync),
    on_worker_start: &(dyn Fn(usize) + Sync),
    on_worker_done: &(dyn Fn(usize) + Sync),
) -> (ServiceReport, sim_htm::sched::RunResult) {
    assert!(
        matches!(config.mode, ExecMode::Session),
        "the controlled service driver runs session mode; drive batch chains \
         through ParallelExecutor::execute_chained_controlled"
    );
    let mut run = None;
    let report = run_service_with(config, |pool, threads| {
        on_ready(pool.heap, pool.store);
        let bodies: Vec<Box<dyn FnOnce() + Send + '_>> = (0..threads)
            .map(|me| {
                Box::new(move || {
                    on_worker_start(me);
                    pool.worker(me);
                    on_worker_done(me);
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        run = Some(sim_htm::sched::run_threads(sched_config, bodies));
    });
    (report, run.expect("spawn closure always runs"))
}

/// Shared cell driver: builds machine, store, and trace, dispatches on
/// the execution mode (`spawn` drives the session-mode pool), and runs
/// the invariant checks every mode must pass.
fn run_service_with(
    config: &ServiceConfig,
    spawn: impl for<'s> FnOnce(&'s SessionPool<'s>, usize),
) -> ServiceReport {
    assert!(config.threads > 0, "service pool needs at least one worker");
    let heap = Arc::new(Heap::new(HeapConfig { words: config.heap_words }));
    let htm = Htm::new(Arc::clone(&heap), config.htm);
    let mut builder = TmConfig::builder(config.algorithm).interleave_accesses(2);
    if let Some(f) = config.tm_overrides {
        builder = f(builder);
    }
    let tm_config = builder.build().expect("service TM configuration rejected");
    let rt = TmRuntime::new(Arc::clone(&heap), htm, tm_config)
        .expect("service runtime construction cannot fail");
    #[cfg(feature = "mutants")]
    for mutant in &config.armed_mutants {
        rt.set_mutant(*mutant, true);
    }

    let store = KvStore::create(&heap, config.kv).expect("service heap too small for the store");
    for key in 1..=config.trace.keyspace {
        store
            .load(&heap, key, INITIAL_BALANCE)
            .expect("store geometry cannot hold the keyspace; grow buckets or shards");
    }
    let initial_sum = store.sum_direct(&heap);

    let trace = gen::generate(&config.trace);

    let mut per_class: [Histogram; 5] = std::array::from_fn(|_| Histogram::new());
    let mut overall = Histogram::new();
    let mut tm = rh_norec::TmThreadStats::default();
    let mut stolen = 0u64;
    let mut batched = 0u64;
    let mut batch_commits = 0u64;
    let mut batch_aborts = 0u64;

    match config.mode {
        ExecMode::Session => {
            let pool = SessionPool::build(config, &heap, &rt, &store, &trace);
            spawn(&pool, config.threads);
            for slot in &pool.results {
                let (hists, stats, worker_stolen) = slot
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("service worker must report before the pool joins");
                for (acc, h) in per_class.iter_mut().zip(hists.per_class.iter()) {
                    acc.merge(h);
                }
                overall.merge(&hists.overall);
                tm = tm.merge(&stats);
                stolen += worker_stolen;
            }
        }
        ExecMode::Batch(former_config) => {
            let out = run_batch_pipeline(config, former_config, &heap, &rt, &store, &trace);
            per_class = out.per_class;
            overall = out.overall;
            tm = out.tm;
            batched = out.batched;
            batch_commits = out.batch_commits;
            batch_aborts = out.batch_aborts;
        }
    }

    // Exactly-once: every trace request served once. A lost or
    // double-served request is a scheduler bug (e.g. a broken steal
    // claim), whatever it does to the store.
    assert_eq!(
        overall.count(),
        trace.len() as u64,
        "service scheduling invariant: {} requests in the trace but {} served — \
         a request was lost or served twice ({:?}, {:?})",
        trace.len(),
        overall.count(),
        config.algorithm,
        config.sched,
    );

    let conserved = if config.trace.mix.conserves_sum() {
        let now = store.sum_direct(&heap);
        assert_eq!(
            now, initial_sum,
            "KV conservation violated: balance sum drifted {initial_sum} -> {now} \
             under a transfer-only mix ({:?})",
            config.algorithm
        );
        Some(true)
    } else {
        None
    };

    ServiceReport {
        algorithm: config.algorithm,
        classes: OpClass::ALL
            .iter()
            .enumerate()
            .filter(|(i, _)| per_class[*i].count() > 0)
            .map(|(i, c)| ClassStats { class: *c, latency: summarize(&per_class[i]) })
            .collect(),
        overall: summarize(&overall),
        requests: overall.count(),
        commits: tm.commits + batch_commits,
        aborts: tm.htm_conflict_aborts()
            + tm.htm_capacity_aborts()
            + tm.fast_other_aborts
            + tm.slow_path_restarts
            + batch_aborts,
        stolen,
        batched,
        conserved,
    }
}

/// What the batch pipeline hands back to the shared driver.
struct PipelineOut {
    per_class: [Histogram; 5],
    overall: Histogram,
    tm: rh_norec::TmThreadStats,
    batched: u64,
    batch_commits: u64,
    batch_aborts: u64,
}

/// The batch-mode pipeline: form segments, execute block chains on the
/// batch executor with cross-block handoff, run fallback stretches on
/// sessions over the same modeled pool.
///
/// Completion model, per chain of consecutive blocks:
///
/// * the chain starts at `max(engine_free, close of the first block)`;
/// * block `b` completes at `max(completion of b−1, close_at of b)` plus
///   its share of the chain's elapsed execution (the executor's
///   per-block elapsed-cycle deltas at [`rh_norec::cost::MODEL_HZ`]);
/// * every member of a block gets the block's completion as its response
///   instant (a block's results are released when its validation wave
///   clears — the rank-ordered commit sweep is charged to the engine
///   clock, after which the pool is free for the next segment).
///
/// Fallback stretches spread round-robin across `threads` virtual worker
/// clocks, all released at `engine_free` — the same pool model session
/// mode uses, so the two modes' sojourns are comparable.
fn run_batch_pipeline(
    config: &ServiceConfig,
    former_config: FormerConfig,
    heap: &Arc<Heap>,
    rt: &Arc<TmRuntime>,
    store: &KvStore,
    trace: &[Request],
) -> PipelineOut {
    let ns_per_cycle = 1.0e9 / rh_norec::cost::MODEL_HZ;
    let exec = ParallelExecutor::new(
        Arc::clone(heap),
        BatchConfig::with_workers(config.threads.min(rh_norec::MAX_BATCH_WORKERS)),
    )
    .expect("service batch executor configuration rejected");
    #[cfg(feature = "mutants")]
    for mutant in &config.armed_mutants {
        exec.set_mutant(*mutant, true);
    }
    let mut former = Former::new(former_config);
    let segments: Vec<Segment> = former.form(trace).to_vec();

    let mut session = rt.open_session().expect("free worker slot");
    let mut hists = WorkerHists::new();
    let mut batched = 0u64;
    let mut batch_commits = 0u64;
    let mut batch_aborts = 0u64;
    // When the pool as a whole is free again (ns).
    let mut engine_free = 0u64;
    // Recycled chain buffers (`ranks` maps chain rank -> trace index).
    let mut txns = Vec::new();
    let mut ranks: Vec<u32> = Vec::new();
    let mut bounds = Vec::new();
    let mut closes = Vec::new();
    // Recycled fallback virtual-worker clocks.
    let mut worker_free = vec![0u64; config.threads];

    let mut i = 0;
    while i < segments.len() {
        match segments[i] {
            Segment::Session { start, len } => {
                // Spread the fallback stretch over the pool's virtual
                // clocks, all released when the engine is free.
                worker_free.iter_mut().for_each(|w| *w = engine_free);
                for (k, request) in trace[start..start + len].iter().enumerate() {
                    let clock = &mut worker_free[k % config.threads];
                    let start_ns = (*clock).max(request.at_ns);
                    let cycles_before = session.stats().cycles;
                    serve(store, &mut session, request);
                    let cycles_after = session.stats().cycles;
                    let service_ns =
                        ((cycles_after - cycles_before) as f64 * ns_per_cycle) as u64;
                    *clock = start_ns + service_ns;
                    hists.record(request.class, *clock - request.at_ns);
                }
                engine_free = worker_free.iter().copied().max().unwrap_or(engine_free);
                i += 1;
            }
            Segment::Batch { .. } => {
                // Gather the maximal run of consecutive blocks into one
                // chain (cross-block handoff happens inside the
                // executor's shared speculation window).
                txns.clear();
                ranks.clear();
                bounds.clear();
                closes.clear();
                while let Some(&Segment::Batch { start, len, close_at_ns }) = segments.get(i) {
                    for (offset, request) in trace[start..start + len].iter().enumerate() {
                        txns.push(crate::batch::KvBatchTxn::new(
                            store,
                            crate::batch::BatchOp::from_request(request),
                        ));
                        ranks.push((start + offset) as u32);
                    }
                    bounds.push(txns.len());
                    closes.push(close_at_ns);
                    i += 1;
                }
                let (report, elapsed_cycles) = exec.execute_chained(&txns, &bounds);
                batch_commits += report.txs();
                batch_aborts += report.aborts();
                batched += report.txs();
                // Per-block completion recurrence over the chain.
                let mut completion = engine_free.max(closes[0]);
                let mut prev_elapsed_ns = 0u64;
                let mut block_start = 0usize;
                for (b, &end) in bounds.iter().enumerate() {
                    let elapsed_ns =
                        (elapsed_cycles[b] as f64 * ns_per_cycle) as u64;
                    let delta_ns = elapsed_ns - prev_elapsed_ns;
                    prev_elapsed_ns = elapsed_ns;
                    completion = completion.max(closes[b]) + delta_ns;
                    for &trace_idx in &ranks[block_start..end] {
                        let request = &trace[trace_idx as usize];
                        hists.record(request.class, completion - request.at_ns);
                    }
                    block_start = end;
                }
                // The rank-ordered commit sweep runs once per chain.
                engine_free =
                    completion + (report.commit_cycles() as f64 * ns_per_cycle) as u64;
            }
        }
    }

    PipelineOut {
        per_class: hists.per_class,
        overall: hists.overall,
        tm: session.stats(),
        batched,
        batch_commits,
        batch_aborts,
    }
}

/// Dispatches one request to the store. Engine faults are programming
/// errors here (the service never writes in a read-only body), so they
/// panic.
fn serve(store: &KvStore, session: &mut rh_norec::Session, request: &Request) {
    match request.class {
        OpClass::Get => {
            store.get(session, request.key).expect("get cannot fault");
        }
        OpClass::Put => {
            store
                .put(session, request.key, request.amount)
                .expect("put cannot fault on a store sized for the keyspace");
        }
        OpClass::Delete => {
            store.delete(session, request.key).expect("delete cannot fault");
        }
        OpClass::Transfer => {
            store
                .transfer(session, request.key, request.key2, request.amount)
                .expect("transfer cannot fault");
        }
        OpClass::Range => {
            store
                .range_sum(session, request.key, request.key2)
                .expect("range cannot fault");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::Mix;

    fn smoke_trace(mix: Mix) -> TraceConfig {
        TraceConfig { requests: 2_000, keyspace: 128, mix, ..TraceConfig::default() }
    }

    #[test]
    fn a_service_cell_runs_and_reports() {
        let config = ServiceConfig::new(Algorithm::RhNorec, 3, smoke_trace(Mix::read_heavy()));
        let report = run_service(&config);
        assert_eq!(report.requests, 2_000);
        assert!(report.commits >= 2_000, "every request commits at least one tx");
        assert!(report.overall.p50_ns > 0);
        assert!(report.overall.p50_ns <= report.overall.p95_ns);
        assert!(report.overall.p95_ns <= report.overall.p99_ns);
        assert!(report.overall.p99_ns <= report.overall.p999_ns);
        assert!(report.overall.p999_ns <= report.overall.max_ns);
        assert!(report.conserved.is_none(), "read_heavy mix has puts: check inapplicable");
        assert_eq!(report.stolen, 0, "static partition never steals");
    }

    #[test]
    fn transfer_mix_conserves_the_balance_sum_on_every_engine() {
        for algorithm in Algorithm::PAPER_SET {
            let config = ServiceConfig::new(algorithm, 4, smoke_trace(Mix::transfer_heavy()));
            let report = run_service(&config);
            assert_eq!(report.conserved, Some(true), "{algorithm:?}");
        }
    }

    #[test]
    fn identical_seeds_replay_identical_request_streams() {
        let config = ServiceConfig::new(Algorithm::Norec, 2, smoke_trace(Mix::transfer_heavy()));
        let a = run_service(&config);
        let b = run_service(&config);
        assert_eq!(a.requests, b.requests);
        let counts = |r: &ServiceReport| {
            r.classes.iter().map(|c| (c.class, c.latency.count)).collect::<Vec<_>>()
        };
        assert_eq!(counts(&a), counts(&b), "class partition must be trace-determined");
    }

    #[test]
    fn steal_mode_conserves_and_serves_exactly_once_on_every_engine() {
        for algorithm in Algorithm::PAPER_SET {
            let mut config =
                ServiceConfig::new(algorithm, 4, smoke_trace(Mix::transfer_heavy()));
            config.sched = SchedPolicy::Steal { enabled: true };
            let report = run_service(&config);
            assert_eq!(report.requests, 2_000, "{algorithm:?}");
            assert_eq!(report.conserved, Some(true), "{algorithm:?}");
        }
    }

    #[test]
    fn steal_disabled_matches_the_static_partition_latencies() {
        // At one worker there is no engine contention, so the modeled
        // cycle stream is deterministic and the parity is exact. (The
        // multi-worker bit-for-bit parity lives in the checker crate
        // under the controlled scheduler, where interleavings are a
        // pure function of the seed.)
        let base = ServiceConfig::new(Algorithm::Tl2, 1, smoke_trace(Mix::transfer_heavy()));
        let mut parity = base.clone();
        parity.sched = SchedPolicy::Steal { enabled: false };
        let a = run_service(&base);
        let b = run_service(&parity);
        assert_eq!(a.overall.p50_ns, b.overall.p50_ns);
        assert_eq!(a.overall.p99_ns, b.overall.p99_ns);
        assert_eq!(a.overall.max_ns, b.overall.max_ns);
        assert_eq!(b.stolen, 0);

        // Multi-worker, free-running: the partition (which worker serves
        // which class) is still trace-determined and nothing is stolen.
        let mut multi = ServiceConfig::new(Algorithm::Tl2, 3, smoke_trace(Mix::transfer_heavy()));
        multi.sched = SchedPolicy::Steal { enabled: false };
        let m = run_service(&multi);
        assert_eq!(m.stolen, 0);
        assert_eq!(m.requests, 2_000);
    }

    #[test]
    fn batch_mode_conserves_and_batches_the_batchable_stream() {
        for algorithm in [Algorithm::RhNorec, Algorithm::LockElision] {
            let mut config =
                ServiceConfig::new(algorithm, 4, smoke_trace(Mix::transfer_heavy()));
            config.mode = ExecMode::Batch(FormerConfig::default());
            let report = run_service(&config);
            assert_eq!(report.requests, 2_000, "{algorithm:?}");
            assert_eq!(report.conserved, Some(true), "{algorithm:?}");
            assert!(report.batched > 0, "transfer mix must form blocks ({algorithm:?})");
        }
    }
}
