//! # sim-htm: a software-simulated best-effort hardware transactional memory
//!
//! This crate models the architecturally visible behaviour of Intel's
//! Restricted Transactional Memory (RTM, Haswell) over the [`sim_mem`]
//! shared heap, so that the hybrid TM algorithms of *Reduced Hardware
//! NOrec* (Matveev & Shavit, ASPLOS 2015) can be built and evaluated
//! without RTM hardware (which is fused off on modern parts).
//!
//! ## What is modeled
//!
//! * **Best effort, no progress guarantee.** A transaction may abort at any
//!   point — conflict, capacity, or a spurious event — and the abort carries
//!   an [`AbortCode`] with the RTM-style *may-retry* hint that drives the
//!   paper's retry policies.
//! * **Speculative buffering.** Writes go to a per-transaction buffer and
//!   are published atomically at commit under the heap's line locks, so no
//!   other thread — transactional or not — ever observes a partial commit.
//! * **Cache-line conflict detection.** The read set records per-line
//!   version snapshots; the transaction snoops the heap's coherence clock on
//!   every access and revalidates when it moves. A conflicting commit or
//!   coherent store therefore aborts the transaction before it can return an
//!   inconsistent value — full opacity, as real HTM provides.
//! * **Strong isolation.** Non-transactional coherent stores
//!   ([`sim_mem::Heap::store`]) doom every transaction tracking the line.
//! * **Capacity limits with an SMT model.** Write capacity models the L1
//!   (512 lines by default), read capacity the bloom-filter/L2 mechanism
//!   (4096 lines). When two registered threads share a core (HyperThreading)
//!   each gets half — reproducing the >8-thread capacity knee in the paper's
//!   figures.
//!
//! ## What is deliberately different
//!
//! Real RTM detects conflicts *eagerly* (the instant another core's request
//! hits a tracked line) while this simulator detects them at the victim's
//! next access or commit. No TM algorithm can observe the difference: in
//! both cases the victim aborts before returning any value that could
//! expose the conflict, and exactly one of two conflicting transactions
//! survives.
//!
//! ## Example
//!
//! ```rust
//! use sim_mem::{Heap, HeapConfig};
//! use sim_htm::{Htm, HtmConfig};
//! use std::sync::Arc;
//!
//! let heap = Arc::new(Heap::new(HeapConfig::default()));
//! let htm = Htm::new(heap.clone(), HtmConfig::default());
//! let addr = heap.allocator().alloc(0, 1)?;
//!
//! let mut thread = htm.register(0);
//! thread.begin()?;
//! let v = thread.read(addr)?;
//! thread.write(addr, v + 1)?;
//! thread.commit()?;
//! assert_eq!(heap.load(addr), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod abort;
mod config;
mod htm;
mod rng;
pub mod sched;
mod stats;
mod thread;

pub use abort::{AbortCode, HtmAbort};
pub use config::{Associativity, HtmConfig, Topology};
pub use htm::{Htm, RegisterError};
pub use stats::HtmThreadStats;
pub use thread::HtmThread;
