//! Per-thread HTM activity counters.

/// Counters describing one thread's simulated-HTM activity.
///
/// The TM engines in `rh-norec` read these to produce the per-figure
/// analysis rows (HTM conflict/capacity aborts per operation, etc.).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct HtmThreadStats {
    /// Transactions begun (successfully entered speculation).
    pub begins: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Aborts classified as conflicts.
    pub conflict_aborts: u64,
    /// Aborts classified as capacity overflow.
    pub capacity_aborts: u64,
    /// Explicit (program-requested) aborts.
    pub explicit_aborts: u64,
    /// Spurious (external event) aborts.
    pub spurious_aborts: u64,
    /// `begin` refusals because HTM is disabled.
    pub unsupported: u64,
}

impl HtmThreadStats {
    /// Total aborts of every kind (excluding `begin` refusals).
    pub fn total_aborts(&self) -> u64 {
        self.conflict_aborts + self.capacity_aborts + self.explicit_aborts + self.spurious_aborts
    }

    /// Component-wise difference `self - earlier`, for interval measurement.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is not component-wise `<= self`.
    pub fn since(&self, earlier: &HtmThreadStats) -> HtmThreadStats {
        HtmThreadStats {
            begins: self.begins - earlier.begins,
            commits: self.commits - earlier.commits,
            conflict_aborts: self.conflict_aborts - earlier.conflict_aborts,
            capacity_aborts: self.capacity_aborts - earlier.capacity_aborts,
            explicit_aborts: self.explicit_aborts - earlier.explicit_aborts,
            spurious_aborts: self.spurious_aborts - earlier.spurious_aborts,
            unsupported: self.unsupported - earlier.unsupported,
        }
    }

    /// Component-wise sum, for aggregating across threads.
    pub fn merge(&self, other: &HtmThreadStats) -> HtmThreadStats {
        HtmThreadStats {
            begins: self.begins + other.begins,
            commits: self.commits + other.commits,
            conflict_aborts: self.conflict_aborts + other.conflict_aborts,
            capacity_aborts: self.capacity_aborts + other.capacity_aborts,
            explicit_aborts: self.explicit_aborts + other.explicit_aborts,
            spurious_aborts: self.spurious_aborts + other.spurious_aborts,
            unsupported: self.unsupported + other.unsupported,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_merge() {
        let a = HtmThreadStats {
            begins: 10,
            commits: 6,
            conflict_aborts: 2,
            capacity_aborts: 1,
            explicit_aborts: 1,
            spurious_aborts: 0,
            unsupported: 0,
        };
        assert_eq!(a.total_aborts(), 4);
        let b = a.merge(&a);
        assert_eq!(b.begins, 20);
        assert_eq!(b.total_aborts(), 8);
    }

    #[test]
    fn since_subtracts() {
        let early = HtmThreadStats { begins: 3, commits: 2, ..Default::default() };
        let late = HtmThreadStats { begins: 10, commits: 9, ..Default::default() };
        let d = late.since(&early);
        assert_eq!(d.begins, 7);
        assert_eq!(d.commits, 7);
    }
}
