//! KV operations as batch transactions: the store's get/transfer
//! semantics re-expressed against the batch engine's
//! [`TxView`](rh_norec::batch::TxView) so a pre-formed request trace can
//! run through [`rh_norec::batch::ParallelExecutor`] instead of the
//! interactive session API.
//!
//! The word-level layout (bucket probe, `[key, value]` slot pairs, hole
//! punching) is byte-identical to [`KvStore`]'s transactional paths —
//! both go through the same `bucket_of`/`slot` geometry — so the batch
//! engine and the interactive engines race on the *same* store images
//! and the checker can compare their histories key for key.

use rh_norec::batch::{BatchTxn, Blocked, TxView};
use sim_mem::Addr;

use crate::gen::{OpClass, Request};
use crate::store::KvStore;

/// One KV request in batch form.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchOp {
    /// Point read of one key (pure read set; never blocks commit).
    Get {
        /// The key to read.
        key: u64,
    },
    /// Atomic balance move between two keys, with the store's
    /// insufficient-funds and missing-key short-circuits.
    Transfer {
        /// Source key.
        src: u64,
        /// Destination key.
        dst: u64,
        /// Amount to move.
        amount: u64,
    },
}

impl BatchOp {
    /// Converts a generated request. Only the conservation-checkable
    /// classes have batch forms; see [`crate::gen::Mix::conserves_sum`].
    ///
    /// # Panics
    ///
    /// Panics on put/delete/range requests.
    pub fn from_request(request: &Request) -> BatchOp {
        match request.class {
            OpClass::Get => BatchOp::Get { key: request.key },
            OpClass::Transfer => BatchOp::Transfer {
                src: request.key,
                dst: request.key2,
                amount: request.amount,
            },
            other => panic!("no batch form for {other:?} requests"),
        }
    }
}

/// A [`BatchOp`] bound to its store: the [`BatchTxn`] the executor runs.
#[derive(Clone, Copy, Debug)]
pub struct KvBatchTxn<'a> {
    store: &'a KvStore,
    op: BatchOp,
}

impl<'a> KvBatchTxn<'a> {
    /// Binds `op` to `store`.
    pub fn new(store: &'a KvStore, op: BatchOp) -> KvBatchTxn<'a> {
        KvBatchTxn { store, op }
    }

    /// The bound operation.
    pub fn op(&self) -> BatchOp {
        self.op
    }

    /// The batch form of [`KvStore::probe`]: the value-word address of
    /// `key`'s occupied slot, or `None` when absent. Same scan order and
    /// no-early-stop hole semantics as the interactive paths.
    fn probe(&self, view: &mut TxView<'_>, key: u64) -> Result<Option<Addr>, Blocked> {
        let base = self.store.bucket_of(key);
        for i in 0..self.store.config().slots_per_bucket {
            let (k_addr, v_addr) = KvStore::slot(base, i);
            if view.read(k_addr)? == key {
                return Ok(Some(v_addr));
            }
        }
        Ok(None)
    }
}

impl BatchTxn for KvBatchTxn<'_> {
    fn execute(&self, view: &mut TxView<'_>) -> Result<(), Blocked> {
        match self.op {
            BatchOp::Get { key } => {
                if let Some(v_addr) = self.probe(view, key)? {
                    let _ = view.read(v_addr)?;
                }
            }
            BatchOp::Transfer { src, dst, amount } => {
                if src == dst {
                    return Ok(());
                }
                let Some(src_val) = self.probe(view, src)? else { return Ok(()) };
                let Some(dst_val) = self.probe(view, dst)? else { return Ok(()) };
                let balance = view.read(src_val)?;
                if balance < amount {
                    return Ok(());
                }
                view.write(src_val, balance - amount);
                let dst_balance = view.read(dst_val)?;
                view.write(dst_val, dst_balance + amount);
            }
        }
        Ok(())
    }
}

/// Binds a whole get/transfer trace to `store`, in trace order — the
/// order *is* the batch's rank order and therefore its serialization.
///
/// # Panics
///
/// Panics if the trace contains a class with no batch form (generate it
/// with a [`crate::gen::Mix`] where
/// [`conserves_sum`](crate::gen::Mix::conserves_sum) holds).
pub fn bind_trace<'a>(store: &'a KvStore, trace: &[Request]) -> Vec<KvBatchTxn<'a>> {
    trace.iter().map(|r| KvBatchTxn::new(store, BatchOp::from_request(r))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{self, Mix, TraceConfig};
    use crate::store::KvConfig;
    use rh_norec::batch::{execute_sequential, BatchConfig, ParallelExecutor};
    use sim_mem::{Heap, HeapConfig};
    use std::sync::Arc;

    #[test]
    fn batched_transfers_conserve_and_match_interactive_semantics() {
        let heap = Arc::new(Heap::new(HeapConfig { words: 1 << 20 }));
        let store = KvStore::create(&heap, KvConfig::for_keyspace(16)).unwrap();
        for key in 1..=16u64 {
            store.load(&heap, key, 100).unwrap();
        }
        let trace = gen::generate(&TraceConfig {
            requests: 400,
            keyspace: 16,
            mix: Mix::transfer_heavy(),
            seed: 7,
            ..TraceConfig::default()
        });
        let batch = bind_trace(&store, &trace);
        let exec = ParallelExecutor::new(Arc::clone(&heap), BatchConfig::with_workers(4)).unwrap();
        let report = exec.execute(&batch);
        assert!(report.speculative());
        assert_eq!(report.txs(), 400);
        assert_eq!(store.sum_direct(&heap), 1600, "batch transfers minted or lost balance");
        assert_eq!(store.len_direct(&heap), 16);
    }

    #[test]
    fn batch_final_state_equals_sequential_rank_order() {
        let trace = gen::generate(&TraceConfig {
            requests: 300,
            keyspace: 8,
            mix: Mix::transfer_heavy(),
            seed: 21,
            ..TraceConfig::default()
        });
        let run = |workers: usize| {
            let heap = Arc::new(Heap::new(HeapConfig { words: 1 << 20 }));
            let store = KvStore::create(&heap, KvConfig::for_keyspace(8)).unwrap();
            for key in 1..=8u64 {
                store.load(&heap, key, 50).unwrap();
            }
            let batch = bind_trace(&store, &trace);
            if workers == 0 {
                execute_sequential(&heap, &batch);
            } else {
                let exec =
                    ParallelExecutor::new(Arc::clone(&heap), BatchConfig::with_workers(workers))
                        .unwrap();
                exec.execute(&batch);
            }
            store.snapshot_words(&heap)
        };
        let sequential = run(0);
        assert_eq!(run(1), sequential);
        assert_eq!(run(4), sequential);
    }
}
