//! Shape tests: the paper's qualitative claims, asserted with generous
//! tolerances so they hold across hosts and schedules.
//!
//! These are the *reproduction criteria* from DESIGN.md §4: who wins, in
//! which direction the mechanism rows move — not absolute numbers.

use std::time::Duration;

use rh_bench::{run_cell, CellConfig, CellResult};
use rh_norec::Algorithm;
use sim_mem::Heap;
use tm_workloads::rbtree_bench::{RbTreeBench, RbTreeBenchConfig};
use tm_workloads::stamp::{Vacation, VacationConfig};
use tm_workloads::Workload;

fn rbtree(mutation_pct: u32) -> impl Fn(&Heap) -> Box<dyn Workload> {
    move |heap| {
        Box::new(RbTreeBench::new(
            heap,
            RbTreeBenchConfig { initial_size: 1000, mutation_pct },
        ))
    }
}

fn cell(alg: Algorithm, threads: usize, build: &dyn Fn(&Heap) -> Box<dyn Workload>) -> CellResult {
    let config = CellConfig::new(alg, threads, Duration::from_millis(300));
    run_cell(build, &config)
}

/// §1.1: the instrumentation gap — at one thread, the pure hardware fast
/// path beats the STMs decisively on a read-dominated tree.
#[test]
fn htm_beats_stms_single_threaded() {
    let build = rbtree(10);
    let rh = cell(Algorithm::RhNorec, 1, &build);
    let norec = cell(Algorithm::Norec, 1, &build);
    let tl2 = cell(Algorithm::Tl2, 1, &build);
    assert!(
        rh.throughput() > 1.5 * norec.throughput(),
        "RH {:.0} should dominate NOrec {:.0}",
        rh.throughput(),
        norec.throughput()
    );
    assert!(
        norec.throughput() > tl2.throughput(),
        "at one thread NOrec's lighter reads beat TL2 (paper §3.1)"
    );
}

/// §3.5: under write pressure at high thread counts, RH NOrec suffers
/// far fewer HTM conflicts and slow-path restarts than Hybrid NOrec, and
/// out-performs it.
#[test]
fn rh_beats_hybrid_under_contention() {
    let build = rbtree(40);
    let hy = cell(Algorithm::HybridNorec, 16, &build);
    let rh = cell(Algorithm::RhNorec, 16, &build);
    assert!(
        rh.throughput() > 1.5 * hy.throughput(),
        "RH {:.0} vs HY {:.0}: the paper reports 5.0x at 40% mutations",
        rh.throughput(),
        hy.throughput()
    );
    assert!(
        hy.conflicts_per_op() > 2.0 * rh.conflicts_per_op(),
        "conflict reduction missing: HY {:.4}/op vs RH {:.4}/op (paper: 8-20x)",
        hy.conflicts_per_op(),
        rh.conflicts_per_op()
    );
    // The prefix eliminates most slow-path restarts. Compare below the
    // SMT knee (8 threads), where restarts reflect the clock protocol
    // rather than sibling-eviction churn of the small hardware
    // transactions.
    let hy8 = cell(Algorithm::HybridNorec, 8, &build);
    let rh8 = cell(Algorithm::RhNorec, 8, &build);
    assert!(
        rh8.tm.restarts_per_slow_path() <= hy8.tm.restarts_per_slow_path() + 0.25,
        "RH restarts {:.3} should not exceed HY restarts {:.3} at 8 threads",
        rh8.tm.restarts_per_slow_path(),
        hy8.tm.restarts_per_slow_path()
    );
}

/// §3.6 Vacation: the HyperThreading capacity knee — above 8 threads the
/// per-thread HTM capacity halves and capacity aborts appear where there
/// were (almost) none.
#[test]
fn vacation_has_the_smt_capacity_knee() {
    let build = |heap: &Heap| -> Box<dyn Workload> {
        Box::new(Vacation::new(heap, VacationConfig::low(512)))
    };
    let at8 = cell(Algorithm::RhNorec, 8, &build);
    let at16 = cell(Algorithm::RhNorec, 16, &build);
    assert!(
        at16.capacity_per_op() > 2.0 * at8.capacity_per_op().max(1e-6)
            || at16.capacity_per_op() > 0.01,
        "capacity aborts should jump past 8 threads: {:.4} -> {:.4}",
        at8.capacity_per_op(),
        at16.capacity_per_op()
    );
}

/// The RH mechanisms actually engage: under fallback pressure the mixed
/// slow path commits prefixes and postfixes at high rates.
#[test]
fn rh_small_htms_mostly_succeed() {
    let build = rbtree(40);
    let rh = cell(Algorithm::RhNorec, 8, &build);
    assert!(rh.tm.prefix_attempts > 0, "no prefix activity: {:?}", rh.tm);
    assert!(
        rh.tm.prefix_success_ratio() > 0.5,
        "prefix success {:.2} too low",
        rh.tm.prefix_success_ratio()
    );
    if rh.tm.postfix_attempts > 0 {
        assert!(
            rh.tm.postfix_success_ratio() > 0.5,
            "postfix success {:.2} too low",
            rh.tm.postfix_success_ratio()
        );
    }
}
