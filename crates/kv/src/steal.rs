//! Work-stealing queues for the service tier's request scheduler.
//!
//! Each worker owns one [`StealDeque`] preloaded with the indices of its
//! partition of the request trace, in arrival order. Because the trace
//! is fully known at pool start, the structure never grows after
//! construction, which collapses the classical Chase–Lev deque to its
//! essential half: a fixed buffer and one consumption index (`head`)
//! that only ever moves forward. Everyone — the owner draining its own
//! partition and any thief — consumes from the *front*, so the owner
//! serves its requests in arrival order and a thief takes the victim's
//! **oldest waiting** request: the head of its backlog, the request
//! whose sojourn is growing fastest. (Stealing from the opposite end,
//! as a task-parallel Chase–Lev deque would, takes the victim's
//! *latest* arrival — future work whose migration relieves no queue;
//! worse, a drained thief then walks the victim's trace tail backwards,
//! serving ever-older arrivals on an ever-later clock, which inflates
//! exactly the tail percentiles stealing is meant to cut.)
//!
//! The no-push-after-init discipline is what lets the queue stay inside
//! `#![forbid(unsafe_code)]`: there is no circular buffer to grow, no
//! reclamation, and no ABA hazard — `head` is monotone and slot values
//! never change. The one real race, two consumers reaching for the same
//! slot, is arbitrated by a compare-and-swap on `head`.
//!
//! Determinism: the single scheduler-visible decision point is the
//! [`yield_point`] between a consumer reading the head slot and
//! publishing its claim. Under the controlled scheduler (the
//! `deterministic` feature) every interleaving of that window is a pure
//! function of the schedule seed; free-running, the CAS arbitration
//! keeps the outcome linearizable either way. When the queue is built
//! *uncontended* (stealing disabled), the owner takes a plain-load fast
//! path with no CAS and no extra yield points, so a steal-disabled pool
//! replays bit-for-bit the same history as the static-partition runner.
//!
//! [`yield_point`]: sim_htm::sched::yield_point

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// A fixed-capacity front-consumption steal queue of `u32` trace
/// indices.
///
/// See the module docs for the preload discipline and memory model.
#[derive(Debug)]
pub struct StealDeque {
    /// Slot `buf[0]` holds the owner's earliest-arriving request, in
    /// arrival order. Slots are atomics only so rival consumers may
    /// read them without `unsafe`; a slot's value never changes after
    /// construction.
    buf: Box<[AtomicU32]>,
    /// Next unconsumed slot; consumers advance it (CAS when contended).
    head: AtomicU64,
    /// Whether thieves may touch this queue. When `false` the owner
    /// advances `head` through a plain-load path with no CAS
    /// arbitration (there is nobody to arbitrate with), which keeps
    /// steal-disabled pools bit-identical to the static partition.
    contended: bool,
    /// `steal_bottom_race` mutant arm: the consumer publishes its claim
    /// with a plain store instead of the CAS, so its claim can race a
    /// rival consumer and the same request is served twice.
    #[cfg(feature = "mutants")]
    race_armed: bool,
}

impl StealDeque {
    /// Builds a queue over `indices` given in **arrival order**.
    /// `contended` must be true iff thieves will touch it.
    pub fn preload(indices: impl ExactSizeIterator<Item = u32>, contended: bool) -> Self {
        let buf: Vec<AtomicU32> = indices.map(AtomicU32::new).collect();
        StealDeque {
            buf: buf.into_boxed_slice(),
            head: AtomicU64::new(0),
            contended,
            #[cfg(feature = "mutants")]
            race_armed: false,
        }
    }

    /// Arms the `steal_bottom_race` mutant on this queue.
    #[cfg(feature = "mutants")]
    pub fn arm_race_mutant(&mut self) {
        self.race_armed = true;
    }

    /// The owner's next request (its earliest remaining arrival), or
    /// `None` if the queue looks empty. Advisory under contention: a
    /// thief may take the slot between peek and take.
    pub fn peek_next(&self) -> Option<u32> {
        let h = self.head.load(Ordering::Acquire);
        if h >= self.buf.len() as u64 {
            return None;
        }
        Some(self.buf[h as usize].load(Ordering::Relaxed))
    }

    /// Owner-side take of its next request in arrival order. Only the
    /// owning worker may call this.
    pub fn take_next(&self) -> Option<u32> {
        if !self.contended {
            // Nobody steals from an uncontended queue: plain index
            // walk, no CAS, no extra scheduler decision points.
            let h = self.head.load(Ordering::Relaxed);
            if h >= self.buf.len() as u64 {
                return None;
            }
            self.head.store(h + 1, Ordering::Relaxed);
            return Some(self.buf[h as usize].load(Ordering::Relaxed));
        }
        self.steal_top(|_| true)
    }

    /// Consumes from the front under contention (the victim's oldest
    /// waiting request when called by a thief). `accept` sees the
    /// candidate index before the claim is published; returning `false`
    /// rejects this queue without disturbing it. Retries internally on
    /// a lost CAS race (some other party took the slot; the next slot
    /// is re-offered to `accept`) and returns `None` once the queue is
    /// empty or the candidate is rejected.
    pub fn steal_top(&self, accept: impl Fn(u32) -> bool) -> Option<u32> {
        debug_assert!(self.contended, "steal from an owner-only queue");
        loop {
            let h = self.head.load(Ordering::SeqCst);
            if h >= self.buf.len() as u64 {
                return None;
            }
            let candidate = self.buf[h as usize].load(Ordering::Relaxed);
            if !accept(candidate) {
                return None;
            }
            // The race window: between reading the slot and claiming
            // it, a rival consumer may claim it. The controlled
            // scheduler exercises every interleaving of this window.
            sim_htm::sched::yield_point();
            #[cfg(feature = "mutants")]
            if self.race_armed {
                // MUTANT steal_bottom_race: publish the claim with a
                // plain store. If a rival consumer already advanced
                // `head`, both parties walk away holding the same
                // request.
                self.head.store(h + 1, Ordering::SeqCst);
                return Some(candidate);
            }
            if self
                .head
                .compare_exchange(h, h + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return Some(candidate);
            }
            // Lost the race; loop and look at the new head.
        }
    }

    /// Whether the queue currently looks empty (advisory under
    /// contention, exact once all workers are in their drain loops:
    /// indices are never pushed back, so empty is terminal).
    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::Acquire) >= self.buf.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_takes_in_arrival_order() {
        let d = StealDeque::preload((0..5u32).map(|i| i * 10), false);
        let taken: Vec<u32> = std::iter::from_fn(|| d.take_next()).collect();
        assert_eq!(taken, vec![0, 10, 20, 30, 40]);
        assert!(d.is_empty());
        assert_eq!(d.take_next(), None);
    }

    #[test]
    fn thief_steals_the_oldest_waiting_request() {
        let d = StealDeque::preload((0..4u32).map(|i| i + 1), true);
        assert_eq!(d.steal_top(|_| true), Some(1));
        assert_eq!(d.steal_top(|_| true), Some(2));
        // The owner continues from where the thieves left off, still in
        // arrival order.
        assert_eq!(d.take_next(), Some(3));
        assert_eq!(d.peek_next(), Some(4));
        assert_eq!(d.take_next(), Some(4));
        assert_eq!(d.take_next(), None);
        assert_eq!(d.steal_top(|_| true), None);
    }

    #[test]
    fn rejected_candidates_are_left_in_place() {
        let d = StealDeque::preload([7u32, 8].into_iter(), true);
        assert_eq!(d.steal_top(|c| c != 7), None);
        assert_eq!(d.take_next(), Some(7));
        assert_eq!(d.take_next(), Some(8));
    }

    #[test]
    fn last_element_goes_to_exactly_one_party() {
        // Free-running two-thread hammer on the last-element race: over
        // many rounds, the single element must be taken exactly once.
        use std::sync::atomic::AtomicUsize;
        for round in 0..200 {
            let d = StealDeque::preload([round as u32].into_iter(), true);
            let takes = AtomicUsize::new(0);
            std::thread::scope(|s| {
                s.spawn(|| {
                    if d.take_next().is_some() {
                        takes.fetch_add(1, Ordering::SeqCst);
                    }
                });
                s.spawn(|| {
                    if d.steal_top(|_| true).is_some() {
                        takes.fetch_add(1, Ordering::SeqCst);
                    }
                });
            });
            assert_eq!(takes.load(Ordering::SeqCst), 1, "round {round}");
        }
    }

    #[test]
    fn empty_preload_is_empty() {
        let d = StealDeque::preload(std::iter::empty(), true);
        assert!(d.is_empty());
        assert_eq!(d.take_next(), None);
        assert_eq!(d.steal_top(|_| true), None);
        assert_eq!(d.peek_next(), None);
    }
}
