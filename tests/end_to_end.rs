//! Workspace-spanning integration tests: every evaluation workload runs on
//! the hybrid algorithms over the simulated machine and keeps its
//! invariants, exactly as the benchmark harness drives them.

use std::sync::Arc;

use rand::SeedableRng;
use rh_norec_repro::htm::{Htm, HtmConfig};
use rh_norec_repro::mem::{Heap, HeapConfig};
use rh_norec_repro::tm::{Algorithm, TmConfig, TmRuntime};
use rh_norec_repro::workloads::rbtree_bench::{RbTreeBench, RbTreeBenchConfig};
use rh_norec_repro::workloads::stamp::{
    Genome, GenomeConfig, Intruder, IntruderConfig, Kmeans, KmeansConfig, Labyrinth,
    LabyrinthConfig, Ssca2, Ssca2Config, Vacation, VacationConfig, Yada, YadaConfig,
};
use rh_norec_repro::workloads::{Workload, WorkloadRng};

fn run_workload(build: &dyn Fn(&Heap) -> Box<dyn Workload>, algorithm: Algorithm, htm: HtmConfig) {
    let heap = Arc::new(Heap::new(HeapConfig { words: 1 << 21 }));
    let device = Htm::new(Arc::clone(&heap), htm);
    let rt = TmRuntime::new(Arc::clone(&heap), device, TmConfig::new(algorithm)).expect("runtime construction cannot fail");
    let workload = build(&heap);
    {
        let mut w = rt.open_session().expect("free worker slot");
        let mut rng = WorkloadRng::seed_from_u64(2026);
        workload.setup(&mut w, &mut rng);
    }
    std::thread::scope(|s| {
        for tid in 0..3usize {
            let rt = Arc::clone(&rt);
            let workload = &workload;
            s.spawn(move || {
                let mut w = rt.open_session().expect("free worker slot");
                let mut rng = WorkloadRng::seed_from_u64(7 + tid as u64);
                for _ in 0..150 {
                    workload.run_op(&mut w, &mut rng);
                }
            });
        }
    });
    workload
        .verify(&heap)
        .unwrap_or_else(|e| panic!("{} under {algorithm:?}: {e}", workload.name()));
}

type WorkloadBuilder = Box<dyn Fn(&Heap) -> Box<dyn Workload>>;

fn workloads() -> Vec<(&'static str, WorkloadBuilder)> {
    vec![
        (
            "rbtree",
            Box::new(|heap: &Heap| {
                Box::new(RbTreeBench::new(
                    heap,
                    RbTreeBenchConfig { initial_size: 400, mutation_pct: 40 },
                )) as Box<dyn Workload>
            }),
        ),
        (
            "vacation_low",
            Box::new(|heap: &Heap| {
                Box::new(Vacation::new(heap, VacationConfig::low(64))) as Box<dyn Workload>
            }),
        ),
        (
            "vacation_high",
            Box::new(|heap: &Heap| {
                Box::new(Vacation::new(heap, VacationConfig::high(64))) as Box<dyn Workload>
            }),
        ),
        (
            "intruder",
            Box::new(|heap: &Heap| {
                Box::new(Intruder::new(heap, IntruderConfig::default())) as Box<dyn Workload>
            }),
        ),
        (
            "genome",
            Box::new(|heap: &Heap| {
                Box::new(Genome::new(
                    heap,
                    GenomeConfig { genome_bases: 512, segment_bases: 10, segments: 1024, batch: 4 },
                    5,
                )) as Box<dyn Workload>
            }),
        ),
        (
            "ssca2",
            Box::new(|heap: &Heap| {
                Box::new(Ssca2::new(
                    heap,
                    Ssca2Config { scale: 7, max_degree: 8, arcs: 2048 },
                    6,
                )) as Box<dyn Workload>
            }),
        ),
        (
            "yada",
            Box::new(|heap: &Heap| {
                Box::new(Yada::new(
                    heap,
                    YadaConfig { grid: 6, min_angle_deg: 24.0 },
                )) as Box<dyn Workload>
            }),
        ),
        (
            "kmeans",
            Box::new(|heap: &Heap| {
                Box::new(Kmeans::new(
                    heap,
                    KmeansConfig { clusters: 8, dims: 4, points: 1024 },
                    7,
                )) as Box<dyn Workload>
            }),
        ),
        (
            "labyrinth",
            Box::new(|heap: &Heap| {
                Box::new(Labyrinth::new(heap, LabyrinthConfig { width: 24, height: 24, layers: 2 }))
                    as Box<dyn Workload>
            }),
        ),
    ]
}

#[test]
fn every_workload_runs_on_rh_norec() {
    for (name, build) in workloads() {
        eprintln!("rh-norec: {name}");
        run_workload(&*build, Algorithm::RhNorec, HtmConfig::default());
    }
}

#[test]
fn every_workload_runs_on_hybrid_norec() {
    for (name, build) in workloads() {
        eprintln!("hy-norec: {name}");
        run_workload(&*build, Algorithm::HybridNorec, HtmConfig::default());
    }
}

#[test]
fn every_workload_survives_a_machine_without_htm() {
    for (name, build) in workloads() {
        eprintln!("no-htm: {name}");
        run_workload(&*build, Algorithm::RhNorec, HtmConfig::disabled());
    }
}

#[test]
fn every_workload_survives_tiny_htm_capacity() {
    for (name, build) in workloads() {
        eprintln!("tiny: {name}");
        run_workload(&*build, Algorithm::RhNorec, HtmConfig::tiny_capacity());
    }
}

#[test]
fn rbtree_runs_on_every_algorithm() {
    for alg in Algorithm::ALL {
        eprintln!("rbtree on {alg:?}");
        run_workload(
            &|heap: &Heap| {
                Box::new(RbTreeBench::new(
                    heap,
                    RbTreeBenchConfig { initial_size: 300, mutation_pct: 20 },
                )) as Box<dyn Workload>
            },
            alg,
            HtmConfig::default(),
        );
    }
}
