//! A transactional bank demonstrating the safety properties the paper
//! insists on — opacity and privatization — under concurrent transfers.
//!
//! The account table and the transfer loop live in
//! `tm_workloads::batch` (shared with `rh-bench batch`, where the same
//! transfers race the batch engine against the interactive engines);
//! this example is a thin caller that adds the two demonstration
//! threads: auditors taking whole-bank snapshots inside read-only
//! transactions (they must always see the exact total), and a thread
//! that *privatizes* an account by transactionally closing it, after
//! which it may access the balance without any synchronization at all.
//!
//! ```text
//! cargo run --release --example bank
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use rh_norec_repro::htm::{Htm, HtmConfig};
use rh_norec_repro::mem::{Heap, HeapConfig};
use rh_norec_repro::tm::prelude::*;
use tm_workloads::batch::{transfer_batch, transfer_interactive, AccountTable};

const ACCOUNTS: u64 = 64;
const INITIAL: u64 = 1_000;
const TRANSFERS: usize = 30_000;

fn main() {
    let heap = Arc::new(Heap::new(HeapConfig::default()));
    let htm = Htm::new(Arc::clone(&heap), HtmConfig::default());
    let rt = TmRuntime::new(Arc::clone(&heap), htm, TmConfig::new(Algorithm::RhNorec))
        .expect("runtime construction cannot fail");

    let table = AccountTable::create(&heap, ACCOUNTS, INITIAL);

    let done = AtomicBool::new(false);
    let audits = std::sync::atomic::AtomicU64::new(0);

    std::thread::scope(|s| {
        // Transfer threads: the shared workload's zipfian transfer
        // stream, each thread on its own seed.
        for tid in 0..2u64 {
            let rt = Arc::clone(&rt);
            let table = &table;
            s.spawn(move || {
                let mut w = rt.open_session().expect("free worker slot");
                for t in transfer_batch(ACCOUNTS, TRANSFERS, 0.99, tid + 1) {
                    transfer_interactive(&mut w, table, &t);
                }
            });
        }
        // Auditor thread: snapshot consistency (opacity at work).
        {
            let rt = Arc::clone(&rt);
            let table = &table;
            let done = &done;
            let audits = &audits;
            s.spawn(move || {
                let mut w = rt.open_session().expect("free worker slot");
                while !done.load(Ordering::Acquire) {
                    let total = w
                        .run_read(|tx| {
                            let mut sum = 0u64;
                            for i in 0..ACCOUNTS {
                                sum += tx.read(table.balance(i))?;
                            }
                            Ok(sum)
                        })
                        .expect("audit cannot fault");
                    assert_eq!(total, ACCOUNTS * INITIAL, "torn audit snapshot!");
                    audits.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // Privatizer: close account 0, then use it non-transactionally.
        {
            let rt = Arc::clone(&rt);
            let heap = Arc::clone(&heap);
            let table = &table;
            let done = &done;
            s.spawn(move || {
                let mut w = rt.open_session().expect("free worker slot");
                std::thread::yield_now();
                let closed_balance = w
                    .run(|tx| {
                        tx.write(table.open(0), 0)?;
                        tx.read(table.balance(0))
                    })
                    .expect("privatization cannot fault");
                // The account is now private: plain loads and stores are
                // safe, exactly as after a privatizing commit on real HTM.
                heap.store(table.balance(0), closed_balance);
                for _ in 0..100_000 {
                    assert_eq!(
                        heap.load(table.balance(0)),
                        closed_balance,
                        "privatization violated"
                    );
                }
                // Reopen so the audit total stays exact.
                w.run(|tx| tx.write(table.open(0), 1)).expect("reopen cannot fault");
                done.store(true, Ordering::Release);
            });
        }
    });

    let final_total = table.total(&heap);
    println!("final total : {final_total} (expected {})", ACCOUNTS * INITIAL);
    println!("audits run  : {}", audits.load(Ordering::Relaxed));
    assert_eq!(final_total, ACCOUNTS * INITIAL);
    println!("opacity and privatization held throughout");
}
