//! # rh-norec: Reduced Hardware NOrec and its baselines
//!
//! A faithful reproduction of the TM algorithms evaluated in *Reduced
//! Hardware NOrec: A Safe and Scalable Hybrid Transactional Memory*
//! (Matveev & Shavit, ASPLOS 2015), over the [`sim_htm`] simulated
//! best-effort HTM and the [`sim_mem`] shared heap:
//!
//! * [`Algorithm::LockElision`] — HTM + global-lock fallback,
//! * [`Algorithm::Norec`] / [`Algorithm::NorecLazy`] — the NOrec STM,
//! * [`Algorithm::Tl2`] — the TL2 STM,
//! * [`Algorithm::HybridNorec`] — Hybrid NOrec (Dalessandro et al.),
//! * [`Algorithm::RhNorec`] — the paper's contribution, with its adaptive
//!   HTM prefix and HTM postfix (plus a postfix-only ablation).
//!
//! All algorithms present one interface: build a [`TmRuntime`], register a
//! [`TmThread`] per worker, and run closures with
//! [`TmThread::execute`]. Every algorithm provides opacity and
//! privatization — the same semantics as pure hardware transactions —
//! which is the point of the paper.
//!
//! ## Example
//!
//! ```rust
//! use std::sync::Arc;
//! use sim_mem::{Heap, HeapConfig};
//! use sim_htm::{Htm, HtmConfig};
//! use rh_norec::{Algorithm, TmConfig, TmRuntime, TxKind};
//!
//! let heap = Arc::new(Heap::new(HeapConfig::default()));
//! let htm = Htm::new(Arc::clone(&heap), HtmConfig::default());
//! let rt = TmRuntime::new(Arc::clone(&heap), htm, TmConfig::new(Algorithm::RhNorec))?;
//!
//! let account = heap.allocator().alloc(0, 1)?;
//! let mut worker = rt.register(0)?;
//! let old = worker.execute(TxKind::ReadWrite, |tx| {
//!     let v = tx.read(account)?;
//!     tx.write(account, v + 100)?;
//!     Ok(v)
//! });
//! assert_eq!(old, 0);
//! assert_eq!(heap.load(account), 100);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod algorithms;
pub mod batch;
mod clock_shard;
mod config;
pub mod cost;
mod error;
mod globals;
#[cfg(feature = "mutants")]
pub mod mutants;
mod policy;
pub mod prelude;
mod runtime;
mod session;
mod stats;
pub mod trace;
mod tx;
mod txlog;

/// `true` when deterministic-scheduling yield points and trace hooks are
/// compiled into the transactional hot path.
///
/// Instrumented builds (the `deterministic` feature, enabled by
/// `tm-check` and workspace tests) pay a thread-local lookup per
/// transactional access; release benchmark builds compile the hooks out
/// entirely. `rh-bench overhead` records this flag alongside its numbers
/// so results are never compared across mismatched builds.
pub const INSTRUMENTED: bool = cfg!(feature = "deterministic");

pub use batch::{BatchReport, BatchTxn, Blocked, ParallelExecutor, TxView};
pub use clock_shard::{ClockScheme, MAX_CLOCK_SHARDS};
pub use config::{
    Algorithm, BackoffConfig, BatchConfig, PrefixConfig, RetryPolicy, TmConfig, TmConfigBuilder,
    TxKind, MAX_BATCH_WORKERS, MAX_MVMAP_SHARDS,
};
pub use error::{TmError, TxFault, TxResult, TxRestart};
pub use globals::{clock, Globals};
pub use policy::PolicyConfig;
pub use runtime::{TmRuntime, TmThread};
pub use session::Session;
pub use stats::{ThreadReport, TmThreadStats};
pub use tx::Tx;
