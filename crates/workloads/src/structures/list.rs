//! A transactional sorted singly-linked list (the STAMP `list` substrate:
//! vacation's per-customer reservation lists, intruder's fragment lists).
//!
//! Node layout: `[next, key, value]`, kept sorted by key, duplicates
//! rejected.

use rh_norec::prelude::{Tx, TxResult};
use sim_mem::{Addr, Heap};

const NEXT: u64 = 0;
const KEY: u64 = 1;
const VALUE: u64 = 2;
const NODE_WORDS: u64 = 3;

/// A sorted linked list keyed by `u64`.
#[derive(Clone, Copy, Debug)]
pub struct SortedList {
    head: Addr,
}

impl SortedList {
    /// Allocates an empty list head (non-transactional, for setup).
    ///
    /// # Panics
    ///
    /// Panics if the heap is exhausted.
    pub fn create(heap: &Heap) -> SortedList {
        let head = heap
            .allocator()
            .alloc(0, 1)
            .expect("heap exhausted allocating list head");
        SortedList { head }
    }

    /// Allocates an empty list inside a transaction (vacation creates a
    /// reservation list per customer transactionally).
    ///
    /// # Errors
    ///
    /// Propagates transaction restarts.
    pub fn create_tx(tx: &mut Tx<'_>) -> TxResult<SortedList> {
        let head = tx.alloc(1)?;
        tx.write_addr(head, Addr::NULL)?;
        Ok(SortedList { head })
    }

    /// Rebuilds a handle from a head-pointer address.
    pub fn from_head_addr(head: Addr) -> SortedList {
        SortedList { head }
    }

    /// The heap word holding the head pointer.
    pub fn head_addr(&self) -> Addr {
        self.head
    }

    /// Inserts `key`; returns `false` when already present.
    ///
    /// # Errors
    ///
    /// Propagates transaction restarts.
    pub fn insert(&self, tx: &mut Tx<'_>, key: u64, value: u64) -> TxResult<bool> {
        let (prev, found) = self.locate(tx, key)?;
        if found {
            return Ok(false);
        }
        let next = if prev == self.head {
            tx.read_addr(self.head)?
        } else {
            tx.read_addr(prev.offset(NEXT))?
        };
        let node = tx.alloc(NODE_WORDS)?;
        tx.write_addr(node.offset(NEXT), next)?;
        tx.write(node.offset(KEY), key)?;
        tx.write(node.offset(VALUE), value)?;
        if prev == self.head {
            tx.write_addr(self.head, node)?;
        } else {
            tx.write_addr(prev.offset(NEXT), node)?;
        }
        Ok(true)
    }

    /// Removes `key`; returns its value if present.
    ///
    /// # Errors
    ///
    /// Propagates transaction restarts.
    pub fn remove(&self, tx: &mut Tx<'_>, key: u64) -> TxResult<Option<u64>> {
        let (prev, found) = self.locate(tx, key)?;
        if !found {
            return Ok(None);
        }
        let node = if prev == self.head {
            tx.read_addr(self.head)?
        } else {
            tx.read_addr(prev.offset(NEXT))?
        };
        let value = tx.read(node.offset(VALUE))?;
        let next = tx.read_addr(node.offset(NEXT))?;
        if prev == self.head {
            tx.write_addr(self.head, next)?;
        } else {
            tx.write_addr(prev.offset(NEXT), next)?;
        }
        tx.free(node)?;
        Ok(Some(value))
    }

    /// Looks up `key`.
    ///
    /// # Errors
    ///
    /// Propagates transaction restarts.
    pub fn get(&self, tx: &mut Tx<'_>, key: u64) -> TxResult<Option<u64>> {
        let (prev, found) = self.locate(tx, key)?;
        if !found {
            return Ok(None);
        }
        let node = if prev == self.head {
            tx.read_addr(self.head)?
        } else {
            tx.read_addr(prev.offset(NEXT))?
        };
        Ok(Some(tx.read(node.offset(VALUE))?))
    }

    /// Pops the smallest entry, if any.
    ///
    /// # Errors
    ///
    /// Propagates transaction restarts.
    pub fn pop_min(&self, tx: &mut Tx<'_>) -> TxResult<Option<(u64, u64)>> {
        let node = tx.read_addr(self.head)?;
        if node.is_null() {
            return Ok(None);
        }
        let key = tx.read(node.offset(KEY))?;
        let value = tx.read(node.offset(VALUE))?;
        let next = tx.read_addr(node.offset(NEXT))?;
        tx.write_addr(self.head, next)?;
        tx.free(node)?;
        Ok(Some((key, value)))
    }

    /// Counts entries transactionally.
    ///
    /// # Errors
    ///
    /// Propagates transaction restarts.
    pub fn len_tx(&self, tx: &mut Tx<'_>) -> TxResult<u64> {
        let mut node = tx.read_addr(self.head)?;
        let mut count = 0;
        while !node.is_null() {
            count += 1;
            node = tx.read_addr(node.offset(NEXT))?;
        }
        Ok(count)
    }

    /// Finds the node *before* where `key` lives/would live. Returns
    /// `(prev, found)`; `prev == head` means "insert at front".
    fn locate(&self, tx: &mut Tx<'_>, key: u64) -> TxResult<(Addr, bool)> {
        let mut prev = self.head;
        let mut node = tx.read_addr(self.head)?;
        while !node.is_null() {
            let k = tx.read(node.offset(KEY))?;
            if k == key {
                return Ok((prev, true));
            }
            if k > key {
                break;
            }
            prev = node;
            node = tx.read_addr(node.offset(NEXT))?;
        }
        Ok((prev, false))
    }

    /// Collects `(key, value)` pairs in order (quiescent heap only).
    pub fn collect(&self, heap: &Heap) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut node = Addr::from_word(heap.load(self.head));
        while !node.is_null() {
            out.push((heap.load(node.offset(KEY)), heap.load(node.offset(VALUE))));
            node = Addr::from_word(heap.load(node.offset(NEXT)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::single_runtime;
    use rh_norec::prelude::{Algorithm, TxKind};

    #[test]
    fn stays_sorted_and_deduplicated() {
        let (heap, rt) = single_runtime(Algorithm::Norec);
        let list = SortedList::create(&heap);
        let mut w = rt.open_session().expect("free worker slot");
        for k in [5u64, 1, 9, 3, 7, 5, 1] {
            w.execute(TxKind::ReadWrite, |tx| list.insert(tx, k, k * 10).map(|_| ()));
        }
        let keys: Vec<u64> = list.collect(&heap).into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn remove_front_middle_back() {
        let (heap, rt) = single_runtime(Algorithm::Norec);
        let list = SortedList::create(&heap);
        let mut w = rt.open_session().expect("free worker slot");
        for k in 1..=5u64 {
            w.execute(TxKind::ReadWrite, |tx| list.insert(tx, k, k).map(|_| ()));
        }
        assert_eq!(w.execute(TxKind::ReadWrite, |tx| list.remove(tx, 1)), Some(1));
        assert_eq!(w.execute(TxKind::ReadWrite, |tx| list.remove(tx, 3)), Some(3));
        assert_eq!(w.execute(TxKind::ReadWrite, |tx| list.remove(tx, 5)), Some(5));
        assert_eq!(w.execute(TxKind::ReadWrite, |tx| list.remove(tx, 9)), None);
        let keys: Vec<u64> = list.collect(&heap).into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![2, 4]);
    }

    #[test]
    fn pop_min_drains_in_order() {
        let (heap, rt) = single_runtime(Algorithm::Norec);
        let list = SortedList::create(&heap);
        let mut w = rt.open_session().expect("free worker slot");
        for k in [3u64, 1, 2] {
            w.execute(TxKind::ReadWrite, |tx| list.insert(tx, k, k).map(|_| ()));
        }
        let mut popped = Vec::new();
        while let Some((k, _)) = w.execute(TxKind::ReadWrite, |tx| list.pop_min(tx)) {
            popped.push(k);
        }
        assert_eq!(popped, vec![1, 2, 3]);
        assert!(list.collect(&heap).is_empty());
    }

    #[test]
    fn len_tracks_contents() {
        let (heap, rt) = single_runtime(Algorithm::Norec);
        let list = SortedList::create(&heap);
        let mut w = rt.open_session().expect("free worker slot");
        assert_eq!(w.execute(TxKind::ReadOnly, |tx| list.len_tx(tx)), 0);
        for k in 0..10u64 {
            w.execute(TxKind::ReadWrite, |tx| list.insert(tx, k, k).map(|_| ()));
        }
        assert_eq!(w.execute(TxKind::ReadOnly, |tx| list.len_tx(tx)), 10);
    }
}
