//! The global history recorder.

use std::sync::{Arc, Mutex};

use rh_norec::trace::{Event, TraceSink};

/// Collects the global, totally ordered event history of a controlled
/// run.
///
/// One `Recorder` is shared by every virtual thread of a run (each
/// thread installs it via [`rh_norec::trace::install`] with its own
/// vtid). Under the deterministic scheduler only one thread runs at a
/// time and every event is recorded before the next yield point, so the
/// push order *is* the real-time order of the run.
#[derive(Debug, Default)]
pub struct Recorder {
    events: Mutex<Vec<Event>>,
}

impl Recorder {
    /// A fresh, shareable recorder.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Drains and returns the recorded history.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut self.events.lock().unwrap())
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for Recorder {
    fn record(&self, event: Event) {
        self.events.lock().unwrap().push(event);
    }
}
