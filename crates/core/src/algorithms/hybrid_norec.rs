//! Hybrid NOrec of Dalessandro et al. (§2.1, §3.1) — the state-of-the-art
//! baseline the paper improves on.
//!
//! * **Fast path**: an uninstrumented hardware transaction that subscribes
//!   to `global_htm_lock` *and to the global clock at its start*. The early
//!   clock subscription is the scalability bottleneck: every slow-path
//!   writer's clock update aborts every running fast path, related data or
//!   not (the "false aborts" of Figure 1).
//! * **Slow path**: the eager NOrec STM, raising `global_htm_lock` at its
//!   first write so the direct in-place writes can never be half-seen by a
//!   fast path.
//! * Fast-path commits increment the clock only when `num_of_fallbacks`
//!   says a slow path is running, and abort if the §3.3 serial lock is
//!   held.

use sim_htm::AbortCode;
use sim_mem::Heap;

use crate::algorithms::common::{
    acquire_word_lock, classify_fast_abort, release_word_lock, xabort, FastCtx, FastFail, Meter,
};
use crate::clock_shard::ClockSnapshot;
use crate::cost;
use crate::algorithms::norec::{EagerCtx, LazyCtx};
use crate::error::{TxFault, TxResult};
use crate::runtime::TmThread;
use crate::trace;
use crate::tx::{Tx, TxCtx};
use crate::TxKind;

pub(crate) fn run<T>(
    t: &mut TmThread,
    kind: TxKind,
    body: &mut dyn FnMut(&mut Tx<'_>) -> TxResult<T>,
    lazy: bool,
) -> Result<T, TxFault> {
    let retries = t.rt.config().retry.fast_path_retries;
    let mut attempts = 0;
    loop {
        trace::begin(trace::Path::Fast);
        match try_fast(t, kind, body) {
            Ok(value) => {
                trace::commit(trace::Path::Fast);
                t.stats.fast_path_commits += 1;
                return Ok(value);
            }
            Err(FastFail::Fault(fault)) => {
                trace::abort();
                return Err(fault);
            }
            Err(FastFail::Htm(code)) => {
                trace::abort();
                if let Some(code) = code {
                    classify_fast_abort(&mut t.stats, code);
                    attempts += 1;
                    if code.may_retry() && attempts < retries {
                        // Backoff before retrying in hardware so the
                        // conflicting transaction can finish (what
                        // production elision runtimes do between xbegin
                        // attempts); otherwise retries re-collide and
                        // convoy into the fallback.
                        sim_htm::sched::yield_point();
                        t.backoff.pause(attempts - 1, &mut t.stats.cycles);
                        continue;
                    }
                }
                break;
            }
        }
    }
    if lazy {
        slow_path_lazy(t, kind, body)
    } else {
        slow_path(t, kind, body)
    }
}

/// One hardware fast-path attempt. `Err(Htm(None))` means HTM refused to
/// begin.
fn try_fast<T>(
    t: &mut TmThread,
    kind: TxKind,
    body: &mut dyn FnMut(&mut Tx<'_>) -> TxResult<T>,
) -> Result<T, FastFail> {
    let rt = t.rt.clone();
    let heap: &Heap = rt.heap();
    let g = rt.globals();

    if t.htm_thread.begin().is_err() {
        return Err(FastFail::Htm(None));
    }
    t.stats.cycles += cost::HTM_BEGIN + 2 * cost::HTM_ACCESS;
    // Subscribe to the HTM lock.
    match t.htm_thread.read(g.global_htm_lock) {
        Ok(0) => {}
        Ok(_) => {
            t.stats.cycles += cost::HTM_ABORT;
            return Err(FastFail::Htm(Some(t.htm_thread.abort(xabort::LOCK_HELD).code)));
        }
        Err(e) => {
            t.stats.cycles += cost::HTM_ABORT;
            return Err(FastFail::Htm(Some(e.code)));
        }
    }
    // Subscribe to the global clock AT START — Hybrid NOrec's defining
    // (and costly) step: the clock (every lane, when sharded) stays in the
    // tracking set for the whole transaction.
    if let Err(code) = g.clock.htm_subscribe(&mut t.htm_thread) {
        t.stats.cycles += cost::HTM_ABORT;
        return Err(FastFail::Htm(Some(code)));
    }

    let interleave = t.rt.config().interleave_accesses;
    let ctx = FastCtx::new(&mut t.htm_thread, heap, &mut t.mem, t.tid, interleave);
    let mut tx = Tx::new(TxCtx::Fast(ctx), kind);
    let outcome = body(&mut tx);
    let (ctx, fault) = tx.into_parts();
    let TxCtx::Fast(ctx) = ctx else { unreachable!() };
    let wrote = ctx.wrote;
    let dead = ctx.dead;
    t.stats.cycles += ctx.meter.cycles;

    if let Some(fault) = fault {
        if dead.is_none() {
            t.htm_thread.abort(xabort::FAULT);
        }
        t.stats.cycles += cost::HTM_ABORT;
        t.mem.rollback(heap, t.tid);
        return Err(FastFail::Fault(fault));
    }
    match outcome {
        Ok(value) => {
            if let Some(code) = dead {
                t.stats.cycles += cost::HTM_ABORT;
                t.mem.rollback(heap, t.tid);
                return Err(FastFail::Htm(Some(code)));
            }
            // Commit protocol (notify slow paths when they exist). A
            // write in a read-only body faults before reaching the
            // device, so `wrote` alone implies a read-write transaction.
            if wrote {
                match fast_commit_clock_update(t, &rt) {
                    Ok(()) => {}
                    Err(code) => {
                        t.stats.cycles += cost::HTM_ABORT;
                        t.mem.rollback(heap, t.tid);
                        return Err(FastFail::Htm(Some(code)));
                    }
                }
            }
            match t.htm_thread.commit() {
                Ok(()) => {
                    t.stats.cycles += cost::HTM_COMMIT;
                    t.mem.commit(heap, t.tid);
                    Ok(value)
                }
                Err(e) => {
                    t.stats.cycles += cost::HTM_ABORT;
                    t.mem.rollback(heap, t.tid);
                    Err(FastFail::Htm(Some(e.code)))
                }
            }
        }
        Err(_) => {
            let code = dead.expect("fast-path body restarted without an abort");
            t.stats.cycles += cost::HTM_ABORT;
            t.mem.rollback(heap, t.tid);
            Err(FastFail::Htm(Some(code)))
        }
    }
}

/// Writer fast-path commit step: when slow paths exist, bump the clock (and
/// honor the serial lock). Shared with RH NOrec, which runs the same step —
/// but crucially only *here at commit*, not at start.
pub(crate) fn fast_commit_clock_update(
    t: &mut TmThread,
    rt: &crate::runtime::TmRuntime,
) -> Result<(), AbortCode> {
    let g = rt.globals();
    t.stats.cycles += 4 * cost::HTM_ACCESS;
    let fallbacks = match t.htm_thread.read(g.num_of_fallbacks) {
        Ok(v) => v,
        Err(e) => return Err(e.code),
    };
    if fallbacks == 0 {
        return Ok(());
    }
    match t.htm_thread.read(g.serial_lock) {
        Ok(0) => {}
        Ok(_) => return Err(t.htm_thread.abort(xabort::LOCK_HELD).code),
        Err(e) => return Err(e.code),
    }
    // MUTANT (`missing_lane_bump`): writers homed on lane 0 skip the
    // commit bump entirely — their commits never reach the lane vector, so
    // software snapshots validate right past them.
    #[cfg(feature = "mutants")]
    if rt.mutant_armed(crate::mutants::Mutant::MissingLaneBump)
        && g.clock.shards() > 1
        && g.clock.home_lane(t.tid) == 0
    {
        return Ok(());
    }
    // Sharded, only the committer's home lane enters the tracking set, so
    // disjoint fast-path writers stop aborting each other here.
    g.clock.htm_commit_bump(&mut t.htm_thread, t.tid)?;
    // Interleave pacing (same rationale as `Meter::tick`): on a host with
    // fewer cores than workers, yield inside the window between the clock
    // subscription and the hardware commit — on dedicated cores this is
    // exactly where concurrent commit bumps collide, and without the yield
    // the window never overlaps another thread's commit at all.
    if rt.config().interleave_accesses != 0 {
        std::thread::yield_now();
    }
    Ok(())
}

/// The lazy software slow path (§3.1's "lazy HyTM design"): classic NOrec
/// with write-set buffering; the HTM lock is raised only around the
/// commit write-back, so fast paths never see a partial publication.
fn slow_path_lazy<T>(
    t: &mut TmThread,
    kind: TxKind,
    body: &mut dyn FnMut(&mut Tx<'_>) -> TxResult<T>,
) -> Result<T, TxFault> {
    let rt = t.rt.clone();
    let heap: &Heap = rt.heap();
    let globals = rt.globals_snapshot();
    let restart_limit = rt.config().retry.slow_path_restart_limit;
    let interleave = rt.config().interleave_accesses;

    t.stats.slow_path_entries += 1;
    t.stats.cycles += cost::GLOBAL_RMW;
    heap.fetch_update(globals.num_of_fallbacks, |v| v + 1);
    let mut restarts: u32 = 0;
    let mut serial_held = false;
    // Out-of-context snapshot slot (see `norec::run_lazy`).
    let mut snap_slot = ClockSnapshot::single(0);

    let value = loop {
        if restarts > restart_limit && !serial_held {
            acquire_word_lock(heap, globals.serial_lock, &mut t.stats.cycles, &mut t.backoff);
            serial_held = true;
            t.stats.serial_lock_acquisitions += 1;
        }
        trace::begin(trace::Path::Stm);
        let mut spin = cost::STM_START;
        globals
            .clock
            .begin_into(heap, &mut spin, &mut t.backoff, &mut snap_slot);
        let (probe_addr, probe_word) = globals.clock.read_probe(&snap_slot);
        // Recycled arenas: a restart re-logs into warm buffers.
        t.logs.read_log.clear();
        t.logs.write_set.clear();
        let mut ctx = LazyCtx {
            heap,
            globals: &globals,
            mem: &mut t.mem,
            tid: t.tid,
            snap: &mut snap_slot,
            probe_addr,
            probe_word,
            read_log: &mut t.logs.read_log,
            write_set: &mut t.logs.write_set,
            backoff: &mut t.backoff,
            dead: false,
            set_htm_lock: true,
            #[cfg(feature = "mutants")]
            skip_reread: rt.mutant_armed(crate::mutants::Mutant::StaleSnapshotReuse),
            meter: crate::algorithms::common::Meter::new(interleave),
        };
        ctx.meter.charge(spin);
        let mut tx = Tx::new(TxCtx::Lazy(ctx), kind);
        let outcome = body(&mut tx);
        let (ctx, fault) = tx.into_parts();
        let TxCtx::Lazy(mut ctx) = ctx else { unreachable!() };
        if let Some(fault) = fault {
            trace::abort();
            t.stats.cycles += ctx.meter.cycles;
            t.mem.rollback(heap, t.tid);
            break Err(fault);
        }
        let committed = match outcome {
            Ok(value) => ctx.commit().map(|()| value),
            Err(e) => Err(e),
        };
        match committed {
            Ok(value) => {
                trace::commit(trace::Path::Stm);
                t.stats.cycles += ctx.meter.cycles;
                t.mem.commit(heap, t.tid);
                t.stats.slow_path_commits += 1;
                break Ok(value);
            }
            Err(_) => {
                trace::abort();
                t.stats.cycles += ctx.meter.cycles;
                t.mem.rollback(heap, t.tid);
                t.stats.slow_path_restarts += 1;
                restarts += 1;
            }
        }
    };
    // Shared exit for commits and faults: withdraw the fallback
    // announcement and release the serial lock if escalation reached it.
    t.stats.cycles += cost::GLOBAL_RMW;
    heap.fetch_update(globals.num_of_fallbacks, |v| v - 1);
    if serial_held {
        t.stats.cycles += cost::GLOBAL_STORE;
        release_word_lock(heap, globals.serial_lock);
    }
    value
}

/// The software slow path: eager NOrec with hybrid coordination.
fn slow_path<T>(
    t: &mut TmThread,
    kind: TxKind,
    body: &mut dyn FnMut(&mut Tx<'_>) -> TxResult<T>,
) -> Result<T, TxFault> {
    let rt = t.rt.clone();
    let heap: &Heap = rt.heap();
    let globals = rt.globals_snapshot();
    let restart_limit = rt.config().retry.slow_path_restart_limit;

    let interleave = rt.config().interleave_accesses;
    t.stats.slow_path_entries += 1;
    t.stats.cycles += cost::GLOBAL_RMW;
    heap.fetch_update(globals.num_of_fallbacks, |v| v + 1);
    let mut restarts: u32 = 0;
    let mut serial_held = false;
    // Out-of-context snapshot slot (see `norec::run_eager`).
    let mut snap_slot = ClockSnapshot::single(0);

    let value = loop {
        if restarts > restart_limit && !serial_held {
            acquire_word_lock(heap, globals.serial_lock, &mut t.stats.cycles, &mut t.backoff);
            serial_held = true;
            t.stats.serial_lock_acquisitions += 1;
        }
        trace::begin(trace::Path::Stm);
        let mut spin = cost::STM_START;
        globals
            .clock
            .begin_into(heap, &mut spin, &mut t.backoff, &mut snap_slot);
        let (probe_addr, probe_word) = globals.clock.read_probe(&snap_slot);
        let mut ctx = EagerCtx {
            heap,
            globals: &globals,
            mem: &mut t.mem,
            tid: t.tid,
            snap: &mut snap_slot,
            probe_addr,
            probe_word,
            wrote: false,
            dead: false,
            set_htm_lock: true,
            htm_lock_set: false,
            #[cfg(feature = "mutants")]
            skip_validation: rt.mutant_armed(crate::mutants::Mutant::EagerSkipValidation),
            meter: Meter::new(interleave),
        };
        ctx.meter.charge(spin);
        let mut tx = Tx::new(TxCtx::Eager(ctx), kind);
        let outcome = body(&mut tx);
        let (ctx, fault) = tx.into_parts();
        let TxCtx::Eager(mut ctx) = ctx else { unreachable!() };
        if let Some(fault) = fault {
            // The fault precedes the first write: the clock is unlocked
            // and the HTM lock was never raised.
            debug_assert!(!ctx.wrote);
            trace::abort();
            t.stats.cycles += ctx.meter.cycles;
            t.mem.rollback(heap, t.tid);
            break Err(fault);
        }
        match outcome {
            Ok(value) => {
                ctx.commit();
                trace::commit(trace::Path::Stm);
                t.stats.cycles += ctx.meter.cycles;
                t.mem.commit(heap, t.tid);
                t.stats.slow_path_commits += 1;
                break Ok(value);
            }
            Err(_) => {
                trace::abort();
                t.stats.cycles += ctx.meter.cycles;
                t.mem.rollback(heap, t.tid);
                t.stats.slow_path_restarts += 1;
                restarts += 1;
            }
        }
    };
    // Shared exit for commits and faults: withdraw the fallback
    // announcement and release the serial lock if escalation reached it.
    t.stats.cycles += cost::GLOBAL_RMW;
    heap.fetch_update(globals.num_of_fallbacks, |v| v - 1);
    if serial_held {
        t.stats.cycles += cost::GLOBAL_STORE;
        release_word_lock(heap, globals.serial_lock);
    }
    value
}
