//! Seeded open-loop request generator: zipfian keys, a configurable
//! operation mix, and bursty Poisson arrivals.
//!
//! The whole trace is materialized up front from one seed, so every
//! engine in a comparison replays *exactly* the same requests at the
//! same arrival times — the engines differ only in how fast they drain
//! the queue.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Request classes the service distinguishes in its latency ledger.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum OpClass {
    /// Point read of one key.
    Get,
    /// Insert-or-overwrite of one key.
    Put,
    /// Removal of one key.
    Delete,
    /// Atomic balance move between two keys.
    Transfer,
    /// Atomic count+sum over a key interval (full-store read set).
    Range,
}

impl OpClass {
    /// All classes, in ledger order.
    pub const ALL: [OpClass; 5] =
        [OpClass::Get, OpClass::Put, OpClass::Delete, OpClass::Transfer, OpClass::Range];

    /// Lower-case label used in ledger scenario names.
    pub fn label(self) -> &'static str {
        match self {
            OpClass::Get => "get",
            OpClass::Put => "put",
            OpClass::Delete => "delete",
            OpClass::Transfer => "transfer",
            OpClass::Range => "range",
        }
    }
}

/// Relative operation weights (need not sum to anything particular).
#[derive(Clone, Copy, Debug)]
pub struct Mix {
    /// Weight of [`OpClass::Get`].
    pub get: u32,
    /// Weight of [`OpClass::Put`].
    pub put: u32,
    /// Weight of [`OpClass::Delete`].
    pub delete: u32,
    /// Weight of [`OpClass::Transfer`].
    pub transfer: u32,
    /// Weight of [`OpClass::Range`].
    pub range: u32,
}

impl Mix {
    /// The service default: read-dominated with a write tail and the
    /// occasional full scan.
    pub fn read_heavy() -> Self {
        Mix { get: 55, put: 20, delete: 5, transfer: 15, range: 5 }
    }

    /// Gets and transfers only — the sum of all balances is invariant
    /// under this mix, so a run can assert conservation afterwards.
    pub fn transfer_heavy() -> Self {
        Mix { get: 40, put: 0, delete: 0, transfer: 60, range: 0 }
    }

    /// The scheduler-grid mix: conserving (no puts or deletes, so every
    /// cell can assert the balance-sum invariant) but heterogeneous —
    /// the occasional range scan is an order of magnitude slower than a
    /// get, which is exactly what unbalances a static partition and
    /// gives work stealing something to level.
    pub fn service_bursty() -> Self {
        Mix { get: 50, put: 0, delete: 0, transfer: 42, range: 8 }
    }

    /// `true` when no operation can change the sum of stored values
    /// (no puts, no deletes): the conservation invariant is checkable.
    pub fn conserves_sum(&self) -> bool {
        self.put == 0 && self.delete == 0
    }

    fn total(&self) -> u32 {
        self.get + self.put + self.delete + self.transfer + self.range
    }
}

/// One generated request.
#[derive(Clone, Copy, Debug)]
pub struct Request {
    /// Arrival time, nanoseconds from trace start (non-decreasing).
    pub at_ns: u64,
    /// Operation class.
    pub class: OpClass,
    /// Primary key (transfer source; range lower bound).
    pub key: u64,
    /// Secondary key (transfer destination; range upper bound; unused
    /// otherwise).
    pub key2: u64,
    /// Transfer amount / put value.
    pub amount: u64,
}

/// Trace shape: how many requests, over which keys, at what rate.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Requests to generate.
    pub requests: usize,
    /// Keys are `1..=keyspace`.
    pub keyspace: u64,
    /// Zipf exponent (`0.0` = uniform; the YCSB-style default is 0.99).
    pub zipf_theta: f64,
    /// Operation weights.
    pub mix: Mix,
    /// Mean interarrival time in calm periods, nanoseconds.
    pub mean_interarrival_ns: u64,
    /// Arrival-rate multiplier during bursts (1 disables burstiness).
    pub burst_factor: u64,
    /// Mean requests per burst/calm period (geometric switching).
    pub burst_len: u64,
    /// Generator seed.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            requests: 10_000,
            keyspace: 1024,
            zipf_theta: 0.99,
            mix: Mix::read_heavy(),
            mean_interarrival_ns: 2_000,
            burst_factor: 8,
            burst_len: 64,
            seed: 0x5eed_cafe,
        }
    }
}

/// Zipfian sampler over ranks `1..=n` via a precomputed CDF (fine for
/// service-sized keyspaces; the table is built once per trace).
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: u64, theta: f64) -> Self {
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0f64;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for w in &mut cdf {
            *w /= total;
        }
        Zipf { cdf }
    }

    /// Draws a rank in `1..=n`; rank 1 is the hottest key.
    fn sample(&self, rng: &mut SmallRng) -> u64 {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).expect("CDF is finite")) {
            Ok(i) | Err(i) => (i as u64 + 1).min(self.cdf.len() as u64),
        }
    }
}

/// Walks the mix's weight table with a uniform draw in `0..total`.
fn pick_class(mix: &Mix, mut pick: u32) -> OpClass {
    let table = [
        (mix.get, OpClass::Get),
        (mix.put, OpClass::Put),
        (mix.delete, OpClass::Delete),
        (mix.transfer, OpClass::Transfer),
        (mix.range, OpClass::Range),
    ];
    for (weight, class) in table {
        if pick < weight {
            return class;
        }
        pick -= weight;
    }
    OpClass::Range
}

/// Generates the full trace for `config`. Deterministic in the seed.
///
/// # Panics
///
/// Panics if the mix has zero total weight, the keyspace is empty, or
/// `requests` is zero-keyed by a transfer with `keyspace < 2`.
pub fn generate(config: &TraceConfig) -> Vec<Request> {
    assert!(config.keyspace >= 1, "keyspace must be nonempty");
    assert!(config.mix.total() > 0, "operation mix must have positive total weight");
    assert!(
        config.mix.transfer == 0 || config.keyspace >= 2,
        "transfers need at least two keys"
    );
    let mut rng = SmallRng::seed_from_u64(config.seed);
    let zipf = Zipf::new(config.keyspace, config.zipf_theta);
    let mix = config.mix;
    let total = mix.total();

    let mut out = Vec::with_capacity(config.requests);
    let mut now_ns = 0u64;
    // Two-state modulated Poisson process: calm periods at the mean
    // rate, bursts `burst_factor`x faster, geometric switching with mean
    // period `burst_len` requests.
    let mut bursting = false;
    for _ in 0..config.requests {
        if config.burst_factor > 1 && config.burst_len > 0 {
            let flip = 1.0 / config.burst_len as f64;
            if rng.gen_bool(flip) {
                bursting = !bursting;
            }
        }
        let mean = if bursting {
            (config.mean_interarrival_ns / config.burst_factor).max(1)
        } else {
            config.mean_interarrival_ns.max(1)
        };
        // Exponential interarrival: -ln(1 - U) * mean.
        let u: f64 = rng.gen();
        let gap = (-(1.0 - u).ln() * mean as f64) as u64;
        now_ns = now_ns.saturating_add(gap);

        let class = pick_class(&mix, rng.gen_range(0..total));

        let key = zipf.sample(&mut rng);
        let request = match class {
            OpClass::Get | OpClass::Delete => {
                Request { at_ns: now_ns, class, key, key2: 0, amount: 0 }
            }
            OpClass::Put => Request {
                at_ns: now_ns,
                class,
                key,
                key2: 0,
                amount: rng.gen_range(1..1_000u64),
            },
            OpClass::Transfer => {
                // Distinct destination, also zipfian — hot keys contend.
                let mut dst = zipf.sample(&mut rng);
                while dst == key {
                    dst = zipf.sample(&mut rng);
                }
                Request {
                    at_ns: now_ns,
                    class,
                    key,
                    key2: dst,
                    amount: rng.gen_range(1..4u64),
                }
            }
            OpClass::Range => {
                // An interval of ~1/16th of the keyspace starting at key.
                let span = (config.keyspace / 16).max(1);
                Request {
                    at_ns: now_ns,
                    class,
                    key,
                    key2: (key + span).min(config.keyspace),
                    amount: 0,
                }
            }
        };
        out.push(request);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_in_the_seed() {
        let config = TraceConfig { requests: 500, ..TraceConfig::default() };
        let a = generate(&config);
        let b = generate(&config);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!((x.at_ns, x.class, x.key, x.key2, x.amount), (y.at_ns, y.class, y.key, y.key2, y.amount));
        }
        let c = generate(&TraceConfig { seed: config.seed ^ 1, ..config });
        assert!(
            a.iter().zip(c.iter()).any(|(x, y)| x.key != y.key || x.at_ns != y.at_ns),
            "different seeds must give different traces"
        );
    }

    #[test]
    fn arrivals_are_nondecreasing_and_keys_in_range() {
        let config = TraceConfig { requests: 2_000, keyspace: 64, ..TraceConfig::default() };
        let trace = generate(&config);
        let mut last = 0;
        for r in &trace {
            assert!(r.at_ns >= last);
            last = r.at_ns;
            assert!((1..=config.keyspace).contains(&r.key));
            if r.class == OpClass::Transfer {
                assert!((1..=config.keyspace).contains(&r.key2));
                assert_ne!(r.key, r.key2);
            }
        }
    }

    #[test]
    fn zipfian_sampling_skews_toward_low_ranks() {
        let config = TraceConfig {
            requests: 20_000,
            keyspace: 256,
            zipf_theta: 0.99,
            ..TraceConfig::default()
        };
        let trace = generate(&config);
        let hot = trace.iter().filter(|r| r.key <= 16).count();
        // Under uniform sampling the hottest 1/16th would get ~6% of
        // draws; zipf(0.99) concentrates far more.
        assert!(
            hot as f64 / trace.len() as f64 > 0.30,
            "zipf skew missing: hot fraction {}",
            hot as f64 / trace.len() as f64
        );
    }

    #[test]
    fn mix_weights_are_respected() {
        let config = TraceConfig {
            requests: 10_000,
            mix: Mix { get: 50, put: 50, delete: 0, transfer: 0, range: 0 },
            ..TraceConfig::default()
        };
        let trace = generate(&config);
        assert!(trace.iter().all(|r| matches!(r.class, OpClass::Get | OpClass::Put)));
        let gets = trace.iter().filter(|r| r.class == OpClass::Get).count();
        let frac = gets as f64 / trace.len() as f64;
        assert!((0.45..0.55).contains(&frac), "get fraction {frac}");
    }

    #[test]
    fn bursty_arrivals_compress_interarrival_gaps() {
        let calm = TraceConfig {
            requests: 5_000,
            burst_factor: 1,
            ..TraceConfig::default()
        };
        let bursty = TraceConfig { burst_factor: 16, burst_len: 32, ..calm };
        let span = |cfg: &TraceConfig| generate(cfg).last().unwrap().at_ns;
        assert!(
            span(&bursty) < span(&calm),
            "bursts must shorten the trace's total span"
        );
    }
}
