//! # rh-bench: the figure-regeneration harness
//!
//! Reruns the paper's evaluation (Figures 4–6 plus ablations) on the
//! simulated machine and prints the same rows the paper plots:
//!
//! 1. throughput per thread count for all five algorithms,
//! 2. HTM conflict and capacity aborts per operation (HY vs RH NOrec),
//! 3. slow-path restarts per slow-path transaction,
//! 4. the slow-path execution ratio,
//! 5. RH NOrec's HTM prefix/postfix success ratios.
//!
//! ## Reading throughput on a small host
//!
//! Worker threads timeshare the host's cores, so raw wall-clock
//! throughput cannot rise with thread count on a single-core host. The
//! harness therefore reports **modeled N-core throughput**
//! `ops × N / wall`, which credits each thread with a dedicated core:
//! contention effects (aborted work, restarts, fallback serialization)
//! still consume the threads' CPU shares and bend the curves exactly as
//! they do in the paper, while the ×N factor restores the parallel
//! baseline. Interleaving-sensitive rows 2–5 are measured directly and
//! need no modeling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod diff;
pub mod driver;
pub mod figures;
pub mod ledger;
pub mod overhead;
pub mod policy_grid;
pub mod report;
pub mod service;

pub use driver::{run_cell, CellConfig, CellResult};
