//! The batch scheduler: hands out execution and validation tasks by
//! transaction rank, Block-STM style.
//!
//! All state sits behind one mutex — the handout critical section is a
//! few queue operations, its cost is charged to the cost model
//! ([`crate::cost::BATCH_TASK`]) rather than hidden in host-level atomics,
//! and the single lock makes the protocol's ordering rules easy to audit:
//!
//! * **Execution** tasks come from a retry min-heap (aborted or
//!   resumed ranks, lowest first — the lowest Ready rank is the one
//!   whose inputs are most likely settled) and then from a fresh-rank
//!   cursor. The cursor is held within a bounded *speculation window*
//!   above the validation wave, so an abort can never trigger a
//!   re-validation sweep longer than the window — without the bound a
//!   late abort at a low rank re-sweeps every rank executed so far,
//!   which is quadratic on contended batches.
//! * An execution that hits an ESTIMATE is **suspended as a dependency**
//!   of the aborted writer and requeued only when that writer
//!   republishes (Block-STM's dependency list) — requeueing it eagerly
//!   would busy-retry into the same tombstone.
//! * **Validation** tasks come from two sources: a *wave* cursor that
//!   sweeps ranks in order (validating each rank only once it has
//!   executed) and a *one-off* queue that revalidates a single rank after
//!   it republishes while the wave is already past it.
//! * A validation failure aborts the rank **atomically under the lock**:
//!   its map cells flip to ESTIMATE, its incarnation bumps, it is
//!   requeued for execution, and the wave drops to `rank + 1` so every
//!   higher rank revalidates against the tombstones. A republish that
//!   writes an address the previous incarnation did not also drops the
//!   wave to `rank + 1`; a same-address republish only revalidates
//!   itself (readers of the dead incarnation were already rescheduled by
//!   the abort).
//!
//! The run is over when no worker holds a task and nothing is queued —
//! at that point every rank is Executed and the wave has swept past the
//! last rank with no failure behind it.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::{Mutex, MutexGuard};

use super::mvmap::MvMap;

/// A unit of work handed to a batch worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Task {
    /// Run the transaction body at `rank` speculatively.
    Execute {
        /// Transaction rank (index in the batch).
        rank: usize,
        /// Incarnation this attempt will publish as.
        incarnation: u32,
    },
    /// Revalidate the captured read set of `rank`'s `incarnation`.
    Validate {
        /// Transaction rank.
        rank: usize,
        /// Incarnation the task was issued against (stale tasks whose
        /// rank has since aborted are discarded by the worker).
        incarnation: u32,
    },
}

/// Result of asking for work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Poll {
    /// A task to run.
    Run(Task),
    /// Nothing available right now, but other workers are still busy.
    Idle,
    /// The batch has quiesced: all ranks executed and validated.
    Done,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    Ready,
    Executing,
    Executed,
}

#[derive(Clone, Copy, Debug)]
struct TxStatus {
    incarnation: u32,
    state: State,
}

#[derive(Debug)]
struct Inner {
    status: Vec<TxStatus>,
    /// Next never-executed rank.
    exec_cursor: usize,
    /// Aborted or resumed ranks awaiting re-execution, lowest first.
    retry_exec: BinaryHeap<Reverse<usize>>,
    /// Ranks to revalidate individually after a republish.
    one_off: BinaryHeap<Reverse<usize>>,
    /// Per-rank dependency lists: ranks suspended on an ESTIMATE of
    /// this rank, resumed when it republishes.
    deps: Vec<Vec<usize>>,
    /// The validation wave cursor.
    wave: usize,
    /// Workers currently holding a task.
    active: usize,
    done: bool,
    max_incarnation: u32,
    /// Modeled worker cycles retired across the whole run: every task
    /// completion adds the cycles that task cost. Monotone under the
    /// lock, so it doubles as a logical clock for the wave marks below.
    retired: u64,
    /// Per-block wave marks for chained (multi-block) runs: the value
    /// of `retired` at the most recent validation *pass* of any rank in
    /// the block. Overwritten at every pass, so once the run quiesces,
    /// `marks[b]` is the retired-cycle instant block `b`'s last
    /// validation cleared — its modeled completion (a wave drop back
    /// into the block re-stamps it later, which is exactly the delay a
    /// cross-block abort should charge).
    marks: Vec<u64>,
}

/// The shared scheduler handle.
#[derive(Debug)]
pub(crate) struct BatchSched {
    inner: Mutex<Inner>,
    n: usize,
    /// Most ranks the fresh-execution cursor may run ahead of the
    /// validation wave.
    window: usize,
    /// End-exclusive rank boundaries of the chained blocks; `[n]` for
    /// an unchained batch.
    boundaries: Vec<usize>,
}

impl BatchSched {
    /// An unchained scheduler: one block spanning every rank.
    #[cfg(test)]
    pub(crate) fn new(n: usize, window: usize) -> BatchSched {
        BatchSched::chained(n, window, &[n])
    }

    /// A scheduler over `n` ranks partitioned into blocks at the given
    /// end-exclusive `boundaries` (ascending, last equal to `n`). All
    /// blocks share one rank space and one speculation window, so block
    /// `b + 1`'s speculation starts while block `b`'s validation wave
    /// is still draining; the per-block wave marks recover each block's
    /// completion instant afterwards.
    pub(crate) fn chained(n: usize, window: usize, boundaries: &[usize]) -> BatchSched {
        debug_assert!(window >= 1);
        debug_assert!(boundaries.windows(2).all(|w| w[0] < w[1]));
        debug_assert_eq!(boundaries.last().copied(), Some(n));
        BatchSched {
            inner: Mutex::new(Inner {
                status: vec![TxStatus { incarnation: 0, state: State::Ready }; n],
                exec_cursor: 0,
                retry_exec: BinaryHeap::new(),
                one_off: BinaryHeap::new(),
                deps: vec![Vec::new(); n],
                wave: 0,
                active: 0,
                done: n == 0,
                max_incarnation: 0,
                retired: 0,
                marks: vec![0; boundaries.len()],
            }),
            n,
            window,
            boundaries: boundaries.to_vec(),
        }
    }

    /// The block containing `rank`.
    fn block_of(&self, rank: usize) -> usize {
        self.boundaries.partition_point(|&end| end <= rank)
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Hands out the next task: validations first (one-off, then the
    /// wave), then re-executions (lowest rank first), then fresh ranks.
    pub(crate) fn next_task(&self) -> Poll {
        let mut s = self.lock();
        if s.done {
            return Poll::Done;
        }
        while let Some(&Reverse(rank)) = s.one_off.peek() {
            s.one_off.pop();
            if s.status[rank].state == State::Executed {
                s.active += 1;
                return Poll::Run(Task::Validate { rank, incarnation: s.status[rank].incarnation });
            }
            // Stale: the rank aborted after queuing; the wave drop that
            // accompanied the abort covers its next incarnation.
        }
        if s.wave < self.n && s.status[s.wave].state == State::Executed {
            let rank = s.wave;
            s.wave += 1;
            s.active += 1;
            return Poll::Run(Task::Validate { rank, incarnation: s.status[rank].incarnation });
        }
        while let Some(&Reverse(rank)) = s.retry_exec.peek() {
            s.retry_exec.pop();
            if s.status[rank].state == State::Ready {
                s.status[rank].state = State::Executing;
                s.active += 1;
                return Poll::Run(Task::Execute { rank, incarnation: s.status[rank].incarnation });
            }
        }
        // Fresh executions stay within the speculation window above the
        // wave: beyond it, speculating further only enlarges the
        // re-validation sweep an abort behind the wave would trigger.
        if s.exec_cursor < self.n && s.exec_cursor < s.wave + self.window {
            let rank = s.exec_cursor;
            s.exec_cursor += 1;
            debug_assert_eq!(s.status[rank].state, State::Ready);
            s.status[rank].state = State::Executing;
            s.active += 1;
            return Poll::Run(Task::Execute { rank, incarnation: s.status[rank].incarnation });
        }
        if s.active == 0 {
            // No worker holds a task and nothing was claimable: every
            // rank is Executed (a Ready rank would sit in retry_exec —
            // suspended ranks always have a non-Executed blocker, which
            // would itself be claimable or active — and an Executing one
            // would be owned by an active worker) and the wave swept to
            // the end (an Executed rank under the cursor would have
            // produced a validation task above, and the window never
            // binds once the wave reaches the cursor).
            debug_assert!(s.wave >= self.n);
            debug_assert!(s.status.iter().all(|t| t.state == State::Executed));
            debug_assert!(s.deps.iter().all(Vec::is_empty));
            s.done = true;
            return Poll::Done;
        }
        Poll::Idle
    }

    /// The rank published `incarnation`. `wrote_new` is whether the new
    /// write set covers an address the previous incarnation did not;
    /// `cycles` is the modeled cost of the attempt.
    pub(crate) fn finish_execution(&self, rank: usize, incarnation: u32, wrote_new: bool, cycles: u64) {
        let mut s = self.lock();
        debug_assert_eq!(s.status[rank].state, State::Executing);
        debug_assert_eq!(s.status[rank].incarnation, incarnation);
        s.status[rank].state = State::Executed;
        s.retired += cycles;
        s.active -= 1;
        if wrote_new && s.wave > rank + 1 {
            s.wave = rank + 1;
        }
        if s.wave > rank {
            // The wave is already past this rank, so nothing will
            // revalidate this incarnation — schedule it individually.
            s.one_off.push(Reverse(rank));
        }
        // The republish resolved this rank's ESTIMATEs: resume every
        // reader suspended on them.
        let resumed = std::mem::take(&mut s.deps[rank]);
        for reader in resumed {
            debug_assert_eq!(s.status[reader].state, State::Ready);
            s.retry_exec.push(Reverse(reader));
        }
    }

    /// The rank's execution hit an ESTIMATE of `on` and abandoned the
    /// attempt; same incarnation, suspended until `on` republishes (or
    /// requeued immediately when `on` republished while this report was
    /// in flight).
    pub(crate) fn block_execution(&self, rank: usize, on: usize, cycles: u64) {
        let mut s = self.lock();
        debug_assert_eq!(s.status[rank].state, State::Executing);
        debug_assert!(on < rank, "a rank can only block on a lower rank's estimate");
        s.status[rank].state = State::Ready;
        if s.status[on].state == State::Executed {
            s.retry_exec.push(Reverse(rank));
        } else {
            s.deps[on].push(rank);
        }
        s.retired += cycles;
        s.active -= 1;
    }

    /// A validation of `(rank, incarnation)` failed. If that incarnation
    /// is still current, abort it: flip its cells to ESTIMATEs (under
    /// this lock, so no concurrent republish can interleave), bump the
    /// incarnation, requeue the execution, and drop the wave below every
    /// rank that may have read the dead incarnation. Returns whether the
    /// abort happened (a stale failure is ignored).
    pub(crate) fn fail_validation(
        &self,
        rank: usize,
        incarnation: u32,
        mvmap: &MvMap,
        write_addrs: &[u64],
        cycles: u64,
    ) -> bool {
        let mut s = self.lock();
        s.retired += cycles;
        s.active -= 1;
        if s.status[rank].state != State::Executed || s.status[rank].incarnation != incarnation {
            return false;
        }
        mvmap.mark_estimates(rank as u32, write_addrs);
        s.status[rank].incarnation += 1;
        s.max_incarnation = s.max_incarnation.max(s.status[rank].incarnation);
        s.status[rank].state = State::Ready;
        s.retry_exec.push(Reverse(rank));
        if s.wave > rank + 1 {
            s.wave = rank + 1;
        }
        true
    }

    /// A validation of `rank` passed (or was stale): release the task
    /// slot and re-stamp the rank's block wave mark with the retired
    /// clock — the last stamp a block receives is its completion.
    pub(crate) fn pass_validation(&self, rank: usize, cycles: u64) {
        let mut s = self.lock();
        s.retired += cycles;
        let retired = s.retired;
        let block = self.block_of(rank);
        s.marks[block] = retired;
        s.active -= 1;
    }

    /// Highest incarnation any rank reached (0 = no aborts).
    pub(crate) fn max_incarnation(&self) -> u32 {
        self.lock().max_incarnation
    }

    /// The per-block wave marks (retired-cycle completion stamps).
    /// Meaningful once the run is done; callers prefix-max them (a
    /// block cannot complete before its predecessor) and normalize by
    /// the worker count to recover per-block elapsed time.
    pub(crate) fn marks(&self) -> Vec<u64> {
        self.lock().marks.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_one(sched: &BatchSched) -> Task {
        match sched.next_task() {
            Poll::Run(t) => t,
            other => panic!("expected a task, got {other:?}"),
        }
    }

    #[test]
    fn single_rank_executes_then_validates_then_quiesces() {
        let sched = BatchSched::new(1, 8);
        assert_eq!(run_one(&sched), Task::Execute { rank: 0, incarnation: 0 });
        let mvmap = MvMap::new(1);
        sched.finish_execution(0, 0, true, 10);
        assert_eq!(run_one(&sched), Task::Validate { rank: 0, incarnation: 0 });
        sched.pass_validation(0, 5);
        assert_eq!(sched.next_task(), Poll::Done);
        assert_eq!(sched.marks(), vec![15]);
        drop(mvmap);
    }

    #[test]
    fn abort_requeues_and_lowers_the_wave() {
        let sched = BatchSched::new(3, 8);
        let mvmap = MvMap::new(1);
        // Claim all three executions first (validation outranks fresh
        // execution, so finishing one early would hand its validation out
        // before rank 1's execution).
        for rank in 0..3 {
            assert_eq!(run_one(&sched), Task::Execute { rank, incarnation: 0 });
        }
        for rank in 0..3 {
            sched.finish_execution(rank, 0, true, 1);
        }
        // Wave validates ranks 0..3 in order.
        assert_eq!(run_one(&sched), Task::Validate { rank: 0, incarnation: 0 });
        sched.pass_validation(0, 1);
        assert_eq!(run_one(&sched), Task::Validate { rank: 1, incarnation: 0 });
        // Rank 1 fails: requeued at incarnation 1. The wave (already at
        // 2) validates rank 2 against rank 1's fresh tombstones before
        // any execution work — a reader of the dead incarnation aborts
        // right here.
        assert!(sched.fail_validation(1, 0, &mvmap, &[], 1));
        assert_eq!(run_one(&sched), Task::Validate { rank: 2, incarnation: 0 });
        sched.pass_validation(2, 1);
        assert_eq!(run_one(&sched), Task::Execute { rank: 1, incarnation: 1 });
        sched.finish_execution(1, 1, false, 1);
        // Same-address republish with the wave past it: a one-off
        // validation of rank 1 only, nothing else reruns.
        assert_eq!(run_one(&sched), Task::Validate { rank: 1, incarnation: 1 });
        sched.pass_validation(1, 1);
        assert_eq!(sched.next_task(), Poll::Done);
        assert_eq!(sched.max_incarnation(), 1);
    }

    #[test]
    fn stale_validation_failure_is_ignored() {
        let sched = BatchSched::new(1, 8);
        let mvmap = MvMap::new(1);
        assert_eq!(run_one(&sched), Task::Execute { rank: 0, incarnation: 0 });
        sched.finish_execution(0, 0, true, 1);
        assert_eq!(run_one(&sched), Task::Validate { rank: 0, incarnation: 0 });
        assert!(sched.fail_validation(0, 0, &mvmap, &[], 1));
        // A second failure report for the dead incarnation must not
        // double-abort.
        let _ = run_one(&sched); // the re-execution task
        sched.finish_execution(0, 1, false, 1);
        let _ = run_one(&sched); // its one-off validation
        assert!(!sched.fail_validation(0, 0, &mvmap, &[], 1));
    }

    #[test]
    fn empty_batch_is_done_immediately() {
        let sched = BatchSched::new(0, 8);
        assert_eq!(sched.next_task(), Poll::Done);
    }

    #[test]
    fn chained_blocks_share_one_rank_space_and_stamp_per_block_marks() {
        // Two blocks of two ranks; window wide enough that block 1's
        // executions hand out while block 0 is still unvalidated.
        let sched = BatchSched::chained(4, 8, &[2, 4]);
        for rank in 0..4 {
            assert_eq!(run_one(&sched), Task::Execute { rank, incarnation: 0 });
        }
        for rank in 0..4 {
            sched.finish_execution(rank, 0, true, 10);
        }
        for rank in 0..4 {
            assert_eq!(run_one(&sched), Task::Validate { rank, incarnation: 0 });
            sched.pass_validation(rank, 10);
        }
        assert_eq!(sched.next_task(), Poll::Done);
        // retired: 40 after executions; block 0's last pass is rank 1
        // (retired 60), block 1's is rank 3 (retired 80).
        assert_eq!(sched.marks(), vec![60, 80]);
    }

    #[test]
    fn a_wave_drop_into_an_earlier_block_restamps_its_completion() {
        let sched = BatchSched::chained(2, 8, &[1, 2]);
        let mvmap = MvMap::new(1);
        for rank in 0..2 {
            assert_eq!(run_one(&sched), Task::Execute { rank, incarnation: 0 });
        }
        for rank in 0..2 {
            sched.finish_execution(rank, 0, true, 1);
        }
        assert_eq!(run_one(&sched), Task::Validate { rank: 0, incarnation: 0 });
        sched.pass_validation(0, 1); // block 0 stamped at retired = 3
        assert_eq!(run_one(&sched), Task::Validate { rank: 1, incarnation: 0 });
        assert!(sched.fail_validation(1, 0, &mvmap, &[], 1));
        assert_eq!(run_one(&sched), Task::Execute { rank: 1, incarnation: 1 });
        sched.finish_execution(1, 1, false, 1);
        assert_eq!(run_one(&sched), Task::Validate { rank: 1, incarnation: 1 });
        sched.pass_validation(1, 1);
        assert_eq!(sched.next_task(), Poll::Done);
        // Block 1 completes three retired units after block 0 (failed
        // validation + re-execution + the final pass).
        assert_eq!(sched.marks(), vec![3, 6]);
    }
}
