//! Criterion bench regenerating Figure 4 cells (RBTree microbenchmark) at
//! a CI-friendly scale. The full sweep lives in the `rh-bench` binary
//! (`cargo run -p rh-bench --release -- fig4 --paper`).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rh_bench::{run_cell, CellConfig};
use rh_norec::Algorithm;
use tm_workloads::rbtree_bench::{RbTreeBench, RbTreeBenchConfig};

fn figure4(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure4_rbtree");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for mutation_pct in [4u32, 10, 40] {
        for alg in [Algorithm::HybridNorec, Algorithm::RhNorec] {
            group.bench_with_input(
                BenchmarkId::new(alg.label(), format!("{mutation_pct}pct")),
                &mutation_pct,
                |b, &pct| {
                    b.iter(|| {
                        let config = CellConfig {
                            duration: Duration::from_millis(20),
                            heap_words: 1 << 20,
                            ..CellConfig::new(alg, 2, Duration::from_millis(20))
                        };
                        run_cell(
                            &|heap| {
                                Box::new(RbTreeBench::new(
                                    heap,
                                    RbTreeBenchConfig { initial_size: 256, mutation_pct: pct },
                                ))
                            },
                            &config,
                        )
                        .ops
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, figure4);
criterion_main!(benches);
