//! Kmeans: iterative clustering (STAMP).
//!
//! The paper omits its plots "since they are similar to SSCA2" (§3.6):
//! the hot transaction folds one point into a cluster's accumulator — a
//! small, mostly uncontended read-modify-write. This implementation keeps
//! the real algorithm's phase structure: points are assigned to the
//! *current* centers (transactional reads), folded into per-cluster
//! accumulators (small RMW transactions), and every pass a recompute
//! transaction turns accumulators into new centers — so the centers
//! actually converge toward the synthetic clusters.

use std::sync::atomic::{AtomicU64, Ordering};

use rh_norec::prelude::{Session, Tx, TxKind, TxResult};
use sim_mem::{Addr, Heap};

use crate::{Workload, WorkloadRng};

/// Cluster record layout:
/// `[count, center_0 .. center_{d-1}, sum_0 .. sum_{d-1}]`, line-padded.
const C_COUNT: u64 = 0;
const C_CENTER: u64 = 1;

/// Configuration of the Kmeans workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KmeansConfig {
    /// Number of clusters (STAMP `-c`); fewer means hotter accumulators.
    pub clusters: u64,
    /// Point dimensionality (STAMP `-d`).
    pub dims: u64,
    /// Number of synthetic points replayed per pass.
    pub points: u64,
}

impl Default for KmeansConfig {
    fn default() -> Self {
        KmeansConfig {
            clusters: 16,
            dims: 4,
            points: 1 << 14,
        }
    }
}

/// The Kmeans workload.
#[derive(Debug)]
pub struct Kmeans {
    config: KmeansConfig,
    /// Cluster records, contiguous and line-padded.
    clusters_base: Addr,
    stride: u64,
    /// Host-side input: integer point coordinates, grouped around
    /// well-separated true centers.
    points: Vec<Vec<u64>>,
    /// True generating center of each point (read by the verification
    /// tests only).
    #[cfg_attr(not(test), allow(dead_code))]
    truth: Vec<u64>,
    cursor: AtomicU64,
    recomputes: AtomicU64,
}

impl Kmeans {
    /// Allocates the cluster table and synthesizes points around
    /// well-separated centers; initial centers are staggered so the
    /// assignment phase has real work to do.
    pub fn new(heap: &Heap, config: KmeansConfig, seed: u64) -> Kmeans {
        assert!(config.clusters > 0 && config.dims > 0 && config.points > 0);
        let stride = (C_CENTER + 2 * config.dims).div_ceil(8) * 8;
        let clusters_base = heap
            .allocator()
            .alloc(0, config.clusters * stride)
            .expect("heap exhausted allocating kmeans clusters");
        let mut rng = {
            use rand::SeedableRng;
            WorkloadRng::seed_from_u64(seed)
        };
        use rand::Rng;
        let mut points = Vec::with_capacity(config.points as usize);
        let mut truth = Vec::with_capacity(config.points as usize);
        for _ in 0..config.points {
            let center = rng.gen_range(0..config.clusters);
            truth.push(center);
            points.push(
                (0..config.dims)
                    .map(|_| center * 1000 + rng.gen_range(0..100))
                    .collect(),
            );
        }
        let km = Kmeans {
            config,
            clusters_base,
            stride,
            points,
            truth,
            cursor: AtomicU64::new(0),
            recomputes: AtomicU64::new(0),
        };
        // Initial centers: offset from the true ones so assignment and
        // recomputation visibly converge.
        for k in 0..config.clusters {
            for d in 0..config.dims {
                heap.store(km.cluster(k).offset(C_CENTER + d), k * 1000 + 500);
            }
        }
        km
    }

    fn cluster(&self, i: u64) -> Addr {
        self.clusters_base.offset(i * self.stride)
    }

    fn sums_offset(&self) -> u64 {
        C_CENTER + self.config.dims
    }

    /// The assignment+fold transaction: read every cluster's current
    /// center, pick the nearest, fold the point into its accumulator.
    fn assign_and_fold(&self, tx: &mut Tx<'_>, point: &[u64]) -> TxResult<u64> {
        let mut best = 0u64;
        let mut best_dist = u64::MAX;
        for k in 0..self.config.clusters {
            let mut dist = 0u64;
            for (d, &coord) in point.iter().enumerate() {
                let center = tx.read(self.cluster(k).offset(C_CENTER + d as u64))?;
                let delta = center.abs_diff(coord);
                dist = dist.saturating_add(delta.saturating_mul(delta));
            }
            if dist < best_dist {
                best_dist = dist;
                best = k;
            }
        }
        let cluster = self.cluster(best);
        let count = tx.read(cluster.offset(C_COUNT))?;
        tx.write(cluster.offset(C_COUNT), count + 1)?;
        for (d, &coord) in point.iter().enumerate() {
            let s = cluster.offset(self.sums_offset() + d as u64);
            let sum = tx.read(s)?;
            tx.write(s, sum + coord)?;
        }
        Ok(best)
    }

    /// The end-of-pass transaction: every cluster's accumulator becomes
    /// its new center (a larger, rarer transaction).
    fn recompute_centers(&self, tx: &mut Tx<'_>) -> TxResult<()> {
        for k in 0..self.config.clusters {
            let cluster = self.cluster(k);
            let count = tx.read(cluster.offset(C_COUNT))?;
            if count == 0 {
                continue;
            }
            for d in 0..self.config.dims {
                let sum = tx.read(cluster.offset(self.sums_offset() + d))?;
                tx.write(cluster.offset(C_CENTER + d), sum / count)?;
                tx.write(cluster.offset(self.sums_offset() + d), 0)?;
            }
            tx.write(cluster.offset(C_COUNT), 0)?;
        }
        Ok(())
    }

    /// Completed center-recomputation passes.
    pub fn recomputes(&self) -> u64 {
        self.recomputes.load(Ordering::Relaxed)
    }
}

impl Workload for Kmeans {
    fn name(&self) -> String {
        format!("Kmeans (c={}, d={})", self.config.clusters, self.config.dims)
    }

    fn setup(&self, _worker: &mut Session, _rng: &mut WorkloadRng) {}

    fn run_op(&self, worker: &mut Session, _rng: &mut WorkloadRng) {
        let i = self.cursor.fetch_add(1, Ordering::Relaxed);
        let idx = (i % self.points.len() as u64) as usize;
        // End of each pass over the input: recompute centers.
        if idx == 0 && i > 0 {
            worker.execute(TxKind::ReadWrite, |tx| self.recompute_centers(tx));
            self.recomputes.fetch_add(1, Ordering::Relaxed);
        }
        let point = &self.points[idx];
        worker.execute(TxKind::ReadWrite, |tx| {
            self.assign_and_fold(tx, point).map(|_| ())
        });
    }

    fn verify(&self, heap: &Heap) -> Result<(), String> {
        // Every folded coordinate came from some band k*1000..k*1000+100,
        // so each accumulator mean must lie inside the bands' convex hull,
        // and a zero count must come with zero sums (no torn folds).
        let max_coord = (self.config.clusters - 1) * 1000 + 100;
        for k in 0..self.config.clusters {
            let cluster = self.cluster(k);
            let count = heap.load(cluster.offset(C_COUNT));
            for d in 0..self.config.dims {
                let sum = heap.load(cluster.offset(self.sums_offset() + d));
                if count == 0 {
                    if sum != 0 {
                        return Err(format!("cluster {k} has a sum without points"));
                    }
                    continue;
                }
                let mean = sum / count;
                if mean > max_coord {
                    return Err(format!(
                        "cluster {k} dim {d}: mean {mean} outside all bands (count {count})"
                    ));
                }
            }
            // Centers, once recomputed, are means too.
            for d in 0..self.config.dims {
                let center = heap.load(cluster.offset(C_CENTER + d));
                if center > max_coord + 900 {
                    return Err(format!("cluster {k} dim {d}: center {center} corrupt"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::single_runtime;
    use rand::SeedableRng;
    use rh_norec::Algorithm;
    use std::sync::Arc;

    fn small() -> KmeansConfig {
        KmeansConfig { clusters: 4, dims: 3, points: 256 }
    }

    #[test]
    fn centers_converge_to_the_true_bands() {
        let (heap, rt) = single_runtime(Algorithm::Norec);
        let km = Kmeans::new(&heap, small(), 11);
        let mut w = rt.open_session().expect("free worker slot");
        let mut rng = WorkloadRng::seed_from_u64(0);
        // Three full passes.
        for _ in 0..(3 * 256 + 1) {
            km.run_op(&mut w, &mut rng);
        }
        km.verify(&heap).unwrap();
        assert!(km.recomputes() >= 2);
        // After convergence, every center sits inside its band.
        for k in 0..4u64 {
            let c = heap.load(km.cluster(k).offset(C_CENTER));
            assert!(
                c / 1000 < 4 && c % 1000 < 100,
                "center {k} did not converge: {c}"
            );
        }
    }

    #[test]
    fn assignment_picks_the_nearest_center() {
        let (heap, rt) = single_runtime(Algorithm::Norec);
        let km = Kmeans::new(&heap, small(), 12);
        // Pin centers exactly on the bands.
        for k in 0..4u64 {
            for d in 0..3u64 {
                heap.store(km.cluster(k).offset(C_CENTER + d), k * 1000 + 50);
            }
        }
        let mut w = rt.open_session().expect("free worker slot");
        for (idx, point) in km.points.iter().take(64).enumerate() {
            let got = w.execute(TxKind::ReadWrite, |tx| km.assign_and_fold(tx, point));
            assert_eq!(got, km.truth[idx], "point {idx} misassigned");
        }
    }

    #[test]
    fn concurrent_folding_loses_nothing() {
        let (heap, rt) = single_runtime(Algorithm::RhNorec);
        let km = Arc::new(Kmeans::new(&heap, small(), 12));
        let per = 200u64;
        std::thread::scope(|s| {
            for tid in 0..3usize {
                let rt = Arc::clone(&rt);
                let km = Arc::clone(&km);
                s.spawn(move || {
                    let mut w = rt.open_session().expect("free worker slot");
                    let mut rng = WorkloadRng::seed_from_u64(tid as u64);
                    for _ in 0..per {
                        km.run_op(&mut w, &mut rng);
                    }
                });
            }
        });
        km.verify(&heap).unwrap();
        // Counts plus already-recomputed points account for every op.
        let folded: u64 = (0..4).map(|k| heap.load(km.cluster(k).offset(C_COUNT))).sum();
        assert!(folded <= 3 * per);
        assert!(folded > 0);
    }
}
