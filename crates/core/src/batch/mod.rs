//! The batch execution mode: a Block-STM-style `ParallelExecutor`
//! (DESIGN.md §15) — the repo's sixth way to run transactions.
//!
//! The five interactive engines take transactions one at a time and pay
//! per-access instrumentation to discover conflicts as they happen. The
//! batch engine instead takes a *pre-formed, pre-ordered* batch (ledger
//! transfers, a blockchain block) and commits it with the semantics of
//! sequential rank-order execution, discovering conflicts by optimistic
//! speculation:
//!
//! * every transaction executes speculatively at its **rank**, reading
//!   through a [multi-version map](mvmap) that resolves each address to
//!   the highest lower-rank speculative write (or base storage);
//! * a [scheduler](sched) hands out execution and validation tasks and
//!   re-executes any rank whose captured read set no longer matches the
//!   map (a lower rank republished different writes);
//! * aborted writes become ESTIMATE tombstones so dependent readers wait
//!   for the re-execution instead of speculating into a cascade;
//! * when everything has executed and validated, one rank-ordered sweep
//!   lazily commits the surviving write sets to the heap.
//!
//! No global commit clock, no per-read validation spin: the batch's rank
//! order *is* the serialization order, so the usual hybrid-TM
//! instrumentation tax (start subscription, clock bumps) has nothing to
//! buy. The trade is generality — transactions must arrive batched and
//! be re-executable (pure functions of the transactional state).

mod exec;
mod mvmap;
mod sched;

pub use self::exec::{
    execute_sequential, BatchReport, BatchTxn, Blocked, ParallelExecutor, TxView, TxnRecord,
};
pub use crate::config::BatchConfig;
