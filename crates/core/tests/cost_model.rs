//! Tests of the virtual-cycle cost accounting: the figures' throughput
//! row is only as good as these invariants.

use std::sync::Arc;

use rh_norec::{cost, Algorithm, TmConfig, TmRuntime, TxKind};
use sim_htm::{Htm, HtmConfig};
use sim_mem::{Heap, HeapConfig};

fn runtime(algorithm: Algorithm) -> (Arc<Heap>, Arc<TmRuntime>) {
    let heap = Arc::new(Heap::new(HeapConfig { words: 1 << 16 }));
    let htm = Htm::new(Arc::clone(&heap), HtmConfig::default());
    let rt = TmRuntime::new(Arc::clone(&heap), htm, TmConfig::new(algorithm)).expect("runtime construction cannot fail");
    (heap, rt)
}

/// Runs `n` identical read-modify-write transactions and returns the
/// cycles they accrued.
fn cycles_for(algorithm: Algorithm, n: u64) -> u64 {
    let (heap, rt) = runtime(algorithm);
    let a = heap.allocator().alloc(0, 1).unwrap();
    let mut w = rt.register(0).expect("fresh thread id");
    w.reset_stats();
    for _ in 0..n {
        w.execute(TxKind::ReadWrite, |tx| {
            let v = tx.read(a)?;
            tx.write(a, v + 1)
        });
    }
    assert_eq!(heap.load(a), n);
    w.stats().cycles
}

#[test]
fn every_algorithm_accrues_cycles() {
    for alg in Algorithm::ALL {
        let cycles = cycles_for(alg, 10);
        assert!(cycles > 0, "{alg:?} accrued no cycles");
    }
}

#[test]
fn cycle_accounting_is_deterministic_single_threaded() {
    for alg in [Algorithm::Norec, Algorithm::Tl2, Algorithm::RhNorec] {
        let a = cycles_for(alg, 50);
        let b = cycles_for(alg, 50);
        assert_eq!(a, b, "{alg:?} cycle accounting is nondeterministic");
    }
}

#[test]
fn cycles_scale_linearly_with_transactions() {
    let one = cycles_for(Algorithm::Norec, 10);
    let ten = cycles_for(Algorithm::Norec, 100);
    let ratio = ten as f64 / one as f64;
    assert!(
        (8.0..12.0).contains(&ratio),
        "expected ~10x cycles for 10x transactions, got {ratio:.2}x"
    );
}

/// The model's core calibration claim: a *large read-dominated*
/// transaction is much cheaper on the uninstrumented fast path than on any
/// STM, while for a tiny transaction the fixed begin/commit cost narrows
/// the gap.
#[test]
fn instrumentation_gap_grows_with_transaction_size() {
    let gap_for_reads = |reads: u64| {
        let mut gaps = Vec::new();
        for alg in [Algorithm::RhNorec, Algorithm::Norec] {
            let (heap, rt) = runtime(alg);
            let alloc = heap.allocator();
            let slots: Vec<_> = (0..reads).map(|_| alloc.alloc(0, 1).unwrap()).collect();
            let mut w = rt.register(0).expect("fresh thread id");
            w.reset_stats();
            for _ in 0..20 {
                let slots = slots.clone();
                w.execute(TxKind::ReadOnly, |tx| {
                    let mut sum = 0u64;
                    for &s in &slots {
                        sum = sum.wrapping_add(tx.read(s)?);
                    }
                    Ok(sum)
                });
            }
            assert_eq!(w.stats().fast_path_commits > 0, alg == Algorithm::RhNorec);
            gaps.push(w.stats().cycles as f64);
        }
        gaps[1] / gaps[0] // NOrec cycles / RH (hardware) cycles
    };
    let small = gap_for_reads(2);
    let large = gap_for_reads(100);
    assert!(large > small, "gap should grow with size: {small:.2} -> {large:.2}");
    assert!(
        large > (cost::NOREC_READ / cost::HTM_ACCESS) as f64 * 0.5,
        "large-transaction gap {large:.2} far below the calibrated ratio"
    );
}

/// Wasted work is charged: a configuration that forces fast-path aborts
/// and retries costs more cycles per committed transaction.
#[test]
fn aborted_attempts_cost_cycles() {
    // Spurious aborts on every ~20th access.
    let heap = Arc::new(Heap::new(HeapConfig { words: 1 << 16 }));
    let htm = Htm::new(
        Arc::clone(&heap),
        HtmConfig { spurious_abort_per_access: 0.05, ..HtmConfig::default() },
    );
    let rt = TmRuntime::new(Arc::clone(&heap), htm, TmConfig::new(Algorithm::RhNorec)).expect("runtime construction cannot fail");
    let a = heap.allocator().alloc(0, 1).unwrap();
    let mut w = rt.register(0).expect("fresh thread id");
    w.reset_stats();
    for _ in 0..200 {
        w.execute(TxKind::ReadWrite, |tx| {
            let v = tx.read(a)?;
            tx.write(a, v + 1)
        });
    }
    let noisy = w.stats().cycles;
    let clean = cycles_for(Algorithm::RhNorec, 200);
    assert!(
        noisy > clean,
        "aborted work must cost extra cycles: noisy {noisy} vs clean {clean}"
    );
}
