//! Vacation: an online travel-reservation system (STAMP).
//!
//! "Vacation-Low simulates online transaction processing … moderately long
//! transactions with low contention"; Vacation-High adds "heavier and
//! slower transactions with moderate contention levels" (§3.6).
//!
//! Three resource relations (cars, flights, rooms) and a customer relation,
//! all red-black trees. Client transactions make reservations, delete
//! customers (billing them), or update the relations.

use rand::Rng;
use rh_norec::prelude::{Session, Tx, TxKind, TxResult};
use sim_mem::{Addr, Heap};

use crate::structures::{RbTree, SortedList};
use crate::{Workload, WorkloadRng};

/// Resource record layout: `[total, used, price]` (free = total - used).
const R_TOTAL: u64 = 0;
const R_USED: u64 = 1;
const R_PRICE: u64 = 2;
const RESOURCE_WORDS: u64 = 3;

const RESOURCE_KINDS: u64 = 3;

/// Configuration of the Vacation workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VacationConfig {
    /// Entries per relation (STAMP `-r`).
    pub relations: u64,
    /// Number of customers.
    pub customers: u64,
    /// Queries per reservation transaction (STAMP `-n`).
    pub queries_per_tx: u32,
    /// Percentage of the id space a transaction may touch (STAMP `-q`);
    /// lower values concentrate accesses and raise contention.
    pub query_range_pct: u32,
    /// Percentage of operations that are user reservations (STAMP `-u`);
    /// the rest split between deletions and table updates.
    pub user_pct: u32,
}

impl VacationConfig {
    /// STAMP's `vacation-low` parameters (`-n2 -q90 -u98`), scaled.
    pub fn low(relations: u64) -> Self {
        VacationConfig {
            relations,
            customers: relations,
            queries_per_tx: 2,
            query_range_pct: 90,
            user_pct: 98,
        }
    }

    /// STAMP's `vacation-high` parameters (`-n4 -q60 -u90`), scaled.
    pub fn high(relations: u64) -> Self {
        VacationConfig {
            relations,
            customers: relations,
            queries_per_tx: 4,
            query_range_pct: 60,
            user_pct: 90,
        }
    }
}

/// The Vacation workload.
#[derive(Debug)]
pub struct Vacation {
    config: VacationConfig,
    /// Resource relations indexed by kind (car/flight/room): id → record.
    relations: [RbTree; RESOURCE_KINDS as usize],
    /// Customer relation: customer id → reservation-list head.
    customers: RbTree,
}

impl Vacation {
    /// Creates the workload's empty relations.
    pub fn new(heap: &Heap, config: VacationConfig) -> Vacation {
        assert!(config.relations > 0 && config.customers > 0);
        assert!(config.query_range_pct > 0 && config.query_range_pct <= 100);
        assert!(config.user_pct <= 100);
        Vacation {
            config,
            relations: [RbTree::create(heap), RbTree::create(heap), RbTree::create(heap)],
            customers: RbTree::create(heap),
        }
    }

    fn query_range(&self) -> u64 {
        (self.config.relations * self.config.query_range_pct as u64 / 100).max(1)
    }

    /// Encodes a reservation key for the customer's list.
    fn reservation_key(kind: u64, id: u64) -> u64 {
        kind * (1 << 32) + id
    }

    /// One MakeReservation client transaction: query `n` random resources,
    /// then reserve the highest-priced available one of each queried kind
    /// for the customer.
    fn make_reservation(&self, tx: &mut Tx<'_>, rng_draws: &[(u64, u64)], customer: u64) -> TxResult<()> {
        let mut best: [Option<(u64, Addr, u64)>; RESOURCE_KINDS as usize] = [None, None, None];
        for &(kind, id) in rng_draws {
            if let Some(record_word) = self.relations[kind as usize].get(tx, id)? {
                let record = Addr::from_word(record_word);
                let total = tx.read(record.offset(R_TOTAL))?;
                let used = tx.read(record.offset(R_USED))?;
                let price = tx.read(record.offset(R_PRICE))?;
                if used < total {
                    let better = match best[kind as usize] {
                        Some((p, _, _)) => price > p,
                        None => true,
                    };
                    if better {
                        best[kind as usize] = Some((price, record, id));
                    }
                }
            }
        }
        if best.iter().all(|b| b.is_none()) {
            return Ok(());
        }
        // Find or create the customer and their reservation list.
        let list = match self.customers.get(tx, customer)? {
            Some(head) => SortedList::from_head_addr(Addr::from_word(head)),
            None => {
                let list = SortedList::create_tx(tx)?;
                self.customers.put(tx, customer, list.head_addr().to_word())?;
                list
            }
        };
        for (kind, slot) in best.iter().enumerate() {
            if let Some((price, record, id)) = slot {
                let key = Self::reservation_key(kind as u64, *id);
                if list.insert(tx, key, *price)? {
                    let used = tx.read(record.offset(R_USED))?;
                    tx.write(record.offset(R_USED), used + 1)?;
                }
            }
        }
        Ok(())
    }

    /// DeleteCustomer: bill the customer (sum reservation prices), release
    /// every reservation, remove the customer.
    fn delete_customer(&self, tx: &mut Tx<'_>, customer: u64) -> TxResult<u64> {
        let head = match self.customers.get(tx, customer)? {
            Some(head) => Addr::from_word(head),
            None => return Ok(0),
        };
        let list = SortedList::from_head_addr(head);
        let mut bill = 0;
        while let Some((key, price)) = list.pop_min(tx)? {
            bill += price;
            let kind = key >> 32;
            let id = key & 0xffff_ffff;
            if let Some(record_word) = self.relations[kind as usize].get(tx, id)? {
                let record = Addr::from_word(record_word);
                let used = tx.read(record.offset(R_USED))?;
                tx.write(record.offset(R_USED), used.saturating_sub(1))?;
            }
        }
        self.customers.remove(tx, customer)?;
        tx.free(head)?;
        Ok(bill)
    }

    /// UpdateTables (the "manager" transaction): grow or reprice random
    /// resources.
    fn update_tables(&self, tx: &mut Tx<'_>, updates: &[(u64, u64, u64, bool)]) -> TxResult<()> {
        for &(kind, id, price, grow) in updates {
            match self.relations[kind as usize].get(tx, id)? {
                Some(record_word) => {
                    let record = Addr::from_word(record_word);
                    if grow {
                        let total = tx.read(record.offset(R_TOTAL))?;
                        tx.write(record.offset(R_TOTAL), total + 10)?;
                    }
                    tx.write(record.offset(R_PRICE), price)?;
                }
                None => {
                    let record = tx.alloc(RESOURCE_WORDS)?;
                    tx.write(record.offset(R_TOTAL), 10)?;
                    tx.write(record.offset(R_USED), 0)?;
                    tx.write(record.offset(R_PRICE), price)?;
                    self.relations[kind as usize].put(tx, id, record.to_word())?;
                }
            }
        }
        Ok(())
    }
}

impl Workload for Vacation {
    fn name(&self) -> String {
        let flavor = if self.config.user_pct >= 95 { "Low" } else { "High" };
        format!("Vacation-{flavor} (r={})", self.config.relations)
    }

    fn setup(&self, worker: &mut Session, rng: &mut WorkloadRng) {
        for kind in 0..RESOURCE_KINDS {
            for id in 0..self.config.relations {
                let price = 100 + rng.gen_range(0..400);
                worker.execute(TxKind::ReadWrite, |tx| {
                    let record = tx.alloc(RESOURCE_WORDS)?;
                    tx.write(record.offset(R_TOTAL), 100)?;
                    tx.write(record.offset(R_USED), 0)?;
                    tx.write(record.offset(R_PRICE), price)?;
                    self.relations[kind as usize].put(tx, id, record.to_word())?;
                    Ok(())
                });
            }
        }
    }

    fn run_op(&self, worker: &mut Session, rng: &mut WorkloadRng) {
        let roll = rng.gen_range(0..100);
        let range = self.query_range();
        if roll < self.config.user_pct {
            let draws: Vec<(u64, u64)> = (0..self.config.queries_per_tx)
                .map(|_| (rng.gen_range(0..RESOURCE_KINDS), rng.gen_range(0..range)))
                .collect();
            let customer = rng.gen_range(0..self.config.customers);
            worker.execute(TxKind::ReadWrite, |tx| {
                self.make_reservation(tx, &draws, customer)
            });
        } else if roll < self.config.user_pct + (100 - self.config.user_pct) / 2 {
            let customer = rng.gen_range(0..self.config.customers);
            worker.execute(TxKind::ReadWrite, |tx| {
                self.delete_customer(tx, customer).map(|_| ())
            });
        } else {
            let updates: Vec<(u64, u64, u64, bool)> = (0..self.config.queries_per_tx)
                .map(|_| {
                    (
                        rng.gen_range(0..RESOURCE_KINDS),
                        rng.gen_range(0..range),
                        100 + rng.gen_range(0..400),
                        rng.gen_bool(0.5),
                    )
                })
                .collect();
            worker.execute(TxKind::ReadWrite, |tx| self.update_tables(tx, &updates));
        }
    }

    fn verify(&self, heap: &Heap) -> Result<(), String> {
        for (kind, relation) in self.relations.iter().enumerate() {
            relation.check_invariants(heap)?;
            for (id, record_word) in relation.collect(heap) {
                let record = Addr::from_word(record_word);
                let total = heap.load(record.offset(R_TOTAL));
                let used = heap.load(record.offset(R_USED));
                if used > total {
                    return Err(format!(
                        "relation {kind} resource {id}: used {used} > total {total}"
                    ));
                }
            }
        }
        self.customers.check_invariants(heap)?;
        // Every reservation must point at an existing resource, and the
        // per-resource used counts must equal the reservations held.
        let mut used_by_customers = std::collections::HashMap::new();
        for (_cid, head) in self.customers.collect(heap) {
            let list = SortedList::from_head_addr(Addr::from_word(head));
            for (key, _price) in list.collect(heap) {
                *used_by_customers.entry(key).or_insert(0u64) += 1;
            }
        }
        for (kind, relation) in self.relations.iter().enumerate() {
            for (id, record_word) in relation.collect(heap) {
                let record = Addr::from_word(record_word);
                let used = heap.load(record.offset(R_USED));
                let key = Self::reservation_key(kind as u64, id);
                let held = used_by_customers.remove(&key).unwrap_or(0);
                if used != held {
                    return Err(format!(
                        "relation {kind} resource {id}: used {used} but {held} reservations held"
                    ));
                }
            }
        }
        if !used_by_customers.is_empty() {
            return Err(format!(
                "{} reservations reference missing resources",
                used_by_customers.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::single_runtime;
    use rand::SeedableRng;
    use rh_norec::Algorithm;
    use std::sync::Arc;

    fn small() -> VacationConfig {
        VacationConfig {
            relations: 32,
            customers: 32,
            queries_per_tx: 2,
            query_range_pct: 90,
            user_pct: 80,
        }
    }

    #[test]
    fn sequential_run_preserves_invariants() {
        let (heap, rt) = single_runtime(Algorithm::Norec);
        let app = Vacation::new(&heap, small());
        let mut w = rt.open_session().expect("free worker slot");
        let mut rng = WorkloadRng::seed_from_u64(3);
        app.setup(&mut w, &mut rng);
        app.verify(&heap).unwrap();
        for _ in 0..500 {
            app.run_op(&mut w, &mut rng);
        }
        app.verify(&heap).unwrap();
    }

    #[test]
    fn concurrent_run_preserves_invariants() {
        for alg in [Algorithm::RhNorec, Algorithm::HybridNorec, Algorithm::Tl2] {
            let (heap, rt) = single_runtime(alg);
            let app = Arc::new(Vacation::new(&heap, small()));
            {
                let mut w = rt.open_session().expect("free worker slot");
                let mut rng = WorkloadRng::seed_from_u64(4);
                app.setup(&mut w, &mut rng);
            }
            std::thread::scope(|s| {
                for tid in 0..3usize {
                    let rt = Arc::clone(&rt);
                    let app = Arc::clone(&app);
                    s.spawn(move || {
                        let mut w = rt.open_session().expect("free worker slot");
                        let mut rng = WorkloadRng::seed_from_u64(50 + tid as u64);
                        for _ in 0..200 {
                            app.run_op(&mut w, &mut rng);
                        }
                    });
                }
            });
            app.verify(&heap).unwrap_or_else(|e| panic!("{alg:?}: {e}"));
        }
    }

    #[test]
    fn deleting_a_customer_releases_their_reservations() {
        let (heap, rt) = single_runtime(Algorithm::Norec);
        let app = Vacation::new(&heap, small());
        let mut w = rt.open_session().expect("free worker slot");
        let mut rng = WorkloadRng::seed_from_u64(5);
        app.setup(&mut w, &mut rng);
        // Force one reservation deterministically.
        w.execute(TxKind::ReadWrite, |tx| {
            app.make_reservation(tx, &[(0, 1), (1, 2)], 7)
        });
        app.verify(&heap).unwrap();
        let bill = w.execute(TxKind::ReadWrite, |tx| app.delete_customer(tx, 7));
        assert!(bill > 0, "customer had reservations to bill");
        app.verify(&heap).unwrap();
        // All `used` counters must be back to zero.
        for relation in &app.relations {
            for (_, record_word) in relation.collect(&heap) {
                assert_eq!(heap.load(Addr::from_word(record_word).offset(R_USED)), 0);
            }
        }
    }
}
