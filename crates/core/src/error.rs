//! Transaction control-flow and error types.

use std::error::Error;
use std::fmt;

/// Signal that the current transaction attempt must restart.
///
/// Returned by every [`Tx`](crate::Tx) operation when the attempt can no
/// longer commit (validation failure, hardware abort, …). Transaction
/// bodies simply propagate it with `?`; the engine's retry loop catches it
/// and re-executes the body. User code cannot construct one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TxRestart(pub(crate) ());

impl fmt::Display for TxRestart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("transaction attempt must restart")
    }
}

impl Error for TxRestart {}

/// Convenience alias for the result of transactional operations.
pub type TxResult<T> = Result<T, TxRestart>;

pub(crate) const RESTART: TxRestart = TxRestart(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restart_displays() {
        assert!(RESTART.to_string().contains("restart"));
    }
}
