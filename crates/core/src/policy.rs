//! The self-tuning runtime policy controller (DESIGN.md §14).
//!
//! The paper adapts exactly one knob online — §2.4 grows and shrinks the
//! RH NOrec HTM prefix from abort feedback — while every other
//! performance-critical knob ([`BackoffConfig`] window, `clock_shards`)
//! is frozen at configuration time. The HyTM lower-bound results show the
//! instrumentation tax is workload-dependent, so no static setting is
//! right everywhere. This module closes the loop on all three knobs with
//! one shared epoch clock:
//!
//! * **(a) backoff window** — multiplicative-increase/decrease of the
//!   effective `max_spins` cap from the observed conflict-abort rate,
//! * **(b) active clock lanes** — shrinks or grows the number of lanes
//!   writers home on between 1 and `clock_shards`, published through the
//!   epoch-fenced `lane_ctl` word so re-homing preserves the PR 4 safety
//!   argument (see [`crate::ClockScheme`]),
//! * **(c) prefix length** — an epoch-rate target that re-centers the
//!   §2.4 per-attempt controller, giving it a second (slower) timescale.
//!
//! The feedback path is deliberately asymmetric: threads *record* into
//! their own cache-line-padded [`PolicySlot`] with relaxed stores (no
//! shared-line traffic, no read-modify-write on the commit path), and the
//! controller *aggregates* only at epoch boundaries, behind a `try_lock`
//! gate so at most one thread pays the aggregation and nobody ever waits.
//! Everything is preallocated at runtime construction; recording and
//! ticking allocate nothing.
//!
//! With [`PolicyConfig::enabled`] `false` (the default) none of this
//! state exists on the runtime and behavior is bit-for-bit the static
//! engine. Under the deterministic scheduler the controller remains a
//! pure function of the schedule: ticks trigger on per-thread commit
//! counts, the gate is uncontended (one runnable thread at a time), and
//! no wall-clock or OS randomness is consulted anywhere.
//!
//! [`BackoffConfig`]: crate::BackoffConfig

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;

use sim_mem::Heap;

use crate::clock_shard::ClockScheme;
use crate::config::TmConfig;

/// Configuration of the adaptive policy layer, carried by the validated
/// [`TmConfig`] builder. Disabled by default: a runtime built without it
/// allocates no policy state and executes bit-for-bit the static engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PolicyConfig {
    /// Master switch; `false` (default) compiles the whole layer down to
    /// one never-taken branch per commit.
    pub enabled: bool,
    /// Per-thread commits between controller epochs: a thread whose
    /// commit count crosses a multiple of this offers to tick the
    /// controller. Must be nonzero when `enabled` (builder-validated).
    pub epoch_commits: u64,
    /// Adapt the backoff spin-window cap from observed abort rates.
    pub adapt_backoff: bool,
    /// Adapt the number of active clock lanes from commit-lane
    /// contention (sharded clock only).
    pub adapt_lanes: bool,
    /// Re-center the §2.4 prefix-length controller from epoch-rate
    /// success statistics.
    pub adapt_prefix: bool,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        PolicyConfig {
            enabled: false,
            epoch_commits: 64,
            adapt_backoff: true,
            adapt_lanes: true,
            adapt_prefix: true,
        }
    }
}

impl PolicyConfig {
    /// The full adaptive configuration: all three controllers on, epoch
    /// every 64 commits per thread.
    pub fn adaptive() -> Self {
        PolicyConfig { enabled: true, ..PolicyConfig::default() }
    }
}

/// One thread's padded telemetry block. Each field is a *running total*
/// the owner refreshes with relaxed stores after every commit; the
/// controller reads whole slots only at epoch boundaries and computes
/// window deltas itself, so the commit path performs no shared
/// read-modify-write at all.
///
/// `align(128)` keeps each slot on its own pair of 64-byte lines
/// (adjacent-line prefetchers pull two), so two threads recording
/// concurrently never touch the same cache line — the same false-sharing
/// discipline as the clock lanes, asserted by the layout test below.
#[repr(align(128))]
#[derive(Debug, Default)]
pub(crate) struct PolicySlot {
    commits: AtomicU64,
    hw_commits: AtomicU64,
    conflict_aborts: AtomicU64,
    fallbacks: AtomicU64,
    backoff_spins: AtomicU64,
    lane_cas_failures: AtomicU64,
    prefix_attempts: AtomicU64,
    prefix_commits: AtomicU64,
}

/// A snapshot of one thread's running totals, written by the owner after
/// each commit (see [`PolicyShared::record`]).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct SlotSample {
    /// Transactions committed (any path).
    pub(crate) commits: u64,
    /// Commits that finished in hardware (fast path, prefix, postfix).
    pub(crate) hw_commits: u64,
    /// Conflict-flavored failures: HTM conflict aborts plus software
    /// slow-path restarts — the controller's contention signal.
    pub(crate) conflict_aborts: u64,
    /// Slow-path entries (fallback pressure).
    pub(crate) fallbacks: u64,
    /// Backoff spins waited.
    pub(crate) backoff_spins: u64,
    /// Clock write-phase CAS losses noted by the engines.
    pub(crate) lane_cas_failures: u64,
    /// §2.4 prefix attempts.
    pub(crate) prefix_attempts: u64,
    /// §2.4 prefix commits.
    pub(crate) prefix_commits: u64,
}

/// Aggregated totals across every slot, and the per-epoch deltas between
/// them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct Totals {
    commits: u64,
    hw_commits: u64,
    conflict_aborts: u64,
    fallbacks: u64,
    backoff_spins: u64,
    lane_cas_failures: u64,
    prefix_attempts: u64,
    prefix_commits: u64,
}

impl Totals {
    fn add_slot(&mut self, slot: &PolicySlot) {
        self.commits += slot.commits.load(Ordering::Relaxed);
        self.hw_commits += slot.hw_commits.load(Ordering::Relaxed);
        self.conflict_aborts += slot.conflict_aborts.load(Ordering::Relaxed);
        self.fallbacks += slot.fallbacks.load(Ordering::Relaxed);
        self.backoff_spins += slot.backoff_spins.load(Ordering::Relaxed);
        self.lane_cas_failures += slot.lane_cas_failures.load(Ordering::Relaxed);
        self.prefix_attempts += slot.prefix_attempts.load(Ordering::Relaxed);
        self.prefix_commits += slot.prefix_commits.load(Ordering::Relaxed);
    }

    /// Saturating per-window delta. Saturation (rather than wrap) makes a
    /// `reset_stats` between epochs a one-window blind spot instead of a
    /// garbage rate.
    fn delta(&self, prev: &Totals) -> Totals {
        Totals {
            commits: self.commits.saturating_sub(prev.commits),
            hw_commits: self.hw_commits.saturating_sub(prev.hw_commits),
            conflict_aborts: self.conflict_aborts.saturating_sub(prev.conflict_aborts),
            fallbacks: self.fallbacks.saturating_sub(prev.fallbacks),
            backoff_spins: self.backoff_spins.saturating_sub(prev.backoff_spins),
            lane_cas_failures: self.lane_cas_failures.saturating_sub(prev.lane_cas_failures),
            prefix_attempts: self.prefix_attempts.saturating_sub(prev.prefix_attempts),
            prefix_commits: self.prefix_commits.saturating_sub(prev.prefix_commits),
        }
    }
}

/// Controller-private state behind the tick gate: the aggregate totals of
/// the previous epoch boundary.
#[derive(Debug, Default)]
struct ControllerState {
    prev: Totals,
}

/// The shared policy state of one runtime: per-thread telemetry slots,
/// the epoch counter, the published knob values, and the tick gate.
#[derive(Debug)]
pub(crate) struct PolicyShared {
    /// One padded slot per possible thread id, preallocated.
    slots: Vec<PolicySlot>,
    /// Controller epochs completed; threads watch it to notice published
    /// knob changes.
    epoch: AtomicU64,
    /// Published backoff spin-window cap (effective `max_spins`).
    backoff_cap: AtomicU32,
    /// Published prefix-length target the §2.4 controller re-centers on.
    prefix_target: AtomicU64,
    /// Tick mutual exclusion. `try_lock` only: a thread that loses the
    /// race simply skips the tick — nobody ever blocks on the commit
    /// path. Under the cooperative scheduler exactly one thread runs at
    /// a time, so the gate is deterministically uncontended.
    gate: Mutex<ControllerState>,
}

impl PolicyShared {
    pub(crate) fn new(config: &TmConfig) -> PolicyShared {
        PolicyShared {
            slots: (0..sim_mem::MAX_THREADS).map(|_| PolicySlot::default()).collect(),
            epoch: AtomicU64::new(0),
            backoff_cap: AtomicU32::new(config.backoff.max_spins),
            prefix_target: AtomicU64::new(config.prefix.initial_reads),
            gate: Mutex::new(ControllerState::default()),
        }
    }

    /// Refreshes thread `tid`'s running totals — eight relaxed stores
    /// into the owner's own padded line, nothing shared touched.
    #[inline]
    pub(crate) fn record(&self, tid: usize, s: SlotSample) {
        let slot = &self.slots[tid];
        slot.commits.store(s.commits, Ordering::Relaxed);
        slot.hw_commits.store(s.hw_commits, Ordering::Relaxed);
        slot.conflict_aborts.store(s.conflict_aborts, Ordering::Relaxed);
        slot.fallbacks.store(s.fallbacks, Ordering::Relaxed);
        slot.backoff_spins.store(s.backoff_spins, Ordering::Relaxed);
        slot.lane_cas_failures.store(s.lane_cas_failures, Ordering::Relaxed);
        slot.prefix_attempts.store(s.prefix_attempts, Ordering::Relaxed);
        slot.prefix_commits.store(s.prefix_commits, Ordering::Relaxed);
    }

    /// Controller epochs completed so far.
    #[inline]
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// The published backoff spin-window cap.
    #[inline]
    pub(crate) fn backoff_cap(&self) -> u32 {
        self.backoff_cap.load(Ordering::Relaxed)
    }

    /// The published prefix-length target.
    #[inline]
    pub(crate) fn prefix_target(&self) -> u64 {
        self.prefix_target.load(Ordering::Relaxed)
    }

    /// One controller epoch: aggregate every slot, compute window rates,
    /// apply the three adaptation rules, publish, advance the epoch.
    /// Returns without doing anything if another thread holds the gate
    /// or the window saw no commits.
    ///
    /// `unfenced_lane_publish` arms the `policy_stale_epoch` corpus
    /// mutant: a lane-count change published as a raw store, skipping the
    /// epoch fence (the planted bug; see [`crate::mutants`]).
    pub(crate) fn maybe_tick(
        &self,
        heap: &Heap,
        clock: &ClockScheme,
        cfg: &TmConfig,
        unfenced_lane_publish: bool,
    ) {
        let Ok(mut st) = self.gate.try_lock() else { return };
        let mut totals = Totals::default();
        for slot in &self.slots {
            totals.add_slot(slot);
        }
        let d = totals.delta(&st.prev);
        if d.commits == 0 {
            return;
        }
        st.prev = totals;
        let attempts = d.commits + d.conflict_aborts;

        // (a) Backoff window: multiplicative increase under heavy
        // conflict rates (waiting is cheaper than re-colliding),
        // multiplicative decrease when conflicts are rare (long windows
        // are pure latency). Clamped to the configured static range, so
        // adaptation can only ever tighten the static window.
        if cfg.policy.adapt_backoff {
            let cap = self.backoff_cap.load(Ordering::Relaxed);
            let new_cap = if d.conflict_aborts * 4 >= attempts {
                cap.saturating_mul(2).min(cfg.backoff.max_spins)
            } else if d.conflict_aborts * 16 <= attempts {
                (cap / 2).max(cfg.backoff.min_spins)
            } else {
                cap
            };
            self.backoff_cap.store(new_cap, Ordering::Relaxed);
        }

        // (b) Active clock lanes. Lanes pay off exactly when hardware
        // writers commit disjointly (each bump stays on its home lane);
        // when commits are software-dominated every extra lane is pure
        // per-read validation tax. Shrink when the hardware-commit share
        // of the window is low; grow back when hardware dominates *and*
        // the contention signals (write-phase CAS losses, conflict
        // aborts) say commit metadata is actually being fought over.
        // Publication goes through the epoch fence so re-homing keeps
        // the PR 4 safety argument (DESIGN.md §14).
        if cfg.policy.adapt_lanes && clock.has_lane_ctl() {
            let active = clock.active_lanes(heap);
            let hw_dominated = d.hw_commits * 2 >= d.commits;
            let sw_dominated = d.hw_commits * 4 < d.commits;
            let contended = d.lane_cas_failures > 0 || d.conflict_aborts * 8 >= attempts;
            let new_active = if sw_dominated {
                (active / 2).max(1)
            } else if hw_dominated && contended {
                (active * 2).min(clock.shards())
            } else {
                active
            };
            if new_active != active {
                clock.publish_active_lanes(heap, new_active, !unfenced_lane_publish);
            }
        }

        // (c) Prefix target: the epoch-rate complement of the §2.4
        // per-attempt controller. High window success grows the target
        // (attempt longer prefixes), low success shrinks it; threads
        // blend their live length toward the target when they notice the
        // epoch moved, keeping the fast per-attempt reflex intact.
        if cfg.policy.adapt_prefix && d.prefix_attempts > 0 {
            let target = self.prefix_target.load(Ordering::Relaxed);
            let new_target = if d.prefix_commits * 4 >= d.prefix_attempts * 3 {
                target.saturating_mul(2).min(cfg.prefix.max_reads)
            } else if d.prefix_commits * 2 <= d.prefix_attempts {
                (target / 2).max(cfg.prefix.min_reads)
            } else {
                target
            };
            self.prefix_target.store(new_target, Ordering::Relaxed);
        }

        self.epoch.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::globals::Globals;
    use crate::{Algorithm, TmConfig};
    use sim_mem::HeapConfig;

    fn adaptive_config(epoch_commits: u64) -> TmConfig {
        TmConfig::builder(Algorithm::RhNorec)
            .clock_shards(4)
            .policy(PolicyConfig { epoch_commits, ..PolicyConfig::adaptive() })
            .build()
            .unwrap()
    }

    fn fixture() -> (Heap, Globals, TmConfig, PolicyShared) {
        let heap = Heap::new(HeapConfig { words: 1 << 12 });
        let g = Globals::allocate_adaptive(&heap, 4, true);
        let cfg = adaptive_config(1);
        let shared = PolicyShared::new(&cfg);
        (heap, g, cfg, shared)
    }

    #[test]
    fn slots_are_padded_against_false_sharing() {
        // One slot spans exactly one 128-byte block (the adjacent-line
        // prefetch unit), so two owners' relaxed stores can never share
        // a cache line — the PolicySlot analogue of the Globals
        // false-sharing audit.
        assert_eq!(std::mem::align_of::<PolicySlot>(), 128);
        assert_eq!(std::mem::size_of::<PolicySlot>(), 128);
        let shared = PolicyShared::new(&adaptive_config(64));
        for pair in shared.slots.windows(2) {
            let a = &pair[0] as *const PolicySlot as usize;
            let b = &pair[1] as *const PolicySlot as usize;
            assert!(b - a >= 128, "adjacent slots closer than a prefetch block");
        }
    }

    #[test]
    fn software_dominated_windows_shrink_the_active_lanes() {
        let (heap, g, cfg, shared) = fixture();
        assert_eq!(g.clock.active_lanes(&heap), 4);
        // All commits in software, zero hardware share.
        shared.record(0, SlotSample { commits: 64, ..SlotSample::default() });
        shared.maybe_tick(&heap, &g.clock, &cfg, false);
        assert_eq!(g.clock.active_lanes(&heap), 2, "halved on a software-only window");
        assert_eq!(shared.epoch(), 1);
        shared.record(0, SlotSample { commits: 128, ..SlotSample::default() });
        shared.maybe_tick(&heap, &g.clock, &cfg, false);
        assert_eq!(g.clock.active_lanes(&heap), 1, "and again, floored at one lane");
        shared.record(0, SlotSample { commits: 192, ..SlotSample::default() });
        shared.maybe_tick(&heap, &g.clock, &cfg, false);
        assert_eq!(g.clock.active_lanes(&heap), 1, "never below one");
    }

    #[test]
    fn contended_hardware_windows_grow_the_lanes_back() {
        let (heap, g, cfg, shared) = fixture();
        g.clock.publish_active_lanes(&heap, 1, true);
        shared.record(
            0,
            SlotSample {
                commits: 64,
                hw_commits: 60,
                conflict_aborts: 40,
                lane_cas_failures: 5,
                ..SlotSample::default()
            },
        );
        shared.maybe_tick(&heap, &g.clock, &cfg, false);
        assert_eq!(g.clock.active_lanes(&heap), 2, "hardware-dominated + contended doubles");
        // Quiet hardware-dominated window: no growth without contention.
        shared.record(
            1,
            SlotSample { commits: 64, hw_commits: 64, ..SlotSample::default() },
        );
        shared.maybe_tick(&heap, &g.clock, &cfg, false);
        assert_eq!(g.clock.active_lanes(&heap), 2, "uncontended window leaves lanes alone");
    }

    #[test]
    fn backoff_cap_rises_under_aborts_and_falls_when_quiet() {
        let (heap, g, cfg, shared) = fixture();
        let max = cfg.backoff.max_spins;
        assert_eq!(shared.backoff_cap(), max, "starts at the static cap");
        // Quiet windows halve the cap (down to min_spins)...
        shared.record(0, SlotSample { commits: 64, hw_commits: 64, ..SlotSample::default() });
        shared.maybe_tick(&heap, &g.clock, &cfg, false);
        assert_eq!(shared.backoff_cap(), max / 2);
        // ...and a conflict-heavy window doubles it back, clamped at max.
        shared.record(
            0,
            SlotSample { commits: 128, hw_commits: 128, conflict_aborts: 64, ..SlotSample::default() },
        );
        shared.maybe_tick(&heap, &g.clock, &cfg, false);
        assert_eq!(shared.backoff_cap(), max);
        shared.record(
            0,
            SlotSample { commits: 192, hw_commits: 192, conflict_aborts: 128, ..SlotSample::default() },
        );
        shared.maybe_tick(&heap, &g.clock, &cfg, false);
        assert_eq!(shared.backoff_cap(), max, "never grows past the static max");
    }

    #[test]
    fn prefix_target_tracks_window_success() {
        let (heap, g, cfg, shared) = fixture();
        let start = cfg.prefix.initial_reads;
        shared.record(
            0,
            SlotSample { commits: 64, prefix_attempts: 32, prefix_commits: 31, ..SlotSample::default() },
        );
        shared.maybe_tick(&heap, &g.clock, &cfg, false);
        assert_eq!(shared.prefix_target(), start * 2, "winning prefixes double the target");
        shared.record(
            0,
            SlotSample { commits: 128, prefix_attempts: 96, prefix_commits: 41, ..SlotSample::default() },
        );
        shared.maybe_tick(&heap, &g.clock, &cfg, false);
        assert_eq!(shared.prefix_target(), start, "losing prefixes halve it back");
    }

    #[test]
    fn empty_windows_do_not_advance_the_epoch() {
        let (heap, g, cfg, shared) = fixture();
        shared.maybe_tick(&heap, &g.clock, &cfg, false);
        assert_eq!(shared.epoch(), 0);
        assert_eq!(g.clock.active_lanes(&heap), 4);
    }

    #[test]
    fn unfenced_publish_skips_the_epoch_fence() {
        // The policy_stale_epoch mutant's hook: the lane-count store
        // lands, but lane 0 does not move — exactly the missing
        // invalidation the opacity checker must catch end to end.
        let (heap, g, cfg, shared) = fixture();
        let lane0_before = heap.load(g.clock.lane(0));
        shared.record(0, SlotSample { commits: 64, ..SlotSample::default() });
        shared.maybe_tick(&heap, &g.clock, &cfg, true);
        assert_eq!(g.clock.active_lanes(&heap), 2);
        assert_eq!(heap.load(g.clock.lane(0)), lane0_before, "no fence bump");
        // The fenced path does bump lane 0.
        g.clock.publish_active_lanes(&heap, 4, true);
        assert_eq!(heap.load(g.clock.lane(0)), lane0_before + 2);
    }
}
