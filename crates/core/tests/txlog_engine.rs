//! Integration tests of the recycled transaction-log engine through the
//! public API: duplicate-write coalescing on every buffering slow path,
//! last-write-wins semantics everywhere, and the steady-state
//! no-allocation guarantee of the per-thread arenas.

use std::sync::Arc;

use rh_norec::{cost, Algorithm, TmConfig, TmRuntime, TxKind};
use sim_htm::{Htm, HtmConfig};
use sim_mem::{Addr, Heap, HeapConfig};

/// A runtime whose HTM never starts: the hybrid algorithms are forced
/// onto their software slow paths, which is where the log engine lives.
fn software_only(algorithm: Algorithm) -> (Arc<Heap>, Arc<TmRuntime>) {
    let heap = Arc::new(Heap::new(HeapConfig { words: 1 << 16 }));
    let htm = Htm::new(Arc::clone(&heap), HtmConfig::disabled());
    let rt = TmRuntime::new(Arc::clone(&heap), htm, TmConfig::new(algorithm))
        .expect("runtime construction cannot fail");
    (heap, rt)
}

fn alloc_slots(heap: &Heap, n: u64) -> Vec<Addr> {
    let alloc = heap.allocator();
    (0..n)
        .map(|_| alloc.alloc(0, 1).expect("test heap too small"))
        .collect()
}

/// Every software path must expose last-write-wins semantics for
/// repeated writes to one address — buffering paths (NOrec-Lazy,
/// HY-NOrec-Lazy) by coalescing the write set, in-place paths (NOrec,
/// TL2, RH NOrec) by construction.
#[test]
fn duplicate_writes_are_last_write_wins_on_every_slow_path() {
    for alg in Algorithm::ALL {
        let (heap, rt) = software_only(alg);
        let slots = alloc_slots(&heap, 4);
        let mut w = rt.register(0).expect("fresh thread id");
        w.execute(TxKind::ReadWrite, |tx| {
            // 16 writes cycling over 4 addresses; the last round wins.
            for i in 0..16u64 {
                tx.write(slots[(i % 4) as usize], i)?;
            }
            Ok(())
        });
        for (j, &slot) in slots.iter().enumerate() {
            assert_eq!(
                heap.load(slot),
                12 + j as u64,
                "{alg:?}: slot {j} does not hold the last written value"
            );
        }
        // Read-after-write must observe the freshest buffered value, not
        // the first one logged for the address.
        let observed = w.execute(TxKind::ReadWrite, |tx| {
            tx.write(slots[0], 100)?;
            tx.write(slots[0], 200)?;
            tx.read(slots[0])
        });
        assert_eq!(observed, 200, "{alg:?}: read-after-write saw a stale write");
        assert_eq!(heap.load(slots[0]), 200, "{alg:?}: commit published a stale write");
    }
}

/// Cycle accounting for one lazy transaction with `writes` total writes
/// cycling over `distinct` addresses.
fn lazy_tx_cycles(algorithm: Algorithm, writes: u64, distinct: u64) -> u64 {
    let (heap, rt) = software_only(algorithm);
    let slots = alloc_slots(&heap, distinct);
    let mut w = rt.register(0).expect("fresh thread id");
    // Warm the arenas so the measured transaction is steady-state.
    w.execute(TxKind::ReadWrite, |tx| tx.write(slots[0], 0));
    w.reset_stats();
    w.execute(TxKind::ReadWrite, |tx| {
        for i in 0..writes {
            tx.write(slots[(i % distinct) as usize], i)?;
        }
        Ok(())
    });
    w.stats().cycles
}

/// The write-back really is one store per *distinct* address: a
/// transaction with 16 writes over 4 addresses must cost exactly 12
/// extra per-write ticks over one with 4 writes over the same 4
/// addresses — the commit (lock, write-back, publish) charges must be
/// identical because the coalesced write set is.
#[test]
fn lazy_commit_writes_back_once_per_distinct_address() {
    for alg in [Algorithm::NorecLazy, Algorithm::HybridNorecLazy] {
        let repeated = lazy_tx_cycles(alg, 16, 4);
        let minimal = lazy_tx_cycles(alg, 4, 4);
        assert_eq!(
            repeated,
            minimal + 12 * cost::NOREC_LAZY_WRITE,
            "{alg:?}: duplicate writes changed the commit cost, so the \
             write set did not coalesce to one write-back per address"
        );
    }
}

/// The recycled arenas stop allocating once warm: after a handful of
/// transactions large enough to build the write-set index, thousands of
/// further transactions (including every retry attempt) must not grow
/// any log arena.
#[test]
fn warm_slow_paths_never_allocate_per_attempt() {
    for alg in Algorithm::ALL {
        let (heap, rt) = software_only(alg);
        let slots = alloc_slots(&heap, 32);
        let mut w = rt.register(0).expect("fresh thread id");
        let body = |tx: &mut rh_norec::Tx<'_>| {
            // 12 distinct writes crosses the small-set threshold, so the
            // indexed representation (and its probe table) is exercised.
            for (i, &slot) in slots[..12].iter().enumerate() {
                tx.write(slot, i as u64)?;
            }
            let mut acc = 0u64;
            for &slot in &slots[..12] {
                acc = acc.wrapping_add(tx.read(slot)?);
            }
            for &slot in &slots[16..24] {
                acc = acc.wrapping_add(tx.read(slot)?);
            }
            Ok(acc)
        };
        for _ in 0..64 {
            w.execute(TxKind::ReadWrite, body);
        }
        let warm = w.log_grow_events();
        for _ in 0..2_048 {
            w.execute(TxKind::ReadWrite, body);
        }
        assert_eq!(
            w.log_grow_events(),
            warm,
            "{alg:?}: a warm slow path grew a log arena (per-attempt allocation)"
        );
    }
}
