//! Lock Elision (§3.1): pure hardware transactions with a single global
//! lock fallback.
//!
//! Every transaction first runs as an uninstrumented hardware transaction
//! that *subscribes* to the global lock (reads it at start and aborts if
//! held, putting it in the HTM tracking set). If the hardware repeatedly
//! fails, the transaction acquires the lock — which, via the subscription,
//! aborts every in-flight hardware transaction — and runs directly,
//! serializing the system. Progress is guaranteed; scalability collapses
//! as soon as fallbacks are frequent, which is the behaviour the paper's
//! figures show above 8 threads.

use crate::algorithms::common::{
    acquire_word_lock, classify_fast_abort, release_word_lock, xabort, DirectCtx, FastCtx,
    FastFail, Meter,
};
use crate::cost;
use crate::error::{TxFault, TxResult};
use crate::runtime::TmThread;
use crate::trace;
use crate::tx::{Tx, TxCtx};
use crate::TxKind;

pub(crate) fn run<T>(
    t: &mut TmThread,
    kind: TxKind,
    body: &mut dyn FnMut(&mut Tx<'_>) -> TxResult<T>,
) -> Result<T, TxFault> {
    let retries = t.rt.config().retry.fast_path_retries;
    let mut attempts = 0;
    loop {
        trace::begin(trace::Path::Fast);
        match try_fast(t, kind, body) {
            Ok(value) => {
                trace::commit(trace::Path::Fast);
                t.stats.fast_path_commits += 1;
                return Ok(value);
            }
            Err(FastFail::Fault(fault)) => {
                trace::abort();
                return Err(fault);
            }
            Err(FastFail::Htm(code)) => {
                trace::abort();
                if let Some(code) = code {
                    classify_fast_abort(&mut t.stats, code);
                    attempts += 1;
                    if code.may_retry() && attempts < retries {
                        // Backoff before retrying in hardware so the
                        // conflicting transaction can finish (what
                        // production elision runtimes do between xbegin
                        // attempts); otherwise retries re-collide and
                        // convoy into the fallback.
                        sim_htm::sched::yield_point();
                        t.backoff.pause(attempts - 1, &mut t.stats.cycles);
                        continue;
                    }
                }
                break;
            }
        }
    }

    // Lock fallback: serialize.
    t.stats.slow_path_entries += 1;
    let rt = t.rt.clone();
    let heap = rt.heap();
    let lock = rt.globals().serial_lock;
    trace::begin(trace::Path::Serial);
    acquire_word_lock(heap, lock, &mut t.stats.cycles, &mut t.backoff);
    let ctx = DirectCtx {
        heap,
        mem: &mut t.mem,
        tid: t.tid,
        meter: Meter::new(rt.config().interleave_accesses),
    };
    let mut tx = Tx::new(TxCtx::Direct(ctx), kind);
    let outcome = body(&mut tx);
    let (ctx, fault) = tx.into_parts();
    let TxCtx::Direct(ctx) = ctx else { unreachable!() };
    t.stats.cycles += ctx.meter.cycles + cost::GLOBAL_STORE;
    if let Some(fault) = fault {
        // A fault fires on the first write of a read-only body, so this
        // serial section stored nothing: releasing the lock and undoing
        // any allocations leaves the heap untouched.
        release_word_lock(heap, lock);
        trace::abort();
        t.mem.rollback(heap, t.tid);
        return Err(fault);
    }
    let value = outcome.unwrap_or_else(|_| unreachable!("direct execution cannot restart"));
    // The release is the publication point to hardware transactions (they
    // subscribe to the lock); no yield point before the commit record.
    release_word_lock(heap, lock);
    trace::commit(trace::Path::Serial);
    t.mem.commit(heap, t.tid);
    t.stats.serial_commits += 1;
    Ok(value)
}

/// One hardware attempt. `Err(Htm(None))` means the attempt could not begin.
fn try_fast<T>(
    t: &mut TmThread,
    kind: TxKind,
    body: &mut dyn FnMut(&mut Tx<'_>) -> TxResult<T>,
) -> Result<T, FastFail> {
    let rt = t.rt.clone();
    let heap = rt.heap();
    let lock = rt.globals().serial_lock;

    if t.htm_thread.begin().is_err() {
        return Err(FastFail::Htm(None));
    }
    t.stats.cycles += cost::HTM_BEGIN + cost::HTM_ACCESS;
    #[cfg(feature = "mutants")]
    let subscribe = !rt.mutant_armed(crate::mutants::Mutant::ElisionNoSubscription);
    #[cfg(not(feature = "mutants"))]
    let subscribe = true;
    // Subscribe to the global lock. Skipped when the
    // `elision_no_subscription` corpus mutant is armed: without the lock in
    // the tracking set, a serial-fallback writer's in-place stores no
    // longer abort this speculation at its start, and the commit can land
    // mid-serial-section on a mixed snapshot.
    if subscribe {
        match t.htm_thread.read(lock) {
            Ok(0) => {}
            Ok(_) => {
                t.stats.cycles += cost::HTM_ABORT;
                return Err(FastFail::Htm(Some(t.htm_thread.abort(xabort::LOCK_HELD).code)));
            }
            Err(e) => {
                t.stats.cycles += cost::HTM_ABORT;
                return Err(FastFail::Htm(Some(e.code)));
            }
        }
    }

    let interleave = t.rt.config().interleave_accesses;
    let ctx = FastCtx::new(&mut t.htm_thread, heap, &mut t.mem, t.tid, interleave);
    let mut tx = Tx::new(TxCtx::Fast(ctx), kind);
    let outcome = body(&mut tx);
    let (ctx, fault) = tx.into_parts();
    let TxCtx::Fast(ctx) = ctx else { unreachable!() };
    let dead = ctx.dead;
    t.stats.cycles += ctx.meter.cycles;
    if let Some(fault) = fault {
        // The refused write never reached the device; discard the live
        // speculation (if the hardware hadn't already aborted) and report
        // the programming error.
        if dead.is_none() {
            t.htm_thread.abort(xabort::FAULT);
        }
        t.stats.cycles += cost::HTM_ABORT;
        t.mem.rollback(heap, t.tid);
        return Err(FastFail::Fault(fault));
    }
    match outcome {
        Ok(value) => match dead {
            Some(code) => {
                t.stats.cycles += cost::HTM_ABORT;
                t.mem.rollback(heap, t.tid);
                Err(FastFail::Htm(Some(code)))
            }
            None => match t.htm_thread.commit() {
                Ok(()) => {
                    t.stats.cycles += cost::HTM_COMMIT;
                    t.mem.commit(heap, t.tid);
                    Ok(value)
                }
                Err(e) => {
                    t.stats.cycles += cost::HTM_ABORT;
                    t.mem.rollback(heap, t.tid);
                    Err(FastFail::Htm(Some(e.code)))
                }
            },
        },
        Err(_) => {
            let code = dead.expect("fast-path body restarted without an abort");
            t.stats.cycles += cost::HTM_ABORT;
            t.mem.rollback(heap, t.tid);
            Err(FastFail::Htm(Some(code)))
        }
    }
}
