//! Property tests: the transactional data structures agree with their
//! `std` model under arbitrary operation sequences, on both an STM and the
//! full RH NOrec stack (whose fast path exercises the simulated HTM).

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use proptest::prelude::*;
use rh_norec_repro::htm::{Htm, HtmConfig};
use rh_norec_repro::mem::{Heap, HeapConfig};
use rh_norec_repro::tm::{Algorithm, TmConfig, TmRuntime, TxKind};
use rh_norec_repro::workloads::structures::{HashTable, Queue, RbTree, SortedList};

#[derive(Clone, Debug)]
enum MapOp {
    Put(u64, u64),
    Remove(u64),
    Get(u64),
}

fn map_ops() -> impl Strategy<Value = Vec<MapOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..64, any::<u64>()).prop_map(|(k, v)| MapOp::Put(k, v)),
            (0u64..64).prop_map(MapOp::Remove),
            (0u64..64).prop_map(MapOp::Get),
        ],
        0..200,
    )
}

fn runtime(algorithm: Algorithm) -> (Arc<Heap>, Arc<TmRuntime>) {
    let heap = Arc::new(Heap::new(HeapConfig { words: 1 << 18 }));
    let htm = Htm::new(Arc::clone(&heap), HtmConfig::default());
    let rt = TmRuntime::new(Arc::clone(&heap), htm, TmConfig::new(algorithm));
    (heap, rt)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn rbtree_matches_btreemap(ops in map_ops(), rh in any::<bool>()) {
        let alg = if rh { Algorithm::RhNorec } else { Algorithm::Norec };
        let (heap, rt) = runtime(alg);
        let tree = RbTree::create(&heap);
        let mut worker = rt.register(0);
        let mut model = BTreeMap::new();
        for op in ops {
            match op {
                MapOp::Put(k, v) => {
                    let got = worker.execute(TxKind::ReadWrite, |tx| tree.put(tx, k, v));
                    prop_assert_eq!(got, model.insert(k, v));
                }
                MapOp::Remove(k) => {
                    let got = worker.execute(TxKind::ReadWrite, |tx| tree.remove(tx, k));
                    prop_assert_eq!(got, model.remove(&k));
                }
                MapOp::Get(k) => {
                    let got = worker.execute(TxKind::ReadOnly, |tx| tree.get(tx, k));
                    prop_assert_eq!(got, model.get(&k).copied());
                }
            }
        }
        prop_assert!(tree.check_invariants(&heap).is_ok());
        let collected = tree.collect(&heap);
        let expected: Vec<(u64, u64)> = model.into_iter().collect();
        prop_assert_eq!(collected, expected);
    }

    #[test]
    fn hashtable_matches_hashmap(ops in map_ops()) {
        let (heap, rt) = runtime(Algorithm::RhNorec);
        let table = HashTable::create(&heap, 8);
        let mut worker = rt.register(0);
        let mut model = HashMap::new();
        for op in ops {
            match op {
                MapOp::Put(k, v) => {
                    let got = worker.execute(TxKind::ReadWrite, |tx| table.put(tx, k, v));
                    prop_assert_eq!(got, model.insert(k, v));
                }
                MapOp::Remove(k) => {
                    let got = worker.execute(TxKind::ReadWrite, |tx| table.remove(tx, k));
                    prop_assert_eq!(got, model.remove(&k));
                }
                MapOp::Get(k) => {
                    let got = worker.execute(TxKind::ReadOnly, |tx| table.get(tx, k));
                    prop_assert_eq!(got, model.get(&k).copied());
                }
            }
        }
        let mut got = table.collect(&heap);
        got.sort_unstable();
        let mut want: Vec<(u64, u64)> = model.into_iter().collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn sorted_list_matches_btreemap(ops in map_ops()) {
        let (heap, rt) = runtime(Algorithm::RhNorec);
        let list = SortedList::create(&heap);
        let mut worker = rt.register(0);
        let mut model = BTreeMap::new();
        for op in ops {
            match op {
                MapOp::Put(k, v) => {
                    let inserted = worker.execute(TxKind::ReadWrite, |tx| list.insert(tx, k, v));
                    if model.contains_key(&k) {
                        prop_assert!(!inserted, "duplicate insert accepted");
                    } else {
                        prop_assert!(inserted);
                        model.insert(k, v);
                    }
                }
                MapOp::Remove(k) => {
                    let got = worker.execute(TxKind::ReadWrite, |tx| list.remove(tx, k));
                    prop_assert_eq!(got, model.remove(&k));
                }
                MapOp::Get(k) => {
                    let got = worker.execute(TxKind::ReadOnly, |tx| list.get(tx, k));
                    prop_assert_eq!(got, model.get(&k).copied());
                }
            }
        }
        let collected = list.collect(&heap);
        let expected: Vec<(u64, u64)> = model.into_iter().collect();
        prop_assert_eq!(collected, expected);
    }

    #[test]
    fn queue_matches_vecdeque(ops in prop::collection::vec(prop::option::of(any::<u64>()), 0..200)) {
        let (heap, rt) = runtime(Algorithm::RhNorec);
        let queue = Queue::create(&heap);
        let mut worker = rt.register(0);
        let mut model = std::collections::VecDeque::new();
        for op in ops {
            match op {
                Some(v) => {
                    worker.execute(TxKind::ReadWrite, |tx| queue.push(tx, v));
                    model.push_back(v);
                }
                None => {
                    let got = worker.execute(TxKind::ReadWrite, |tx| queue.pop(tx));
                    prop_assert_eq!(got, model.pop_front());
                }
            }
        }
        prop_assert_eq!(queue.collect(&heap), Vec::from(model));
    }
}
