//! The common driver interface between workloads and the benchmark
//! harness.

use rand::rngs::SmallRng;
use rh_norec::prelude::Session;
use sim_mem::Heap;

/// The deterministic per-thread RNG workloads draw from.
pub type WorkloadRng = SmallRng;

/// A benchmarkable workload: the RBTree microbenchmark or one of the STAMP
/// applications.
///
/// The harness drives it as the paper does: `setup` once on a quiescent
/// system, then each worker thread calls `run_op` in a loop for the
/// measurement interval, then `verify` checks application invariants on
/// the quiescent heap.
pub trait Workload: Send + Sync {
    /// Display name (figure labels).
    fn name(&self) -> String;

    /// Populates initial state. Runs single-threaded before measurement,
    /// using ordinary transactions on `worker`.
    fn setup(&self, worker: &mut Session, rng: &mut WorkloadRng);

    /// Executes one application operation (one or more transactions).
    fn run_op(&self, worker: &mut Session, rng: &mut WorkloadRng);

    /// Checks application invariants on a quiescent heap after a run.
    ///
    /// # Errors
    ///
    /// Describes the first violated invariant.
    fn verify(&self, heap: &Heap) -> Result<(), String>;
}
