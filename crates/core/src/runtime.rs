//! The TM runtime: shared state plus per-thread execution handles.

use std::fmt;
use std::sync::Arc;

use sim_htm::{Htm, HtmThread};
use sim_mem::Heap;

use crate::algorithms::{self, tl2::Tl2Meta};
use crate::error::{TmError, TxFault, TxResult};
use crate::globals::Globals;
use crate::policy::{PolicyShared, SlotSample};
use crate::stats::{ThreadReport, TmThreadStats};
use crate::tx::{Tx, TxMem};
use crate::txlog::{Backoff, TxLogs};
use crate::{Algorithm, TmConfig, TxKind};

/// Shared state of one TM instance: the algorithm configuration, the
/// protocol's global variables, and algorithm-specific metadata (the TL2
/// stripe-lock table).
///
/// Create one runtime per heap+HTM pair, then [`register`](TmRuntime::register)
/// a [`TmThread`] per worker.
pub struct TmRuntime {
    heap: Arc<Heap>,
    htm: Arc<Htm>,
    config: TmConfig,
    globals: Globals,
    tl2: Tl2Meta,
    /// The adaptive policy controller's shared state (DESIGN.md §14);
    /// `None` unless [`crate::PolicyConfig::enabled`] — the disabled
    /// layer is one never-taken branch per commit.
    policy: Option<PolicyShared>,
    /// Armed corpus mutants, one bit per [`crate::mutants::Mutant`].
    #[cfg(feature = "mutants")]
    mutant_mask: std::sync::atomic::AtomicU32,
}

impl TmRuntime {
    /// Creates a runtime over `heap` and `htm`.
    ///
    /// Allocates the protocol's global variables from the heap.
    ///
    /// # Errors
    ///
    /// Returns [`TmError::HeapMismatch`] if `htm` is not attached to
    /// `heap`.
    pub fn new(heap: Arc<Heap>, htm: Arc<Htm>, config: TmConfig) -> Result<Arc<Self>, TmError> {
        if !Arc::ptr_eq(htm.heap(), &heap) {
            return Err(TmError::HeapMismatch);
        }
        let lane_adaptation =
            config.policy.enabled && config.policy.adapt_lanes && config.clock_shards > 1;
        let globals = Globals::allocate_adaptive(&heap, config.clock_shards, lane_adaptation);
        let policy = config.policy.enabled.then(|| PolicyShared::new(&config));
        Ok(Arc::new(TmRuntime {
            heap,
            htm,
            config,
            globals,
            tl2: Tl2Meta::new(),
            policy,
            #[cfg(feature = "mutants")]
            mutant_mask: std::sync::atomic::AtomicU32::new(0),
        }))
    }

    /// Arms or disarms one planted protocol bug from the mutation corpus
    /// (see [`crate::mutants`]). Off by default even when the feature is
    /// compiled in; arming is per-runtime, so a clean engine in the same
    /// process stays untouched.
    ///
    /// [`crate::mutants::Mutant::BloomFalseNegative`] is sampled once per
    /// thread at [`register`](Self::register); arm it before registering
    /// workers. Every other mutant takes effect on the next attempt.
    #[cfg(feature = "mutants")]
    pub fn set_mutant(&self, mutant: crate::mutants::Mutant, on: bool) {
        use std::sync::atomic::Ordering;
        if on {
            self.mutant_mask.fetch_or(mutant.bit(), Ordering::Relaxed);
        } else {
            self.mutant_mask.fetch_and(!mutant.bit(), Ordering::Relaxed);
        }
    }

    /// Whether `mutant` is currently armed on this runtime.
    ///
    /// Public so out-of-crate hooks (the KV tier's transfer-path mutant)
    /// can consult the same per-runtime arming mask the in-crate
    /// protocol hooks use.
    #[cfg(feature = "mutants")]
    pub fn mutant_armed(&self, mutant: crate::mutants::Mutant) -> bool {
        self.mutant_mask.load(std::sync::atomic::Ordering::Relaxed) & mutant.bit() != 0
    }

    /// The globals as the software paths should see them this attempt:
    /// a copy with any armed clock mutations patched in.
    pub(crate) fn globals_snapshot(&self) -> Globals {
        #[allow(unused_mut)]
        let mut globals = self.globals;
        #[cfg(feature = "mutants")]
        globals
            .clock
            .set_stale_lane(self.mutant_armed(crate::mutants::Mutant::StaleLane));
        globals
    }

    /// The heap transactions operate on.
    #[inline]
    pub fn heap(&self) -> &Arc<Heap> {
        &self.heap
    }

    /// The HTM device.
    #[inline]
    pub fn htm(&self) -> &Arc<Htm> {
        &self.htm
    }

    /// The runtime configuration.
    #[inline]
    pub fn config(&self) -> &TmConfig {
        &self.config
    }

    /// Heap addresses of the protocol's global variables (exposed for
    /// white-box tests and diagnostics).
    #[inline]
    pub fn globals(&self) -> &Globals {
        &self.globals
    }

    pub(crate) fn tl2(&self) -> &Tl2Meta {
        &self.tl2
    }

    /// Registers worker `tid` and returns its execution handle.
    ///
    /// # Errors
    ///
    /// Returns [`TmError::ThreadIdOutOfRange`] if `tid` is at or above the
    /// simulated machine's thread capacity, or
    /// [`TmError::ThreadAlreadyRegistered`] if `tid` already has a live
    /// handle.
    pub fn register(self: &Arc<Self>, tid: usize) -> Result<TmThread, TmError> {
        let htm_thread = self.htm.try_register(tid).map_err(|e| match e {
            sim_htm::RegisterError::TidOutOfRange { tid, max } => {
                TmError::ThreadIdOutOfRange { tid, max }
            }
            sim_htm::RegisterError::AlreadyRegistered { tid } => {
                TmError::ThreadAlreadyRegistered { tid }
            }
        })?;
        #[allow(unused_mut)]
        let mut logs = TxLogs::default();
        #[cfg(feature = "mutants")]
        logs.set_bloom_sabotage(self.mutant_armed(crate::mutants::Mutant::BloomFalseNegative));
        Ok(TmThread {
            htm_thread,
            rt: Arc::clone(self),
            tid,
            stats: TmThreadStats::default(),
            mem: TxMem::default(),
            logs,
            backoff: Backoff::new(&self.config.backoff, tid),
            prefix_len: self.config.prefix.initial_reads,
            policy_commits: 0,
            policy_epoch_seen: 0,
        })
    }

    /// The policy controller's shared state, when the layer is enabled.
    #[inline]
    pub(crate) fn policy(&self) -> Option<&PolicyShared> {
        self.policy.as_ref()
    }
}

impl fmt::Debug for TmRuntime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TmRuntime")
            .field("config", &self.config)
            .field("globals", &self.globals)
            .finish_non_exhaustive()
    }
}

/// A worker thread's handle for executing transactions.
///
/// Not `Sync`: each worker owns its handle. The handle owns the thread's
/// [`HtmThread`], statistics, transactional memory log, and the adaptive
/// HTM-prefix length state.
///
/// # Examples
///
/// ```rust
/// use std::sync::Arc;
/// use sim_mem::{Heap, HeapConfig};
/// use sim_htm::{Htm, HtmConfig};
/// use rh_norec::{Algorithm, TmConfig, TmRuntime, TxKind};
///
/// let heap = Arc::new(Heap::new(HeapConfig::default()));
/// let htm = Htm::new(Arc::clone(&heap), HtmConfig::default());
/// let rt = TmRuntime::new(Arc::clone(&heap), htm, TmConfig::new(Algorithm::RhNorec))?;
/// let counter = heap.allocator().alloc(0, 1)?;
///
/// let mut thread = rt.register(0)?;
/// for _ in 0..10 {
///     thread.execute(TxKind::ReadWrite, |tx| {
///         let v = tx.read(counter)?;
///         tx.write(counter, v + 1)
///     });
/// }
/// assert_eq!(heap.load(counter), 10);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct TmThread {
    pub(crate) rt: Arc<TmRuntime>,
    pub(crate) htm_thread: HtmThread,
    pub(crate) tid: usize,
    pub(crate) stats: TmThreadStats,
    pub(crate) mem: TxMem,
    /// Recycled slow-path log arenas (read log, write-set, TL2 logs).
    pub(crate) logs: TxLogs,
    /// Seeded contention backoff for this thread's spin sites.
    pub(crate) backoff: Backoff,
    /// Adaptive expected HTM-prefix length (reads), per §2.4.
    pub(crate) prefix_len: u64,
    /// Commits since registration (policy epoch cadence; deliberately
    /// not reset by [`reset_stats`](Self::reset_stats) so the tick
    /// rhythm survives benchmark warmup resets).
    policy_commits: u64,
    /// Last controller epoch this thread blended its prefix length on.
    policy_epoch_seen: u64,
}

impl TmThread {
    /// Runs `body` as one atomic transaction and returns its result.
    ///
    /// The engine retries the body transparently until it commits: the body
    /// must be safe to re-execute (no side effects other than through the
    /// [`Tx`] handle) and must propagate every `Err` from `Tx` operations.
    ///
    /// `kind` is the static read-only hint (the stand-in for GCC's static
    /// analysis); see [`Tx::write`] for the contract it enforces.
    ///
    /// # Panics
    ///
    /// Panics if the body trips a [`TxFault`] — e.g. writing inside a
    /// transaction declared read-only. Use [`try_execute`](Self::try_execute)
    /// to handle faults as values instead.
    pub fn execute<T>(
        &mut self,
        kind: TxKind,
        body: impl FnMut(&mut Tx<'_>) -> TxResult<T>,
    ) -> T {
        self.try_execute(kind, body)
            .unwrap_or_else(|fault| panic!("transaction fault: {fault}"))
    }

    /// Like [`execute`](Self::execute), but surfaces programming faults as
    /// typed [`TxFault`] values instead of panicking.
    ///
    /// On `Err` the attempt has been torn down cleanly: speculative state
    /// is discarded, protocol locks are released, fallback announcements
    /// are withdrawn, and no transaction is counted as committed. The heap
    /// is exactly as if the transaction was never attempted.
    ///
    /// # Errors
    ///
    /// Returns the [`TxFault`] the body tripped (currently only
    /// [`TxFault::WriteInReadOnly`]; see [`Tx::write`]).
    pub fn try_execute<T>(
        &mut self,
        kind: TxKind,
        mut body: impl FnMut(&mut Tx<'_>) -> TxResult<T>,
    ) -> Result<T, TxFault> {
        let value = match self.rt.config.algorithm {
            Algorithm::LockElision => algorithms::lock_elision::run(self, kind, &mut body),
            Algorithm::Norec => algorithms::norec::run_eager(self, kind, &mut body),
            Algorithm::NorecLazy => algorithms::norec::run_lazy(self, kind, &mut body),
            Algorithm::Tl2 => algorithms::tl2::run(self, kind, &mut body),
            Algorithm::HybridNorec => algorithms::hybrid_norec::run(self, kind, &mut body, false),
            Algorithm::HybridNorecLazy => algorithms::hybrid_norec::run(self, kind, &mut body, true),
            Algorithm::RhNorec => algorithms::rh_norec::run(self, kind, &mut body, true),
            Algorithm::RhNorecPostfixOnly => algorithms::rh_norec::run(self, kind, &mut body, false),
        }?;
        self.stats.commits += 1;
        if self.rt.policy.is_some() {
            self.policy_after_commit();
        }
        Ok(value)
    }

    /// Post-commit policy work: refresh this thread's telemetry slot
    /// (relaxed stores into its own padded line), offer a controller tick
    /// at the epoch cadence, and pick up published knobs. Never runs when
    /// the policy layer is off.
    fn policy_after_commit(&mut self) {
        let rt = Arc::clone(&self.rt);
        let Some(shared) = rt.policy() else { return };
        let cfg = &rt.config;
        self.policy_commits += 1;
        shared.record(
            self.tid,
            SlotSample {
                commits: self.policy_commits,
                hw_commits: self.stats.fast_path_commits + self.stats.postfix_commits,
                conflict_aborts: self.stats.htm_conflict_aborts() + self.stats.slow_path_restarts,
                fallbacks: self.stats.slow_path_entries,
                backoff_spins: self.backoff.spins_waited(),
                lane_cas_failures: self.backoff.lane_cas_failures(),
                prefix_attempts: self.stats.prefix_attempts,
                prefix_commits: self.stats.prefix_commits,
            },
        );
        if self.policy_commits.is_multiple_of(cfg.policy.epoch_commits) {
            #[cfg(feature = "mutants")]
            let unfenced = rt.mutant_armed(crate::mutants::Mutant::PolicyStaleEpoch);
            #[cfg(not(feature = "mutants"))]
            let unfenced = false;
            shared.maybe_tick(&rt.heap, &rt.globals.clock, cfg, unfenced);
        }
        if cfg.policy.adapt_backoff {
            self.backoff.set_max_spins(shared.backoff_cap());
        }
        let epoch = shared.epoch();
        if epoch != self.policy_epoch_seen {
            if cfg.policy.adapt_prefix && cfg.prefix.adaptive {
                // Blend toward the controller's target rather than jump:
                // the §2.4 per-attempt reflex keeps working between
                // epochs; this is its slow timescale.
                let target = shared.prefix_target();
                self.prefix_len = ((self.prefix_len + target) / 2)
                    .clamp(cfg.prefix.min_reads.max(1), cfg.prefix.max_reads);
            }
            self.policy_epoch_seen = epoch;
        }
    }

    /// This worker's thread id.
    #[inline]
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// The runtime this thread belongs to.
    #[inline]
    pub fn runtime(&self) -> &Arc<TmRuntime> {
        &self.rt
    }

    /// Engine-level statistics for this thread.
    #[inline]
    pub fn stats(&self) -> TmThreadStats {
        self.stats
    }

    /// Combined engine + raw HTM statistics.
    pub fn report(&self) -> ThreadReport {
        ThreadReport {
            tm: self.stats,
            htm: self.htm_thread.stats(),
        }
    }

    /// Resets both engine and HTM statistics.
    pub fn reset_stats(&mut self) {
        self.stats = TmThreadStats::default();
        self.htm_thread.reset_stats();
    }

    /// Current adaptive HTM-prefix length (reads), for diagnostics.
    #[inline]
    pub fn prefix_len(&self) -> u64 {
        self.prefix_len
    }

    /// Controller epochs completed by the policy layer (0 when the
    /// layer is off), for diagnostics.
    pub fn policy_epoch(&self) -> u64 {
        self.rt.policy().map_or(0, |p| p.epoch())
    }

    /// The clock's current active-lane count (equals `clock_shards`
    /// whenever lane adaptation is off), for diagnostics.
    pub fn active_clock_lanes(&self) -> u32 {
        self.rt.globals.clock.active_lanes(&self.rt.heap)
    }

    /// Reallocations of this thread's recycled slow-path log arenas since
    /// registration, for diagnostics.
    ///
    /// The arenas (lazy NOrec read log and write-set, TL2 read-set, undo
    /// log and owned-stripe table) are cleared but never freed between
    /// attempts, so in steady state this counter stops moving: a retry
    /// loop performs no heap allocation. Tests pin that invariant here.
    #[inline]
    pub fn log_grow_events(&self) -> u64 {
        self.logs.grow_events()
    }
}

impl fmt::Debug for TmThread {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TmThread")
            .field("tid", &self.tid)
            .field("algorithm", &self.rt.config.algorithm)
            .field("stats", &self.stats)
            .field("prefix_len", &self.prefix_len)
            .finish()
    }
}
