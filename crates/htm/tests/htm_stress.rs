//! Concurrency stress tests for the simulated HTM: serializability,
//! opacity, and strong isolation under real thread interleavings.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sim_htm::{Htm, HtmConfig};
use sim_mem::{Addr, Heap, HeapConfig};

fn setup() -> (Arc<Heap>, Arc<Htm>) {
    let heap = Arc::new(Heap::new(HeapConfig { words: 1 << 18 }));
    let htm = Htm::new(Arc::clone(&heap), HtmConfig::default());
    (heap, htm)
}

/// Bank accounts with transactional transfers: the total is conserved, and
/// every transactional snapshot of the whole bank sees the exact total —
/// serializability plus snapshot consistency.
#[test]
fn bank_transfers_conserve_total_and_snapshots_agree() {
    let (heap, htm) = setup();
    let accounts = 32u64;
    let initial = 1000u64;
    let alloc = heap.allocator();
    let base = alloc.alloc(0, accounts).unwrap();
    for i in 0..accounts {
        heap.store(base.offset(i), initial);
    }
    let writers = 4usize;
    let readers = 2usize;
    let transfers_per_writer = 3000u64;

    std::thread::scope(|s| {
        for w in 0..writers {
            let htm = Arc::clone(&htm);
            s.spawn(move || {
                let mut t = htm.register(w);
                let mut rng = (w as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15);
                let mut done = 0;
                while done < transfers_per_writer {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    let from = rng % accounts;
                    let to = (rng >> 8) % accounts;
                    if from == to {
                        continue;
                    }
                    if t.begin().is_err() {
                        continue;
                    }
                    let moved = (|| {
                        let f = t.read(base.offset(from))?;
                        let g = t.read(base.offset(to))?;
                        let amount = f.min(3);
                        t.write(base.offset(from), f - amount)?;
                        t.write(base.offset(to), g + amount)?;
                        t.commit()
                    })();
                    if moved.is_ok() {
                        done += 1;
                    }
                }
            });
        }
        for r in 0..readers {
            let htm = Arc::clone(&htm);
            s.spawn(move || {
                let mut t = htm.register(writers + r);
                let mut snapshots = 0;
                while snapshots < 300 {
                    if t.begin().is_err() {
                        continue;
                    }
                    let sum = (|| {
                        let mut sum = 0u64;
                        for i in 0..accounts {
                            sum += t.read(base.offset(i))?;
                        }
                        t.commit()?;
                        Ok::<u64, sim_htm::HtmAbort>(sum)
                    })();
                    if let Ok(sum) = sum {
                        assert_eq!(sum, accounts * initial, "snapshot saw torn transfers");
                        snapshots += 1;
                    }
                }
            });
        }
    });

    let total: u64 = (0..accounts).map(|i| heap.load(base.offset(i))).sum();
    assert_eq!(total, accounts * initial);
}

/// Opacity: inside a transaction, two reads of an invariant pair can never
/// observe a broken invariant, *even when the transaction later aborts*.
/// A writer keeps x + y constant; readers assert the invariant between
/// their two reads, before knowing whether they will commit.
#[test]
fn opacity_no_inconsistent_view_mid_transaction() {
    let (heap, htm) = setup();
    let alloc = heap.allocator();
    // Force x and y onto different cache lines.
    let x = alloc.alloc(0, 8).unwrap();
    let y = alloc.alloc(0, 8).unwrap();
    let c = 10_000u64;
    heap.store(x, c);
    heap.store(y, 0);
    let stop = AtomicU64::new(0);

    std::thread::scope(|s| {
        let htm_w = Arc::clone(&htm);
        let stop_ref = &stop;
        s.spawn(move || {
            let mut t = htm_w.register(0);
            for step in 0..20_000u64 {
                loop {
                    if t.begin().is_err() {
                        continue;
                    }
                    let r = (|| {
                        let vx = t.read(x)?;
                        let vy = t.read(y)?;
                        let delta = (step % 7) + 1;
                        let delta = delta.min(vx);
                        t.write(x, vx - delta)?;
                        t.write(y, vy + delta)?;
                        t.commit()
                    })();
                    if r.is_ok() {
                        break;
                    }
                }
            }
            stop_ref.store(1, Ordering::Release);
        });
        for r in 0..3 {
            let htm = Arc::clone(&htm);
            let stop_ref = &stop;
            s.spawn(move || {
                let mut t = htm.register(1 + r);
                while stop_ref.load(Ordering::Acquire) == 0 {
                    if t.begin().is_err() {
                        continue;
                    }
                    let _ = (|| {
                        let vx = t.read(x)?;
                        let vy = t.read(y)?;
                        // The opacity assertion: holds for every pair of
                        // returned reads, commit or no commit.
                        assert_eq!(vx + vy, c, "opacity violated mid-transaction");
                        t.commit()
                    })();
                }
            });
        }
    });
    assert_eq!(heap.load(x) + heap.load(y), c);
}

/// Strong isolation: non-transactional coherent stores interleave with
/// transactional readers; a transaction reading the same word twice always
/// sees the same value (the first read's line stays validated).
#[test]
fn strong_isolation_repeat_reads_are_stable() {
    let (heap, htm) = setup();
    let a = heap.allocator().alloc(0, 1).unwrap();
    let stop = AtomicU64::new(0);

    std::thread::scope(|s| {
        let heap_w = Arc::clone(&heap);
        let stop_ref = &stop;
        s.spawn(move || {
            for i in 0..100_000u64 {
                heap_w.store(a, i);
            }
            stop_ref.store(1, Ordering::Release);
        });
        let htm = Arc::clone(&htm);
        let stop_ref = &stop;
        s.spawn(move || {
            let mut t = htm.register(1);
            let mut committed = 0u64;
            while stop_ref.load(Ordering::Acquire) == 0 || committed == 0 {
                if t.begin().is_err() {
                    continue;
                }
                let ok = (|| {
                    let v1 = t.read(a)?;
                    let v2 = t.read(a)?;
                    assert_eq!(v1, v2, "repeat read changed inside a transaction");
                    t.commit()
                })();
                if ok.is_ok() {
                    committed += 1;
                }
            }
        });
    });
}

/// Counters disjoint per thread never conflict: parallel transactions on
/// disjoint lines all commit without aborts (given no false sharing).
#[test]
fn disjoint_transactions_do_not_conflict() {
    let (heap, htm) = setup();
    let alloc = heap.allocator();
    let threads = 8usize;
    let slots: Vec<Addr> = (0..threads).map(|_| alloc.alloc(0, 8).unwrap()).collect();
    let iters = 5_000u64;
    std::thread::scope(|s| {
        for (tid, &slot) in slots.iter().enumerate() {
            let htm = Arc::clone(&htm);
            s.spawn(move || {
                let mut t = htm.register(tid);
                for _ in 0..iters {
                    t.begin().unwrap();
                    let v = t.read(slot).unwrap();
                    t.write(slot, v + 1).unwrap();
                    t.commit().unwrap();
                }
                assert_eq!(t.stats().conflict_aborts, 0, "disjoint lines conflicted");
            });
        }
    });
    for &slot in &slots {
        assert_eq!(heap.load(slot), iters);
    }
}
