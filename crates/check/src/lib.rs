//! # tm-check: deterministic schedule exploration + opacity checking
//!
//! Correctness tooling for the TM algorithms of the Reduced Hardware
//! NOrec reproduction. Three pieces compose:
//!
//! * the **deterministic scheduler** ([`sched`], re-exported from
//!   [`sim_htm::sched`]): virtual threads interleave only at instrumented
//!   yield points, and the whole interleaving — including injected
//!   hardware aborts — is a pure function of a `u64` seed;
//! * the **history recorder** ([`Recorder`]): every transactional begin,
//!   read (with the value the body observed), write, commit and abort,
//!   across all paths (hardware fast path, mixed slow path, software,
//!   serial), lands in one global event log whose order is the real-time
//!   order;
//! * the **opacity checker** ([`opacity`]): replays the committed
//!   transactions in commit order and verifies that a single sequential
//!   history explains every read — including the reads of aborted
//!   attempts, which is the part of opacity plain linearizability checks
//!   miss, and exactly the property §4 of the paper proves for RH NOrec.
//!
//! [`harness`] glues the three together: seeded workloads over the five
//! paper algorithms, a one-call [`harness::run_case`], and a bounded
//! depth-first schedule explorer in [`explore`]. A failing case prints
//! its replay seed; rerunning with the same seed reproduces the event
//! history byte for byte.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explore;
pub mod harness;
pub mod opacity;

mod recorder;

pub use recorder::Recorder;

/// Re-export of the deterministic scheduler driving controlled runs.
pub mod sched {
    pub use sim_htm::sched::*;
}

/// Re-export of the event vocabulary recorded by instrumented algorithms.
pub mod trace {
    pub use rh_norec::trace::*;
}
