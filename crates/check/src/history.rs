//! The shared history-checker core behind both oracles.
//!
//! [`crate::opacity`] and [`crate::serializability`] are the same
//! state-replay engine run under two [`Property`] settings: opacity checks
//! the reads of **every** attempt (committed or aborted) against the
//! committed-writer state sequence, while strict serializability constrains
//! committed transactions only. Keeping one engine means a history that
//! fails both properties fails them for comparable, diffable reasons, and
//! [`crate::verdict::judge`] can report exactly which rung of the hierarchy
//! broke.
//!
//! The engine exploits the recorder's guarantee that commit events are
//! recorded at their publication point with no yield in between: the order
//! of `Commit` events *is* the serialization order, so no permutation
//! search is needed (see the module docs of [`crate::opacity`]).

use std::collections::HashMap;
use std::fmt;

use rh_norec::trace::{Event, EventKind, Path};

/// The safety property a checker verdict refers to.
///
/// Opacity strictly implies strict serializability, so the pair orders
/// into a hierarchy: a history failing serializability also fails opacity,
/// while a zombie read fails opacity alone. Which rung breaks is the
/// diagnostic — a serializability failure means committed results are
/// wrong; an opacity-only failure means aborted attempts saw impossible
/// states (dangerous in unmanaged languages, and exactly what the paper's
/// §4 safety argument rules out).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Property {
    /// Every attempt — committed or aborted — observed consistent states.
    Opacity,
    /// Committed transactions form one sequential history consistent with
    /// real-time order; aborted attempts are unconstrained.
    Serializability,
}

impl Property {
    /// Lower-case name, as printed in verdicts and kill tables.
    pub fn name(self) -> &'static str {
        match self {
            Property::Opacity => "opacity",
            Property::Serializability => "serializability",
        }
    }
}

impl fmt::Display for Property {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why a history fails a [`Property`].
#[derive(Debug, Clone)]
pub struct Violation {
    /// The property the history fails.
    pub property: Property,
    /// Virtual thread of the offending attempt.
    pub vtid: usize,
    /// Position of the attempt's `Begin` in the history.
    pub begin_pos: usize,
    /// Whether the offending attempt committed.
    pub committed: bool,
    /// Path the attempt ran on.
    pub path: Path,
    /// Human-readable diagnosis.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} violation: {} {:?}-path attempt of vthread {} (begin at event {}): {}",
            self.property,
            if self.committed { "committed" } else { "aborted" },
            self.path,
            self.vtid,
            self.begin_pos,
            self.detail
        )
    }
}

impl std::error::Error for Violation {}

/// What a successful check verified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Summary {
    /// Total attempts (committed + aborted) in the history.
    pub attempts: usize,
    /// Committed attempts.
    pub commits: usize,
    /// Committed attempts that wrote (these advance the state).
    pub writer_commits: usize,
    /// Aborted attempts in the history (their reads are checked under
    /// [`Property::Opacity`], unconstrained under
    /// [`Property::Serializability`]).
    pub aborts: usize,
}

#[derive(Debug)]
struct Attempt {
    vtid: usize,
    path: Path,
    begin_pos: usize,
    /// Position of Commit/Abort; `history.len()` if never terminated.
    end_pos: usize,
    committed: bool,
    /// (position, addr, value) of reads, in program order.
    reads: Vec<(usize, u64, u64)>,
    /// (position, addr, value) of writes, in program order.
    writes: Vec<(usize, u64, u64)>,
}

/// Checks `history` for `property` against `initial` memory contents.
///
/// `initial` maps heap addresses (word form) to their contents at the
/// start of the run; addresses absent from the map are taken to be zero
/// (the simulated allocator hands out zeroed blocks).
///
/// # Errors
///
/// Returns the first [`Violation`] found.
pub fn check_history(
    initial: &HashMap<u64, u64>,
    history: &[Event],
    property: Property,
) -> Result<Summary, Violation> {
    let attempts = collect_attempts(history, property)?;

    // The committed writers in commit order define the state sequence:
    // states[j] = initial ⊕ writers[0..j]. Addresses absent everywhere
    // read as zero.
    let mut writer_commit_positions: Vec<usize> = Vec::new();
    let mut states: Vec<HashMap<u64, u64>> = vec![initial.clone()];
    let mut ordered: Vec<&Attempt> = attempts
        .iter()
        .filter(|a| a.committed && !a.writes.is_empty())
        .collect();
    ordered.sort_by_key(|a| a.end_pos);
    for writer in &ordered {
        let mut next = states.last().expect("states never empty").clone();
        for &(_, addr, value) in &writer.writes {
            next.insert(addr, value);
        }
        states.push(next);
        writer_commit_positions.push(writer.end_pos);
    }
    let writers_before = |pos: usize| writer_commit_positions.partition_point(|&p| p < pos);

    for attempt in &attempts {
        if !attempt.committed && property == Property::Serializability {
            // Serializability says nothing about what aborted attempts
            // observed; only the committed history must linearize.
            continue;
        }
        if attempt.committed && !attempt.writes.is_empty() {
            // A committed writer serializes exactly at its commit event.
            let m = writers_before(attempt.end_pos);
            check_reads_against(attempt, &states[m], m, property)?;
        } else {
            // Committed read-only transactions and aborted attempts may
            // serialize anywhere inside their real-time window.
            let lo = writers_before(attempt.begin_pos);
            let hi = writers_before(attempt.end_pos);
            let mut last_err = None;
            let mut satisfied = false;
            for (j, state) in states.iter().enumerate().take(hi + 1).skip(lo) {
                match check_reads_against(attempt, state, j, property) {
                    Ok(()) => {
                        satisfied = true;
                        break;
                    }
                    Err(e) => last_err = Some(e),
                }
            }
            if !satisfied {
                let e = last_err.expect("lo..=hi is never empty");
                return Err(Violation {
                    detail: format!(
                        "no state in its window (after {lo}..={hi} writer commits) \
                         explains its reads; closest mismatch: {}",
                        e.detail
                    ),
                    ..e
                });
            }
        }
    }

    Ok(Summary {
        attempts: attempts.len(),
        commits: attempts.iter().filter(|a| a.committed).count(),
        writer_commits: ordered.len(),
        aborts: attempts.iter().filter(|a| !a.committed).count(),
    })
}

/// Verifies every read of `attempt` against `state` (the history state
/// after `j` writer commits), overlaying the attempt's own earlier
/// writes in program order.
fn check_reads_against(
    attempt: &Attempt,
    state: &HashMap<u64, u64>,
    j: usize,
    property: Property,
) -> Result<(), Violation> {
    let mut overlay: HashMap<u64, u64> = HashMap::new();
    let mut writes = attempt.writes.iter().peekable();
    for &(pos, addr, value) in &attempt.reads {
        // Both lists are in program order; fold in every own write that
        // precedes this read before judging it.
        while let Some(&&(wpos, waddr, wvalue)) = writes.peek() {
            if wpos > pos {
                break;
            }
            overlay.insert(waddr, wvalue);
            writes.next();
        }
        if let Some(&own) = overlay.get(&addr) {
            if value != own {
                return Err(violation(
                    attempt,
                    property,
                    format!(
                        "read of {addr:#x} returned {value}, but the attempt itself \
                         last wrote {own} (read-your-own-writes broken)"
                    ),
                ));
            }
            continue;
        }
        let expected = state.get(&addr).copied().unwrap_or(0);
        if value != expected {
            return Err(violation(
                attempt,
                property,
                format!(
                    "read of {addr:#x} returned {value}, but the state after \
                     {j} writer commits holds {expected}"
                ),
            ));
        }
    }
    Ok(())
}

fn violation(attempt: &Attempt, property: Property, detail: String) -> Violation {
    Violation {
        property,
        vtid: attempt.vtid,
        begin_pos: attempt.begin_pos,
        committed: attempt.committed,
        path: attempt.path,
        detail,
    }
}

/// Splits the history into per-attempt records, enforcing that each
/// thread's events form well-nested Begin … Commit/Abort attempts.
fn collect_attempts(history: &[Event], property: Property) -> Result<Vec<Attempt>, Violation> {
    let mut open: HashMap<usize, Attempt> = HashMap::new();
    let mut done: Vec<Attempt> = Vec::new();
    for (pos, event) in history.iter().enumerate() {
        match event.kind {
            EventKind::Begin { path } => {
                if let Some(prev) = open.remove(&event.vtid) {
                    return Err(Violation {
                        property,
                        vtid: event.vtid,
                        begin_pos: prev.begin_pos,
                        committed: false,
                        path: prev.path,
                        detail: format!(
                            "attempt still open when a new attempt began at event {pos} \
                             (instrumentation bug: missing Commit/Abort)"
                        ),
                    });
                }
                open.insert(
                    event.vtid,
                    Attempt {
                        vtid: event.vtid,
                        path,
                        begin_pos: pos,
                        end_pos: history.len(),
                        committed: false,
                        reads: Vec::new(),
                        writes: Vec::new(),
                    },
                );
            }
            EventKind::Read { addr, value } => {
                if let Some(a) = open.get_mut(&event.vtid) {
                    a.reads.push((pos, addr, value));
                }
            }
            EventKind::Write { addr, value } => {
                if let Some(a) = open.get_mut(&event.vtid) {
                    a.writes.push((pos, addr, value));
                }
            }
            EventKind::Commit { path } => {
                let Some(mut a) = open.remove(&event.vtid) else {
                    return Err(stray(event.vtid, pos, "Commit", property));
                };
                a.end_pos = pos;
                a.committed = true;
                a.path = path;
                done.push(a);
            }
            EventKind::Abort => {
                let Some(mut a) = open.remove(&event.vtid) else {
                    return Err(stray(event.vtid, pos, "Abort", property));
                };
                a.end_pos = pos;
                done.push(a);
            }
        }
    }
    // Attempts cut off by the end of the run (e.g. a panicking thread)
    // are treated as aborted with a window extending to the history end.
    done.extend(open.into_values());
    done.sort_by_key(|a| a.begin_pos);
    Ok(done)
}

fn stray(vtid: usize, pos: usize, what: &str, property: Property) -> Violation {
    Violation {
        property,
        vtid,
        begin_pos: pos,
        committed: false,
        path: Path::Stm,
        detail: format!("{what} at event {pos} without an open attempt (instrumentation bug)"),
    }
}
