//! # Reduced Hardware NOrec — reproduction
//!
//! A full reproduction of *Reduced Hardware NOrec: A Safe and Scalable
//! Hybrid Transactional Memory* (Matveev & Shavit, ASPLOS 2015) on a
//! software-simulated best-effort HTM. This facade crate re-exports the
//! workspace's layers:
//!
//! * [`mem`] — the simulated shared heap with its cache-line coherence
//!   model and scalable allocator (`sim-mem`).
//! * [`htm`] — the best-effort hardware-transactional-memory simulator
//!   modeled on Intel RTM (`sim-htm`).
//! * [`tm`] — the TM algorithms: RH NOrec and its baselines (`rh-norec`).
//! * [`workloads`] — the evaluation workloads: the RBTree microbenchmark
//!   and the STAMP-style applications (`tm-workloads`).
//!
//! See `README.md` for a walkthrough, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ## Example
//!
//! ```rust
//! use std::sync::Arc;
//! use rh_norec_repro::htm::{Htm, HtmConfig};
//! use rh_norec_repro::mem::{Heap, HeapConfig};
//! use rh_norec_repro::tm::prelude::*;
//!
//! let heap = Arc::new(Heap::new(HeapConfig::default()));
//! let htm = Htm::new(Arc::clone(&heap), HtmConfig::default());
//! let rt = TmRuntime::new(Arc::clone(&heap), htm, TmConfig::new(Algorithm::RhNorec)).expect("runtime construction cannot fail");
//! let cell = heap.allocator().alloc(0, 1)?;
//!
//! let mut session = rt.open_session().expect("free worker slot");
//! session.run(|tx| tx.write(cell, 42)).expect("write cannot fault");
//! assert_eq!(heap.load(cell), 42);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rh_norec as tm;
pub use sim_htm as htm;
pub use sim_mem as mem;
pub use tm_workloads as workloads;
