//! A tiny, dependency-free PRNG for spurious-abort injection.

/// xorshift64* — statistically plenty for Bernoulli abort injection.
#[derive(Clone, Debug)]
pub(crate) struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    pub(crate) fn new(seed: u64) -> Self {
        XorShift64 {
            state: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1,
        }
    }

    #[inline]
    pub(crate) fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    pub(crate) fn bernoulli(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_probability_never_fires() {
        let mut rng = XorShift64::new(1);
        assert!((0..10_000).all(|_| !rng.bernoulli(0.0)));
    }

    #[test]
    fn unit_probability_always_fires() {
        let mut rng = XorShift64::new(2);
        assert!((0..100).all(|_| rng.bernoulli(1.0)));
    }

    #[test]
    fn half_probability_is_roughly_half() {
        let mut rng = XorShift64::new(3);
        let hits = (0..100_000).filter(|_| rng.bernoulli(0.5)).count();
        assert!((40_000..60_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn distinct_seeds_produce_distinct_streams() {
        let mut a = XorShift64::new(10);
        let mut b = XorShift64::new(11);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }
}
