//! Work-stealing service-scheduler parity and oracle sweep.
//!
//! The steal runner's safety story has three legs, each pinned here
//! under the deterministic cooperative scheduler:
//!
//! 1. **Parity by construction** — at one worker, and at N workers with
//!    stealing disabled, the steal runner replays **bit-for-bit
//!    identical event histories** to the static partition (same engine,
//!    same trace seed, same schedule seed). The owner-only deque fast
//!    path takes no extra scheduler decision points, so the runs are
//!    literally the same computation.
//! 2. **Determinism** — with stealing enabled, the whole run (histories
//!    included, every steal race resolved) is a pure function of the
//!    seed pair: replaying the same seeds reproduces the identical
//!    history.
//! 3. **Oracle coverage** — steal-scheduled histories, and the batch
//!    pipeline's chained (cross-block handoff) executions, pass both the
//!    opacity and strict-serializability oracles at kv shard counts
//!    {1, 4} across the paper engines.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use rh_kv::former::{Former, FormerConfig, Segment};
use rh_kv::gen::{self, Mix, TraceConfig};
use rh_kv::service::{run_service_controlled, SchedPolicy, ServiceConfig};
use rh_kv::{KvConfig, KvStore};
use rh_norec::batch::{BatchConfig, ParallelExecutor};
use rh_norec::Algorithm;
use sim_htm::sched::SchedConfig;
use sim_mem::{Heap, HeapConfig};
use tm_check::harness::{run_case, CaseConfig};
use tm_check::trace::{self, TraceSink};
use tm_check::{verdict, Recorder};

const ENGINES: [Algorithm; 5] = [
    Algorithm::LockElision,
    Algorithm::Norec,
    Algorithm::Tl2,
    Algorithm::HybridNorec,
    Algorithm::RhNorec,
];
const KV_SHARDS: [usize; 2] = [1, 4];

/// A small bursty transfer trace: bursts pile backlog onto some workers
/// while calm gaps leave others modeled-idle, so steals actually fire.
fn trace_config(seed: u64) -> TraceConfig {
    TraceConfig {
        requests: 120,
        keyspace: 16,
        zipf_theta: 0.0,
        mix: Mix::transfer_heavy(),
        mean_interarrival_ns: 300,
        burst_factor: 16,
        burst_len: 6,
        seed,
    }
}

/// Runs one controlled service cell and returns the recorded global
/// event history plus how many requests were served off stolen slots.
fn controlled_history(
    algorithm: Algorithm,
    threads: usize,
    sched: SchedPolicy,
    trace_seed: u64,
    sched_seed: u64,
) -> (Vec<trace::Event>, u64) {
    let mut config = ServiceConfig::new(algorithm, threads, trace_config(trace_seed));
    config.sched = sched;
    let recorder = Recorder::new();
    let sink_source = Arc::clone(&recorder);
    let on_start = move |tid: usize| {
        trace::install(Arc::clone(&sink_source) as Arc<dyn TraceSink>, tid);
    };
    let (report, _run) = run_service_controlled(
        &config,
        &SchedConfig::from_seed(sched_seed),
        &|_heap, _store| {},
        &on_start,
        &|_tid| trace::uninstall(),
    );
    (recorder.take(), report.stolen)
}

#[test]
fn steal_disabled_replays_the_static_history_bit_for_bit() {
    for algorithm in ENGINES {
        for trace_seed in [0, 7] {
            for sched_seed in [1, 5] {
                let (baseline, _) = controlled_history(
                    algorithm,
                    3,
                    SchedPolicy::Static,
                    trace_seed,
                    sched_seed,
                );
                let (parity, stolen) = controlled_history(
                    algorithm,
                    3,
                    SchedPolicy::Steal { enabled: false },
                    trace_seed,
                    sched_seed,
                );
                assert_eq!(stolen, 0, "{algorithm:?}: disabled stealing must not steal");
                assert_eq!(
                    parity, baseline,
                    "{algorithm:?} trace={trace_seed} sched={sched_seed}: \
                     steal-disabled history diverged from the static partition"
                );
            }
        }
    }
}

#[test]
fn a_one_worker_steal_pool_is_the_static_run() {
    for algorithm in [Algorithm::RhNorec, Algorithm::LockElision] {
        for sched_seed in [0, 3] {
            let (baseline, _) =
                controlled_history(algorithm, 1, SchedPolicy::Static, 2, sched_seed);
            let (parity, stolen) = controlled_history(
                algorithm,
                1,
                SchedPolicy::Steal { enabled: true },
                2,
                sched_seed,
            );
            assert_eq!(stolen, 0, "a one-worker pool has no victims");
            assert_eq!(
                parity, baseline,
                "{algorithm:?} sched={sched_seed}: one-worker steal run diverged"
            );
        }
    }
}

#[test]
fn steal_runs_are_a_pure_function_of_the_seed() {
    let mut any_stolen = 0u64;
    for algorithm in [Algorithm::RhNorec, Algorithm::HybridNorec] {
        for sched_seed in 0..4 {
            let (a, stolen_a) = controlled_history(
                algorithm,
                3,
                SchedPolicy::Steal { enabled: true },
                4,
                sched_seed,
            );
            let (b, stolen_b) = controlled_history(
                algorithm,
                3,
                SchedPolicy::Steal { enabled: true },
                4,
                sched_seed,
            );
            assert_eq!(stolen_a, stolen_b, "{algorithm:?} sched={sched_seed}");
            assert_eq!(
                a, b,
                "{algorithm:?} sched={sched_seed}: replay with identical seeds \
                 must reproduce the identical history, steal races included"
            );
            any_stolen += stolen_a;
        }
    }
    assert!(
        any_stolen > 0,
        "the bursty parity trace never triggered a steal — the determinism \
         claim would be vacuous"
    );
}

#[test]
fn steal_histories_satisfy_both_oracles_at_both_shard_counts() {
    for algorithm in ENGINES {
        for kv_shards in KV_SHARDS {
            let case =
                CaseConfig::steal_service(algorithm, sim_htm::HtmConfig::default(), kv_shards);
            for seed in 0..4 {
                let report = run_case(&case, &SchedConfig::from_seed(seed))
                    .unwrap_or_else(|f| {
                        panic!("{algorithm:?} shards={kv_shards} seed={seed}: {f}")
                    });
                assert!(report.summary.commits > 0, "the case must commit work");
            }
        }
    }
}

/// The batch pipeline's chained execution (cross-block handoff) replays
/// clean through both oracles: the former cuts a bursty trace into
/// blocks, the executor runs them as one chain under the controlled
/// scheduler, and the committed per-rank records — in rank order, the
/// serialization the chain claims — must satisfy opacity and strict
/// serializability over the store's initial words.
#[test]
fn chained_blocks_replay_clean_through_the_oracles() {
    const KEYSPACE: u64 = 12;
    const BALANCE: u64 = 100;
    for kv_shards in KV_SHARDS {
        for seed in 0..3 {
            let heap = Arc::new(Heap::new(HeapConfig { words: 1 << 18 }));
            let store = KvStore::create(
                &heap,
                KvConfig {
                    shards: kv_shards,
                    buckets_per_shard: 2,
                    slots_per_bucket: KEYSPACE as usize,
                },
            )
            .expect("test heap fits the store");
            for key in 1..=KEYSPACE {
                store.load(&heap, key, BALANCE).expect("geometry holds the keyspace");
            }
            let initial: HashMap<u64, u64> = store.snapshot_words(&heap);

            let trace_cfg = TraceConfig { requests: 96, ..trace_config(seed) };
            let trace = gen::generate(&trace_cfg);
            let mut former = Former::new(FormerConfig { min_batch: 2, ..FormerConfig::default() });
            let mut txns = Vec::new();
            let mut bounds = Vec::new();
            for segment in former.form(&trace) {
                if let Segment::Batch { start, len, .. } = *segment {
                    for request in &trace[start..start + len] {
                        txns.push(rh_kv::batch::KvBatchTxn::new(
                            &store,
                            rh_kv::batch::BatchOp::from_request(request),
                        ));
                    }
                    bounds.push(txns.len());
                }
            }
            assert!(bounds.len() >= 2, "the bursty trace must form at least two blocks");

            let exec = ParallelExecutor::new(Arc::clone(&heap), BatchConfig::with_workers(3))
                .expect("test batch config is valid");
            let (report, elapsed, _run) = exec.execute_chained_controlled(
                &txns,
                &bounds,
                &SchedConfig::from_seed(seed),
            );
            assert_eq!(report.txs(), txns.len() as u64);
            assert_eq!(elapsed.len(), bounds.len());
            assert!(
                elapsed.windows(2).all(|w| w[0] <= w[1]),
                "per-block completion marks must be non-decreasing"
            );
            assert_eq!(store.sum_direct(&heap), KEYSPACE * BALANCE, "chain drifted the sum");

            // Rank order is the claimed serialization: replay it.
            let mut history = Vec::new();
            for (rank, record) in report.committed().iter().enumerate() {
                history.push(trace::Event {
                    vtid: rank,
                    kind: trace::EventKind::Begin { path: trace::Path::Stm },
                });
                for &(addr, value) in &record.reads {
                    history.push(trace::Event {
                        vtid: rank,
                        kind: trace::EventKind::Read { addr, value },
                    });
                }
                for &(addr, value) in &record.writes {
                    history.push(trace::Event {
                        vtid: rank,
                        kind: trace::EventKind::Write { addr, value },
                    });
                }
                history.push(trace::Event {
                    vtid: rank,
                    kind: trace::EventKind::Commit { path: trace::Path::Stm },
                });
            }
            verdict::judge(&initial, &history).unwrap_or_else(|v| {
                panic!("shards={kv_shards} seed={seed}: chained-block history rejected: {v}")
            });
        }
    }
}

/// The steal-enabled free-running pool is exercised elsewhere; here the
/// controlled runner's report invariants are pinned once: exactly-once
/// service (the runner asserts it internally), conservation, and a
/// steal count that the seed fully determines.
#[test]
fn controlled_steal_reports_are_conserved_and_deterministic() {
    let mut config = ServiceConfig::new(Algorithm::RhNorec, 3, trace_config(9));
    config.sched = SchedPolicy::Steal { enabled: true };
    let noop = |_: usize| {};
    let snapshot: Mutex<Option<HashMap<u64, u64>>> = Mutex::new(None);
    let (report, run) = run_service_controlled(
        &config,
        &SchedConfig::from_seed(2),
        &|heap, store| *snapshot.lock().unwrap() = Some(store.snapshot_words(heap)),
        &noop,
        &noop,
    );
    assert_eq!(report.requests, 120);
    assert_eq!(report.conserved, Some(true));
    assert!(snapshot.lock().unwrap().is_some(), "on_ready must run before the workers");
    let (report2, run2) = run_service_controlled(
        &config,
        &SchedConfig::from_seed(2),
        &|_h, _s| {},
        &noop,
        &noop,
    );
    assert_eq!(report.stolen, report2.stolen);
    assert_eq!(run.steps, run2.steps, "controlled replays must take identical step counts");
}
